//! Real Rust spinlocks checked through the shim: record TAS, CAS and
//! ticket locks — ordinary `while` loops over `shim::atomic` types — and
//! differentially compare each against its hand-built registry twin:
//! same verdicts, same canonical execution counts, same optimized
//! barrier assignment, mapped back to the annotated source sites.
//!
//! ```sh
//! cargo run --release --example shim_spinlock
//! ```
//!
//! Exits nonzero on any shim/registry divergence, so CI can run it as a
//! smoke test.

use std::process::ExitCode;
use std::time::Duration;

use vsync::core::{OptimizerConfig, Session};
use vsync::locks::registry;
use vsync::model::ModelKind;
use vsync::shim::locks::{mutex_client, CasSpinlock, ShimLock, TasSpinlock, TicketSpinlock};
use vsync::shim::SessionExt as _;

const DEADLINE: Duration = Duration::from_secs(120);

/// Record the shim lock's mutual-exclusion client, run both it and the
/// registry twin's through the full model matrix, and demand identical
/// verdicts and canonical execution counts.
fn differential<L: ShimLock>(threads: usize, acquires: usize) -> Result<(), String> {
    let rec = mutex_client::<L>(threads, acquires)
        .map_err(|e| format!("{}: recording failed: {e}", L::REGISTRY_TWIN))?;
    if rec.symmetry_fallback {
        return Err(format!("{}: lost the symmetry partition", L::REGISTRY_TWIN));
    }
    let twin = registry::entry(L::REGISTRY_TWIN)
        .ok_or_else(|| format!("{}: no registry twin", L::REGISTRY_TWIN))?
        .client(threads, acquires);

    let shim_report =
        Session::from_shim(&rec).models(ModelKind::all()).deadline(DEADLINE).run();
    let twin_report = Session::new(twin).models(ModelKind::all()).deadline(DEADLINE).run();

    println!("{} ({threads} threads, {acquires} acquires):", L::REGISTRY_TWIN);
    for (s, t) in shim_report.models.iter().zip(&twin_report.models) {
        let (sv, tv) = (s.verdict.to_string(), t.verdict.to_string());
        let (se, te) = (s.stats.complete_executions, t.stats.complete_executions);
        println!("  {:>4}: shim {sv} ({se} executions) | registry {tv} ({te} executions)", s.model);
        if sv != tv {
            return Err(format!("{}: verdicts diverge under {}", L::REGISTRY_TWIN, s.model));
        }
        if se != te {
            return Err(format!(
                "{}: execution counts diverge under {} ({se} vs {te})",
                L::REGISTRY_TWIN, s.model
            ));
        }
    }
    Ok(())
}

/// Optimize the recorded TAS client from its annotated (Acquire/Release)
/// barriers and print the assignment mapped back to the source sites.
fn optimize_tas() -> Result<(), String> {
    let rec = mutex_client::<TasSpinlock>(2, 1).map_err(|e| format!("recording failed: {e}"))?;
    let report = Session::from_shim(&rec)
        .model(ModelKind::Vmm)
        .deadline(DEADLINE)
        .optimize(OptimizerConfig::default())
        .run();
    let opt = report.models[0]
        .optimization
        .as_ref()
        .ok_or("TAS client did not verify, so nothing was optimized")?;
    println!("\noptimizer on the recorded TAS client: {} -> {}", opt.before, opt.after);
    for name in rec.annotated_sites() {
        // Every annotated source site survives into the optimized
        // program's site table under its own name — that is the map-back.
        let modes: Vec<String> = opt
            .program
            .sites()
            .iter()
            .filter(|s| &s.name == name)
            .map(|s| s.mode.to_string())
            .collect();
        if modes.is_empty() {
            return Err(format!("annotated site {name} lost by the optimizer"));
        }
        println!("  site {name:<20} -> {}", modes.join(", "));
    }
    Ok(())
}

type Check = fn() -> Result<(), String>;

fn main() -> ExitCode {
    let checks: [(&str, Check); 4] = [
        ("tas", || differential::<TasSpinlock>(2, 1)),
        ("cas", || differential::<CasSpinlock>(2, 1)),
        ("ticket", || differential::<TicketSpinlock>(2, 1)),
        ("optimize", optimize_tas),
    ];
    for (what, check) in checks {
        if let Err(e) = check() {
            eprintln!("FAIL {what}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("\nall shim locks agree with their registry twins");
    ExitCode::SUCCESS
}
