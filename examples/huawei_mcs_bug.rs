//! Study case §3.2: the Huawei-product MCS lock data corruption.
//!
//! The shipped `mcslock_acquire` ends with a plain `while (me->spin);` —
//! no acquire barrier. Bob's critical section is then unordered with
//! Alice's: both read the same counter value and one increment vanishes
//! (paper Figs. 18/19). Unlike the DPDK hang this is a *safety* violation,
//! and it was reproduced on real hardware.
//!
//! ```sh
//! cargo run --release --example huawei_mcs_bug
//! ```

use vsync::core::{Session, Verdict};
use vsync::locks::model::huawei_scenario;
use vsync::model::ModelKind;

fn main() {
    println!("=== Huawei-product MCS lock, scenario of Fig. 19 ===\n");
    // One cross-model session: broken under VMM, fine under SC — the
    // classic x86-to-ARM porting bug, in one report.
    let report = Session::new(huawei_scenario(false))
        .models([ModelKind::Vmm, ModelKind::Sc])
        .run();
    let vmm = report.for_model(ModelKind::Vmm).expect("VMM in matrix");
    println!("shipped code under VMM: {}", vmm.verdict);
    if let Verdict::Safety(ce) = &vmm.verdict {
        println!("\nlost-update execution (cf. paper Fig. 19):\n{}", ce.graph.render());
        let final_state = ce.graph.final_state();
        println!(
            "final counter value: {} (two increments ran!)",
            final_state.get(&vsync::locks::model::COUNTER).unwrap_or(&0)
        );
    }
    let sc = report.for_model(ModelKind::Sc).expect("SC in matrix");
    println!("\nshipped code under SC:  {} (an x86-to-ARM porting bug)", sc.verdict);

    let report = Session::new(huawei_scenario(true)).model(ModelKind::Vmm).run();
    println!("with the acquire fence: {}", report.models[0].verdict);
}
