//! Study case §3.2: the Huawei-product MCS lock data corruption.
//!
//! The shipped `mcslock_acquire` ends with a plain `while (me->spin);` —
//! no acquire barrier. Bob's critical section is then unordered with
//! Alice's: both read the same counter value and one increment vanishes
//! (paper Figs. 18/19). Unlike the DPDK hang this is a *safety* violation,
//! and it was reproduced on real hardware.
//!
//! ```sh
//! cargo run --release --example huawei_mcs_bug
//! ```

use vsync::core::{explore, AmcConfig, Verdict};
use vsync::locks::model::huawei_scenario;
use vsync::model::ModelKind;

fn main() {
    println!("=== Huawei-product MCS lock, scenario of Fig. 19 ===\n");
    let result = explore(&huawei_scenario(false), &AmcConfig::with_model(ModelKind::Vmm));
    println!("shipped code under VMM: {}", result.verdict);
    if let Verdict::Safety(ce) = &result.verdict {
        println!("\nlost-update execution (cf. paper Fig. 19):\n{}", ce.graph.render());
        let final_state = ce.graph.final_state();
        println!(
            "final counter value: {} (two increments ran!)",
            final_state.get(&vsync::locks::model::COUNTER).unwrap_or(&0)
        );
    }

    let result = explore(&huawei_scenario(false), &AmcConfig::with_model(ModelKind::Sc));
    println!("\nshipped code under SC:  {} (an x86-to-ARM porting bug)", result.verdict);

    let result = explore(&huawei_scenario(true), &AmcConfig::with_model(ModelKind::Vmm));
    println!("with the acquire fence: {}", result.verdict);
}
