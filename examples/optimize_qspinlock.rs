//! Study case §3.3: push-button barrier optimization of the Linux
//! qspinlock (the paper's Table 1 / Fig. 20).
//!
//! Starting from the all-SC baseline, the optimizer relaxes each barrier
//! site to the weakest mode that still verifies — safety (no lost
//! increments) *and* await termination — under the weak memory model.
//!
//! This example uses the quick 2-thread oracle (driven end-to-end by the
//! registry-backed `Session` pipeline inside `vsync_bench`); run the
//! `table1_qspinlock` bench binary for the full experiment with the
//! 3-thread queue-path scenario.
//!
//! ```sh
//! cargo run --release --example optimize_qspinlock
//! ```

fn main() {
    println!("optimizing qspinlock from all-SC (quick 2-thread oracle)...\n");
    let result = vsync_bench::table1_experiment(true);
    let mut rows = vsync_bench::table1_linux_rows();
    rows.push(result.row);
    println!("{}", vsync_bench::render_table1(&rows));
    println!("Relaxations accepted (cf. paper Fig. 20):");
    for step in result.report.steps.iter().filter(|s| s.accepted) {
        println!("  {:<44} {} -> {}", result.report.site_name(step), step.from, step.to);
    }
    println!(
        "\n{} AMC verification runs ({} explorations, {} witness-cache hits) in {:.1?}",
        result.report.verifications,
        result.report.explorations,
        result.report.cache_hits,
        result.report.elapsed
    );
}
