//! Quickstart: verify a lock from the registry across the whole model
//! matrix, break it, and let the optimizer find the minimal barriers —
//! all through the push-button `Session` pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vsync::core::{OptimizerConfig, Session, Verdict};
use vsync::graph::Mode;
use vsync::lang::{ProgramBuilder, Reg, Test};
use vsync::locks::model::{mutex_client, TtasLock};
use vsync::locks::SessionExt as _;
use vsync::model::ModelKind;

fn main() {
    // 1. Verify the paper's Fig. 3 TTAS lock under SC, TSO and the weak
    //    memory model: two threads, each acquiring once and incrementing
    //    a counter. One session, three verdicts, one structured report.
    let report = Session::lock("ttas", 2, 1).models(ModelKind::all()).run();
    print!("TTAS lock, correct barriers:\n{}", report.render());
    println!("machine-readable: {} bytes of JSON\n", report.to_json().len());

    // 2. The same lock with a relaxed exchange loses mutual exclusion.
    let broken = TtasLock { xchg_mode: Mode::Rlx, ..TtasLock::default() };
    let report = Session::new(mutex_client(&broken, 2, 1)).run();
    let verdict = &report.models[0].verdict;
    println!("TTAS lock, relaxed xchg:      {verdict}");
    if let Verdict::Safety(ce) = verdict {
        println!("counterexample execution:\n{}", ce.graph.render());
    }

    // 3. Write your own program with the builder: message passing with a
    //    polling await, then push-button optimize it from all-SC.
    let mut pb = ProgramBuilder::new("message-passing");
    pb.thread(|t| {
        t.store(0x10, 42u64, ("data.store", Mode::Sc));
        t.store(0x20, 1u64, ("flag.store", Mode::Sc));
    });
    pb.thread(|t| {
        t.await_eq(Reg(0), 0x20, 1u64, ("flag.poll", Mode::Sc));
        t.load(Reg(1), 0x10, ("data.load", Mode::Sc));
        t.assert_eq(Reg(1), 42u64, "message received intact");
    });
    pb.final_check(0x10, Test::eq(42u64), "data still in place");
    let program = pb.build().expect("well-formed");

    let report = Session::new(program)
        .model(ModelKind::Vmm)
        .optimize(OptimizerConfig::default())
        .run();
    let opt = report.models[0].optimization.as_ref().expect("MP verifies, so it optimizes");
    println!("\nOptimizer on all-SC message passing:");
    println!("  {} -> {}", opt.before, opt.after);
    print!("{}", opt.render());
}
