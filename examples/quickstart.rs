//! Quickstart: model a lock, verify it with AMC, break it, and let the
//! optimizer find the minimal barriers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vsync::core::{explore, optimize, AmcConfig, OptimizerConfig, Verdict};
use vsync::graph::Mode;
use vsync::lang::{ProgramBuilder, Reg, Test};
use vsync::locks::model::{mutex_client, TtasLock};
use vsync::model::ModelKind;

fn main() {
    // 1. Verify the paper's Fig. 3 TTAS lock under the weak memory model:
    //    two threads, each acquiring once and incrementing a counter.
    let program = mutex_client(&TtasLock::default(), 2, 1);
    let result = explore(&program, &AmcConfig::default());
    println!("TTAS lock, correct barriers:  {}", result.verdict);
    println!("  explored: {}", result.stats);

    // 2. The same lock with a relaxed exchange loses mutual exclusion.
    let broken = TtasLock { xchg_mode: Mode::Rlx, ..TtasLock::default() };
    let result = explore(&mutex_client(&broken, 2, 1), &AmcConfig::default());
    println!("\nTTAS lock, relaxed xchg:      {}", result.verdict);
    if let Verdict::Safety(ce) = &result.verdict {
        println!("counterexample execution:\n{}", ce.graph.render());
    }

    // 3. Write your own program with the builder: message passing with a
    //    polling await, then push-button optimize it from all-SC.
    let mut pb = ProgramBuilder::new("message-passing");
    pb.thread(|t| {
        t.store(0x10, 42u64, ("data.store", Mode::Sc));
        t.store(0x20, 1u64, ("flag.store", Mode::Sc));
    });
    pb.thread(|t| {
        t.await_eq(Reg(0), 0x20, 1u64, ("flag.poll", Mode::Sc));
        t.load(Reg(1), 0x10, ("data.load", Mode::Sc));
        t.assert_eq(Reg(1), 42u64, "message received intact");
    });
    pb.final_check(0x10, Test::eq(42u64), "data still in place");
    let program = pb.build().expect("well-formed");

    let config = OptimizerConfig { amc: AmcConfig::with_model(ModelKind::Vmm), max_passes: 0 };
    let report = optimize(&program, &config);
    println!("\nOptimizer on all-SC message passing:");
    println!("  {} -> {}", report.before, report.after);
    print!("{}", report.render());
}
