//! A small tour of the performance evaluation substrate: run the paper's
//! Listing-1 microbenchmark (lock; counter++; unlock) for a few locks on
//! both simulated platforms and print seq-vs-opt speedups.
//!
//! The full sweeps live in the `vsync-bench` binaries
//! (`table2_records` ... `fig27_mcs_comparison`).
//!
//! ```sh
//! cargo run --release --example microbench
//! ```

use vsync::locks::runtime::table5_pairs;
use vsync::sim::{run_microbench, Arch, SimConfig, Workload};

fn main() {
    let wl = Workload::default();
    for arch in [Arch::ArmV8, Arch::X86_64] {
        println!("=== {} ({}) ===", arch.label(), arch.machine());
        println!("{:<14} {:>8} {:>12} {:>12} {:>9}", "lock", "threads", "seq ops/s", "opt ops/s", "speedup");
        for pair in table5_pairs(arch).iter().take(6) {
            for threads in [1usize, 8] {
                let run = |lock: &dyn vsync::sim::SimLock| {
                    let cfg = SimConfig { arch, threads, duration: 150_000, seed: 42, jitter_percent: 8 };
                    let (count, secs) = run_microbench(lock, &cfg, &wl);
                    count as f64 / secs
                };
                let seq = run(pair.seq.as_ref());
                let opt = run(pair.opt.as_ref());
                println!(
                    "{:<14} {:>8} {:>12.3e} {:>12.3e} {:>+9.3}",
                    pair.seq.name(),
                    threads,
                    seq,
                    opt,
                    opt / seq - 1.0
                );
            }
        }
        println!();
    }
    println!("(speedup = T_opt/T_seq - 1, the paper's Table 5 definition)");
}
