//! Study case §3.1: find the DPDK v20.05 MCS lock hang with AMC.
//!
//! Alice acquires the lock while Bob (the current owner) releases it. The
//! relaxed `prev->next = me` publication lets Bob's handover write land
//! mo-before Alice's own `locked = 1` initialization — Alice then awaits
//! `locked == 0` forever (paper Figs. 13/14). AMC reports the
//! await-termination violation with the finite witness graph; the fix
//! (release publication + acquire consumption) verifies.
//!
//! One cross-model `Session` covers all three models: the hang needs a
//! weak memory model, so VMM fails while TSO and SC verify.
//!
//! ```sh
//! cargo run --release --example dpdk_mcs_bug
//! ```

use vsync::core::{Session, Verdict};
use vsync::graph::to_dot;
use vsync::locks::model::dpdk_scenario;
use vsync::model::ModelKind;

fn main() {
    println!("=== DPDK rte_mcslock v20.05, scenario of Fig. 13 ===\n");
    let report = Session::new(dpdk_scenario(false))
        .models([ModelKind::Vmm, ModelKind::Tso, ModelKind::Sc])
        .run();
    for run in &report.models {
        println!("buggy lock under {}: {}", run.model, run.verdict);
        if let Verdict::AwaitTermination(ce) = &run.verdict {
            println!("\nwitness graph (cf. paper Fig. 14):\n{}", ce.graph.render());
            println!("Graphviz form written to stderr; render with `dot -Tsvg`.");
            eprintln!("{}", to_dot(&ce.graph));
        }
    }
    println!("\nThe hang needs a weak memory model: TSO and SC admit no such execution.");

    let report = Session::new(dpdk_scenario(true)).model(ModelKind::Vmm).run();
    let run = &report.models[0];
    println!("\nfixed lock under VMM: {}", run.verdict);
    println!("  ({} executions explored)", run.stats.complete_executions);
}
