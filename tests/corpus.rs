//! Corpus conformance: every annotated litmus file under `corpus/` must
//! produce exactly its expected verdict under every model, at both
//! sequential and parallel worker counts; templated files must actually
//! exercise the symmetry reduction; and every file must be in canonical
//! format (the `vsync fmt --check` CI job enforces the same locally).

use std::path::{Path, PathBuf};

use vsync::core::{
    collect_litmus_files, count_executions, run_corpus, AmcConfig, CorpusOptions, FileOutcome,
};
use vsync::model::ModelKind;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// The corpus floor: at least 20 files, each annotating every model.
#[test]
fn corpus_is_large_and_fully_annotated() {
    let files = collect_litmus_files(&corpus_dir()).expect("corpus dir exists");
    assert!(
        files.len() >= 20,
        "corpus shrank below the 20-file floor ({} files)",
        files.len()
    );
    for path in &files {
        let test = vsync::dsl::compile(&read(path))
            .unwrap_or_else(|d| panic!("{}: {d}", path.display()));
        for model in ModelKind::all() {
            assert!(
                test.expectations.iter().any(|e| e.model == model),
                "{}: missing `expect {}: ...` annotation",
                path.display(),
                model.to_string().to_ascii_lowercase()
            );
        }
    }
}

/// Every corpus file is a fixpoint of the canonical formatter.
#[test]
fn corpus_files_are_canonically_formatted() {
    for path in collect_litmus_files(&corpus_dir()).expect("corpus dir exists") {
        let src = read(&path);
        let formatted = vsync::dsl::format_source(&src)
            .unwrap_or_else(|d| panic!("{}: {d}", path.display()));
        assert_eq!(
            formatted,
            src,
            "{} is not canonically formatted (run `vsync fmt --write corpus`)",
            path.display()
        );
    }
}

/// All annotated verdicts (and execution counts) hold under every model
/// with workers {1, 8}; templated files report symmetry pruning.
#[test]
fn corpus_expectations_hold_across_models_and_workers() {
    let dir = corpus_dir();
    for workers in [1usize, 8] {
        let opts = CorpusOptions {
            models: Some(ModelKind::all().to_vec()),
            workers,
            jobs: 4,
            ..Default::default()
        };
        let report = run_corpus(&dir, &opts).expect("corpus dir readable");
        assert!(
            report.passed(),
            "corpus failed at workers={workers}:\n{}",
            report.render_table()
        );
        for file in &report.files {
            let FileOutcome::Checked(models) = &file.outcome else {
                panic!("{}: parse error in passing corpus", file.path);
            };
            assert_eq!(models.len(), ModelKind::all().len(), "{}", file.path);
            let test = vsync::dsl::compile(&read(Path::new(&file.path))).expect("compiles");
            if test.templated {
                // The reduction's guaranteed observable is the orbit
                // count collapsing below the naive per-twin count. A
                // non-canonical dedup miss (`symmetry_pruned`) is only a
                // side signal: the revisit engine probes far fewer graphs
                // than enumerate-and-dedup, so on a tiny file the handful
                // of twin misses can all land on canonical labelings and
                // be counted as plain duplicates.
                let pruned: u64 = models.iter().map(|m| m.symmetry_pruned).sum();
                let collapsed = models.iter().any(|m| {
                    let mut naive = AmcConfig::with_model(m.model);
                    naive.symmetry = false;
                    m.verdict.is_verified()
                        && count_executions(&test.program, &naive) > m.executions
                });
                assert!(
                    pruned > 0 || collapsed,
                    "{}: templated threads must exercise the symmetry reduction \
                     (workers={workers})",
                    file.path
                );
                assert!(
                    !test.program.symmetry_partition().is_trivial(),
                    "{}: templated file lost its declared symmetry class",
                    file.path
                );
            }
        }
    }
}

/// The corpus must cover the advertised scenario families: the classic
/// shapes, await/liveness cases and the study-case lock clients, with
/// all three failure modes (safety, await-termination) represented.
#[test]
fn corpus_covers_the_advertised_families() {
    let files = collect_litmus_files(&corpus_dir()).expect("corpus dir exists");
    let names: Vec<String> = files
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    for required in [
        "sb", "mp", "lb", "iriw", "corr", "r", "two_plus_two_w", "atomicity", // classic
        "handshake", "lost_signal", "await_mask", // liveness
        "dpdk_unlock", "huawei_lost_update", "caslock_client", "ttas_client", // locks
    ] {
        assert!(names.iter().any(|n| n == required), "corpus lost {required}.litmus");
    }
    let mut kinds = std::collections::BTreeSet::new();
    for path in &files {
        let test = vsync::dsl::compile(&read(path)).expect("compiles");
        for e in &test.expectations {
            kinds.insert(e.verdict.name());
        }
    }
    for kind in ["verified", "safety", "await-termination"] {
        assert!(kinds.contains(kind), "no corpus file expects a {kind} verdict");
    }
}
