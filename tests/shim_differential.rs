//! Differential suite: every shim spinlock, recorded from real Rust
//! code, must be indistinguishable from its hand-built registry twin —
//! identical verdicts and canonical-orbit counts across worker counts,
//! the whole model matrix, and symmetry on/off — and the optimizer must
//! land on the same barrier assignment, reported against the annotated
//! source sites.

use std::time::Duration;

use vsync::core::{OptimizerConfig, Session};
use vsync::locks::registry;
use vsync::model::ModelKind;
use vsync::shim::locks::{mutex_client, CasSpinlock, ShimLock, TasSpinlock, TicketSpinlock};
use vsync::shim::SessionExt as _;

const DEADLINE: Duration = Duration::from_secs(120);

/// Shim recording vs registry twin over the full configuration matrix:
/// workers x models x symmetry.
fn assert_twin<L: ShimLock>(threads: usize, acquires: usize) {
    let rec = mutex_client::<L>(threads, acquires).expect("recording succeeds");
    assert!(!rec.symmetry_fallback, "{}: template unification failed", L::REGISTRY_TWIN);
    let twin = registry::entry(L::REGISTRY_TWIN).expect("twin registered");

    for workers in [1usize, 2, 8] {
        for symmetry in [true, false] {
            let shim_report = Session::from_shim(&rec)
                .models(ModelKind::all())
                .workers(workers)
                .symmetry(symmetry)
                .deadline(DEADLINE)
                .run();
            let twin_report = Session::new(twin.client(threads, acquires))
                .models(ModelKind::all())
                .workers(workers)
                .symmetry(symmetry)
                .deadline(DEADLINE)
                .run();
            assert_eq!(shim_report.models.len(), twin_report.models.len());
            for (s, t) in shim_report.models.iter().zip(&twin_report.models) {
                let ctx = format!(
                    "{} {}t/{}a, {} workers, symmetry={symmetry}, {}",
                    L::REGISTRY_TWIN, threads, acquires, workers, s.model
                );
                assert_eq!(s.verdict.to_string(), t.verdict.to_string(), "verdict: {ctx}");
                assert_eq!(
                    s.stats.complete_executions, t.stats.complete_executions,
                    "canonical orbit count: {ctx}"
                );
            }
        }
    }
}

#[test]
fn tas_matches_its_registry_twin() {
    assert_twin::<TasSpinlock>(2, 1);
}

#[test]
fn tas_three_threads_matches_its_registry_twin() {
    assert_twin::<TasSpinlock>(3, 1);
}

#[test]
fn cas_matches_its_registry_twin() {
    assert_twin::<CasSpinlock>(2, 1);
}

#[test]
fn ticket_matches_its_registry_twin() {
    assert_twin::<TicketSpinlock>(2, 1);
}

#[test]
fn ticket_repeated_acquires_match_the_registry_twin() {
    assert_twin::<TicketSpinlock>(2, 2);
}

/// The optimizer relaxes exactly the annotated source sites, and lands on
/// the same per-site modes as on the hand-built twin.
fn assert_optimizer_maps_back<L: ShimLock>() {
    let rec = mutex_client::<L>(2, 1).expect("recording succeeds");

    // The program's relaxable site table is exactly the annotated sites.
    let p = rec.program();
    let mut relaxable: Vec<&str> =
        p.relaxable_sites().iter().map(|&s| p.sites()[s as usize].name.as_str()).collect();
    relaxable.sort_unstable();
    relaxable.dedup();
    assert_eq!(relaxable, rec.annotated_sites());

    let optimized = |session: Session| -> Vec<(String, String)> {
        let report = session
            .model(ModelKind::Vmm)
            .deadline(DEADLINE)
            .optimize(OptimizerConfig::default())
            .run();
        let opt = report.models[0].optimization.as_ref().expect("verified, so optimized");
        assert!(opt.verified);
        let mut modes: Vec<(String, String)> = opt
            .program
            .sites()
            .iter()
            .filter(|s| s.relaxable)
            .map(|s| (s.name.clone(), s.mode.to_string()))
            .collect();
        modes.sort();
        modes.dedup();
        modes
    };

    let shim_modes = optimized(Session::from_shim(&rec));
    let twin =
        registry::entry(L::REGISTRY_TWIN).expect("twin registered").client(2, 1);
    let twin_modes = optimized(Session::new(twin));
    assert_eq!(shim_modes, twin_modes, "{}: optimized assignments diverge", L::REGISTRY_TWIN);

    // Map-back: each optimized mode is keyed by an annotated source site.
    for (name, _) in &shim_modes {
        assert!(
            rec.annotated_sites().contains(name),
            "optimized site {name} does not map back to an annotation"
        );
    }
}

#[test]
fn tas_optimizer_maps_back_to_annotated_sites() {
    assert_optimizer_maps_back::<TasSpinlock>();
}

#[test]
fn ticket_optimizer_maps_back_to_annotated_sites() {
    assert_optimizer_maps_back::<TicketSpinlock>();
}

#[test]
fn cas_optimizer_maps_back_to_annotated_sites() {
    assert_optimizer_maps_back::<CasSpinlock>();
}
