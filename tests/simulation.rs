//! Integration tests of the evaluation pipeline: sweep → grouping →
//! stability → speedups, checking the *shapes* the paper reports
//! (§4.2.2) at reduced scale.

use vsync::locks::runtime::{table5_pairs, McsProfile, McsSim};
use vsync::sim::{
    group_records, run_microbench, run_repetitions, speedups, stability_bands,
    summarize_speedups, Arch, SimConfig, SimLock, Variant, Workload,
};

const DURATION: u64 = 80_000;

fn pair_by_name(arch: Arch, name: &str) -> vsync::sim::LockPair {
    table5_pairs(arch)
        .into_iter()
        .find(|p| p.seq.name() == name)
        .unwrap_or_else(|| panic!("lock {name} not in catalog"))
}

fn median_throughput(lock: &dyn SimLock, arch: Arch, threads: usize) -> f64 {
    let recs =
        run_repetitions(lock, Variant::Opt, arch, threads, DURATION, &Workload::default(), 3);
    let mut tps: Vec<f64> = recs.iter().map(|r| r.throughput).collect();
    tps.sort_by(f64::total_cmp);
    tps[tps.len() / 2]
}

/// Table 5's x86 headline: large single-thread speedups for spinlocks.
#[test]
fn x86_single_thread_speedups_are_large() {
    for name in ["spin", "ticket", "clh"] {
        let pair = pair_by_name(Arch::X86_64, name);
        let seq = median_throughput(pair.seq.as_ref(), Arch::X86_64, 1);
        let opt = median_throughput(pair.opt.as_ref(), Arch::X86_64, 1);
        // Note: run_repetitions derives seeds from variant; compare medians.
        let recs_seq = run_repetitions(
            pair.seq.as_ref(),
            Variant::Seq,
            Arch::X86_64,
            1,
            DURATION,
            &Workload::default(),
            3,
        );
        let seq = recs_seq.iter().map(|r| r.throughput).fold(f64::MAX, f64::min).min(seq);
        let speedup = opt / seq - 1.0;
        assert!(speedup > 1.0, "{name}: x86 1-thread speedup only {speedup:.2}");
    }
}

/// The futex/RMW-bound locks show near-zero speedup (musl row of Table 5).
#[test]
fn futex_locks_show_no_speedup() {
    for name in ["musl", "mutex", "semaphore"] {
        let pair = pair_by_name(Arch::X86_64, name);
        let seq = median_throughput(pair.seq.as_ref(), Arch::X86_64, 1);
        let opt = median_throughput(pair.opt.as_ref(), Arch::X86_64, 1);
        let speedup = (opt / seq - 1.0).abs();
        assert!(speedup < 0.35, "{name}: unexpected speedup {speedup:.2}");
    }
}

/// ARM speedups are moderate: barrier relaxation saves less because
/// acquire/SC loads both compile to ldar (§4.2.2 / DESIGN.md §5).
#[test]
fn arm_speedups_are_moderate() {
    let pair = pair_by_name(Arch::ArmV8, "mcs");
    let seq = median_throughput(pair.seq.as_ref(), Arch::ArmV8, 1);
    let opt = median_throughput(pair.opt.as_ref(), Arch::ArmV8, 1);
    let speedup = opt / seq - 1.0;
    assert!(speedup > 0.02, "some gain expected, got {speedup:.3}");
    assert!(speedup < 2.0, "ARM gains should be far below x86's, got {speedup:.3}");
}

/// Contention flattens the gain: the 16-thread speedup is below the
/// 1-thread speedup (the "most speedups are close to 0" mass of Fig. 24).
#[test]
fn contention_shrinks_speedups() {
    let speedup_at = |threads: usize| {
        let pair = pair_by_name(Arch::X86_64, "ticket");
        let run = |lock: &dyn SimLock, v: Variant| {
            let recs = run_repetitions(lock, v, Arch::X86_64, threads, DURATION, &Workload::default(), 3);
            let mut tps: Vec<f64> = recs.iter().map(|r| r.throughput).collect();
            tps.sort_by(f64::total_cmp);
            tps[tps.len() / 2]
        };
        run(pair.opt.as_ref(), Variant::Opt) / run(pair.seq.as_ref(), Variant::Seq) - 1.0
    };
    let low = speedup_at(1);
    let high = speedup_at(16);
    assert!(low > high, "1t {low:.3} should exceed 16t {high:.3}");
}

/// Throughput decreases with contention for a spinlock (the qualitative
/// shape of the per-thread panels in Fig. 27).
#[test]
fn throughput_decays_with_contention() {
    let lock = McsSim::new(McsProfile::own());
    let t1 = median_throughput(&lock, Arch::ArmV8, 1);
    let t8 = median_throughput(&lock, Arch::ArmV8, 8);
    let t31 = median_throughput(&lock, Arch::ArmV8, 31);
    assert!(t1 > t8, "1t {t1:.3e} vs 8t {t8:.3e}");
    assert!(t8 > t31, "8t {t8:.3e} vs 31t {t31:.3e}");
}

/// Most groups are stable (Table 4 reports ~85 % below 1.1), and the
/// pipeline produces speedup summaries for every lock in the sweep.
#[test]
fn stability_and_speedup_pipeline() {
    let pairs: Vec<vsync::sim::LockPair> = ["mcs", "spin", "ticket"]
        .iter()
        .map(|n| pair_by_name(Arch::X86_64, n))
        .collect();
    let mut records = Vec::new();
    for pair in &pairs {
        for threads in [1usize, 4] {
            for (variant, lock) in
                [(Variant::Seq, pair.seq.as_ref()), (Variant::Opt, pair.opt.as_ref())]
            {
                records.extend(run_repetitions(
                    lock,
                    variant,
                    Arch::X86_64,
                    threads,
                    DURATION,
                    &Workload::default(),
                    4,
                ));
            }
        }
    }
    let groups = group_records(&records);
    assert_eq!(groups.len(), 3 * 2 * 2);
    let bands = stability_bands(&groups);
    assert!(
        bands.le_1_1 * 2 > bands.total,
        "most groups should be stable: {bands:?}"
    );
    let samples = speedups(&groups);
    assert!(!samples.is_empty());
    let rows = summarize_speedups(&samples);
    assert_eq!(rows.len(), 3, "one summary row per lock");
    for r in &rows {
        assert!(r.max >= r.mean && r.mean >= r.min, "{r:?}");
    }
}

/// §4.2.2's workload findings: es_size does not matter, cs_size does.
#[test]
fn workload_knobs_behave_like_the_paper() {
    let lock = McsSim::new(McsProfile::own());
    let run = |wl: Workload| {
        let cfg = SimConfig { arch: Arch::X86_64, threads: 2, duration: DURATION, seed: 9, jitter_percent: 0 };
        run_microbench(&lock, &cfg, &wl).0 as f64
    };
    let base = run(Workload { cs_size: 1, es_size: 0 });
    let with_es = run(Workload { cs_size: 1, es_size: 4 });
    let with_cs = run(Workload { cs_size: 6, es_size: 0 });
    // es work reduces counts (threads do other things) but moderately;
    // cs work slows every critical section substantially.
    assert!(with_cs < base * 0.7, "bigger CS must cut throughput: {with_cs} vs {base}");
    assert!(with_es < base, "es work takes time too");
    assert!(with_es > with_cs, "es impact should be milder than cs impact");
}

/// Simulation determinism: identical configs yield identical records.
#[test]
fn sweep_is_deterministic() {
    let pair = pair_by_name(Arch::ArmV8, "ttas");
    let a = run_repetitions(pair.opt.as_ref(), Variant::Opt, Arch::ArmV8, 4, DURATION, &Workload::default(), 2);
    let b = run_repetitions(pair.opt.as_ref(), Variant::Opt, Arch::ArmV8, 4, DURATION, &Workload::default(), 2);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.count, y.count);
        assert_eq!(x.throughput, y.throughput);
    }
}
