//! Property-based tests (proptest) over the whole stack: random small
//! concurrent programs and random barrier assignments must respect the
//! meta-level laws of the theory — model strength ordering, dedup
//! transparency, scheduler irrelevance, monotonicity of barriers, and
//! graph encoding stability.

use proptest::prelude::*;

use vsync::core::{explore, AmcConfig, Verdict};
use vsync::graph::{content_hash, Mode};
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::model::ModelKind;

const LOCS: [u64; 2] = [0x10, 0x20];

/// One random instruction for a generated straight-line thread.
#[derive(Debug, Clone)]
enum Op {
    Load(usize),
    Store(usize, u8),
    FetchAdd(usize, u8),
    Cas(usize, u8, u8),
    Fence,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..LOCS.len()).prop_map(Op::Load),
        ((0..LOCS.len()), 0u8..3).prop_map(|(l, v)| Op::Store(l, v)),
        ((0..LOCS.len()), 1u8..3).prop_map(|(l, v)| Op::FetchAdd(l, v)),
        ((0..LOCS.len()), 0u8..2, 1u8..3).prop_map(|(l, e, n)| Op::Cas(l, e, n)),
        Just(Op::Fence),
    ]
}

fn mode_strategy() -> impl Strategy<Value = Mode> {
    prop_oneof![Just(Mode::Rlx), Just(Mode::Acq), Just(Mode::Rel), Just(Mode::AcqRel), Just(Mode::Sc)]
}

/// Build a program from per-thread op lists (modes picked per op kind).
fn build_program(threads: &[Vec<(Op, Mode)>]) -> Program {
    let mut pb = ProgramBuilder::new("random");
    for ops in threads {
        let ops = ops.clone();
        pb.thread(move |t| {
            for (i, (op, mode)) in ops.iter().enumerate() {
                let r = Reg((i % 8) as u8);
                match op {
                    Op::Load(l) => {
                        let m = match mode {
                            Mode::Rel | Mode::AcqRel => Mode::Acq,
                            m => *m,
                        };
                        t.load(r, LOCS[*l], m);
                    }
                    Op::Store(l, v) => {
                        let m = match mode {
                            Mode::Acq | Mode::AcqRel => Mode::Rel,
                            m => *m,
                        };
                        t.store(LOCS[*l], *v as u64, m);
                    }
                    Op::FetchAdd(l, v) => {
                        t.fetch_add(r, LOCS[*l], *v as u64, *mode);
                    }
                    Op::Cas(l, e, n) => {
                        t.cas(r, LOCS[*l], *e as u64, *n as u64, *mode);
                    }
                    Op::Fence => {
                        t.fence(*mode);
                    }
                }
            }
        });
    }
    pb.build().expect("generated program is well-formed")
}

fn thread_strategy(max_ops: usize) -> impl Strategy<Value = Vec<(Op, Mode)>> {
    prop::collection::vec((op_strategy(), mode_strategy()), 1..=max_ops)
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<(Op, Mode)>>> {
    prop::collection::vec(thread_strategy(3), 2..=3)
}

fn executions(p: &Program, model: ModelKind, dedup: bool) -> u64 {
    let mut cfg = AmcConfig::with_model(model);
    cfg.dedup = dedup;
    let r = explore(p, &cfg);
    match r.verdict {
        Verdict::Verified => r.stats.complete_executions,
        v => panic!("random program without asserts cannot fail: {v}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Model strength: every SC execution is TSO-consistent, every TSO
    /// execution is VMM-consistent — counts must be monotone.
    #[test]
    fn model_strength_ordering(threads in program_strategy()) {
        let p = build_program(&threads);
        let sc = executions(&p, ModelKind::Sc, true);
        let tso = executions(&p, ModelKind::Tso, true);
        let vmm = executions(&p, ModelKind::Vmm, true);
        prop_assert!(sc >= 1, "at least one interleaving exists");
        prop_assert!(sc <= tso, "SC ⊆ TSO violated: {sc} > {tso}");
        prop_assert!(tso <= vmm, "TSO ⊆ VMM violated: {tso} > {vmm}");
    }

    /// Deduplication is an optimization, not a semantics change: the set of
    /// complete executions (counted via distinct content hashes) is stable.
    #[test]
    fn dedup_preserves_execution_sets(threads in prop::collection::vec(thread_strategy(2), 2..=2)) {
        let p = build_program(&threads);
        let mut with = AmcConfig::with_model(ModelKind::Vmm).collecting();
        with.dedup = true;
        let mut without = with.clone();
        without.dedup = false;
        let a = explore(&p, &with);
        let b = explore(&p, &without);
        let ha: std::collections::BTreeSet<u128> =
            a.executions.iter().map(content_hash).collect();
        let hb: std::collections::BTreeSet<u128> =
            b.executions.iter().map(content_hash).collect();
        prop_assert_eq!(&ha, &hb, "dedup changed the execution set");
        prop_assert_eq!(ha.len() as u64, a.stats.complete_executions,
            "duplicate complete executions explored with dedup on");
    }

    /// Strengthening all barriers never *adds* behaviours: the all-SC
    /// variant has at most as many executions as the original.
    #[test]
    fn strengthening_shrinks_behaviours(threads in program_strategy()) {
        let p = build_program(&threads);
        let strong = p.with_all_sc();
        let weak_count = executions(&p, ModelKind::Vmm, true);
        let strong_count = executions(&strong, ModelKind::Vmm, true);
        prop_assert!(strong_count <= weak_count,
            "all-SC gained executions: {strong_count} > {weak_count}");
        prop_assert!(strong_count >= 1);
    }

    /// Every collected execution is consistent with the model and has no
    /// pending reads, and final states agree with some SC execution when
    /// the program is all-SC.
    #[test]
    fn collected_executions_are_wellformed(threads in prop::collection::vec(thread_strategy(2), 2..=2)) {
        use vsync::model::MemoryModel;
        let p = build_program(&threads);
        let r = explore(&p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
        for g in &r.executions {
            prop_assert_eq!(g.pending_reads().count(), 0);
            prop_assert!(vsync::model::Vmm.is_consistent(g));
            // Replay agrees: all threads finished.
            let mut g2 = g.clone();
            let out = vsync::lang::replay(&p, &mut g2);
            prop_assert!(out.threads.iter().all(|t| matches!(t, vsync::lang::ThreadStatus::Finished)));
            prop_assert!(!out.wasteful);
        }
    }

    /// Graph content hashing is injective on the executions we see (no
    /// collisions among distinct canonical encodings).
    #[test]
    fn content_hash_no_observed_collisions(threads in prop::collection::vec(thread_strategy(2), 2..=2)) {
        let p = build_program(&threads);
        let r = explore(&p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
        let mut seen: std::collections::HashMap<u128, Vec<u8>> = std::collections::HashMap::new();
        for g in &r.executions {
            let bytes = vsync::graph::canonical_bytes(g);
            let h = content_hash(g);
            if let Some(prev) = seen.insert(h, bytes.clone()) {
                prop_assert_eq!(prev, bytes, "hash collision between distinct graphs");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The TTAS lock stays correct under arbitrary *strengthening* of its
    /// three sites (monotonicity of verification in barrier strength).
    #[test]
    fn ttas_verifies_under_all_stronger_modes(
        await_extra in 0usize..3,
        xchg_extra in 0usize..3,
        rel_extra in 0usize..2,
    ) {
        use vsync::locks::model::{mutex_client, TtasLock};
        let awaits = [Mode::Rlx, Mode::Acq, Mode::Sc];
        let xchgs = [Mode::Acq, Mode::AcqRel, Mode::Sc];
        let rels = [Mode::Rel, Mode::Sc];
        let lock = TtasLock {
            await_mode: awaits[await_extra],
            xchg_mode: xchgs[xchg_extra],
            release_mode: rels[rel_extra],
        };
        let v = vsync::core::verify(&mutex_client(&lock, 2, 1), &AmcConfig::with_model(ModelKind::Vmm));
        prop_assert!(v.is_verified(), "{:?}: {v}", lock);
    }
}
