//! Randomized property tests over the whole stack: random small concurrent
//! programs and random barrier assignments must respect the meta-level laws
//! of the theory — model strength ordering, dedup transparency,
//! monotonicity of barriers, and graph encoding stability.
//!
//! The build environment has no network access, so instead of proptest we
//! use a deterministic SplitMix64-driven generator; every case is
//! reproducible from the printed seed.

use vsync::core::{explore, AmcConfig, Verdict};
use vsync::graph::{content_hash, Mode};
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::model::ModelKind;

const LOCS: [u64; 2] = [0x10, 0x20];

/// SplitMix64: tiny, deterministic, good-enough mixing for test generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One random instruction for a generated straight-line thread.
#[derive(Debug, Clone)]
enum Op {
    Load(usize),
    Store(usize, u8),
    FetchAdd(usize, u8),
    Cas(usize, u8, u8),
    Fence,
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(5) {
        0 => Op::Load(rng.below(LOCS.len() as u64) as usize),
        1 => Op::Store(rng.below(LOCS.len() as u64) as usize, rng.below(3) as u8),
        2 => Op::FetchAdd(rng.below(LOCS.len() as u64) as usize, 1 + rng.below(2) as u8),
        3 => Op::Cas(rng.below(LOCS.len() as u64) as usize, rng.below(2) as u8, 1 + rng.below(2) as u8),
        _ => Op::Fence,
    }
}

fn random_mode(rng: &mut Rng) -> Mode {
    [Mode::Rlx, Mode::Acq, Mode::Rel, Mode::AcqRel, Mode::Sc][rng.below(5) as usize]
}

fn random_threads(rng: &mut Rng, n_threads: (u64, u64), max_ops: u64) -> Vec<Vec<(Op, Mode)>> {
    let n = n_threads.0 + rng.below(n_threads.1 - n_threads.0 + 1);
    (0..n)
        .map(|_| {
            let len = 1 + rng.below(max_ops);
            (0..len).map(|_| (random_op(rng), random_mode(rng))).collect()
        })
        .collect()
}

/// Build a program from per-thread op lists (modes picked per op kind).
fn build_program(threads: &[Vec<(Op, Mode)>]) -> Program {
    let mut pb = ProgramBuilder::new("random");
    for ops in threads {
        let ops = ops.clone();
        pb.thread(move |t| {
            for (i, (op, mode)) in ops.iter().enumerate() {
                let r = Reg((i % 8) as u8);
                match op {
                    Op::Load(l) => {
                        let m = match mode {
                            Mode::Rel | Mode::AcqRel => Mode::Acq,
                            m => *m,
                        };
                        t.load(r, LOCS[*l], m);
                    }
                    Op::Store(l, v) => {
                        let m = match mode {
                            Mode::Acq | Mode::AcqRel => Mode::Rel,
                            m => *m,
                        };
                        t.store(LOCS[*l], *v as u64, m);
                    }
                    Op::FetchAdd(l, v) => {
                        t.fetch_add(r, LOCS[*l], *v as u64, *mode);
                    }
                    Op::Cas(l, e, n) => {
                        t.cas(r, LOCS[*l], *e as u64, *n as u64, *mode);
                    }
                    Op::Fence => {
                        t.fence(*mode);
                    }
                }
            }
        });
    }
    pb.build().expect("generated program is well-formed")
}

fn executions(p: &Program, model: ModelKind, dedup: bool) -> u64 {
    let mut cfg = AmcConfig::with_model(model);
    cfg.dedup = dedup;
    let r = explore(p, &cfg);
    match r.verdict {
        Verdict::Verified => r.stats.complete_executions,
        v => panic!("random program without asserts cannot fail: {v}"),
    }
}

/// Run `check` on `cases` random programs, reporting the failing seed.
fn for_random_programs(
    test_name: &str,
    cases: u64,
    n_threads: (u64, u64),
    max_ops: u64,
    mut check: impl FnMut(&Program),
) {
    for seed in 0..cases {
        let mut rng = Rng(seed.wrapping_mul(0x5851f42d4c957f2d).wrapping_add(0x14057b7ef767814f));
        let p = build_program(&random_threads(&mut rng, n_threads, max_ops));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&p)));
        if let Err(e) = r {
            eprintln!("{test_name}: failing case at seed {seed}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Model strength: every SC execution is TSO-consistent, every TSO
/// execution is VMM-consistent — counts must be monotone.
#[test]
fn model_strength_ordering() {
    for_random_programs("model_strength_ordering", 48, (2, 3), 3, |p| {
        let sc = executions(p, ModelKind::Sc, true);
        let tso = executions(p, ModelKind::Tso, true);
        let vmm = executions(p, ModelKind::Vmm, true);
        assert!(sc >= 1, "at least one interleaving exists");
        assert!(sc <= tso, "SC ⊆ TSO violated: {sc} > {tso}");
        assert!(tso <= vmm, "TSO ⊆ VMM violated: {tso} > {vmm}");
    });
}

/// Deduplication is an optimization, not a semantics change: the set of
/// complete executions (counted via distinct content hashes) is stable.
/// Symmetry is disabled here — it deliberately quotients the set (see
/// `symmetry_explores_one_representative_per_orbit`).
#[test]
fn dedup_preserves_execution_sets() {
    for_random_programs("dedup_preserves_execution_sets", 48, (2, 2), 2, |p| {
        let mut with = AmcConfig::with_model(ModelKind::Vmm).collecting().without_symmetry();
        with.dedup = true;
        let mut without = with.clone();
        without.dedup = false;
        let a = explore(p, &with);
        let b = explore(p, &without);
        let ha: std::collections::BTreeSet<u128> =
            a.executions.iter().map(content_hash).collect();
        let hb: std::collections::BTreeSet<u128> =
            b.executions.iter().map(content_hash).collect();
        assert_eq!(&ha, &hb, "dedup changed the execution set");
        assert_eq!(
            ha.len() as u64,
            a.stats.complete_executions,
            "duplicate complete executions explored with dedup on"
        );
    });
}

/// Thread-symmetry reduction explores exactly one representative per
/// orbit: the canonical-hash-modulo set of the symmetry-on run equals the
/// quotient of the full (symmetry-off) execution set, and every collected
/// representative is its own canonical form.
#[test]
fn symmetry_explores_one_representative_per_orbit() {
    for_random_programs("symmetry_explores_one_representative_per_orbit", 48, (2, 2), 2, |p| {
        let partition = p.symmetry_partition();
        let on = explore(p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
        let off = explore(
            p,
            &AmcConfig::with_model(ModelKind::Vmm).collecting().without_symmetry(),
        );
        let canon = |g: &vsync::graph::ExecutionGraph| {
            vsync::graph::canonical_hash_modulo(g, &partition)
        };
        let orbits_on: std::collections::BTreeSet<u128> = on.executions.iter().map(canon).collect();
        let orbits_off: std::collections::BTreeSet<u128> =
            off.executions.iter().map(canon).collect();
        assert_eq!(orbits_on, orbits_off, "symmetry lost (or invented) an orbit");
        assert_eq!(
            on.stats.complete_executions,
            orbits_off.len() as u64,
            "per-orbit count must equal the number of orbits of the full set"
        );
        assert!(on.stats.popped <= off.stats.popped, "symmetry may never explore more");
    });
}

/// Strengthening all barriers never *adds* behaviours: the all-SC variant
/// has at most as many executions as the original.
#[test]
fn strengthening_shrinks_behaviours() {
    for_random_programs("strengthening_shrinks_behaviours", 48, (2, 3), 3, |p| {
        let strong = p.with_all_sc();
        let weak_count = executions(p, ModelKind::Vmm, true);
        let strong_count = executions(&strong, ModelKind::Vmm, true);
        assert!(
            strong_count <= weak_count,
            "all-SC gained executions: {strong_count} > {weak_count}"
        );
        assert!(strong_count >= 1);
    });
}

/// Every collected execution is consistent with the model and has no
/// pending reads, and replay agrees that all threads finished.
#[test]
fn collected_executions_are_wellformed() {
    use vsync::model::MemoryModel;
    for_random_programs("collected_executions_are_wellformed", 24, (2, 2), 2, |p| {
        let r = explore(p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
        for g in &r.executions {
            assert_eq!(g.pending_reads().count(), 0);
            assert!(vsync::model::Vmm.is_consistent(g));
            // Replay agrees: all threads finished.
            let mut g2 = g.clone();
            let out = vsync::lang::replay(p, &mut g2);
            assert!(out
                .threads
                .iter()
                .all(|t| matches!(t, vsync::lang::ThreadStatus::Finished)));
            assert!(!out.wasteful);
        }
    });
}

/// Graph content hashing is injective on the executions we see (no
/// collisions among distinct canonical encodings).
#[test]
fn content_hash_no_observed_collisions() {
    for_random_programs("content_hash_no_observed_collisions", 24, (2, 2), 2, |p| {
        let r = explore(p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
        let mut seen: std::collections::HashMap<u128, Vec<u8>> = std::collections::HashMap::new();
        for g in &r.executions {
            let bytes = vsync::graph::canonical_bytes(g);
            let h = content_hash(g);
            if let Some(prev) = seen.insert(h, bytes.clone()) {
                assert_eq!(prev, bytes, "hash collision between distinct graphs");
            }
        }
    });
}

/// The TTAS lock stays correct under arbitrary *strengthening* of its
/// three sites (monotonicity of verification in barrier strength).
#[test]
fn ttas_verifies_under_all_stronger_modes() {
    use vsync::locks::model::{mutex_client, TtasLock};
    let awaits = [Mode::Rlx, Mode::Acq, Mode::Sc];
    let xchgs = [Mode::Acq, Mode::AcqRel, Mode::Sc];
    let rels = [Mode::Rel, Mode::Sc];
    for &await_mode in &awaits {
        for &xchg_mode in &xchgs {
            for &release_mode in &rels {
                let lock = TtasLock { await_mode, xchg_mode, release_mode };
                let v = vsync::core::verify(
                    &mutex_client(&lock, 2, 1),
                    &AmcConfig::with_model(ModelKind::Vmm),
                );
                assert!(v.is_verified(), "{lock:?}: {v}");
            }
        }
    }
}
