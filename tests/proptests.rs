//! Randomized property tests over the whole stack: random small concurrent
//! programs and random barrier assignments must respect the meta-level laws
//! of the theory — model strength ordering, dedup transparency,
//! monotonicity of barriers, and graph encoding stability.
//!
//! The build environment has no network access, so instead of proptest we
//! use a deterministic SplitMix64-driven generator; every case is
//! reproducible from the printed seed.

use vsync::core::{explore, AmcConfig, Verdict};
use vsync::graph::{content_hash, Mode};
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::model::ModelKind;

const LOCS: [u64; 2] = [0x10, 0x20];

/// SplitMix64: tiny, deterministic, good-enough mixing for test generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One random instruction for a generated straight-line thread.
#[derive(Debug, Clone)]
enum Op {
    Load(usize),
    Store(usize, u8),
    FetchAdd(usize, u8),
    Cas(usize, u8, u8),
    Fence,
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(5) {
        0 => Op::Load(rng.below(LOCS.len() as u64) as usize),
        1 => Op::Store(rng.below(LOCS.len() as u64) as usize, rng.below(3) as u8),
        2 => Op::FetchAdd(rng.below(LOCS.len() as u64) as usize, 1 + rng.below(2) as u8),
        3 => Op::Cas(rng.below(LOCS.len() as u64) as usize, rng.below(2) as u8, 1 + rng.below(2) as u8),
        _ => Op::Fence,
    }
}

fn random_mode(rng: &mut Rng) -> Mode {
    [Mode::Rlx, Mode::Acq, Mode::Rel, Mode::AcqRel, Mode::Sc][rng.below(5) as usize]
}

fn random_threads(rng: &mut Rng, n_threads: (u64, u64), max_ops: u64) -> Vec<Vec<(Op, Mode)>> {
    let n = n_threads.0 + rng.below(n_threads.1 - n_threads.0 + 1);
    (0..n)
        .map(|_| {
            let len = 1 + rng.below(max_ops);
            (0..len).map(|_| (random_op(rng), random_mode(rng))).collect()
        })
        .collect()
}

/// Build a program from per-thread op lists (modes picked per op kind).
fn build_program(threads: &[Vec<(Op, Mode)>]) -> Program {
    let mut pb = ProgramBuilder::new("random");
    for ops in threads {
        let ops = ops.clone();
        pb.thread(move |t| {
            for (i, (op, mode)) in ops.iter().enumerate() {
                let r = Reg((i % 8) as u8);
                match op {
                    Op::Load(l) => {
                        let m = match mode {
                            Mode::Rel | Mode::AcqRel => Mode::Acq,
                            m => *m,
                        };
                        t.load(r, LOCS[*l], m);
                    }
                    Op::Store(l, v) => {
                        let m = match mode {
                            Mode::Acq | Mode::AcqRel => Mode::Rel,
                            m => *m,
                        };
                        t.store(LOCS[*l], *v as u64, m);
                    }
                    Op::FetchAdd(l, v) => {
                        t.fetch_add(r, LOCS[*l], *v as u64, *mode);
                    }
                    Op::Cas(l, e, n) => {
                        t.cas(r, LOCS[*l], *e as u64, *n as u64, *mode);
                    }
                    Op::Fence => {
                        t.fence(*mode);
                    }
                }
            }
        });
    }
    pb.build().expect("generated program is well-formed")
}

fn executions(p: &Program, model: ModelKind, dedup: bool) -> u64 {
    let mut cfg = AmcConfig::with_model(model);
    cfg.dedup = dedup;
    let r = explore(p, &cfg);
    match r.verdict {
        Verdict::Verified => r.stats.complete_executions,
        v => panic!("random program without asserts cannot fail: {v}"),
    }
}

/// Run `check` on `cases` random programs, reporting the failing seed.
fn for_random_programs(
    test_name: &str,
    cases: u64,
    n_threads: (u64, u64),
    max_ops: u64,
    mut check: impl FnMut(&Program),
) {
    for seed in 0..cases {
        let mut rng = Rng(seed.wrapping_mul(0x5851f42d4c957f2d).wrapping_add(0x14057b7ef767814f));
        let p = build_program(&random_threads(&mut rng, n_threads, max_ops));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&p)));
        if let Err(e) = r {
            eprintln!("{test_name}: failing case at seed {seed}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Model strength: every SC execution is TSO-consistent, every TSO
/// execution is VMM-consistent — counts must be monotone.
#[test]
fn model_strength_ordering() {
    for_random_programs("model_strength_ordering", 48, (2, 3), 3, |p| {
        let sc = executions(p, ModelKind::Sc, true);
        let tso = executions(p, ModelKind::Tso, true);
        let vmm = executions(p, ModelKind::Vmm, true);
        assert!(sc >= 1, "at least one interleaving exists");
        assert!(sc <= tso, "SC ⊆ TSO violated: {sc} > {tso}");
        assert!(tso <= vmm, "TSO ⊆ VMM violated: {tso} > {vmm}");
    });
}

/// Deduplication is an optimization, not a semantics change: the set of
/// complete executions (counted via distinct content hashes) is stable.
/// Symmetry is disabled here — it deliberately quotients the set (see
/// `symmetry_explores_one_representative_per_orbit`).
#[test]
fn dedup_preserves_execution_sets() {
    for_random_programs("dedup_preserves_execution_sets", 48, (2, 2), 2, |p| {
        let mut with = AmcConfig::with_model(ModelKind::Vmm).collecting().without_symmetry();
        with.dedup = true;
        let mut without = with.clone();
        without.dedup = false;
        let a = explore(p, &with);
        let b = explore(p, &without);
        let ha: std::collections::BTreeSet<u128> =
            a.executions.iter().map(content_hash).collect();
        let hb: std::collections::BTreeSet<u128> =
            b.executions.iter().map(content_hash).collect();
        assert_eq!(&ha, &hb, "dedup changed the execution set");
        assert_eq!(
            ha.len() as u64,
            a.stats.complete_executions,
            "duplicate complete executions explored with dedup on"
        );
    });
}

/// Thread-symmetry reduction explores exactly one representative per
/// orbit: the canonical-hash-modulo set of the symmetry-on run equals the
/// quotient of the full (symmetry-off) execution set, and every collected
/// representative is its own canonical form.
#[test]
fn symmetry_explores_one_representative_per_orbit() {
    for_random_programs("symmetry_explores_one_representative_per_orbit", 48, (2, 2), 2, |p| {
        let partition = p.symmetry_partition();
        let on = explore(p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
        let off = explore(
            p,
            &AmcConfig::with_model(ModelKind::Vmm).collecting().without_symmetry(),
        );
        let canon = |g: &vsync::graph::ExecutionGraph| {
            vsync::graph::canonical_hash_modulo(g, &partition)
        };
        let orbits_on: std::collections::BTreeSet<u128> = on.executions.iter().map(canon).collect();
        let orbits_off: std::collections::BTreeSet<u128> =
            off.executions.iter().map(canon).collect();
        assert_eq!(orbits_on, orbits_off, "symmetry lost (or invented) an orbit");
        assert_eq!(
            on.stats.complete_executions,
            orbits_off.len() as u64,
            "per-orbit count must equal the number of orbits of the full set"
        );
        assert!(on.stats.popped <= off.stats.popped, "symmetry may never explore more");
    });
}

/// Strengthening all barriers never *adds* behaviours: the all-SC variant
/// has at most as many executions as the original.
#[test]
fn strengthening_shrinks_behaviours() {
    for_random_programs("strengthening_shrinks_behaviours", 48, (2, 3), 3, |p| {
        let strong = p.with_all_sc();
        let weak_count = executions(p, ModelKind::Vmm, true);
        let strong_count = executions(&strong, ModelKind::Vmm, true);
        assert!(
            strong_count <= weak_count,
            "all-SC gained executions: {strong_count} > {weak_count}"
        );
        assert!(strong_count >= 1);
    });
}

/// Every collected execution is consistent with the model and has no
/// pending reads, and replay agrees that all threads finished.
#[test]
fn collected_executions_are_wellformed() {
    use vsync::model::MemoryModel;
    for_random_programs("collected_executions_are_wellformed", 24, (2, 2), 2, |p| {
        let r = explore(p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
        for g in &r.executions {
            assert_eq!(g.pending_reads().count(), 0);
            assert!(vsync::model::Vmm.is_consistent(g));
            // Replay agrees: all threads finished.
            let mut g2 = g.clone();
            let out = vsync::lang::replay(p, &mut g2);
            assert!(out
                .threads
                .iter()
                .all(|t| matches!(t, vsync::lang::ThreadStatus::Finished)));
            assert!(!out.wasteful);
        }
    });
}

/// Graph content hashing is injective on the executions we see (no
/// collisions among distinct canonical encodings).
#[test]
fn content_hash_no_observed_collisions() {
    for_random_programs("content_hash_no_observed_collisions", 24, (2, 2), 2, |p| {
        let r = explore(p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
        let mut seen: std::collections::HashMap<u128, Vec<u8>> = std::collections::HashMap::new();
        for g in &r.executions {
            let bytes = vsync::graph::canonical_bytes(g);
            let h = content_hash(g);
            if let Some(prev) = seen.insert(h, bytes.clone()) {
                assert_eq!(prev, bytes, "hash collision between distinct graphs");
            }
        }
    });
}

/// DSL round-trip support: a richer generator than [`random_threads`]
/// covering the *full* instruction surface — awaits (load/rmw/cas),
/// masked tests, register-indirect addresses, ALU ops, asserts with
/// hostile messages, forward/backward jumps, shared named sites, fixed
/// sites, init values and final checks — so `parse ∘ print` is exercised
/// on every printer path.
mod dsl_gen {
    use super::Rng;
    use vsync::graph::Mode;
    use vsync::lang::{Addr, AluOp, Fixed, Operand, Program, ProgramBuilder, Reg, RmwOp, Test, ThreadBuilder};

    fn mode_for_load(rng: &mut Rng) -> Mode {
        [Mode::Rlx, Mode::Acq, Mode::Sc][rng.below(3) as usize]
    }

    fn mode_for_store(rng: &mut Rng) -> Mode {
        [Mode::Rlx, Mode::Rel, Mode::Sc][rng.below(3) as usize]
    }

    fn mode_any(rng: &mut Rng) -> Mode {
        [Mode::Rlx, Mode::Acq, Mode::Rel, Mode::AcqRel, Mode::Sc][rng.below(5) as usize]
    }

    fn operand(rng: &mut Rng) -> Operand {
        if rng.below(2) == 0 {
            Operand::Reg(Reg(rng.below(32) as u8))
        } else {
            Operand::Imm(rng.below(4))
        }
    }

    fn addr(rng: &mut Rng) -> Addr {
        match rng.below(4) {
            0 => Addr::Imm(0x10 + 0x10 * rng.below(3)),
            1 => Addr::Imm(0x1000),
            2 => Addr::Reg(Reg(rng.below(32) as u8)),
            _ => Addr::RegOff(Reg(rng.below(32) as u8), 8 * rng.below(3)),
        }
    }

    fn test(rng: &mut Rng) -> Test {
        use vsync::lang::Cmp;
        let cmp = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge][rng.below(6) as usize];
        Test {
            mask: (rng.below(3) == 0).then(|| operand(rng)),
            cmp,
            rhs: operand(rng),
        }
    }

    /// Registers an await may read. `Program::validate` rejects awaits
    /// whose operands read never-written registers, so await-feeding
    /// operands draw only from this small pool, and every generated
    /// thread `mov`-initializes the whole pool up front.
    const AWAIT_POOL: u8 = 4;

    fn await_reg(rng: &mut Rng) -> Reg {
        Reg(rng.below(AWAIT_POOL as u64) as u8)
    }

    fn await_operand(rng: &mut Rng) -> Operand {
        if rng.below(2) == 0 {
            Operand::Reg(await_reg(rng))
        } else {
            Operand::Imm(rng.below(4))
        }
    }

    fn await_addr(rng: &mut Rng) -> Addr {
        match rng.below(4) {
            0 => Addr::Imm(0x10 + 0x10 * rng.below(3)),
            1 => Addr::Imm(0x1000),
            2 => Addr::Reg(await_reg(rng)),
            _ => Addr::RegOff(await_reg(rng), 8 * rng.below(3)),
        }
    }

    fn await_test(rng: &mut Rng) -> Test {
        use vsync::lang::Cmp;
        let cmp = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge][rng.below(6) as usize];
        Test {
            mask: (rng.below(3) == 0).then(|| await_operand(rng)),
            cmp,
            rhs: await_operand(rng),
        }
    }

    /// Final-state checks are evaluated against memory alone, so their
    /// operands must be immediates (`Program::validate` rejects registers).
    fn final_test(rng: &mut Rng) -> Test {
        use vsync::lang::Cmp;
        let cmp = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge][rng.below(6) as usize];
        Test {
            mask: (rng.below(3) == 0).then(|| Operand::Imm(1 + rng.below(3))),
            cmp,
            rhs: Operand::Imm(rng.below(4)),
        }
    }

    fn msg(rng: &mut Rng) -> &'static str {
        ["", "boom", "line\nbreak", "with \"quotes\" and \\slashes\\", "tab\there"]
            [rng.below(5) as usize]
    }

    /// Shared named sites: one per kind so every registration is
    /// consistent (same kind + mode), exercising cross-thread sharing.
    #[derive(Clone, Copy)]
    struct SitePool {
        load_mode: Mode,
        store_mode: Mode,
        rmw_mode: Mode,
        fence_mode: Mode,
    }

    fn emit_simple(t: &mut ThreadBuilder, rng: &mut Rng, pool: SitePool) {
        let dst = Reg(rng.below(32) as u8);
        match rng.below(12) {
            0 => {
                let (a, m) = (addr(rng), mode_for_load(rng));
                match rng.below(3) {
                    0 => t.load(dst, a, m),
                    1 => t.load(dst, a, ("pool.load", pool.load_mode)),
                    _ => t.load(dst, a, Fixed(m)),
                }
            }
            1 => {
                let (a, s, m) = (addr(rng), operand(rng), mode_for_store(rng));
                match rng.below(3) {
                    0 => t.store(a, s, m),
                    1 => t.store(a, s, ("pool.store", pool.store_mode)),
                    _ => t.store(a, s, Fixed(m)),
                }
            }
            2 => {
                let op = [RmwOp::Xchg, RmwOp::Add, RmwOp::Sub, RmwOp::Or, RmwOp::And, RmwOp::Xor]
                    [rng.below(6) as usize];
                let (a, o, m) = (addr(rng), operand(rng), mode_any(rng));
                match rng.below(3) {
                    0 => t.rmw(dst, a, op, o, m),
                    1 => t.rmw(dst, a, op, o, ("pool.rmw", pool.rmw_mode)),
                    _ => t.rmw(dst, a, op, o, Fixed(m)),
                }
            }
            3 => {
                t.cas(dst, addr(rng), operand(rng), operand(rng), mode_any(rng))
            }
            4 => match rng.below(2) {
                0 => t.fence(mode_any(rng)),
                _ => t.fence(("pool.fence", pool.fence_mode)),
            },
            5 => t.await_load(dst, await_addr(rng), await_test(rng), mode_for_load(rng)),
            6 => {
                let op = [RmwOp::Xchg, RmwOp::Add, RmwOp::Or][rng.below(3) as usize];
                t.await_rmw(dst, await_addr(rng), await_test(rng), op, await_operand(rng), mode_any(rng))
            }
            7 => t.await_cas(dst, await_addr(rng), await_operand(rng), await_operand(rng), mode_any(rng)),
            8 => t.mov(dst, operand(rng)),
            9 => {
                let op = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Shl, AluOp::Shr]
                    [rng.below(7) as usize];
                t.op(dst, op, operand(rng), operand(rng))
            }
            10 => t.assert(operand(rng), test(rng), msg(rng)),
            _ => t.nop(),
        };
    }

    fn emit_thread(t: &mut ThreadBuilder, rng: &mut Rng, pool: SitePool) {
        // Seed the await register pool so awaits always read written regs.
        for r in 0..AWAIT_POOL {
            t.mov(Reg(r), rng.below(4));
        }
        let segments = 1 + rng.below(4);
        for _ in 0..segments {
            match rng.below(4) {
                // A guarded forward block: jmp skip if ...; ops; skip:
                0 => {
                    let skip = t.label();
                    t.jmp_if(operand(rng), test(rng), skip);
                    for _ in 0..1 + rng.below(2) {
                        emit_simple(t, rng, pool);
                    }
                    t.bind(skip);
                }
                // A backward edge: top: ops; jmp top if ...
                1 => {
                    let top = t.here_label();
                    emit_simple(t, rng, pool);
                    t.jmp_if(operand(rng), test(rng), top);
                }
                // An unconditional skip (also covers jump-to-end).
                2 => {
                    let over = t.label();
                    t.jmp(over);
                    if rng.below(2) == 0 {
                        emit_simple(t, rng, pool);
                    }
                    t.bind(over);
                }
                _ => emit_simple(t, rng, pool),
            }
        }
    }

    /// A random program over the full surface. Names deliberately include
    /// characters that force quoted site names in the printed text.
    pub fn random_full_program(rng: &mut Rng) -> Program {
        let name = ["rt", "2+2w mix", "round-trip", "a\"b"][rng.below(4) as usize];
        let mut pb = ProgramBuilder::new(name);
        let pool = SitePool {
            load_mode: mode_for_load(rng),
            store_mode: mode_for_store(rng),
            rmw_mode: mode_any(rng),
            fence_mode: mode_any(rng),
        };
        for _ in 0..rng.below(3) {
            pb.init(0x10 + 0x10 * rng.below(3), rng.below(5));
        }
        let threads = 1 + rng.below(3);
        let template = rng.below(3) == 0;
        if template {
            // Identical bodies from one generation: a declared class.
            let body_seed = rng.next();
            for _ in 0..threads {
                let mut r = Rng(body_seed);
                pb.thread(|t| emit_thread(t, &mut r, pool));
            }
        } else {
            for _ in 0..threads {
                pb.thread(|t| emit_thread(t, rng, pool));
            }
        }
        for _ in 0..rng.below(3) {
            pb.final_check(0x10 + 0x10 * rng.below(3), final_test(rng), msg(rng));
        }
        pb.build().expect("generated program is well-formed")
    }
}

/// The DSL round-trip law (printer ∘ parser): pretty-printing any
/// program and re-parsing it reproduces the program *structurally* —
/// instructions, barrier sites (names, modes, kinds, relaxability),
/// init values, final checks and the declared symmetry partition all
/// survive (`Program` equality covers every field).
#[test]
fn dsl_print_parse_round_trip_full_surface() {
    for seed in 0..150u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(0xd1b54a32d192ed03));
        let p = dsl_gen::random_full_program(&mut rng);
        let text = vsync::dsl::print_program(&p);
        let reparsed = vsync::dsl::compile(&text)
            .unwrap_or_else(|d| panic!("seed {seed}: printed text does not parse:\n{d}\n{text}"))
            .program;
        assert_eq!(p, reparsed, "seed {seed}: round-trip changed the program:\n{text}");
    }
}

/// Round-trip over the *simple* generator too (the one the other
/// meta-laws use), plus expectation annotations through `print_test`,
/// and printer output is always canonically formatted (a fixpoint of
/// `vsync fmt`).
#[test]
fn dsl_round_trip_preserves_expectations_and_is_canonical() {
    use vsync::dsl::{ExpectedVerdict, Expectation};
    for_random_programs("dsl_round_trip_simple", 48, (2, 3), 3, |p| {
        let mut rng = Rng(p.thread_code(0).len() as u64);
        let verdicts = [
            ExpectedVerdict::Verified,
            ExpectedVerdict::Safety,
            ExpectedVerdict::AwaitTermination,
            ExpectedVerdict::Fault,
        ];
        let mut expectations: Vec<Expectation> = Vec::new();
        for model in ModelKind::all() {
            if rng.below(2) != 0 {
                continue;
            }
            let verdict = verdicts[rng.below(4) as usize];
            let executions = (verdict == ExpectedVerdict::Verified && rng.below(2) == 0)
                .then(|| rng.below(100));
            expectations.push(Expectation { model, verdict, executions });
        }
        let test = vsync::dsl::LitmusTest {
            name: p.name().to_owned(),
            program: p.clone(),
            expectations: expectations.clone(),
            templated: false,
        };
        let text = vsync::dsl::print_test(&test);
        let reparsed = vsync::dsl::compile(&text).expect("printed text parses");
        assert_eq!(p, &reparsed.program, "program round-trip:\n{text}");
        assert_eq!(expectations, reparsed.expectations, "expectation round-trip:\n{text}");
        let formatted = vsync::dsl::format_source(&text).expect("parses");
        assert_eq!(text, formatted, "printer output must be canonical:\n{text}");
    });
}

/// The TTAS lock stays correct under arbitrary *strengthening* of its
/// three sites (monotonicity of verification in barrier strength).
#[test]
fn ttas_verifies_under_all_stronger_modes() {
    use vsync::locks::model::{mutex_client, TtasLock};
    let awaits = [Mode::Rlx, Mode::Acq, Mode::Sc];
    let xchgs = [Mode::Acq, Mode::AcqRel, Mode::Sc];
    let rels = [Mode::Rel, Mode::Sc];
    for &await_mode in &awaits {
        for &xchg_mode in &xchgs {
            for &release_mode in &rels {
                let lock = TtasLock { await_mode, xchg_mode, release_mode };
                let v = vsync::core::verify(
                    &mutex_client(&lock, 2, 1),
                    &AmcConfig::with_model(ModelKind::Vmm),
                );
                assert!(v.is_verified(), "{lock:?}: {v}");
            }
        }
    }
}
