//! Disabled-path allocation smoke: with no subscriber and no profiling,
//! telemetry must add nothing to the explorer's allocation behavior —
//! in particular no per-event or per-span heap traffic. Verified with a
//! counting global allocator: repeated disabled runs of the same
//! program allocate the exact same number of times.
//!
//! This file deliberately holds a single test — the counter is
//! process-global and the default test runner is multi-threaded, so any
//! second test in this binary would race the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vsync::core::Session;
use vsync::graph::Mode;
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::model::ModelKind;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn mp_program() -> Program {
    let mut pb = ProgramBuilder::new("mp");
    pb.thread(|t| {
        t.store(0x10, 1u64, Mode::Rlx);
        t.store(0x20, 1u64, Mode::Rel);
    });
    pb.thread(|t| {
        t.await_eq(Reg(0), 0x20, 1u64, Mode::Acq);
        t.load(Reg(1), 0x10, Mode::Rlx);
        t.assert_eq(Reg(1), 1u64, "data visible");
    });
    pb.build().unwrap()
}

#[test]
fn disabled_telemetry_does_not_allocate() {
    let p = mp_program();
    let run = || {
        let before = ALLOCS.load(Ordering::Relaxed);
        let r = Session::new(p.clone()).model(ModelKind::Vmm).run();
        assert!(r.is_verified());
        ALLOCS.load(Ordering::Relaxed) - before
    };
    // Warmup absorbs one-time lazy initialization (thread-local buffers,
    // hash-table growth heuristics).
    let _ = run();
    let a = run();
    let b = run();
    assert_eq!(
        a, b,
        "disabled-telemetry runs must have a deterministic allocation count \
         (any drift means the disabled path started allocating)"
    );
}
