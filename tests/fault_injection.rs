//! Deterministic fault-injection matrix (requires `--features
//! failpoints`): armed failpoints inside the engine must degrade runs to
//! *structured*, worker-count-independent outcomes — a caught panic
//! becomes `Verdict::Error` with stable phase/payload metadata, a
//! synthetic allocation failure becomes `Verdict::Inconclusive` with
//! `StopReason::MemoryBudget`, and a corpus-file panic quarantines that
//! file without disturbing its neighbours. Every test holds the
//! process-wide `exclusive()` gate: hit counters are global state.

#![cfg(feature = "failpoints")]

use std::time::Duration;

use vsync::core::failpoint::{self, Action};
use vsync::core::{
    run_corpus, verify, AmcConfig, CorpusOptions, EnginePhase, Inconclusive, StopReason, Verdict,
};
use vsync::graph::Mode;
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::locks::SessionExt as _;
use vsync::model::ModelKind;

const X: u64 = 0x10;
const Y: u64 = 0x20;

/// The message-passing litmus test: enough work items to hit every
/// exploration stage (replay, dedup, consistency, extend, final check)
/// and — via the await — the stagnancy check too.
fn mp_program() -> Program {
    let mut pb = ProgramBuilder::new("mp");
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rlx);
        t.store(Y, 1u64, Mode::Rel);
    });
    pb.thread(|t| {
        t.await_eq(Reg(0), Y, 1u64, Mode::Acq);
        t.load(Reg(1), X, Mode::Rlx);
        t.assert_eq(Reg(1), 1u64, "data visible");
    });
    pb.build().unwrap()
}

fn config(workers: usize, symmetry: bool) -> AmcConfig {
    AmcConfig::with_model(ModelKind::Vmm).with_workers(workers).with_symmetry(symmetry)
}

/// A panic injected at any engine stage surfaces as `Verdict::Error`
/// whose phase and payload are identical for every worker count and with
/// symmetry on or off — and the run terminates instead of hanging.
#[test]
fn injected_panics_yield_identical_errors_across_configurations() {
    let _gate = failpoint::exclusive();
    let p = mp_program();
    let sites = [
        ("explore.pop", EnginePhase::Driver),
        ("explore.replay", EnginePhase::Replay),
        // The default (revisit) engine attributes its hash sites to
        // `Probe` and revisit generation to `Revisit`; the enumerate
        // engine keeps `Dedup` for the same `explore.dedup` failpoint.
        ("explore.dedup", EnginePhase::Probe),
        ("explore.consistency", EnginePhase::Consistency),
        ("explore.extend", EnginePhase::Extend),
        ("explore.revisit", EnginePhase::Revisit),
        ("explore.final", EnginePhase::FinalCheck),
        ("explore.stagnancy", EnginePhase::Stagnancy),
    ];
    for (site, phase) in sites {
        let expected_payload = format!("failpoint '{site}' fired");
        for workers in [1usize, 2, 8] {
            for symmetry in [true, false] {
                failpoint::clear();
                failpoint::configure(site, Action::Panic, 1);
                let v = verify(&p, &config(workers, symmetry));
                let Verdict::Error(e) = &v else {
                    panic!("{site} workers={workers} symmetry={symmetry}: expected error, got {v}")
                };
                assert_eq!(e.phase, phase, "{site} workers={workers} symmetry={symmetry}: {e}");
                assert_eq!(
                    e.payload, expected_payload,
                    "{site} workers={workers} symmetry={symmetry}"
                );
            }
        }
    }
    failpoint::clear();
}

/// A panic inside an optimizer probe lands in the `Optimize` phase (the
/// candidate is undecided, never refuted) and the session reports an
/// engine error rather than a relaxed assignment.
#[test]
fn injected_optimizer_panic_is_reported_not_fatal() {
    let _gate = failpoint::exclusive();
    for workers in [1usize, 2] {
        failpoint::clear();
        failpoint::configure("optimize.verify", Action::Panic, 1);
        let report = vsync::core::Session::lock("ttas", 2, 1)
            .workers(workers)
            .optimize(vsync::core::OptimizerConfig::default())
            .run();
        assert!(report.is_errored(), "workers={workers}: {}", report.to_json());
        let opt = report.models[0].optimization.as_ref().expect("optimizer ran");
        let e = opt.error.as_ref().expect("probe panic recorded");
        assert_eq!(e.phase, EnginePhase::Optimize, "workers={workers}: {e}");
        assert_eq!(e.payload, "failpoint 'optimize.verify' fired", "workers={workers}");
    }
    failpoint::clear();
}

/// A synthetic allocation failure degrades the run to
/// `Inconclusive(MemoryBudget)` with plausible partial statistics, for
/// every worker count.
#[test]
fn injected_oom_degrades_to_memory_budget_inconclusive() {
    let _gate = failpoint::exclusive();
    let p = mp_program();
    for workers in [1usize, 2, 8] {
        failpoint::clear();
        // Fire on the third replay: some items complete first, so the
        // degraded verdict must still carry their partial counts.
        failpoint::configure("explore.replay", Action::Oom, 3);
        let v = verify(&p, &config(workers, true));
        let Verdict::Inconclusive(Inconclusive { reason, explored, .. }) = v else {
            panic!("workers={workers}: expected inconclusive, got {v}")
        };
        assert_eq!(reason, StopReason::MemoryBudget, "workers={workers}");
        assert!(explored >= 2, "workers={workers}: explored={explored}");
    }
    failpoint::clear();
}

/// A delay action only slows the run down: the verdict is unchanged.
#[test]
fn injected_delay_does_not_change_the_verdict() {
    let _gate = failpoint::exclusive();
    failpoint::clear();
    failpoint::configure("explore.extend", Action::Delay(5), 1);
    let v = verify(&mp_program(), &config(2, true));
    failpoint::clear();
    assert!(matches!(v, Verdict::Verified), "got {v}");
}

/// A panicking corpus file is quarantined; every *other* file's verdict
/// is byte-identical to a clean run of the same corpus.
#[test]
fn corpus_quarantine_isolates_the_panicking_file() {
    let _gate = failpoint::exclusive();
    let dir = std::env::temp_dir().join(format!("vsync-fault-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mp = r#"
        litmus "mp"
        thread { store.rlx x, 1  store.rel y, 1 }
        thread { r0 = await_eq.acq y, 1  r1 = load.rlx x  assert r1 == 1, "data visible" }
        expect vmm: verified
    "#;
    let sb = r#"
        litmus "sb"
        thread { store.rlx x, 1  r0 = load.rlx y }
        thread { store.rlx y, 1  r0 = load.rlx x }
        expect vmm: verified
    "#;
    for (name, src) in [("a.litmus", mp), ("b.litmus", sb), ("c.litmus", mp)] {
        std::fs::write(dir.join(name), src).unwrap();
    }
    // `jobs: 1` makes the global hit counter walk the files in path
    // order, so `@2` deterministically lands on b.litmus.
    let opts = CorpusOptions {
        models: Some(vec![ModelKind::Vmm]),
        jobs: 1,
        deadline: Some(Duration::from_secs(60)),
        ..Default::default()
    };
    failpoint::clear();
    let clean = run_corpus(&dir, &opts).unwrap();
    assert!(clean.passed(), "clean run must pass");

    failpoint::clear();
    failpoint::configure("corpus.check", Action::Panic, 2);
    let faulty = run_corpus(&dir, &opts).unwrap();
    failpoint::clear();
    std::fs::remove_dir_all(&dir).ok();

    assert!(!faulty.passed());
    assert!(faulty.errored());
    let quarantined = faulty.quarantined();
    assert_eq!(quarantined.len(), 1, "exactly one file is quarantined");
    assert!(quarantined[0].ends_with("b.litmus"), "{quarantined:?}");
    for (c, f) in clean.files.iter().zip(&faulty.files) {
        assert_eq!(c.path, f.path);
        if f.path.ends_with("b.litmus") {
            continue;
        }
        assert!(f.passed(), "{}: neighbour verdict disturbed", f.path);
        assert_eq!(c.passed(), f.passed(), "{}", f.path);
    }
    let json = faulty.to_json();
    assert!(json.contains("\"quarantined\": ["), "{json}");
    assert!(json.contains("b.litmus"), "{json}");
}
