//! Telemetry integration tests: event-stream determinism at one worker,
//! phase-profile count/time invariants for both search engines, and the
//! exporter surfaces (corpus events, optimizer step forwarding).

use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use vsync::core::{
    run_corpus, CorpusOptions, EnginePhase, EventKind, OptimizerConfig, SearchMode, Session,
};
use vsync::graph::Mode;
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::locks::SessionExt as _;
use vsync::model::ModelKind;

const X: u64 = 0x10;
const Y: u64 = 0x20;

/// Message passing with an await: exercises every exploration phase
/// (replay, probe, consistency, extend, revisit, final check, stagnancy).
fn mp_program() -> Program {
    let mut pb = ProgramBuilder::new("mp");
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rlx);
        t.store(Y, 1u64, Mode::Rel);
    });
    pb.thread(|t| {
        t.await_eq(Reg(0), Y, 1u64, Mode::Acq);
        t.load(Reg(1), X, Mode::Rlx);
        t.assert_eq(Reg(1), 1u64, "data visible");
    });
    pb.build().unwrap()
}

/// Run `p` at `workers` and return the observed event-kind keys, after
/// asserting the sequence numbers are gap-free from zero.
fn event_keys(p: &Program, workers: usize) -> Vec<&'static str> {
    let seen: Arc<Mutex<Vec<(u64, &'static str)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let r = Session::new(p.clone())
        .model(ModelKind::Vmm)
        .workers(workers)
        .on_event(move |ev| sink.lock().unwrap().push((ev.seq, ev.kind.key())))
        .run();
    assert!(r.is_verified());
    let seen = seen.lock().unwrap();
    for (i, (seq, _)) in seen.iter().enumerate() {
        assert_eq!(*seq, i as u64, "sequence numbers must be gap-free");
    }
    seen.iter().map(|(_, k)| *k).collect()
}

/// At one worker the event stream is a deterministic function of the
/// program: two runs produce identical sequences, and the mp litmus
/// shape produces exactly this golden one.
#[test]
fn single_worker_event_stream_is_deterministic() {
    let p = mp_program();
    let a = event_keys(&p, 1);
    let b = event_keys(&p, 1);
    assert_eq!(a, b, "workers=1 event streams must be reproducible");
    assert_eq!(
        a,
        vec![
            "session_start",
            "explore_start",
            "stats_delta",
            "phase_slice",
            "explore_finish",
            "session_finish",
        ]
    );
}

/// Phase counts are exact mirrors of the exploration counters, and
/// attributed time never exceeds the measured wall clock — for both
/// search engines.
#[test]
fn phase_profile_invariants_hold_for_both_engines() {
    for search in [SearchMode::Revisit, SearchMode::Enumerate] {
        let t0 = Instant::now();
        let r = Session::new(mp_program())
            .model(ModelKind::Vmm)
            .search(search)
            .profile(true)
            .run();
        let wall = t0.elapsed();
        assert!(r.is_verified());
        let stats = &r.models[0].stats;
        let phases = &stats.phases;
        assert!(!phases.is_empty(), "{search:?}: profiling must attribute spans");
        assert!(
            phases.total() <= wall,
            "{search:?}: attributed {:?} exceeds wall {wall:?}",
            phases.total()
        );
        assert_eq!(
            phases.get(EnginePhase::FinalCheck).count,
            stats.complete_executions,
            "{search:?}: one FinalCheck entry per complete execution"
        );
        assert_eq!(
            phases.get(EnginePhase::Stagnancy).count,
            stats.blocked_graphs,
            "{search:?}: one Stagnancy entry per blocked graph"
        );
        assert_eq!(
            phases.get(EnginePhase::Replay).count,
            stats.popped,
            "{search:?}: one Replay entry per popped work item"
        );
        match search {
            // The revisit engine hashes through its Probe sites at least
            // once per admitted-or-duplicate candidate.
            SearchMode::Revisit => assert!(
                phases.get(EnginePhase::Probe).count >= stats.constructed + stats.duplicates,
                "revisit: Probe entries must cover every admit decision"
            ),
            // The enumerate engine keeps the Dedup attribution.
            SearchMode::Enumerate => assert!(
                phases.get(EnginePhase::Dedup).count > 0
                    && phases.get(EnginePhase::Probe).count == 0,
                "enumerate: hashing attributes to Dedup, not Probe"
            ),
        }
    }
}

/// Probe counters (hash-permutation work) flow into `ExploreStats` for
/// both engines, and stay zero without telemetry asking for them — they
/// are counted unconditionally (they are plain adds) so this just pins
/// that the counter is populated.
#[test]
fn probe_counters_flow_into_stats() {
    for search in [SearchMode::Revisit, SearchMode::Enumerate] {
        let r = Session::new(mp_program()).model(ModelKind::Vmm).search(search).run();
        let stats = &r.models[0].stats;
        assert!(
            stats.probes >= stats.constructed + stats.duplicates,
            "{search:?}: every dedup decision costs at least one probe"
        );
        // Without profile/events the phase profile stays empty (the
        // near-zero-cost disabled path).
        assert!(stats.phases.is_empty(), "{search:?}: no spans without telemetry");
    }
}

/// The optimizer's step events are forwarded onto the session bus, and
/// optimizer time lands in the `Optimize` phase of the profile.
#[test]
fn optimizer_steps_reach_the_event_bus() {
    let steps = Arc::new(Mutex::new(0u64));
    let sink = Arc::clone(&steps);
    let r = Session::lock("ttas", 2, 1)
        .optimize(OptimizerConfig::default())
        .on_event(move |ev| {
            if let EventKind::OptimizeStep { site, .. } = &ev.kind {
                assert!(!site.is_empty());
                *sink.lock().unwrap() += 1;
            }
        })
        .run();
    assert!(r.is_verified());
    let steps = *steps.lock().unwrap();
    let reported = r.models[0].optimization.as_ref().expect("optimizer ran").steps.len() as u64;
    assert_eq!(steps, reported, "every optimizer step must reach the bus");
    assert!(
        r.models[0].stats.phases.get(EnginePhase::Optimize).count > 0,
        "optimizer wall time must be attributed"
    );
}

/// A corpus run shares one bus across files: per-file sessions stream
/// into it and every file closes with a `corpus_file` event; per-model
/// phase attribution reaches the corpus outcomes.
#[test]
fn corpus_runs_emit_file_events_and_phase_profiles() {
    let keys: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&keys);
    let opts = CorpusOptions {
        jobs: 1,
        profile: true,
        on_event: Some(Arc::new(move |ev| sink.lock().unwrap().push(ev.kind.key()))),
        ..CorpusOptions::default()
    };
    let r = run_corpus(Path::new("corpus/mp.litmus"), &opts).expect("corpus file readable");
    assert!(r.passed());
    let keys = keys.lock().unwrap();
    assert_eq!(keys.last(), Some(&"corpus_file"), "each file closes with corpus_file");
    assert!(keys.contains(&"session_start"), "per-file sessions share the bus");
    for f in &r.files {
        let vsync::core::FileOutcome::Checked(models) = &f.outcome else {
            panic!("{}: expected a checked outcome", f.path)
        };
        for m in models {
            assert!(!m.phases.is_empty(), "{}: {} has no phase profile", f.path, m.model);
        }
    }
}
