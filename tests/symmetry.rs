//! Thread-symmetry reduction: canonicalization laws and the symmetry
//! on/off differential.
//!
//! * **Permutation invariance** — for random programs whose threads are
//!   instantiated from one template, the canonical hash modulo the
//!   detected partition is invariant under every allowed thread
//!   relabeling of every reachable execution graph;
//! * **No false merges** — asymmetric threads are never merged: the
//!   partition stays trivial and canonicalization degenerates to the
//!   plain content encoding;
//! * **Differential** — across the *full* lock registry, all memory
//!   models and workers {1, 2, 8}, symmetry-on exploration produces the
//!   same verdicts (and, for the broken study cases, the same violation
//!   messages) as the naive symmetry-off reference, never explores more,
//!   and keeps per-orbit counts worker-count deterministic.
//!
//! The generator is a deterministic SplitMix64 stream; failures print the
//! offending seed.

use vsync::core::{explore, AmcConfig, Verdict};
use vsync::graph::{canonical_hash_modulo, Mode};
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::locks::registry;
use vsync::model::ModelKind;

/// SplitMix64: tiny, deterministic, good-enough mixing for test generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const LOCS: [u64; 2] = [0x10, 0x20];

/// A random straight-line thread template (the `tests/differential.rs` /
/// `tests/proptests.rs` op vocabulary), instantiated verbatim for each of
/// `n` threads — the builder must detect them as one symmetry class.
fn random_symmetric_program(rng: &mut Rng, n_threads: usize) -> Program {
    #[derive(Clone, Copy)]
    enum Op {
        Load(usize),
        Store(usize, u64),
        FetchAdd(usize, u64),
        Cas(usize, u64, u64),
        Fence,
    }
    let len = 1 + rng.below(3);
    let template: Vec<(Op, Mode)> = (0..len)
        .map(|_| {
            let loc = rng.below(LOCS.len() as u64) as usize;
            let op = match rng.below(5) {
                0 => Op::Load(loc),
                1 => Op::Store(loc, rng.below(3)),
                2 => Op::FetchAdd(loc, 1 + rng.below(2)),
                3 => Op::Cas(loc, rng.below(2), 1 + rng.below(2)),
                _ => Op::Fence,
            };
            let mode = [Mode::Rlx, Mode::Acq, Mode::Rel, Mode::AcqRel, Mode::Sc]
                [rng.below(5) as usize];
            (op, mode)
        })
        .collect();
    let mut pb = ProgramBuilder::new("sym-random");
    for _ in 0..n_threads {
        let template = template.clone();
        pb.thread(move |t| {
            for (i, (op, mode)) in template.iter().enumerate() {
                let r = Reg((i % 8) as u8);
                match *op {
                    Op::Load(l) => {
                        let m = match mode {
                            Mode::Rel | Mode::AcqRel => Mode::Acq,
                            m => *m,
                        };
                        t.load(r, LOCS[l], m);
                    }
                    Op::Store(l, v) => {
                        let m = match mode {
                            Mode::Acq | Mode::AcqRel => Mode::Rel,
                            m => *m,
                        };
                        t.store(LOCS[l], v, m);
                    }
                    Op::FetchAdd(l, v) => {
                        t.fetch_add(r, LOCS[l], v, *mode);
                    }
                    Op::Cas(l, e, n) => {
                        t.cas(r, LOCS[l], e, n, *mode);
                    }
                    Op::Fence => {
                        t.fence(*mode);
                    }
                }
            }
        });
    }
    pb.build().expect("generated program is well-formed")
}

/// Every reachable execution graph of a template-instantiated program has
/// the same canonical hash as each of its thread relabelings — including
/// under a *random* relabeling chain (permutations compose).
#[test]
fn canonical_hash_is_invariant_under_symmetric_permutations() {
    for seed in 0..40u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851f42d4c957f2d).wrapping_add(0xb5ad4eceda1ce2a9));
        let n_threads = 2 + rng.below(2) as usize;
        let p = random_symmetric_program(&mut rng, n_threads);
        let partition = p.symmetry_partition();
        assert!(
            (0..n_threads as u32).all(|t| partition.same_class(0, t)),
            "seed {seed}: template threads must form one class"
        );
        // All executions, twins included: the invariance claim quantifies
        // over the whole reachable set, so check it on the naive run.
        let r = explore(
            &p,
            &AmcConfig::with_model(ModelKind::Vmm).collecting().without_symmetry(),
        );
        assert!(r.is_verified(), "seed {seed}: {}", r.verdict);
        let perms = partition.permutations();
        for g in &r.executions {
            let h = canonical_hash_modulo(g, &partition);
            for perm in &perms {
                let permuted = g.permute_threads(perm);
                assert_eq!(
                    canonical_hash_modulo(&permuted, &partition),
                    h,
                    "seed {seed}: canonical hash not invariant under {perm:?} on:\n{}",
                    g.render()
                );
            }
            // A random composition of allowed relabelings stays invariant.
            let mut chained = g.clone();
            for _ in 0..3 {
                let perm = &perms[rng.below(perms.len() as u64) as usize];
                chained = chained.permute_threads(perm);
            }
            assert_eq!(canonical_hash_modulo(&chained, &partition), h, "seed {seed}");
        }
    }
}

/// Asymmetric threads are never merged: the detected partition is
/// trivial, thread-swapped graphs keep distinct canonical hashes, and the
/// explorer's counts are bit-identical with symmetry on and off.
#[test]
fn asymmetric_threads_are_never_merged() {
    // Same shape, different locations (classic SB) — not symmetric.
    let mut pb = ProgramBuilder::new("sb");
    for (a, b) in [(LOCS[0], LOCS[1]), (LOCS[1], LOCS[0])] {
        pb.thread(move |t| {
            t.store(a, 1u64, Mode::Rlx);
            t.load(Reg(0), b, Mode::Rlx);
        });
    }
    let p = pb.build().unwrap();
    let partition = p.symmetry_partition();
    assert!(partition.is_trivial(), "SB threads differ and must not merge");
    let on = explore(&p, &AmcConfig::with_model(ModelKind::Vmm).collecting());
    let off = explore(
        &p,
        &AmcConfig::with_model(ModelKind::Vmm).collecting().without_symmetry(),
    );
    assert_eq!(on.stats, off.stats, "trivial partition must change nothing");
    assert!(on.stats.symmetry_pruned == 0);
    // Thread-swapping an execution of an asymmetric program changes its
    // canonical hash (the swap is not an allowed relabeling).
    let g = &on.executions[0];
    assert_ne!(
        canonical_hash_modulo(&g.permute_threads(&[1, 0]), &partition),
        canonical_hash_modulo(g, &partition),
    );
    // One diverging instruction also splits an otherwise shared template.
    let mut pb = ProgramBuilder::new("almost");
    for val in [1u64, 2] {
        pb.thread(move |t| {
            t.store(LOCS[0], val, Mode::Rel);
            t.load(Reg(0), LOCS[1], Mode::Acq);
        });
    }
    assert!(pb.build().unwrap().symmetry_partition().is_trivial());
}

/// The verdict-kind label used by the differential assertions.
fn kind_of(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Safety(_) => "safety",
        Verdict::AwaitTermination(_) => "await-termination",
        Verdict::Fault(_) => "fault",
        Verdict::Inconclusive(_) => "inconclusive",
        Verdict::Error(_) => "error",
    }
}

/// Full-registry differential: for every registered lock's 2-thread
/// client, every memory model and workers {1, 2, 8}, symmetry-on and
/// symmetry-off runs agree on the verdict; symmetry never explores more
/// items; and the symmetry-on counts (per-orbit `popped`,
/// `complete_executions`, and the total dedup hits
/// `duplicates + symmetry_pruned`) are identical for every worker count —
/// the determinism guarantee of canonical-representative processing. (The
/// duplicates/symmetry_pruned *split* alone is arrival-order dependent in
/// parallel runs: whichever twin of an orbit arrives first is the one
/// that gets normalized.)
#[test]
fn full_registry_differential_across_models_and_workers() {
    for entry in registry::catalog() {
        let p = entry.client(2, 1);
        let symmetric = !p.symmetry_partition().is_trivial();
        for model in ModelKind::all() {
            let mut base_on = None;
            let mut base_off = None;
            for workers in [1usize, 2, 8] {
                let cfg = AmcConfig::with_model(model).with_workers(workers);
                let on = explore(&p, &cfg);
                let off = explore(&p, &cfg.clone().without_symmetry());
                let tag = format!("{} {model} workers={workers}", entry.name);
                assert_eq!(
                    kind_of(&on.verdict),
                    kind_of(&off.verdict),
                    "{tag}: symmetry changed the verdict ({} vs {})",
                    on.verdict,
                    off.verdict
                );
                assert!(
                    on.stats.popped <= off.stats.popped,
                    "{tag}: symmetry explored more ({} vs {})",
                    on.stats.popped,
                    off.stats.popped
                );
                assert_eq!(off.stats.symmetry_pruned, 0, "{tag}");
                if symmetric {
                    // The reduction's guaranteed observable is the orbit
                    // count collapsing below the per-twin count; a
                    // non-canonical dedup miss (`symmetry_pruned`) is
                    // only a side signal, and the revisit engine probes
                    // few enough graphs that a small client's twin
                    // misses can all land on canonical labelings.
                    let collapsed = on.verdict.is_verified()
                        && on.stats.complete_executions < off.stats.complete_executions;
                    assert!(
                        on.stats.symmetry_pruned > 0 || collapsed,
                        "{tag}: symmetric client pruned nothing"
                    );
                } else {
                    assert_eq!(on.stats.popped, off.stats.popped, "{tag}: spurious change");
                }
                // Counts are worker-count deterministic in both modes
                // (for the dedup hits, their *sum* is the deterministic
                // quantity — see the doc comment).
                let on_key = (
                    on.stats.popped,
                    on.stats.complete_executions,
                    on.stats.duplicates + on.stats.symmetry_pruned,
                );
                let off_key = (off.stats.popped, off.stats.complete_executions);
                assert_eq!(*base_on.get_or_insert(on_key), on_key, "{tag}: on-counts drift");
                assert_eq!(*base_off.get_or_insert(off_key), off_key, "{tag}: off-counts drift");
            }
        }
    }
}

/// Violation identity: the broken study cases and barrier-weakened locks
/// report the same verdict kind *and message* with symmetry on and off
/// (sequentially — parallel runs race to the first counterexample), and
/// the same kind for every worker count.
#[test]
fn broken_locks_report_identical_violations() {
    use vsync::locks::model::{dpdk_scenario, huawei_scenario, mutex_client, CasLock, TtasLock};
    let broken: Vec<(&str, Program)> = vec![
        (
            "caslock-rlx-release",
            mutex_client(
                &CasLock { release_mode: Mode::Rlx, ..CasLock::default() },
                2,
                1,
            ),
        ),
        (
            "ttas-rlx-xchg",
            mutex_client(&TtasLock { xchg_mode: Mode::Rlx, ..TtasLock::default() }, 2, 1),
        ),
        ("dpdk", dpdk_scenario(false)),
        ("huawei", huawei_scenario(false)),
    ];
    for (name, p) in &broken {
        let on = explore(p, &AmcConfig::default());
        let off = explore(p, &AmcConfig::default().without_symmetry());
        assert_ne!(kind_of(&on.verdict), "verified", "{name} is a bug scenario");
        assert_eq!(kind_of(&on.verdict), kind_of(&off.verdict), "{name}");
        let msg = |v: &Verdict| v.counterexample().map(|c| c.message.clone());
        assert_eq!(msg(&on.verdict), msg(&off.verdict), "{name}: messages diverge");
        for workers in [2usize, 8] {
            let r = explore(p, &AmcConfig::default().with_workers(workers));
            assert_eq!(kind_of(&r.verdict), kind_of(&on.verdict), "{name} workers={workers}");
        }
    }
}

/// The acceptance bar, in-tree: on the symmetric 3-thread matrix rows the
/// naive exploration visits at least 2x as many graphs as the
/// symmetry-reduced one, with identical (verified) verdicts and
/// execution-orbit counts consistent with the class size (`3! = 6` twins
/// collapse to at least a third).
#[test]
fn three_thread_symmetric_matrix_meets_the_reduction_bar() {
    let rows: Vec<_> =
        registry::symmetric_matrix().into_iter().filter(|e| e.threads == 3).collect();
    assert!(!rows.is_empty(), "the matrix must carry 3-thread symmetric rows");
    for row in rows {
        let p = row.client();
        let on = explore(&p, &AmcConfig::default());
        let off = explore(&p, &AmcConfig::default().without_symmetry());
        assert!(on.is_verified() && off.is_verified(), "{}", row.label);
        assert!(
            off.stats.popped >= 2 * on.stats.popped,
            "{}: expected >= 2x reduction, got {} vs {}",
            row.label,
            off.stats.popped,
            on.stats.popped
        );
    }
}
