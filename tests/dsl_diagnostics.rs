//! Golden tests for DSL diagnostics: malformed inputs must produce
//! *stable* `line:col` messages with their source excerpt, pinned here
//! byte-for-byte (like the `Report::to_json` golden) so error output is
//! a dependable surface for tooling and editors.

/// Compile `src` (labeled `test.litmus`), expect failure, and compare
/// the fully rendered diagnostic.
fn golden(src: &str, expected: &str) {
    let diag = match vsync::dsl::compile(src) {
        Err(d) => d.with_file("test.litmus"),
        Ok(_) => panic!("expected a diagnostic for:\n{src}"),
    };
    let rendered = diag.render();
    assert_eq!(
        rendered, expected,
        "golden mismatch.\n--- actual ---\n{rendered}\n--- expected ---\n{expected}"
    );
}

#[test]
fn unknown_barrier_mode() {
    golden(
        "litmus \"t\"\nthread {\n  r0 = load.foo x\n}\n",
        "error: unknown barrier mode 'foo' (rlx, acq, rel, acq_rel, sc)\n\
         \x20--> test.litmus:3:13\n\
         \x20  3 |   r0 = load.foo x\n\
         \x20    |             ^^^\n",
    );
}

#[test]
fn unbound_label() {
    golden(
        "litmus \"t\"\nthread {\n  jmp out\n}\n",
        "error: unbound label 'out'\n\
         \x20--> test.litmus:3:7\n\
         \x20  3 |   jmp out\n\
         \x20    |       ^^^\n",
    );
}

#[test]
fn duplicate_location() {
    golden(
        "litmus \"t\"\ninit {\n  x = 0\n  x = 1\n}\n",
        "error: location 'x' declared twice\n\
         \x20--> test.litmus:4:3\n\
         \x20  4 |   x = 1\n\
         \x20    |   ^\n",
    );
}

#[test]
fn bad_expect_verdict() {
    golden(
        "litmus \"t\"\nthread {\n  nop\n}\nexpect vmm: maybe\n",
        "error: unknown expected verdict 'maybe' (verified, safety, await-termination, fault)\n\
         \x20--> test.litmus:5:13\n\
         \x20  5 | expect vmm: maybe\n\
         \x20    |             ^^^^^\n",
    );
}

#[test]
fn bad_expect_model() {
    golden(
        "litmus \"t\"\nexpect arm: verified\n",
        "error: unknown memory model 'arm' (sc, tso, vmm)\n\
         \x20--> test.litmus:2:8\n\
         \x20  2 | expect arm: verified\n\
         \x20    |        ^^^\n",
    );
}

#[test]
fn register_out_of_range() {
    golden(
        "litmus \"t\"\nthread {\n  r32 = mov 1\n}\n",
        "error: register 'r32' out of range (r0..r31)\n\
         \x20--> test.litmus:3:3\n\
         \x20  3 |   r32 = mov 1\n\
         \x20    |   ^^^\n",
    );
}

#[test]
fn mode_invalid_for_site_kind() {
    golden(
        "litmus \"t\"\nthread {\n  store.acq x, 1\n}\n",
        "error: mode 'acq' is invalid for a store site\n\
         \x20--> test.litmus:3:9\n\
         \x20  3 |   store.acq x, 1\n\
         \x20    |         ^^^\n",
    );
}

#[test]
fn count_on_failing_expectation() {
    golden(
        "litmus \"t\"\nexpect vmm: safety = 3\n",
        "error: execution counts only apply to 'verified' expectations, not 'safety'\n\
         \x20--> test.litmus:2:22\n\
         \x20  2 | expect vmm: safety = 3\n\
         \x20    |                      ^\n",
    );
}

#[test]
fn shared_site_mode_conflict() {
    golden(
        "litmus \"t\"\nthread {\n  store.rel@s x, 1\n}\nthread {\n  store.rlx@s x, 1\n}\n",
        "error: site 's' reuses a name with a different mode (rel vs rlx)\n\
         \x20--> test.litmus:6:13\n\
         \x20  6 |   store.rlx@s x, 1\n\
         \x20    |             ^\n",
    );
}

#[test]
fn bare_register_as_address() {
    golden(
        "litmus \"t\"\nthread {\n  r0 = load.rlx r1\n}\n",
        "error: register-indirect addresses use brackets: [r1] or [r1 + off]\n\
         \x20--> test.litmus:3:17\n\
         \x20  3 |   r0 = load.rlx r1\n\
         \x20    |                 ^^\n",
    );
}

#[test]
fn register_rhs_in_final_check() {
    golden(
        "litmus \"t\"\nthread {\n  store.rlx x, 1\n}\nfinal {\n  x == r1\n}\n",
        "error: final-state checks compare memory against immediates; registers have no value in the final state\n\
         \x20--> test.litmus:6:8\n\
         \x20  6 |   x == r1\n\
         \x20    |        ^^\n",
    );
}

#[test]
fn register_mask_in_final_check() {
    golden(
        "litmus \"t\"\nthread {\n  store.rlx x, 1\n}\nfinal {\n  x & r2 == 1\n}\n",
        "error: final-state check masks must be immediates; registers have no value in the final state\n\
         \x20--> test.litmus:6:7\n\
         \x20  6 |   x & r2 == 1\n\
         \x20    |       ^^\n",
    );
}

#[test]
fn diagnostic_display_matches_render() {
    let d = vsync::dsl::compile("litmus \"t\"\nthread {\n  jmp out\n}\n").unwrap_err();
    assert_eq!(d.to_string(), d.render().trim_end());
    assert!(d.file.is_none(), "no file attached until with_file");
}
