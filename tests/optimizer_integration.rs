//! Push-button optimization across the lock catalog: from an all-SC
//! baseline, the optimizer must land on verified, locally-maximal barrier
//! assignments whose shape matches the known-good published modes.

use vsync::core::{
    is_locally_maximal, optimize, optimize_multi, verify, AmcConfig, OptimizerConfig,
};
use vsync::graph::Mode;
use vsync::lang::Program;
use vsync::locks::model::{mutex_client, CasLock, McsLock, TicketLock, TtasLock};
use vsync::model::ModelKind;

fn config() -> OptimizerConfig {
    OptimizerConfig::with_amc(AmcConfig::with_model(ModelKind::Vmm))
}

fn mode_of(p: &Program, name: &str) -> Mode {
    p.sites()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("site {name} not found"))
        .mode
}

#[test]
fn caslock_optimizes_to_acquire_release() {
    let base = mutex_client(&CasLock::default(), 2, 1).with_all_sc();
    let report = optimize(&base, &config());
    assert!(report.verified);
    // The CAS needs acquire; the release store needs release; nothing SC.
    assert_eq!(mode_of(&report.program, "caslock.acquire.cas"), Mode::Acq);
    assert_eq!(mode_of(&report.program, "caslock.release.store"), Mode::Rel);
    assert_eq!(report.after.sc, 0);
    assert!(is_locally_maximal(&report.program, &config()));
}

#[test]
fn ttas_optimizes_await_to_relaxed() {
    let base = mutex_client(&TtasLock::default(), 2, 1).with_all_sc();
    let report = optimize(&base, &config());
    assert!(report.verified);
    // The polling read carries no ordering duty (the xchg does).
    assert_eq!(mode_of(&report.program, "ttas.acquire.await"), Mode::Rlx);
    assert_eq!(mode_of(&report.program, "ttas.release.store"), Mode::Rel);
    assert!(mode_of(&report.program, "ttas.acquire.xchg").is_acquire());
    assert_eq!(report.after.sc, 0);
    assert!(is_locally_maximal(&report.program, &config()));
}

#[test]
fn ticket_optimizes_like_the_experts() {
    let base = mutex_client(&TicketLock::default(), 2, 1).with_all_sc();
    let report = optimize(&base, &config());
    assert!(report.verified);
    // Classic result: relaxed fai, acquire await, release owner bump.
    assert_eq!(mode_of(&report.program, "ticket.acquire.fai"), Mode::Rlx);
    assert_eq!(mode_of(&report.program, "ticket.acquire.await"), Mode::Acq);
    assert_eq!(mode_of(&report.program, "ticket.release.store"), Mode::Rel);
}

#[test]
fn mcs_optimization_keeps_the_dpdk_lesson() {
    // §3.1's lesson: `prev->next = me` must stay release (and its reads
    // acquire) — the optimizer must NOT relax them to rlx.
    let base = mutex_client(&McsLock::default(), 2, 1).with_all_sc();
    let report = optimize(&base, &config());
    assert!(report.verified);
    let store_next = mode_of(&report.program, "mcs.acquire.store_next");
    assert!(store_next.is_release(), "store_next relaxed to {store_next} — the DPDK bug!");
    assert_eq!(report.after.sc, 0, "no SC barrier needed in MCS");
    // The optimized program still verifies from scratch.
    assert!(verify(&report.program, &AmcConfig::with_model(ModelKind::Vmm)).is_verified());
}

#[test]
fn optimized_weaker_or_equal_everywhere() {
    // Relaxation must be pointwise: no site gets *stronger* than all-SC,
    // and the total barrier count never grows.
    let base = mutex_client(&TtasLock::default(), 2, 1).with_all_sc();
    let report = optimize(&base, &config());
    for (before, after) in base.sites().iter().zip(report.program.sites()) {
        assert_eq!(before.name, after.name);
        if !before.relaxable {
            assert_eq!(before.mode, after.mode, "fixed site {} touched", before.name);
        }
    }
    assert!(report.after.sc <= report.before.sc);
}

#[test]
fn multi_scenario_oracle_is_stricter() {
    // With only the trivial 1-thread client, the optimizer would relax
    // everything to rlx; adding the 2-thread scenario stops it.
    let solo = mutex_client(&CasLock::default(), 1, 1).with_all_sc();
    let solo_report = optimize(&solo, &config());
    assert_eq!(solo_report.after.sc + solo_report.after.acq + solo_report.after.rel, 0);

    let mut pair = mutex_client(&CasLock::default(), 2, 1);
    pair.copy_modes_by_name(&solo); // all-SC start
    let report = optimize_multi(&solo, &[pair], &config());
    assert!(report.verified);
    assert!(
        report.after.acq >= 1 && report.after.rel >= 1,
        "two-thread scenario must keep acquire/release: {}",
        report.after
    );
}

#[test]
fn optimizer_report_steps_are_replayable() {
    // Applying the accepted steps (recorded by site index) to the
    // baseline reproduces the result; names resolve via the report.
    let base = mutex_client(&CasLock::default(), 2, 1).with_all_sc();
    let report = optimize(&base, &config());
    let mut replayed = base.clone();
    for step in report.steps.iter().filter(|s| s.accepted) {
        assert_eq!(report.site_name(step), base.sites()[step.site as usize].name);
        replayed.set_mode(vsync::lang::ModeRef(step.site), step.to);
    }
    let a: Vec<Mode> = replayed.sites().iter().map(|s| s.mode).collect();
    let b: Vec<Mode> = report.program.sites().iter().map(|s| s.mode).collect();
    assert_eq!(a, b);
}

/// The optimizer is parameterized by the memory model, as the paper notes
/// when discussing an LKMM module (§3.3): under TSO, acquire/release
/// modes are free, so the CAS lock relaxes completely; under VMM the
/// rel/acq pair must stay; under SC everything relaxes too (consistency
/// ignores modes entirely).
#[test]
fn optimization_depends_on_the_memory_model() {
    let base = mutex_client(&CasLock::default(), 2, 1).with_all_sc();
    let per_model = |model: ModelKind| {
        let cfg = OptimizerConfig::with_amc(AmcConfig::with_model(model));
        let report = optimize(&base, &cfg);
        assert!(report.verified, "{model}");
        report.after
    };
    let sc = per_model(ModelKind::Sc);
    assert_eq!((sc.acq, sc.rel, sc.sc), (0, 0, 0), "SC ignores modes: all rlx");
    let tso = per_model(ModelKind::Tso);
    assert_eq!((tso.acq, tso.rel, tso.sc), (0, 0, 0), "TSO gives acq/rel for free");
    let vmm = per_model(ModelKind::Vmm);
    assert_eq!((vmm.acq, vmm.rel, vmm.sc), (1, 1, 0), "VMM needs the rel/acq pair");
}

/// Stronger models accept every assignment a weaker model accepts: the
/// VMM-optimized program still verifies under TSO and SC.
#[test]
fn vmm_optimum_verifies_under_stronger_models() {
    let base = mutex_client(&TtasLock::default(), 2, 1).with_all_sc();
    let cfg = OptimizerConfig::with_amc(AmcConfig::with_model(ModelKind::Vmm));
    let report = optimize(&base, &cfg);
    for model in [ModelKind::Sc, ModelKind::Tso] {
        let v = verify(&report.program, &AmcConfig::with_model(model));
        assert!(v.is_verified(), "{model}: {v}");
    }
}
