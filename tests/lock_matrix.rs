//! The verification matrix over the whole model-layer lock catalog:
//! every lock with its published barriers verifies; targeted relaxations
//! of the load-bearing barriers produce violations.

use vsync::core::{explore, verify, AmcConfig, Session, Verdict};
use vsync::model::MemoryModel as _;
use vsync::graph::Mode;
use vsync::locks::model::{
    mutex_client, rwlock_reader_scenario, CasLock, ClhLock, McsLock, RwLock, Semaphore,
    TicketLock, TtasLock,
};
use vsync::locks::registry;
use vsync::locks::SessionExt as _;
use vsync::model::ModelKind;

fn vmm() -> AmcConfig {
    AmcConfig::with_model(ModelKind::Vmm)
}

/// Every registered lock passes the 2-thread generic client across the
/// full model matrix (SC and TSO are stronger than VMM) — one session per
/// lock, straight off the registry.
#[test]
fn catalog_verifies_two_threads_across_models() {
    for name in registry::names() {
        let report = Session::lock(name, 2, 1).models(ModelKind::all()).run();
        assert!(report.is_verified(), "{name}:\n{}", report.render());
        for run in &report.models {
            assert!(
                run.stats.complete_executions > 0,
                "{name} under {} explored nothing",
                run.model
            );
        }
    }
}

/// Three-way contention for the cheap locks (the queue locks take longer;
/// MCS at 3 threads is covered in the scaling test below).
#[test]
fn flat_locks_verify_three_threads() {
    let locks: Vec<Box<dyn vsync::locks::model::LockModel>> = vec![
        Box::new(CasLock::default()),
        Box::new(TicketLock::default()),
        Box::new(Semaphore::default()),
    ];
    for lock in locks {
        let p = mutex_client(lock.as_ref(), 3, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{}: {v}", lock.name());
    }
}

/// MCS with three threads exercises the full queue hand-off chain.
#[test]
fn mcs_verifies_three_threads() {
    let p = mutex_client(&McsLock::default(), 3, 1);
    let r = explore(&p, &vmm());
    assert!(r.is_verified(), "{}", r.verdict);
    // The 3-thread client has hundreds of consistent executions.
    assert!(r.stats.complete_executions > 100, "{}", r.stats);
}

/// Re-acquisition (two rounds per thread) for locks with hand-over state.
#[test]
fn reacquisition_verifies() {
    let locks: Vec<Box<dyn vsync::locks::model::LockModel>> = vec![
        Box::new(TtasLock::default()),
        Box::new(TicketLock::default()),
        Box::new(ClhLock::default()),
    ];
    for lock in locks {
        let p = mutex_client(lock.as_ref(), 2, 2);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{}: {v}", lock.name());
    }
}

/// Targeted mutations: each load-bearing barrier, when relaxed, must break
/// the lock — this is what makes the optimizer's fixpoint meaningful.
#[test]
fn load_bearing_barriers_cannot_be_relaxed() {
    struct Case {
        name: &'static str,
        program: vsync::lang::Program,
    }
    let cases = vec![
        Case {
            name: "caslock release rlx",
            program: mutex_client(
                &CasLock { release_mode: Mode::Rlx, ..CasLock::default() },
                2,
                1,
            ),
        },
        Case {
            name: "ttas xchg rlx",
            program: mutex_client(&TtasLock { xchg_mode: Mode::Rlx, ..TtasLock::default() }, 2, 1),
        },
        Case {
            name: "ticket await rlx",
            program: mutex_client(
                &TicketLock { await_mode: Mode::Rlx, ..TicketLock::default() },
                2,
                1,
            ),
        },
        Case {
            name: "clh await rlx",
            program: mutex_client(&ClhLock { await_mode: Mode::Rlx, ..ClhLock::default() }, 2, 1),
        },
        Case {
            name: "mcs handover rlx",
            program: mutex_client(
                &McsLock { handover_mode: Mode::Rlx, ..McsLock::default() },
                2,
                1,
            ),
        },
        Case {
            name: "semaphore release rlx",
            program: mutex_client(
                &Semaphore { release_mode: Mode::Rlx, ..Semaphore::default() },
                2,
                1,
            ),
        },
    ];
    for case in cases {
        let v = verify(&case.program, &vmm());
        assert!(
            matches!(v, Verdict::Safety(_) | Verdict::AwaitTermination(_)),
            "{}: expected a violation, got {v}",
            case.name
        );
    }
}

/// The same relaxations are harmless under SC: these are weak-memory bugs.
#[test]
fn relaxations_are_fine_under_sc() {
    let p = mutex_client(&TtasLock { xchg_mode: Mode::Rlx, ..TtasLock::default() }, 2, 1);
    assert!(verify(&p, &AmcConfig::with_model(ModelKind::Sc)).is_verified());
}

/// Reader-writer consistency needs both the writer release and the reader
/// acquire.
#[test]
fn rwlock_reader_writer_barriers() {
    assert!(verify(&rwlock_reader_scenario(RwLock::default()), &vmm()).is_verified());
    let broken = RwLock { write_release_mode: Mode::Rlx, ..RwLock::default() };
    assert!(matches!(verify(&rwlock_reader_scenario(broken), &vmm()), Verdict::Safety(_)));
    let broken = RwLock { read_acquire_mode: Mode::Rlx, ..RwLock::default() };
    assert!(matches!(verify(&rwlock_reader_scenario(broken), &vmm()), Verdict::Safety(_)));
}

/// Exploration statistics are self-consistent on a nontrivial program.
#[test]
fn stats_are_coherent() {
    let p = mutex_client(&TtasLock::default(), 2, 1);
    let r = explore(&p, &vmm());
    // Every admitted work item is constructed exactly once (the +1 is the
    // initial graph), and the revisit engine's chains take at least one
    // step per admitted root.
    assert_eq!(r.stats.constructed, r.stats.pushed + 1, "{}", r.stats);
    assert!(r.stats.popped >= r.stats.constructed, "{}", r.stats);
    assert_eq!(
        r.executions.len(),
        0,
        "executions only collected when requested"
    );
    let r = explore(&p, &vmm().collecting());
    assert_eq!(r.executions.len() as u64, r.stats.complete_executions);
    // Each collected execution is complete and consistent.
    for g in &r.executions {
        assert!(g.pending_reads().count() == 0);
        assert!(vsync::model::Vmm.is_consistent(g));
    }
}
