//! Integration tests for the paper's three study cases (§3) — the
//! headline results of the reproduction.

use vsync::core::{explore, verify, AmcConfig, Verdict};
use vsync::graph::Mode;
use vsync::locks::model::{
    dpdk_scenario, huawei_scenario, mutex_client, node_addr, DpdkMcsLock, HuaweiMcsLock,
    LOCKED_OFF,
};
use vsync::model::ModelKind;

fn vmm() -> AmcConfig {
    AmcConfig::with_model(ModelKind::Vmm)
}

/// §3.1: the DPDK v20.05 MCS lock hangs Alice (Fig. 14) — an
/// await-termination violation only visible on weak memory.
#[test]
fn dpdk_bug_is_an_await_termination_violation() {
    let v = verify(&dpdk_scenario(false), &vmm());
    let Verdict::AwaitTermination(ce) = &v else {
        panic!("expected AT violation, got {v}");
    };
    // Alice (thread 0) is stuck polling her own locked flag.
    let alice_locked = node_addr(0) + LOCKED_OFF;
    assert!(ce.graph.pending_reads().any(|(_, loc)| loc == alice_locked));
    // Fig. 14's essence: Bob's handover (locked=0) is mo-before Alice's
    // init (locked=1), so no newer 0 can ever arrive.
    let mo = ce.graph.mo(alice_locked);
    assert_eq!(ce.graph.write_value(*mo.last().unwrap()), 1);
}

/// §3.1: the bug needs a weak memory model (the paper could not reproduce
/// it on hardware; Rmem confirmed it on the ARM model — we cross-check
/// against SC and TSO instead).
#[test]
fn dpdk_bug_absent_under_sc_and_tso() {
    for model in [ModelKind::Sc, ModelKind::Tso] {
        let v = verify(&dpdk_scenario(false), &AmcConfig::with_model(model));
        assert!(v.is_verified(), "{model}: {v}");
    }
}

/// §3.1: release publication + acquire consumption fix the lock.
#[test]
fn dpdk_fix_verifies_everywhere() {
    for model in ModelKind::all() {
        let v = verify(&dpdk_scenario(true), &AmcConfig::with_model(model));
        assert!(v.is_verified(), "{model}: {v}");
    }
}

/// §3.1 full-lock check: the fixed DPDK lock passes the generic client.
#[test]
fn dpdk_fixed_lock_client_verifies() {
    let v = verify(&mutex_client(&DpdkMcsLock::patched(), 2, 1), &vmm());
    assert!(v.is_verified(), "{v}");
}

/// §3.2: the Huawei MCS lock loses an increment (Fig. 19) — a safety
/// violation (data corruption), reproduced as a failing final-state check.
#[test]
fn huawei_bug_is_a_safety_violation() {
    let v = verify(&huawei_scenario(false), &vmm());
    let Verdict::Safety(ce) = &v else {
        panic!("expected lost update, got {v}");
    };
    // The witness's final counter is 1, not 2.
    let counter = vsync::locks::model::COUNTER;
    assert_eq!(ce.graph.final_state().get(&counter), Some(&1));
}

/// §3.2: "porting x86 code to ARM" — under SC (and even TSO) the shipped
/// code is fine; the missing barrier only matters on weaker models.
#[test]
fn huawei_bug_absent_under_sc_and_tso() {
    for model in [ModelKind::Sc, ModelKind::Tso] {
        let v = verify(&huawei_scenario(false), &AmcConfig::with_model(model));
        assert!(v.is_verified(), "{model}: {v}");
    }
}

/// §3.2: the recommended acquire fence fixes the lock, for the scenario
/// and for the full generic client.
#[test]
fn huawei_fix_verifies() {
    assert!(verify(&huawei_scenario(true), &vmm()).is_verified());
    let v = verify(&mutex_client(&HuaweiMcsLock::patched(), 2, 1), &vmm());
    assert!(v.is_verified(), "{v}");
}

/// §3.1 discussion: "the explicit fence at Line 32 is useless and can be
/// removed" — relaxing the DPDK acquire fence in the *fixed* lock keeps it
/// correct.
#[test]
fn dpdk_acquire_fence_is_useless() {
    use vsync::lang::ModeRef;
    let mut p = dpdk_scenario(true);
    let fence_site = p
        .sites()
        .iter()
        .position(|s| s.name == "dpdk.acquire.fence")
        .expect("fence site exists");
    p.set_mode(ModeRef(fence_site as u32), Mode::Rlx);
    let v = verify(&p, &vmm());
    assert!(v.is_verified(), "fence removal should be safe: {v}");
}

/// The buggy and fixed scenarios have disjoint verdicts across all models
/// (sanity matrix of the whole §3 reproduction).
#[test]
fn study_case_matrix() {
    let r = explore(&dpdk_scenario(false), &vmm());
    assert!(!r.is_verified());
    let r = explore(&huawei_scenario(false), &vmm());
    assert!(!r.is_verified());
    let r = explore(&dpdk_scenario(true), &vmm());
    assert!(r.is_verified());
    let r = explore(&huawei_scenario(true), &vmm());
    assert!(r.is_verified());
}
