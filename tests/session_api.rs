//! Integration tests for the push-button `Session` pipeline: the
//! cross-model acceptance matrix, cancellation and deadline budgets,
//! progress streaming, and the structured JSON report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vsync::core::{
    verify, AmcConfig, CancelToken, Inconclusive, OptimizationReport, OptimizationStep,
    OptimizerConfig, Report, Session, StopReason, Verdict,
};
use vsync::core::{ExploreStats, ModelRun};
use vsync::locks::SessionExt as _;
use vsync::model::ModelKind;

/// Acceptance criterion: one `Session::lock("qspinlock", 3, 1)` call over
/// the full model matrix produces per-model verdicts identical to the
/// equivalent sequence of legacy `verify` calls.
#[test]
fn qspinlock_matrix_matches_legacy_verify_sequence() {
    let report = Session::lock("qspinlock", 3, 1).models(ModelKind::all()).workers(8).run();
    assert_eq!(report.models.len(), 3);
    assert_eq!(report.program, "qspinlock");
    let client = vsync::locks::registry::entry("qspinlock").unwrap().client(3, 1);
    for run in &report.models {
        let legacy = verify(&client, &AmcConfig::with_model(run.model).with_workers(8));
        assert_eq!(
            std::mem::discriminant(&run.verdict),
            std::mem::discriminant(&legacy),
            "{}: session={} legacy={legacy}",
            run.model,
            run.verdict
        );
        assert!(run.verdict.is_verified(), "{}: {}", run.model, run.verdict);
        assert!(run.stats.complete_executions > 0);
    }
    assert!(report.is_verified());
}

/// A `CancelToken` fired before the run interrupts deterministically for
/// any worker count: `Interrupted(Cancelled)` with zero items processed.
#[test]
fn prefired_cancel_token_is_deterministic_across_worker_counts() {
    for workers in [1, 2, 8] {
        let session = Session::lock("mcs", 3, 1).workers(workers);
        session.cancel_token().cancel();
        let report = session.run();
        let run = &report.models[0];
        assert!(
            matches!(
                run.verdict,
                Verdict::Inconclusive(Inconclusive { reason: StopReason::Cancelled, .. })
            ),
            "workers={workers}: {}",
            run.verdict
        );
        assert_eq!(run.stats.popped, 0, "workers={workers}: work was processed");
        assert!(report.is_interrupted());
        assert!(!report.is_verified());
    }
}

/// A token fired mid-run (from the progress callback, i.e. from inside
/// the hot loop) still lands on `Interrupted` for any worker count.
#[test]
fn midrun_cancel_interrupts_for_all_worker_counts() {
    for workers in [1, 2, 8] {
        let session = Session::lock("mcs", 3, 1).workers(workers).progress_interval(Duration::ZERO);
        let token = session.cancel_token();
        let report = session.on_progress(move |_| token.cancel()).run();
        let run = &report.models[0];
        assert!(
            matches!(
                run.verdict,
                Verdict::Inconclusive(Inconclusive { reason: StopReason::Cancelled, .. })
            ),
            "workers={workers}: {}",
            run.verdict
        );
        // The run did start: some items were popped before the cancel.
        assert!(run.stats.popped > 0, "workers={workers}");
    }
}

/// A zero deadline never hangs: every worker count reports
/// `Interrupted(DeadlineExceeded)` without processing anything.
#[test]
fn zero_deadline_never_hangs() {
    for workers in [1, 2, 8] {
        let report =
            Session::lock("qspinlock", 3, 1).workers(workers).deadline(Duration::ZERO).run();
        let run = &report.models[0];
        assert!(
            matches!(
                run.verdict,
                Verdict::Inconclusive(Inconclusive { reason: StopReason::DeadlineExceeded, .. })
            ),
            "workers={workers}: {}",
            run.verdict
        );
        assert_eq!(run.stats.popped, 0, "workers={workers}");
    }
}

/// A deadline covers the whole matrix: once expired, later models are
/// reported interrupted too (nothing silently runs to completion).
#[test]
fn expired_deadline_covers_remaining_matrix_entries() {
    let report =
        Session::lock("ttas", 2, 1).models(ModelKind::all()).deadline(Duration::ZERO).run();
    assert_eq!(report.models.len(), 3);
    for run in &report.models {
        assert!(
            matches!(
                run.verdict,
                Verdict::Inconclusive(Inconclusive { reason: StopReason::DeadlineExceeded, .. })
            ),
            "{}: {}",
            run.model,
            run.verdict
        );
    }
}

/// Progress snapshots stream from the hot loop with plausible,
/// monotonically growing counters and the right model stamp.
#[test]
fn progress_snapshots_stream_from_the_hot_loop() {
    let snapshots = Arc::new(AtomicU64::new(0));
    let max_popped = Arc::new(AtomicU64::new(0));
    let (s, m) = (snapshots.clone(), max_popped.clone());
    let report = Session::lock("ttas", 2, 2)
        .progress_interval(Duration::ZERO)
        .on_progress(move |p| {
            assert_eq!(p.model, ModelKind::Vmm);
            assert_eq!(p.workers, 1);
            s.fetch_add(1, Ordering::Relaxed);
            m.fetch_max(p.stats.popped, Ordering::Relaxed);
        })
        .run();
    assert!(report.is_verified());
    let n = snapshots.load(Ordering::Relaxed);
    assert!(n > 0, "no snapshots emitted");
    let seen = max_popped.load(Ordering::Relaxed);
    assert!(
        seen <= report.models[0].stats.popped,
        "snapshot popped {seen} exceeds final {}",
        report.models[0].stats.popped
    );
    assert!(seen > 0, "snapshots never carried counters");
}

/// Interrupted optimization keeps the verified-so-far assignment and is
/// flagged, both in the report struct and the JSON.
#[test]
fn cancel_during_optimization_is_reported() {
    let session = Session::lock("ttas", 2, 1)
        .optimize(OptimizerConfig::default())
        .progress_interval(Duration::ZERO);
    let token = session.cancel_token();
    // Fire during the *verification* phase: optimization never starts.
    let report = session.on_progress(move |_| token.cancel()).run();
    assert!(report.is_interrupted());
    assert!(report.models[0].optimization.is_none());

    // A token attached to the OptimizerConfig itself (the caller-supplied
    // channel), pre-fired: verification completes, the optimizer stops
    // deterministically before its first relaxation attempt.
    let token = CancelToken::new();
    token.cancel();
    let report =
        Session::lock("ttas", 2, 1).optimize(OptimizerConfig::default().with_cancel(token)).run();
    assert!(report.is_interrupted(), "{}", report.to_json());
    let opt = report.models[0].optimization.as_ref().expect("optimizer ran");
    assert!(opt.interrupted);
    assert!(opt.verified, "the session-verified baseline stays verified");
    assert!(opt.steps.is_empty(), "no relaxation was attempted after the cancel");
}

/// Session-produced JSON is well-formed, has the documented stable key
/// order, and round-trips through the bench JSON tooling.
#[test]
fn session_json_is_parseable_and_stable() {
    let report = Session::lock("ttas", 2, 1).models(ModelKind::all()).run();
    let json = report.to_json();
    let v = vsync_bench::json::parse(&json).expect("valid JSON");
    assert_eq!(v.keys(), vec!["program", "verified", "interrupted", "elapsed_ms", "models"]);
    assert_eq!(v.get("program").unwrap().as_str(), Some("ttas"));
    assert_eq!(v.get("verified").unwrap().as_bool(), Some(true));
    let models = v.get("models").unwrap().items();
    assert_eq!(models.len(), 3);
    for m in models {
        assert_eq!(
            m.keys(),
            vec![
                "model",
                "verdict",
                "stop_reason",
                "message",
                "counterexample",
                "elapsed_ms",
                "stats",
                "optimization"
            ]
        );
        assert_eq!(m.get("verdict").unwrap().as_str(), Some("verified"));
        assert_eq!(
            m.get("stats").unwrap().keys(),
            vec![
                "popped",
                "pushed",
                "constructed",
                "duplicates",
                "symmetry_pruned",
                "inconsistent",
                "wasteful",
                "revisits",
                "complete_executions",
                "blocked_graphs",
                "events",
                "frontier_dropped",
                "probes",
                "phases"
            ]
        );
    }
    // Round-trip: re-serializing the parsed value parses to the same tree.
    let reparsed = vsync_bench::json::parse(&v.to_string()).expect("round-trip");
    assert_eq!(v, reparsed);
}

/// Golden test: a hand-built report with fixed counters serializes to
/// exactly this string. Catches accidental schema or key-order drift.
#[test]
fn report_json_golden() {
    let mut pb = vsync::lang::ProgramBuilder::new("golden");
    pb.thread(|t| {
        t.store(0x10, 1u64, ("site.a", vsync::graph::Mode::Sc));
    });
    let program = pb.build().unwrap();
    let summary = program.barrier_summary();
    let report = Report {
        program: "golden \"lock\"".to_owned(),
        elapsed: Duration::from_micros(1500),
        models: vec![
            ModelRun {
                model: ModelKind::Sc,
                verdict: Verdict::Verified,
                stats: ExploreStats {
                    popped: 7,
                    pushed: 6,
                    constructed: 7,
                    complete_executions: 2,
                    events: 40,
                    ..Default::default()
                },
                elapsed: Duration::from_micros(1000),
                executions: Vec::new(),
                optimization: Some(OptimizationReport {
                    program: program.clone(),
                    verified: true,
                    interrupted: false,
                    error: None,
                    strategy: vsync::core::OptimizeStrategy::Adaptive,
                    steps: vec![OptimizationStep {
                        site: 0,
                        from: vsync::graph::Mode::Sc,
                        to: vsync::graph::Mode::Rlx,
                        accepted: true,
                    }],
                    verifications: 3,
                    explorations: 2,
                    explored_graphs: 40,
                    cache_hits: 1,
                    before: summary,
                    after: summary,
                    elapsed: Duration::from_micros(250),
                }),
            },
            ModelRun {
                model: ModelKind::Vmm,
                verdict: Verdict::Fault("budget\nblown".to_owned()),
                stats: ExploreStats::default(),
                elapsed: Duration::from_micros(500),
                executions: Vec::new(),
                optimization: None,
            },
        ],
    };
    let expected = concat!(
        "{\"program\": \"golden \\\"lock\\\"\", \"verified\": false, ",
        "\"interrupted\": false, \"elapsed_ms\": 1.500, \"models\": [",
        "{\"model\": \"SC\", \"verdict\": \"verified\", \"stop_reason\": null, \"message\": null, ",
        "\"counterexample\": null, \"elapsed_ms\": 1.000, ",
        "\"stats\": {\"popped\": 7, \"pushed\": 6, \"constructed\": 7, \"duplicates\": 0, ",
        "\"symmetry_pruned\": 0, \"inconsistent\": 0, \"wasteful\": 0, \"revisits\": 0, ",
        "\"complete_executions\": 2, \"blocked_graphs\": 0, \"events\": 40, ",
        "\"frontier_dropped\": 0, \"probes\": 0, \"phases\": {}}, ",
        "\"optimization\": {\"verified\": true, \"interrupted\": false, \"error\": null, ",
        "\"strategy\": \"adaptive\", \"verifications\": 3, ",
        "\"explorations\": 2, \"explored_graphs\": 40, \"cache_hits\": 1, ",
        "\"elapsed_ms\": 0.250, ",
        "\"before\": {\"rlx\": 0, \"acq\": 0, \"rel\": 0, \"acq_rel\": 0, \"sc\": 1}, ",
        "\"after\": {\"rlx\": 0, \"acq\": 0, \"rel\": 0, \"acq_rel\": 0, \"sc\": 1}, ",
        "\"steps\": [{\"site\": \"site.a\", \"from\": \"sc\", \"to\": \"rlx\", ",
        "\"accepted\": true}]}}, ",
        "{\"model\": \"VMM\", \"verdict\": \"fault\", \"stop_reason\": null, ",
        "\"message\": \"budget\\nblown\", ",
        "\"counterexample\": null, \"elapsed_ms\": 0.500, ",
        "\"stats\": {\"popped\": 0, \"pushed\": 0, \"constructed\": 0, \"duplicates\": 0, ",
        "\"symmetry_pruned\": 0, \"inconsistent\": 0, \"wasteful\": 0, \"revisits\": 0, ",
        "\"complete_executions\": 0, \"blocked_graphs\": 0, \"events\": 0, ",
        "\"frontier_dropped\": 0, \"probes\": 0, \"phases\": {}}, ",
        "\"optimization\": null}]}",
    );
    assert_eq!(report.to_json(), expected);
    // And it is valid, round-trippable JSON.
    let v = vsync_bench::json::parse(&report.to_json()).expect("valid");
    assert_eq!(vsync_bench::json::parse(&v.to_string()).unwrap(), v);
}

/// A violating program surfaces its counterexample in the JSON.
#[test]
fn json_carries_counterexamples_for_violations() {
    let report =
        Session::new(vsync::locks::model::huawei_scenario(false)).model(ModelKind::Vmm).run();
    assert!(!report.is_verified());
    let v = vsync_bench::json::parse(&report.to_json()).expect("valid JSON");
    let m = &v.get("models").unwrap().items()[0];
    assert_eq!(m.get("verdict").unwrap().as_str(), Some("safety"));
    assert!(m.get("message").unwrap().as_str().is_some());
    let ce = m.get("counterexample").unwrap().as_str().expect("witness rendered");
    assert!(!ce.is_empty());
}

/// The session honors `max_graphs` budgets: the run degrades to an
/// inconclusive verdict whose stop reason survives into the JSON.
#[test]
fn max_graphs_budget_is_inconclusive() {
    let report = Session::lock("ttas", 2, 1).max_graphs(2).run();
    assert!(matches!(
        report.models[0].verdict,
        Verdict::Inconclusive(Inconclusive { reason: StopReason::MaxGraphs, .. })
    ));
    assert!(report.is_interrupted());
    let v = vsync_bench::json::parse(&report.to_json()).unwrap();
    let m = &v.get("models").unwrap().items()[0];
    assert_eq!(m.get("verdict").unwrap().as_str(), Some("inconclusive"));
    assert_eq!(m.get("stop_reason").unwrap().as_str(), Some("max_graphs"));
}
