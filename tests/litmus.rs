//! Classic weak-memory litmus tests, cross-checked against all three
//! memory models with exact consistent-execution counts.
//!
//! These pin down the semantics of the whole stack (language → replay →
//! explorer → model): a change that silently weakens or strengthens any
//! layer shifts these counts.

use vsync::core::{count_executions, verify, AmcConfig, Verdict};
use vsync::graph::Mode;
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::model::ModelKind;

const X: u64 = 0x10;
const Y: u64 = 0x20;

fn counts(p: &Program) -> (u64, u64, u64) {
    let run = |m: ModelKind| count_executions(p, &AmcConfig::with_model(m));
    (run(ModelKind::Sc), run(ModelKind::Tso), run(ModelKind::Vmm))
}

/// [`counts`] with thread-symmetry reduction disabled: the naive per-twin
/// execution counts, retained as the reference oracle for the orbit
/// counts above (all other litmus shapes have asymmetric threads, so
/// their counts are identical either way).
fn counts_naive(p: &Program) -> (u64, u64, u64) {
    let run = |m: ModelKind| count_executions(p, &AmcConfig::with_model(m).without_symmetry());
    (run(ModelKind::Sc), run(ModelKind::Tso), run(ModelKind::Vmm))
}

/// SB: store buffering. rf combinations: 2x2 = 4; SC forbids (0,0).
#[test]
fn sb_relaxed() {
    let mut pb = ProgramBuilder::new("sb");
    for (a, b) in [(X, Y), (Y, X)] {
        pb.thread(move |t| {
            t.store(a, 1u64, Mode::Rlx);
            t.load(Reg(0), b, Mode::Rlx);
        });
    }
    assert_eq!(counts(&pb.build().unwrap()), (3, 4, 4));
}

/// SB with SC fences: everyone agrees with SC.
#[test]
fn sb_with_sc_fences() {
    let mut pb = ProgramBuilder::new("sb+f");
    for (a, b) in [(X, Y), (Y, X)] {
        pb.thread(move |t| {
            t.store(a, 1u64, Mode::Rlx);
            t.fence(Mode::Sc);
            t.load(Reg(0), b, Mode::Rlx);
        });
    }
    assert_eq!(counts(&pb.build().unwrap()), (3, 3, 3));
}

/// MP: message passing with relaxed flag. The stale-data outcome exists
/// only under VMM (TSO keeps both store order and load order).
#[test]
fn mp_relaxed() {
    let mut pb = ProgramBuilder::new("mp");
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rlx); // data
        t.store(Y, 1u64, Mode::Rlx); // flag
    });
    pb.thread(|t| {
        t.load(Reg(0), Y, Mode::Rlx);
        t.load(Reg(1), X, Mode::Rlx);
    });
    // rf choices: flag in {0,1} x data in {0,1} = 4 candidates.
    // SC/TSO forbid flag=1 && data=0.
    assert_eq!(counts(&pb.build().unwrap()), (3, 3, 4));
}

/// MP with release/acquire: the stale outcome disappears under VMM too.
#[test]
fn mp_release_acquire() {
    let mut pb = ProgramBuilder::new("mp+ra");
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rlx);
        t.store(Y, 1u64, Mode::Rel);
    });
    pb.thread(|t| {
        t.load(Reg(0), Y, Mode::Acq);
        t.load(Reg(1), X, Mode::Rlx);
    });
    assert_eq!(counts(&pb.build().unwrap()), (3, 3, 3));
}

/// LB: load buffering. The po∪rf cycle (both read 1) is forbidden by all
/// our models (VMM is RC11-style; IMM would allow it without deps — a
/// documented substitution, DESIGN.md §5).
#[test]
fn lb_relaxed() {
    let mut pb = ProgramBuilder::new("lb");
    for (a, b) in [(X, Y), (Y, X)] {
        pb.thread(move |t| {
            t.load(Reg(0), a, Mode::Rlx);
            t.store(b, 1u64, Mode::Rlx);
        });
    }
    assert_eq!(counts(&pb.build().unwrap()), (3, 3, 3));
}

/// CoRR: read-read coherence. Two reads of the same location never
/// observe writes in anti-mo order, under every model.
#[test]
fn corr_coherence() {
    let mut pb = ProgramBuilder::new("corr");
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rlx);
    });
    pb.thread(|t| {
        t.store(X, 2u64, Mode::Rlx);
    });
    pb.thread(|t| {
        t.load(Reg(0), X, Mode::Rlx);
        t.load(Reg(1), X, Mode::Rlx);
        // If we saw 1 then something, and both writes are ordered 1 -> 2,
        // we can never see (2, 1) / (1, 0) / (2, 0).
    });
    // Executions: mo orders (2) x reader rf pairs consistent with each mo.
    // Per mo [w1,w2]: (r0,r1) in {(0,0),(0,1),(0,2),(1,1),(1,2),(2,2)} = 6.
    // Total 12 per model (coherence is model-independent here).
    assert_eq!(counts(&pb.build().unwrap()), (12, 12, 12));
}

/// 2+2W: write-write reordering. All models agree here because mo is
/// per-location total anyway; counts are the two mo orders per location
/// minus cyclically-forbidden combinations under SC.
#[test]
fn two_plus_two_w() {
    let mut pb = ProgramBuilder::new("2+2w");
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rlx);
        t.store(Y, 2u64, Mode::Rlx);
    });
    pb.thread(|t| {
        t.store(Y, 1u64, Mode::Rlx);
        t.store(X, 2u64, Mode::Rlx);
    });
    let (sc, tso, vmm) = counts(&pb.build().unwrap());
    // 4 mo combinations exist; SC forbids the both-"1 last" cycle.
    assert_eq!(sc, 3);
    assert_eq!(tso, 3, "TSO keeps W->W order");
    assert_eq!(vmm, 4, "VMM allows both anti-po mo orders");
}

/// IRIW: independent reads of independent writes. With SC accesses the
/// readers must agree on an order; relaxed readers may disagree.
#[test]
fn iriw() {
    let build = |mode: Mode| {
        let mut pb = ProgramBuilder::new("iriw");
        pb.thread(move |t| {
            t.store(X, 1u64, mode);
        });
        pb.thread(move |t| {
            t.store(Y, 1u64, mode);
        });
        pb.thread(move |t| {
            t.load(Reg(0), X, mode);
            t.load(Reg(1), Y, mode);
        });
        pb.thread(move |t| {
            t.load(Reg(0), Y, mode);
            t.load(Reg(1), X, mode);
        });
        pb.build().unwrap()
    };
    let relaxed = count_executions(&build(Mode::Rlx), &AmcConfig::with_model(ModelKind::Vmm));
    let sc_accesses = count_executions(&build(Mode::Sc), &AmcConfig::with_model(ModelKind::Vmm));
    let under_sc = count_executions(&build(Mode::Rlx), &AmcConfig::with_model(ModelKind::Sc));
    assert_eq!(relaxed, 16, "all rf combinations");
    assert!(sc_accesses < relaxed, "SC accesses forbid disagreement");
    assert_eq!(sc_accesses, under_sc, "psc on all-SC events == SC");
}

/// Atomicity: two unconditional RMWs on one location always chain. The
/// two chains are thread-relabelings of each other: one canonical orbit
/// under symmetry reduction, two executions for the naive reference
/// oracle (`--no-symmetry`).
#[test]
fn rmw_chain() {
    let mut pb = ProgramBuilder::new("fai2");
    for _ in 0..2 {
        pb.thread(|t| {
            t.fetch_add(Reg(0), X, 1u64, Mode::Rlx);
        });
    }
    pb.final_check(X, vsync::lang::Test::eq(2u64), "both adds applied");
    let p = pb.build().unwrap();
    for model in ModelKind::all() {
        let v = verify(&p, &AmcConfig::with_model(model));
        assert!(v.is_verified(), "{model}: {v}");
    }
    assert_eq!(counts(&p), (1, 1, 1), "canonical orbits");
    assert_eq!(counts_naive(&p), (2, 2, 2), "relabeled twins, reference oracle");
}

/// A CAS that must fail in half the executions: count both branches.
#[test]
fn cas_branches() {
    let mut pb = ProgramBuilder::new("cas-race");
    for _ in 0..2 {
        pb.thread(|t| {
            t.cas(Reg(0), X, 0u64, 1u64, Mode::AcqRel);
        });
    }
    let p = pb.build().unwrap();
    // One thread wins (reads 0), the loser reads the winner's 1 (its CAS
    // fails, no write). 2 executions by symmetry... plus the loser may
    // also read the init 0? No: atomicity forbids two successful CASes,
    // and a failed CAS reading 0 would have succeeded. So exactly 2 —
    // which are relabelings of each other: 1 canonical orbit.
    assert_eq!(counts(&p), (1, 1, 1), "canonical orbits");
    assert_eq!(counts_naive(&p), (2, 2, 2), "relabeled twins, reference oracle");
}

/// Fences must not be anarchically removed: Dekker-style mutual exclusion
/// with SC fences verifies; without them it must fail.
#[test]
fn dekker_needs_fences() {
    let build = |with_fences: bool| {
        let mut pb = ProgramBuilder::new("dekker");
        for (me, other) in [(X, Y), (Y, X)] {
            pb.thread(move |t| {
                let skip = t.label();
                t.store(me, 1u64, Mode::Rlx);
                if with_fences {
                    t.fence(Mode::Sc);
                }
                t.load(Reg(0), other, Mode::Rlx);
                t.jmp_if(Reg(0), vsync::lang::Test::ne(0u64), skip);
                // Critical section: increment the counter.
                t.load(Reg(1), 0x30, Mode::Rlx);
                t.add(Reg(2), Reg(1), 1u64);
                t.store(0x30, Reg(2), Mode::Rlx);
                t.bind(skip);
            });
        }
        // At most one thread may enter: counter <= 1.
        pb.final_check(0x30, vsync::lang::Test::cmp(vsync::lang::Cmp::Le, 1u64), "mutual exclusion");
        pb.build().unwrap()
    };
    let v = verify(&build(true), &AmcConfig::with_model(ModelKind::Vmm));
    assert!(v.is_verified(), "{v}");
    let v = verify(&build(false), &AmcConfig::with_model(ModelKind::Vmm));
    assert!(matches!(v, Verdict::Safety(_)), "got {v}");
}
