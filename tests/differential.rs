//! Differential tests of the consistency fast path and the parallel
//! explorer:
//!
//! * the closure-free fast checkers must agree with the retained naive
//!   closure-based reference checkers on randomized execution graphs —
//!   including inconsistent, cyclic, pending-read and RMW-violating ones;
//! * `count_executions` must be identical for `workers ∈ {1, 2, 8}` and
//!   for fast vs. reference checking across the lock catalog;
//! * bug-finding scenarios must report the same verdict kind under every
//!   configuration;
//! * the revisit-driven search must agree with the retained
//!   enumerate-and-dedup reference search on randomized programs —
//!   verdicts and canonical-orbit complete-execution counts across
//!   worker counts and symmetry settings — and reproduce the identical
//!   violation messages on the broken study cases.
//!
//! The generator is a deterministic SplitMix64 stream; failures print the
//! offending seed and graph.

use std::collections::BTreeMap;

use vsync::core::{explore, AmcConfig};
use vsync::graph::{EventId, EventKind, ExecutionGraph, Mode, RfSource};
use vsync::model::ModelKind;

/// SplitMix64: tiny, deterministic, good-enough mixing for test generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

const LOCS: [u64; 2] = [0x10, 0x20];

fn mode(rng: &mut Rng, kind: u64) -> Mode {
    // kind 0 = read, 1 = write, 2 = fence — keep modes valid-ish but also
    // include every mode for fences and RMW halves.
    let all = [Mode::Rlx, Mode::Acq, Mode::Rel, Mode::AcqRel, Mode::Sc];
    match kind {
        0 => [Mode::Rlx, Mode::Acq, Mode::Sc][rng.below(3) as usize],
        1 => [Mode::Rlx, Mode::Rel, Mode::Sc][rng.below(3) as usize],
        _ => all[rng.below(5) as usize],
    }
}

/// Generate an arbitrary (frequently inconsistent) execution graph:
/// random writes with random `mo` insertion points, reads from arbitrary
/// same-location writes (including *later* ones — porf cycles), RMW pairs
/// with random sources (atomicity violations), pending await reads, and
/// fences of every mode. Only the structural invariants the checkers
/// genuinely require are maintained (RMW write parts follow their read
/// parts; every write is in `mo`; rf sources exist).
fn random_graph(rng: &mut Rng) -> ExecutionGraph {
    let n_threads = 1 + rng.below(3) as usize;
    // First pass: lay out per-thread event shapes so reads can later pick
    // any write in the whole graph (forward references included).
    #[derive(Clone, Copy)]
    enum Shape {
        Write { loc: u64, val: u64 },
        RmwPair { loc: u64, val: u64 },
        Read { loc: u64 },
        PendingRead { loc: u64 },
        Fence,
    }
    let mut shapes: Vec<Vec<Shape>> = Vec::new();
    for _ in 0..n_threads {
        let len = rng.below(5);
        let mut tshapes = Vec::new();
        for _ in 0..len {
            let loc = LOCS[rng.below(2) as usize];
            let val = rng.below(3);
            tshapes.push(match rng.below(10) {
                0..=2 => Shape::Write { loc, val },
                3 => Shape::RmwPair { loc, val },
                4..=6 => Shape::Read { loc },
                7 => Shape::PendingRead { loc },
                _ => Shape::Fence,
            });
        }
        shapes.push(tshapes);
    }
    // Second pass: build the graph. Writes land at a random mo position.
    let mut g = ExecutionGraph::new(n_threads, BTreeMap::new());
    let mut write_ids: Vec<(u64, EventId)> = Vec::new(); // (loc, id)
    for (t, tshapes) in shapes.iter().enumerate() {
        for s in tshapes {
            match *s {
                Shape::Write { loc, val } => {
                    let m = mode(rng, 1);
                    let id = g.push_event(
                        t as u32,
                        EventKind::Write { loc, val, mode: m, rmw: false },
                    );
                    let pos = rng.below(g.mo(loc).len() as u64 + 1) as usize;
                    g.insert_mo(loc, id, pos);
                    write_ids.push((loc, id));
                }
                Shape::RmwPair { loc, val } => {
                    let m = mode(rng, 2);
                    g.push_event(
                        t as u32,
                        EventKind::Read {
                            loc,
                            mode: m,
                            rf: RfSource::Write(EventId::Init(loc)), // patched below
                            rmw: true,
                            awaiting: false,
                        },
                    );
                    let id = g.push_event(
                        t as u32,
                        EventKind::Write { loc, val, mode: m, rmw: true },
                    );
                    let pos = rng.below(g.mo(loc).len() as u64 + 1) as usize;
                    g.insert_mo(loc, id, pos);
                    write_ids.push((loc, id));
                }
                Shape::Read { loc } => {
                    g.push_event(
                        t as u32,
                        EventKind::Read {
                            loc,
                            mode: mode(rng, 0),
                            rf: RfSource::Write(EventId::Init(loc)), // patched below
                            rmw: false,
                            awaiting: rng.chance(25),
                        },
                    );
                }
                Shape::PendingRead { loc } => {
                    g.push_event(
                        t as u32,
                        EventKind::Read {
                            loc,
                            mode: mode(rng, 0),
                            rf: RfSource::Bottom,
                            rmw: false,
                            awaiting: true,
                        },
                    );
                }
                Shape::Fence => {
                    g.push_event(t as u32, EventKind::Fence { mode: mode(rng, 2) });
                }
            }
        }
    }
    // Third pass: point every resolved read at a random same-location
    // write — possibly its own thread's later write (porf cycle), possibly
    // a write another RMW already consumed (atomicity violation).
    let reads: Vec<(EventId, u64)> = g
        .reads()
        .filter(|(_, _, rf)| !rf.is_bottom())
        .map(|(id, loc, _)| (id, loc))
        .collect();
    for (r, loc) in reads {
        let candidates: Vec<EventId> = std::iter::once(EventId::Init(loc))
            .chain(write_ids.iter().filter(|(l, _)| *l == loc).map(|(_, id)| *id))
            .filter(|w| *w != r)
            .collect();
        let w = candidates[rng.below(candidates.len() as u64) as usize];
        g.set_rf(r, RfSource::Write(w));
    }
    g
}

/// The fast and reference checkers must agree on every random graph, for
/// every model.
#[test]
fn fast_checker_agrees_with_reference_on_random_graphs() {
    let mut agree = [0u64; 3];
    for seed in 0..600u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851f42d4c957f2d).wrapping_add(0xb5ad4eceda1ce2a9));
        let g = random_graph(&mut rng);
        for (k, kind) in ModelKind::all().into_iter().enumerate() {
            let fast = kind.model().is_consistent(&g);
            let naive = kind.model().is_consistent_reference(&g);
            assert_eq!(
                fast,
                naive,
                "{kind} fast/reference divergence at seed {seed} on:\n{}",
                g.render()
            );
            agree[k] += fast as u64;
        }
    }
    // Sanity: the generator produces a healthy mix of consistent and
    // inconsistent graphs for every model (otherwise the test is vacuous).
    for (k, kind) in ModelKind::all().into_iter().enumerate() {
        assert!(
            agree[k] > 50 && agree[k] < 550,
            "{kind}: degenerate generator, {} / 600 consistent",
            agree[k]
        );
    }
}

/// `count_executions` is identical for every worker count and for fast vs
/// reference checking, across the lock catalog.
#[test]
fn worker_counts_and_checkers_preserve_catalog_counts() {
    use vsync::locks::model::{mutex_client, CasLock, McsLock, Qspinlock, TicketLock, TtasLock};
    let catalog: Vec<(&str, vsync::lang::Program)> = vec![
        ("caslock-2t", mutex_client(&CasLock::default(), 2, 1)),
        ("ttas-2t", mutex_client(&TtasLock::default(), 2, 1)),
        ("ticket-2t", mutex_client(&TicketLock::default(), 2, 1)),
        ("mcs-2t", mutex_client(&McsLock::default(), 2, 1)),
        ("qspinlock-2t", mutex_client(&Qspinlock, 2, 1)),
    ];
    for (name, p) in catalog {
        let base = explore(&p, &AmcConfig::default());
        assert!(base.is_verified(), "{name}: {}", base.verdict);
        let reference = explore(&p, &AmcConfig::default().with_reference_checker());
        assert!(reference.is_verified(), "{name} (reference): {}", reference.verdict);
        assert_eq!(
            base.stats.complete_executions, reference.stats.complete_executions,
            "{name}: fast vs reference executions"
        );
        assert_eq!(base.stats.popped, reference.stats.popped, "{name}: fast vs reference popped");
        for workers in [2usize, 8] {
            let r = explore(&p, &AmcConfig::default().with_workers(workers));
            assert!(r.is_verified(), "{name} workers={workers}: {}", r.verdict);
            assert_eq!(
                r.stats.complete_executions, base.stats.complete_executions,
                "{name}: workers={workers} executions"
            );
            assert_eq!(
                r.stats.popped, base.stats.popped,
                "{name}: workers={workers} popped"
            );
        }
    }
}

/// Bug-finding verdict kinds are stable across workers and checkers.
#[test]
fn study_case_verdicts_stable_across_configurations() {
    use vsync::core::Verdict;
    use vsync::locks::model::{dpdk_scenario, huawei_scenario};
    let kind_of = |v: &Verdict| match v {
        Verdict::Verified => "verified",
        Verdict::Safety(_) => "safety",
        Verdict::AwaitTermination(_) => "await-termination",
        Verdict::Fault(_) => "fault",
        Verdict::Inconclusive(_) => "inconclusive",
        Verdict::Error(_) => "error",
    };
    for (name, p) in [("dpdk", dpdk_scenario(false)), ("huawei", huawei_scenario(false))] {
        let base = explore(&p, &AmcConfig::default());
        let base_kind = kind_of(&base.verdict);
        assert_ne!(base_kind, "verified", "{name} is a bug scenario");
        let reference = explore(&p, &AmcConfig::default().with_reference_checker());
        assert_eq!(kind_of(&reference.verdict), base_kind, "{name}: reference");
        for workers in [2usize, 8] {
            let r = explore(&p, &AmcConfig::default().with_workers(workers));
            assert_eq!(kind_of(&r.verdict), base_kind, "{name}: workers={workers}");
        }
    }
}

/// The fixed study-case variants verify under every configuration.
#[test]
fn fixed_study_cases_verify_in_parallel() {
    use vsync::locks::model::{dpdk_scenario, huawei_scenario};
    for (name, p) in [("dpdk", dpdk_scenario(true)), ("huawei", huawei_scenario(true))] {
        for workers in [1usize, 4] {
            let r = explore(&p, &AmcConfig::default().with_workers(workers));
            assert!(r.is_verified(), "{name} workers={workers}: {}", r.verdict);
        }
    }
}

/// One tiny random straight-line program: 1–2 threads, 1–3 operations
/// each over two locations (kept small so the enumerate reference stays
/// fast in debug builds).
fn random_program(rng: &mut Rng) -> vsync::lang::Program {
    use vsync::lang::{ProgramBuilder, Reg};
    let mut pb = ProgramBuilder::new("random");
    for _ in 0..1 + rng.below(2) {
        let ops: Vec<u64> = (0..1 + rng.below(3)).map(|_| rng.next()).collect();
        pb.thread(move |t| {
            for (i, op) in ops.iter().enumerate() {
                let loc = LOCS[(op >> 8) as usize % LOCS.len()];
                let val = 1 + (op >> 16) % 3;
                let r = Reg((i % 8) as u8);
                match op % 5 {
                    0 => t.load(r, loc, mode(&mut Rng(*op), 0)),
                    1 => t.store(loc, val, mode(&mut Rng(*op), 1)),
                    2 => t.fetch_add(r, loc, val, mode(&mut Rng(*op), 2)),
                    3 => t.cas(r, loc, (op >> 24) % 2, val, mode(&mut Rng(*op), 2)),
                    _ => t.fence(mode(&mut Rng(*op), 2)),
                };
            }
        });
    }
    pb.build().expect("generated program is well-formed")
}

/// The revisit-driven search agrees with the enumerate-and-dedup
/// reference search on 600 random programs: identical verdicts,
/// complete-execution counts (canonical-orbit counts under symmetry,
/// naive counts without) and blocked-graph counts. Each seed cycles
/// through the model matrix, the revisit worker counts {1, 2, 8} and
/// both symmetry settings; the enumerate oracle always runs
/// sequentially, so this also rechecks worker-count independence.
#[test]
fn revisit_agrees_with_enumerate_on_random_programs() {
    for seed in 0..600u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851f42d4c957f2d).wrapping_add(0x9e3779b97f4a7c15));
        let p = random_program(&mut rng);
        let model = ModelKind::all()[seed as usize % 3];
        let workers = [1usize, 2, 8][(seed / 3) as usize % 3];
        let symmetry = seed % 2 == 0;
        let cfg = AmcConfig::with_model(model).with_symmetry(symmetry);
        let reference = explore(&p, &cfg.clone().with_reference_search());
        let revisit = explore(&p, &cfg.with_workers(workers));
        let tag = format!("seed {seed} ({model}, workers={workers}, symmetry={symmetry})");
        assert_eq!(
            std::mem::discriminant(&revisit.verdict),
            std::mem::discriminant(&reference.verdict),
            "{tag}: {} vs {}",
            revisit.verdict,
            reference.verdict
        );
        assert_eq!(
            revisit.stats.complete_executions, reference.stats.complete_executions,
            "{tag}: complete executions"
        );
        assert_eq!(
            revisit.stats.blocked_graphs, reference.stats.blocked_graphs,
            "{tag}: blocked graphs"
        );
    }
}

/// Both searches find the *identical* violation message on the broken
/// study cases, for every worker count and symmetry setting: the safety
/// counterexample (and its rendered assertion message) is not an artifact
/// of the search order.
#[test]
fn revisit_matches_enumerate_violation_messages_on_study_cases() {
    use vsync::core::Verdict;
    use vsync::locks::model::{dpdk_scenario, huawei_scenario};
    let msg_of = |name: &str, v: &Verdict| match v {
        Verdict::Safety(ce) | Verdict::AwaitTermination(ce) => ce.message.clone(),
        v => panic!("{name}: broken study case must violate, got {v}"),
    };
    for (name, p) in [("dpdk", dpdk_scenario(false)), ("huawei", huawei_scenario(false))] {
        for symmetry in [true, false] {
            let cfg = AmcConfig::default().with_symmetry(symmetry);
            let reference = explore(&p, &cfg.clone().with_reference_search());
            let expected = msg_of(name, &reference.verdict);
            for workers in [1usize, 2, 8] {
                let r = explore(&p, &cfg.clone().with_workers(workers));
                assert_eq!(
                    msg_of(name, &r.verdict),
                    expected,
                    "{name}: workers={workers} symmetry={symmetry}"
                );
            }
        }
    }
}

/// A pre-fired cancel token and an already-expired deadline interrupt
/// the revisit search promptly, sequentially and in parallel — the
/// engine polls its controls between chain steps, not just between work
/// items, so a long revisit chain cannot delay the stop.
#[test]
fn prefired_interrupts_stop_the_revisit_search_promptly() {
    use std::time::Instant;
    use vsync::core::{explore_with, CancelToken, RunControl, StopReason, Verdict};
    use vsync::locks::model::{mutex_client, McsLock};
    // Big enough that an uninterrupted debug run takes seconds: a hang
    // here would mean the interrupt was only honored between chains.
    let p = mutex_client(&McsLock::default(), 3, 1);
    for workers in [1usize, 2, 8] {
        let fired = CancelToken::new();
        fired.cancel();
        let t0 = Instant::now();
        let r = explore_with(&p, &AmcConfig::default().with_workers(workers), &RunControl::with_cancel(fired));
        let Verdict::Inconclusive(i) = &r.verdict else {
            panic!("workers={workers}: expected inconclusive, got {}", r.verdict)
        };
        assert_eq!(i.reason, StopReason::Cancelled, "workers={workers}");
        assert!(t0.elapsed().as_secs() < 5, "workers={workers}: cancel was not prompt");

        let t0 = Instant::now();
        let r = explore_with(
            &p,
            &AmcConfig::default().with_workers(workers),
            &RunControl::with_deadline(Instant::now()),
        );
        let Verdict::Inconclusive(i) = &r.verdict else {
            panic!("workers={workers}: expected inconclusive, got {}", r.verdict)
        };
        assert_eq!(i.reason, StopReason::DeadlineExceeded, "workers={workers}");
        assert!(t0.elapsed().as_secs() < 5, "workers={workers}: deadline was not prompt");
    }
}
