//! Differential tests of the optimizer's search strategies: the parallel
//! and adaptive engines must reproduce the *identical final barrier
//! assignment* of the sequential reference loop — across the full lock
//! registry and for any worker count — and every strategy must honor
//! cooperative cancellation without ever keeping an unverified accept.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use vsync::core::{
    enumerate_maximal, optimize, optimize_multi, verify, AmcConfig, CancelToken,
    OptimizeStrategy, OptimizerConfig, Verdict,
};
use vsync::graph::Mode;
use vsync::lang::Program;
use vsync::locks::model::{mutex_client, CasLock};
use vsync::locks::registry;
use vsync::model::ModelKind;

fn config(strategy: OptimizeStrategy, workers: usize) -> OptimizerConfig {
    OptimizerConfig::with_amc(AmcConfig::with_model(ModelKind::Vmm).with_workers(workers))
        .with_strategy(strategy)
}

fn modes(p: &Program) -> Vec<Mode> {
    p.site_modes()
}

/// Every registered lock, 2-thread client, from the all-SC baseline:
/// parallel and adaptive land on the sequential reference's exact final
/// assignment. Worker counts rotate through {1, 2, 8} across the registry
/// so each count covers several locks without a full cross product.
#[test]
fn strategies_agree_across_the_full_registry() {
    let worker_counts = [1usize, 2, 8];
    for (i, entry) in registry::catalog().iter().enumerate() {
        let base = entry.client(2, 1).with_all_sc();
        let workers = worker_counts[i % worker_counts.len()];
        let seq = optimize(&base, &config(OptimizeStrategy::Sequential, 1));
        assert!(seq.verified, "{}: sequential baseline failed", entry.name);
        for strategy in [OptimizeStrategy::Parallel, OptimizeStrategy::Adaptive] {
            let r = optimize(&base, &config(strategy, workers));
            assert!(r.verified, "{}: {strategy} failed to verify", entry.name);
            assert_eq!(
                modes(&seq.program),
                modes(&r.program),
                "{}: {strategy} (workers={workers}) diverged from sequential",
                entry.name
            );
            // The accepted steps replay to the same assignment.
            let mut replayed = base.clone();
            for step in r.steps.iter().filter(|s| s.accepted) {
                replayed.set_mode(vsync::lang::ModeRef(step.site), step.to);
            }
            assert_eq!(
                modes(&replayed),
                modes(&r.program),
                "{}: {strategy} steps are not replayable",
                entry.name
            );
        }
    }
}

/// The closure-oracle reference loop (`optimize_with`) and the engine's
/// sequential strategy are two copies of the same semantics — this pins
/// them together so an edit to one cannot silently fork the reference
/// the other differential tests compare against.
#[test]
fn optimize_with_matches_the_engine_sequential_strategy() {
    use vsync::core::{explore, optimize_with};
    for lock in ["ttas", "mcs"] {
        let base = registry::entry(lock).unwrap().client(2, 1).with_all_sc();
        let engine = optimize(&base, &config(OptimizeStrategy::Sequential, 1));
        let amc = AmcConfig::with_model(ModelKind::Vmm);
        let closure = optimize_with(&base, &config(OptimizeStrategy::Sequential, 1), |p| {
            explore(p, &amc).verdict.is_verified()
        });
        assert_eq!(modes(&engine.program), modes(&closure.program), "{lock}");
        assert_eq!(engine.steps, closure.steps, "{lock}: step-for-step identical");
        assert_eq!(engine.verifications, closure.verifications, "{lock}");
    }
}

/// The multi-scenario oracle keeps the equivalence: the extra scenario
/// constrains all strategies identically.
#[test]
fn strategies_agree_with_extra_scenarios() {
    let solo = mutex_client(&CasLock::default(), 1, 1).with_all_sc();
    let mut pair = mutex_client(&CasLock::default(), 2, 1);
    pair.copy_modes_by_name(&solo);
    let scenarios = [pair];
    let seq = optimize_multi(&solo, &scenarios, &config(OptimizeStrategy::Sequential, 1));
    assert!(seq.verified);
    for strategy in [OptimizeStrategy::Parallel, OptimizeStrategy::Adaptive] {
        for workers in [1, 2] {
            let r = optimize_multi(&solo, &scenarios, &config(strategy, workers));
            assert!(r.verified, "{strategy}/{workers}");
            assert_eq!(modes(&seq.program), modes(&r.program), "{strategy}/{workers}");
        }
    }
}

/// The adaptive engine needs strictly fewer full explorations than the
/// sequential reference on a lock with a non-trivial site table (the
/// BENCH_optimize.json criterion, in miniature).
#[test]
fn adaptive_explores_less_than_sequential() {
    let base = registry::entry("mcs").unwrap().client(2, 1).with_all_sc();
    let seq = optimize(&base, &config(OptimizeStrategy::Sequential, 1));
    let ad = optimize(&base, &config(OptimizeStrategy::Adaptive, 1));
    assert!(
        2 * ad.explorations <= seq.explorations,
        "adaptive {} vs sequential {} explorations",
        ad.explorations,
        seq.explorations
    );
    assert!(ad.cache_hits > 0, "the witness cache never fired");
}

/// A token fired from the per-step callback interrupts the adaptive
/// engine mid-bisection; every accept kept in the report is individually
/// (or batch-) verified, so the partial program still verifies and is
/// pointwise weaker-or-equal than the baseline.
#[test]
fn mid_bisect_interrupt_keeps_a_verified_partial_assignment() {
    for strategy in [OptimizeStrategy::Adaptive, OptimizeStrategy::Parallel] {
        for workers in [1, 2, 8] {
            let base = registry::entry("ttas").unwrap().client(2, 1).with_all_sc();
            let token = CancelToken::new();
            let fired = Arc::new(AtomicUsize::new(0));
            let cfg = {
                let token = token.clone();
                let fired = fired.clone();
                config(strategy, workers).with_on_step(move |_| {
                    fired.fetch_add(1, Ordering::Relaxed);
                    token.cancel();
                })
            };
            let report = optimize(&base, &cfg.with_cancel(token));
            assert!(fired.load(Ordering::Relaxed) > 0, "{strategy}: no step event fired");
            assert!(report.interrupted, "{strategy}/{workers}: not interrupted");
            assert!(report.verified, "{strategy}/{workers}: baseline lost");
            // Whatever was kept verifies from scratch...
            assert!(
                verify(&report.program, &AmcConfig::with_model(ModelKind::Vmm)).is_verified(),
                "{strategy}/{workers}: partial assignment does not verify"
            );
            // ...and never strengthens a site beyond the baseline.
            for (b, a) in base.sites().iter().zip(report.program.sites()) {
                if !b.relaxable {
                    assert_eq!(b.mode, a.mode, "{strategy}: fixed site {} touched", b.name);
                }
            }
        }
    }
}

/// A pre-fired token stops the adaptive engine before any relaxation
/// attempt: verified-unknown (`false` + interrupted), no steps, program
/// untouched.
#[test]
fn prefired_token_stops_before_any_attempt() {
    let base = registry::entry("caslock").unwrap().client(2, 1).with_all_sc();
    let token = CancelToken::new();
    token.cancel();
    let report = optimize(&base, &config(OptimizeStrategy::Adaptive, 1).with_cancel(token));
    assert!(report.interrupted);
    assert!(!report.verified, "baseline was never verified: must report unknown");
    assert!(report.steps.is_empty());
    assert_eq!(modes(&report.program), modes(&base));
    assert_eq!(report.explorations, 0, "no exploration ran");
}

/// `enumerate_maximal` honors cancellation: a pre-fired token yields the
/// empty set immediately; a token fired after the first exploration stops
/// the odometer early and reports only minimal elements of what was seen.
#[test]
fn enumerate_maximal_cancellation() {
    let base = mutex_client(&CasLock::default(), 2, 1).with_all_sc();
    let prefired = CancelToken::new();
    prefired.cancel();
    let cfg = OptimizerConfig::with_amc(AmcConfig::with_model(ModelKind::Vmm))
        .with_cancel(prefired);
    let (names, maximal) = enumerate_maximal(&base, &cfg);
    assert_eq!(names.len(), base.relaxable_sites().len());
    assert!(maximal.is_empty(), "pre-fired cancel must yield nothing: {maximal:?}");

    // Uncancelled for reference: the caslock's maximal set is non-empty
    // and contains the greedy optimum.
    let cfg = OptimizerConfig::with_amc(AmcConfig::with_model(ModelKind::Vmm));
    let (_, maximal) = enumerate_maximal(&base, &cfg);
    assert!(!maximal.is_empty());
    let greedy = optimize(&base, &cfg);
    let greedy_modes: Vec<Mode> = base
        .relaxable_sites()
        .iter()
        .map(|&i| greedy.program.sites()[i as usize].mode)
        .collect();
    assert!(maximal.contains(&greedy_modes), "{greedy_modes:?} not in {maximal:?}");
}

/// Interrupting *between* oracle calls via a deadline also lands on a
/// verified-or-unknown state for every strategy (no worker hangs).
#[test]
fn zero_deadline_interrupts_every_strategy() {
    use vsync::core::Session;
    use vsync::locks::SessionExt as _;
    for strategy in [
        OptimizeStrategy::Sequential,
        OptimizeStrategy::Parallel,
        OptimizeStrategy::Adaptive,
    ] {
        let report = Session::lock("ttas", 2, 1)
            .deadline(std::time::Duration::ZERO)
            .optimize(OptimizerConfig::default().with_strategy(strategy))
            .run();
        // The exploration itself already hits the deadline, so the
        // optimizer never runs — the point is that nothing hangs and the
        // report is coherent.
        assert!(report.is_interrupted(), "{strategy}");
        assert!(matches!(report.models[0].verdict, Verdict::Inconclusive(_)), "{strategy}");
    }
}
