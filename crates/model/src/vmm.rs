//! `Vmm` — the RC11-style weak memory model used by this reproduction in
//! place of the paper's IMM.
//!
//! IMM (Podkopaev et al., POPL'19) tracks syntactic dependencies to permit
//! some load-buffering behaviours; RC11 (Lahav et al., PLDI'17) instead
//! forbids all `po ∪ rf` cycles. For synchronization primitives the two
//! models agree on everything this reproduction exercises: coherence,
//! release/acquire synchronization (including fences and release
//! sequences), RMW atomicity and the SC axioms. `Vmm` is the RC11-style
//! member of that family; DESIGN.md §5 documents the substitution.
//!
//! [`MemoryModel::is_consistent`] runs the closure-free fast path
//! ([`crate::fast`]); the original closure-based formulation is retained as
//! [`MemoryModel::is_consistent_reference`] for differential testing and
//! as the performance baseline of `explore_perf`.

use vsync_graph::{EventId, EventIndex, EventKind, ExecutionGraph, Relation, RfSource};

use crate::axioms::{
    acyclic_by_closure, atomicity_holds, eco_relation, fr_relation, mo_relation,
    per_loc_coherent, po_relation, rf_relation, rmw_pairs,
};
use crate::fast::AxiomContext;
use crate::MemoryModel;

/// The RC11-style weak memory model (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Vmm;

impl MemoryModel for Vmm {
    fn name(&self) -> &'static str {
        "VMM"
    }

    fn is_consistent(&self, g: &ExecutionGraph) -> bool {
        if crate::fast::below_fast_path_threshold(g) {
            return self.is_consistent_reference(g);
        }
        let cx = AxiomContext::new(g);
        // Cheap structural axioms first.
        if !cx.atomicity_holds() || !cx.per_loc_coherent() {
            return false;
        }
        // No-thin-air: acyclic(po ∪ rf).
        if !cx.porf_acyclic() {
            return false;
        }
        // Happens-before: a cycle in po ∪ sw means hb is reflexive.
        let sw = cx.sw_relation();
        let Some(hb) = cx.hb_closure(&sw) else {
            return false;
        };
        // Coherence: irreflexive(hb ; eco?), via mo positions.
        if !cx.coherent(&hb) {
            return false;
        }
        // SC axiom, over the SC events only.
        cx.psc_acyclic(&hb)
    }

    fn is_consistent_reference(&self, g: &ExecutionGraph) -> bool {
        // Cheap structural axioms first.
        if !atomicity_holds(g) || !per_loc_coherent(g) {
            return false;
        }
        let ix = EventIndex::new(g);
        // No-thin-air: acyclic(po ∪ rf).
        let po = po_relation(g, &ix);
        let rf = rf_relation(g, &ix);
        let mut porf = po.clone();
        porf.union_with(&rf);
        if !acyclic_by_closure(&porf) {
            return false;
        }
        // Happens-before.
        let sw = sw_relation(g, &ix);
        let mut hb = po;
        hb.union_with(&sw);
        hb.close();
        if !hb.is_irreflexive() {
            return false;
        }
        // Coherence: irreflexive(hb ; eco?).
        let eco = eco_relation(g, &ix);
        for (a, b) in hb.edges() {
            if eco.has(b, a) {
                return false;
            }
        }
        // SC axiom.
        psc_acyclic_naive(g, &ix, &hb, &eco)
    }
}

/// The synchronizes-with relation of RC11:
///
/// `sw = [E⊒rel] ; ([F];po)? ; rs ; rf ; [R] ; (po;[F])? ; [E⊒acq]`
///
/// where the release sequence `rs` of a write `w` is `w` together with the
/// chain of RMW writes reading (transitively) from it.
pub fn sw_relation(g: &ExecutionGraph, ix: &EventIndex) -> Relation {
    let mut sw = Relation::new(ix.len());
    let pairs = rmw_pairs(g);
    for (wid, wev) in g.events() {
        let EventKind::Write { mode: wmode, .. } = &wev.kind else { continue };
        // Release sources: the write itself (if ⊒rel) and every ⊒rel fence
        // po-before it in the same thread.
        let mut sources: Vec<EventId> = Vec::new();
        if wmode.is_release() {
            sources.push(wid);
        }
        let (wt, wi) = (wid.thread().unwrap(), wid.index().unwrap());
        for j in 0..wi {
            let e = &g.thread_events(wt)[j as usize];
            if matches!(&e.kind, EventKind::Fence { mode } if mode.is_release()) {
                sources.push(EventId::new(wt, j));
            }
        }
        if sources.is_empty() {
            continue;
        }
        // Release sequence of w.
        let mut rseq = vec![wid];
        loop {
            let before = rseq.len();
            for (r, w2) in &pairs {
                if rseq.contains(w2) {
                    continue;
                }
                if let RfSource::Write(src) = g.rf(*r) {
                    if rseq.contains(&src) {
                        rseq.push(*w2);
                    }
                }
            }
            if rseq.len() == before {
                break;
            }
        }
        // Acquire targets: readers of the release sequence.
        for (rid, _, src) in g.reads() {
            let RfSource::Write(srcw) = src else { continue };
            if !rseq.contains(&srcw) {
                continue;
            }
            let rmode = g.event(rid).kind.mode();
            let mut targets: Vec<EventId> = Vec::new();
            if rmode.is_acquire() {
                targets.push(rid);
            }
            let (rt, ri) = (rid.thread().unwrap(), rid.index().unwrap());
            for (j, e) in g.thread_events(rt).iter().enumerate().skip(ri as usize + 1) {
                if matches!(&e.kind, EventKind::Fence { mode } if mode.is_acquire()) {
                    targets.push(EventId::new(rt, j as u32));
                }
            }
            for &s in &sources {
                for &t in &targets {
                    sw.add(ix.index_of(s), ix.index_of(t));
                }
            }
        }
    }
    sw
}

/// Check the RC11 SC axiom `acyclic(psc_base ∪ psc_F)` the closure-based
/// way (the reference formulation: compose + Floyd–Warshall).
fn psc_acyclic_naive(
    g: &ExecutionGraph,
    ix: &EventIndex,
    hb: &Relation,
    eco: &Relation,
) -> bool {
    let n = ix.len();
    let is_sc_fence = |i: usize| match ix.id_of(i) {
        EventId::Init(_) => false,
        id => matches!(&g.event(id).kind, EventKind::Fence { mode } if mode.is_sc()),
    };
    let is_sc_access = |i: usize| match ix.id_of(i) {
        EventId::Init(_) => false,
        id => match &g.event(id).kind {
            EventKind::Read { mode, .. } | EventKind::Write { mode, .. } => mode.is_sc(),
            _ => false,
        },
    };
    if (0..n).all(|i| !is_sc_fence(i) && !is_sc_access(i)) {
        return true; // no SC events, axiom trivially holds
    }

    // scb = (po \ po_loc) ∪ hb|loc ∪ mo ∪ fr
    let mut scb = Relation::new(n);
    for t in 0..g.num_threads() {
        let evs = g.thread_events(t as u32);
        for i in 0..evs.len() {
            for j in i + 1..evs.len() {
                let la = evs[i].kind.loc();
                let lb = evs[j].kind.loc();
                if la.is_none() || lb.is_none() || la != lb {
                    scb.add(
                        ix.index_of(EventId::new(t as u32, i as u32)),
                        ix.index_of(EventId::new(t as u32, j as u32)),
                    );
                }
            }
        }
    }
    for (a, b) in hb.edges() {
        let la = loc_of_idx(g, ix, a);
        let lb = loc_of_idx(g, ix, b);
        if la.is_some() && la == lb {
            scb.add(a, b);
        }
    }
    let mut mo_full = mo_relation(g, ix);
    mo_full.close();
    scb.union_with(&mo_full);
    scb.union_with(&fr_relation(g, ix));

    // left = [Esc] ∪ [Fsc];hb?   right = [Esc] ∪ hb?;[Fsc]
    let mut left = Relation::new(n);
    let mut right = Relation::new(n);
    for i in 0..n {
        if is_sc_access(i) || is_sc_fence(i) {
            left.add(i, i);
            right.add(i, i);
        }
    }
    for (a, b) in hb.edges() {
        if is_sc_fence(a) {
            left.add(a, b);
        }
        if is_sc_fence(b) {
            right.add(a, b);
        }
    }
    let mut psc = left.compose(&scb).compose(&right);

    // psc_F = [Fsc] ; (hb ∪ hb;eco;hb) ; [Fsc]
    let hb_eco_hb = hb.compose(eco).compose(hb);
    for (a, b) in hb.edges() {
        if is_sc_fence(a) && is_sc_fence(b) {
            psc.add(a, b);
        }
    }
    for (a, b) in hb_eco_hb.edges() {
        if is_sc_fence(a) && is_sc_fence(b) {
            psc.add(a, b);
        }
    }
    acyclic_by_closure(&psc)
}

fn loc_of_idx(g: &ExecutionGraph, ix: &EventIndex, i: usize) -> Option<u64> {
    match ix.id_of(i) {
        EventId::Init(loc) => Some(loc),
        id => g.event(id).kind.loc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vsync_graph::Mode;

    fn w(loc: u64, val: u64, mode: Mode) -> EventKind {
        EventKind::Write { loc, val, mode, rmw: false }
    }

    fn r(loc: u64, rf: RfSource, mode: Mode) -> EventKind {
        EventKind::Read { loc, mode, rf, rmw: false, awaiting: false }
    }

    /// Every Vmm test asserts both paths: fast and reference must agree.
    fn consistent(g: &ExecutionGraph) -> bool {
        let fast = Vmm.is_consistent(g);
        let naive = Vmm.is_consistent_reference(g);
        assert_eq!(fast, naive, "fast/reference divergence on:\n{}", g.render());
        fast
    }

    /// Message passing: T0: W(d,1); W^wm(f,1) | T1: R^rm(f)=1; R(d)=?
    fn mp(wm: Mode, rm: Mode, stale: bool) -> ExecutionGraph {
        let (d, f) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wd = g.push_event(0, w(d, 1, Mode::Rlx));
        g.insert_mo(d, wd, 0);
        let wf = g.push_event(0, w(f, 1, wm));
        g.insert_mo(f, wf, 0);
        g.push_event(1, r(f, RfSource::Write(wf), rm));
        let src = if stale { RfSource::Write(EventId::Init(d)) } else { RfSource::Write(wd) };
        g.push_event(1, r(d, src, Mode::Rlx));
        g
    }

    #[test]
    fn mp_release_acquire_forbids_stale_read() {
        assert!(!consistent(&mp(Mode::Rel, Mode::Acq, true)));
        assert!(consistent(&mp(Mode::Rel, Mode::Acq, false)));
    }

    #[test]
    fn mp_relaxed_allows_stale_read() {
        assert!(consistent(&mp(Mode::Rlx, Mode::Rlx, true)));
        assert!(consistent(&mp(Mode::Rlx, Mode::Acq, true)));
        assert!(consistent(&mp(Mode::Rel, Mode::Rlx, true)));
    }

    /// Store buffering with optional SC fences between the accesses.
    fn sb(fences: bool) -> ExecutionGraph {
        let (x, y) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wx = g.push_event(0, w(x, 1, Mode::Rel));
        g.insert_mo(x, wx, 0);
        if fences {
            g.push_event(0, EventKind::Fence { mode: Mode::Sc });
        }
        g.push_event(0, r(y, RfSource::Write(EventId::Init(y)), Mode::Acq));
        let wy = g.push_event(1, w(y, 1, Mode::Rel));
        g.insert_mo(y, wy, 0);
        if fences {
            g.push_event(1, EventKind::Fence { mode: Mode::Sc });
        }
        g.push_event(1, r(x, RfSource::Write(EventId::Init(x)), Mode::Acq));
        g
    }

    #[test]
    fn sb_allowed_with_release_acquire_only() {
        // rel/acq does not forbid store-load reordering.
        assert!(consistent(&sb(false)));
    }

    #[test]
    fn sb_forbidden_with_sc_fences() {
        assert!(!consistent(&sb(true)));
    }

    #[test]
    fn sb_forbidden_with_sc_accesses() {
        let (x, y) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wx = g.push_event(0, w(x, 1, Mode::Sc));
        g.insert_mo(x, wx, 0);
        g.push_event(0, r(y, RfSource::Write(EventId::Init(y)), Mode::Sc));
        let wy = g.push_event(1, w(y, 1, Mode::Sc));
        g.insert_mo(y, wy, 0);
        g.push_event(1, r(x, RfSource::Write(EventId::Init(x)), Mode::Sc));
        assert!(!consistent(&g));
    }

    #[test]
    fn load_buffering_cycle_forbidden() {
        // T0: R(x)=1; W(y,1) | T1: R(y)=1; W(x,1) — a po∪rf cycle.
        let (x, y) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        g.push_event(0, r(x, RfSource::Write(EventId::new(1, 1)), Mode::Rlx));
        let wy = g.push_event(0, w(y, 1, Mode::Rlx));
        g.insert_mo(y, wy, 0);
        g.push_event(1, r(y, RfSource::Write(wy), Mode::Rlx));
        let wx = g.push_event(1, w(x, 1, Mode::Rlx));
        g.insert_mo(x, wx, 0);
        assert!(!consistent(&g));
    }

    #[test]
    fn fence_based_synchronization_works() {
        // T0: W(d,1); F_rel; W(f,1)rlx | T1: R(f)=1 rlx; F_acq; R(d)=0 — forbidden.
        let (d, f) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wd = g.push_event(0, w(d, 1, Mode::Rlx));
        g.insert_mo(d, wd, 0);
        g.push_event(0, EventKind::Fence { mode: Mode::Rel });
        let wf = g.push_event(0, w(f, 1, Mode::Rlx));
        g.insert_mo(f, wf, 0);
        g.push_event(1, r(f, RfSource::Write(wf), Mode::Rlx));
        g.push_event(1, EventKind::Fence { mode: Mode::Acq });
        g.push_event(1, r(d, RfSource::Write(EventId::Init(d)), Mode::Rlx));
        assert!(!consistent(&g));
    }

    #[test]
    fn release_sequence_through_rmw() {
        // T0: W(d,1); W_rel(f,1) | T1: RMW rlx on f (1->2) | T2: R_acq(f)=2; R(d)=0
        // The RMW extends T0's release sequence, so T2 synchronizes with T0:
        // the stale read of d is forbidden.
        let (d, f) = (1, 2);
        let mut g = ExecutionGraph::new(3, BTreeMap::new());
        let wd = g.push_event(0, w(d, 1, Mode::Rlx));
        g.insert_mo(d, wd, 0);
        let wf = g.push_event(0, w(f, 1, Mode::Rel));
        g.insert_mo(f, wf, 0);
        g.push_event(
            1,
            EventKind::Read { loc: f, mode: Mode::Rlx, rf: RfSource::Write(wf), rmw: true, awaiting: false },
        );
        let wu = g.push_event(1, EventKind::Write { loc: f, val: 2, mode: Mode::Rlx, rmw: true });
        g.insert_mo(f, wu, 1);
        g.push_event(2, r(f, RfSource::Write(wu), Mode::Acq));
        g.push_event(2, r(d, RfSource::Write(EventId::Init(d)), Mode::Rlx));
        assert!(!consistent(&g));
    }

    #[test]
    fn pending_reads_are_unconstrained() {
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        g.push_event(0, r(1, RfSource::Bottom, Mode::Acq));
        assert!(consistent(&g));
    }

    /// SC fences on *partial* graphs with pending reads: the PSC fast path
    /// must agree with the reference when ⊥ reads are present.
    #[test]
    fn sc_fences_with_pending_reads_agree() {
        let (x, y) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wx = g.push_event(0, w(x, 1, Mode::Rel));
        g.insert_mo(x, wx, 0);
        g.push_event(0, EventKind::Fence { mode: Mode::Sc });
        g.push_event(
            0,
            EventKind::Read { loc: y, mode: Mode::Acq, rf: RfSource::Bottom, rmw: false, awaiting: true },
        );
        let wy = g.push_event(1, w(y, 1, Mode::Rel));
        g.insert_mo(y, wy, 0);
        g.push_event(1, EventKind::Fence { mode: Mode::Sc });
        g.push_event(1, r(x, RfSource::Write(EventId::Init(x)), Mode::Acq));
        consistent(&g);
    }
}
