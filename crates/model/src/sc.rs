//! Sequential consistency.

use vsync_graph::{EventIndex, ExecutionGraph};

use crate::axioms::{
    acyclic_by_closure, atomicity_holds, fr_relation, mo_relation, po_relation, rf_relation,
};
use crate::fast::AxiomContext;
use crate::MemoryModel;

/// The sequentially consistent memory model: all executions must be
/// explainable by an interleaving; barrier modes are irrelevant.
///
/// Axiom: `acyclic(po ∪ rf ∪ mo ∪ fr)` plus RMW atomicity.
///
/// Used as the reference model: the paper's "sc-only" lock variants are
/// correct exactly when they verify under [`Sc`], and any bug found under
/// [`crate::Vmm`] but not under [`Sc`] is a weak-memory bug.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sc;

impl MemoryModel for Sc {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn is_consistent(&self, g: &ExecutionGraph) -> bool {
        if crate::fast::below_fast_path_threshold(g) {
            return self.is_consistent_reference(g);
        }
        let cx = AxiomContext::new(g);
        cx.atomicity_holds() && cx.sc_order().is_acyclic()
    }

    fn is_consistent_reference(&self, g: &ExecutionGraph) -> bool {
        if !atomicity_holds(g) {
            return false;
        }
        let ix = EventIndex::new(g);
        let mut rel = po_relation(g, &ix);
        rel.union_with(&rf_relation(g, &ix));
        rel.union_with(&mo_relation(g, &ix));
        rel.union_with(&fr_relation(g, &ix));
        acyclic_by_closure(&rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vsync_graph::{EventId, EventKind, Mode, RfSource};

    fn w(loc: u64, val: u64) -> EventKind {
        EventKind::Write { loc, val, mode: Mode::Rlx, rmw: false }
    }

    fn r(loc: u64, rf: RfSource) -> EventKind {
        EventKind::Read { loc, mode: Mode::Rlx, rf, rmw: false, awaiting: false }
    }

    /// Every Sc test asserts both paths: fast and reference must agree.
    fn consistent(g: &ExecutionGraph) -> bool {
        let fast = Sc.is_consistent(g);
        let naive = Sc.is_consistent_reference(g);
        assert_eq!(fast, naive, "fast/reference divergence on:\n{}", g.render());
        fast
    }

    /// Store buffering: T0: W(x,1); R(y)=0 | T1: W(y,1); R(x)=0.
    /// Forbidden under SC.
    fn store_buffering() -> ExecutionGraph {
        let (x, y) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wx = g.push_event(0, w(x, 1));
        g.insert_mo(x, wx, 0);
        g.push_event(0, r(y, RfSource::Write(EventId::Init(y))));
        let wy = g.push_event(1, w(y, 1));
        g.insert_mo(y, wy, 0);
        g.push_event(1, r(x, RfSource::Write(EventId::Init(x))));
        g
    }

    #[test]
    fn sb_both_zero_forbidden() {
        assert!(!consistent(&store_buffering()));
    }

    #[test]
    fn sb_one_observation_allowed() {
        // T1 reads x = 1 instead: consistent interleaving exists.
        let mut g = store_buffering();
        g.set_rf(EventId::new(1, 1), RfSource::Write(EventId::new(0, 0)));
        assert!(consistent(&g));
    }

    #[test]
    fn message_passing_stale_read_forbidden() {
        // T0: W(d,1); W(f,1) | T1: R(f)=1; R(d)=0 — forbidden under SC.
        let (d, f) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wd = g.push_event(0, w(d, 1));
        g.insert_mo(d, wd, 0);
        let wf = g.push_event(0, w(f, 1));
        g.insert_mo(f, wf, 0);
        g.push_event(1, r(f, RfSource::Write(wf)));
        g.push_event(1, r(d, RfSource::Write(EventId::Init(d))));
        assert!(!consistent(&g));
    }
}
