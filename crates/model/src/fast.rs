//! The closure-free consistency fast path.
//!
//! The naive formulations in [`crate::axioms`] rebuild every relation from
//! scratch and lean on `O(n³/64)` Floyd–Warshall closures for each axiom.
//! This module computes the same predicates with on-demand algorithms:
//!
//! * an [`AxiomContext`] is built **once per graph** — the [`EventIndex`],
//!   the extended-modification-order position of every access, and
//!   per-location event masks — and threaded through all axiom checks;
//! * acyclicity axioms (`acyclic(po ∪ rf)`, the SC/TSO global orders, PSC)
//!   run DFS cycle detection over immediate-edge relations instead of
//!   closing them;
//! * the extended coherence order `eco = (rf ∪ mo ∪ fr)⁺` is materialized
//!   *directly in closed form* from mo positions: for same-location events
//!   `x, y`, `eco(x, y)` holds iff `pos(y) > pos(x)`, or `pos(y) = pos(x)`
//!   with `x` a write and `y` a read (i.e. `y` reads from `x`) — so no
//!   closure call is ever needed (soundness argument in DESIGN.md); rows
//!   are built with a word-level suffix-mask sweep per location;
//! * happens-before is closed with the word-level DAG closure
//!   [`Relation::close_acyclic`] (reverse-topological row unions), which
//!   simultaneously decides `irreflexive(hb)`;
//! * synchronizes-with is assembled from per-thread fence index lists and
//!   a bitset release-sequence fixpoint instead of quadratic rescans.
//!
//! Every predicate here is extensionally equal to its reference
//! counterpart; the differential test suite asserts this on randomized
//! graphs and on the whole lock catalog.

use vsync_graph::{
    iter_set_bits, EventId, EventIndex, EventKind, ExecutionGraph, Loc, Relation, RfSource,
};

/// Per-graph analysis cache shared by all fast axiom checks.
///
/// Built once per [`ExecutionGraph`]; all lookups afterwards are `O(1)`
/// array reads instead of `mo` scans.
pub struct AxiomContext<'g> {
    g: &'g ExecutionGraph,
    /// Dense index of the graph's events (init writes included).
    pub ix: EventIndex,
    n: usize,
    words: usize,
    /// Location accessed by each dense index (`None` for fences/errors).
    loc: Vec<Option<Loc>>,
    /// Extended-mo position: a write's own position (init = 0), a read's
    /// source position. `None` for pending reads, fences, errors, and
    /// writes that are not (yet) in `mo`.
    pos: Vec<Option<u32>>,
    /// Is the event a (possibly init) write?
    is_write: Vec<bool>,
    /// Is the event a read?
    is_read: Vec<bool>,
    /// Dense index of each read's rf source (`None` for `⊥`).
    src: Vec<Option<u32>>,
    /// Distinct locations (sorted) with flat per-location event masks:
    /// location `locs[k]`'s mask is `loc_masks[k*words .. (k+1)*words]`.
    locs: Vec<Loc>,
    loc_masks: Vec<u64>,
    /// RMW pairs (read part, write part) as dense indices.
    rmw_pairs: Vec<(usize, usize)>,
}

/// Graphs with at most this many non-init events are cheaper through the
/// closure-based reference formulation: building the per-graph
/// [`AxiomContext`] (dense index, mo positions, per-location masks) costs
/// more than the tiny Floyd–Warshall closures it avoids. Measured on the
/// lock catalog: the caslock 2-thread client (~6 events per graph) ran
/// slower through the fast path than through the baseline checker until
/// `is_consistent` learned to delegate below this threshold.
pub const SMALL_GRAPH_EVENTS: usize = 20;

/// Should a model's `is_consistent` delegate to its reference
/// formulation for this graph? (See [`SMALL_GRAPH_EVENTS`].)
#[inline]
pub(crate) fn below_fast_path_threshold(g: &ExecutionGraph) -> bool {
    let below = g.num_events() <= SMALL_GRAPH_EVENTS;
    if attribution::ENABLED.load(std::sync::atomic::Ordering::Relaxed) {
        attribution::count(below);
    }
    below
}

/// Opt-in counters attributing consistency checks to the fast path vs the
/// closure-based reference checker ([`SMALL_GRAPH_EVENTS`] delegation).
///
/// Process-global by necessity — `is_consistent` takes no context — so the
/// counters are only meaningful when one session runs at a time (the CLI's
/// `--metrics`, which snapshots a delta around its single session). Off by
/// default: one relaxed load per check when disabled.
pub mod attribution {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    pub(super) static ENABLED: AtomicBool = AtomicBool::new(false);
    static REFERENCE: AtomicU64 = AtomicU64::new(0);
    static FAST: AtomicU64 = AtomicU64::new(0);

    pub(super) fn count(below_threshold: bool) {
        if below_threshold {
            REFERENCE.fetch_add(1, Ordering::Relaxed);
        } else {
            FAST.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Turn the process-global counters on or off.
    pub fn set_checker_attribution(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Current `(fast_path, reference_checker)` consistency-check counts.
    /// Snapshot before and after a run and subtract to scope a delta.
    #[must_use]
    pub fn checker_attribution() -> (u64, u64) {
        (FAST.load(Ordering::Relaxed), REFERENCE.load(Ordering::Relaxed))
    }
}

impl<'g> AxiomContext<'g> {
    /// Build the context: one pass over the graph.
    pub fn new(g: &'g ExecutionGraph) -> Self {
        let ix = EventIndex::new(g);
        let n = ix.len();
        let words = n.div_ceil(64).max(1);
        let mut cx = AxiomContext {
            g,
            n,
            words,
            loc: vec![None; n],
            pos: vec![None; n],
            is_write: vec![false; n],
            is_read: vec![false; n],
            src: vec![None; n],
            locs: Vec::new(),
            loc_masks: Vec::new(),
            rmw_pairs: Vec::new(),
            ix,
        };
        // Init writes occupy indices 0..init_count, position 0 in their mo.
        // They are also exactly the distinct locations, already sorted.
        for i in 0..cx.ix.init_count() {
            let EventId::Init(l) = cx.ix.id_of(i) else { unreachable!() };
            cx.loc[i] = Some(l);
            cx.pos[i] = Some(0);
            cx.is_write[i] = true;
            cx.locs.push(l);
        }
        // Write positions come from the mo lists (position 1 onwards).
        for l in g.written_locs() {
            for (p, &w) in g.mo(l).iter().enumerate() {
                let idx = cx.ix.index_of(w);
                cx.pos[idx] = Some(p as u32 + 1);
            }
        }
        for (id, ev) in g.events() {
            let idx = cx.ix.index_of(id);
            match &ev.kind {
                EventKind::Write { loc, rmw, .. } => {
                    cx.loc[idx] = Some(*loc);
                    cx.is_write[idx] = true;
                    if *rmw {
                        // The language emits the read part immediately
                        // before the write part in the same thread.
                        cx.rmw_pairs.push((idx - 1, idx));
                    }
                }
                EventKind::Read { loc, rf, .. } => {
                    cx.loc[idx] = Some(*loc);
                    cx.is_read[idx] = true;
                    if let RfSource::Write(w) = rf {
                        let widx = cx.ix.index_of(*w);
                        cx.src[idx] = Some(widx as u32);
                        cx.pos[idx] = cx.pos[widx];
                    }
                }
                _ => {}
            }
        }
        cx.loc_masks = vec![0u64; cx.locs.len() * words];
        for (idx, l) in cx.loc.iter().enumerate() {
            if let Some(l) = l {
                let k = cx.loc_slot(*l).expect("every accessed location has an init event");
                cx.loc_masks[k * words + idx / 64] |= 1u64 << (idx % 64);
            }
        }
        cx
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g ExecutionGraph {
        self.g
    }

    /// Number of indexed events.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the context over an empty graph?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn loc_slot(&self, l: Loc) -> Option<usize> {
        self.locs.binary_search(&l).ok()
    }

    fn mask_of(&self, l: Loc) -> Option<&[u64]> {
        let k = self.loc_slot(l)?;
        Some(&self.loc_masks[k * self.words..(k + 1) * self.words])
    }

    /// `eco(x, y)` from positions alone (see module docs): same location,
    /// and either `pos(y) > pos(x)`, or equal positions with `x` a write
    /// and `y` a read.
    fn eco(&self, x: usize, y: usize) -> bool {
        if x == y || self.loc[x].is_none() || self.loc[x] != self.loc[y] {
            return false;
        }
        let (Some(px), Some(py)) = (self.pos[x], self.pos[y]) else { return false };
        py > px || (py == px && self.is_write[x] && self.is_read[y])
    }

    /// All eco rows as one flat bitset (`n × words`), built with one
    /// descending-position sweep per location: each event's row is the
    /// strictly-greater-position suffix mask, plus the same-position
    /// readers for writes.
    fn eco_rows(&self) -> Vec<u64> {
        let words = self.words;
        let mut rows = vec![0u64; self.n * words];
        let mut evs: Vec<(u32, usize)> = Vec::new();
        let mut gt = vec![0u64; words];
        let mut readers = vec![0u64; words];
        for k in 0..self.locs.len() {
            evs.clear();
            let mask = &self.loc_masks[k * words..(k + 1) * words];
            for idx in iter_set_bits(mask) {
                if let Some(p) = self.pos[idx] {
                    evs.push((p, idx));
                }
            }
            evs.sort_unstable();
            gt.iter_mut().for_each(|w| *w = 0);
            let mut i = evs.len();
            while i > 0 {
                let p = evs[i - 1].0;
                let mut j = i;
                while j > 0 && evs[j - 1].0 == p {
                    j -= 1;
                }
                readers.iter_mut().for_each(|w| *w = 0);
                for &(_, idx) in &evs[j..i] {
                    if self.is_read[idx] {
                        readers[idx / 64] |= 1u64 << (idx % 64);
                    }
                }
                for &(_, idx) in &evs[j..i] {
                    let row = &mut rows[idx * words..(idx + 1) * words];
                    for (w, r) in row.iter_mut().enumerate() {
                        *r = gt[w];
                        if self.is_write[idx] {
                            *r |= readers[w];
                        }
                    }
                }
                for &(_, idx) in &evs[j..i] {
                    gt[idx / 64] |= 1u64 << (idx % 64);
                }
                i = j;
            }
        }
        rows
    }

    /// The extended coherence order `eco = (rf ∪ mo ∪ fr)⁺`, materialized
    /// directly in closed form from positions — no closure call.
    pub fn eco_relation(&self) -> Relation {
        let rows = self.eco_rows();
        let mut eco = Relation::new(self.n);
        for a in 0..self.n {
            eco.union_row_into(a, &rows[a * self.words..(a + 1) * self.words]);
        }
        eco
    }

    /// The immediate program-order relation (init events before every
    /// thread's first event) — identical to [`crate::axioms::po_relation`].
    pub fn po_relation(&self) -> Relation {
        let g = self.g;
        let mut po = Relation::new(self.n);
        for init_idx in 0..self.ix.init_count() {
            for t in 0..g.num_threads() {
                if g.thread_len(t as u32) > 0 {
                    po.add(init_idx, self.ix.index_of(EventId::new(t as u32, 0)));
                }
            }
        }
        for t in 0..g.num_threads() {
            for i in 1..g.thread_len(t as u32) {
                po.add(
                    self.ix.index_of(EventId::new(t as u32, (i - 1) as u32)),
                    self.ix.index_of(EventId::new(t as u32, i as u32)),
                );
            }
        }
        po
    }

    /// The reads-from relation from the cached source indices.
    pub fn rf_relation(&self) -> Relation {
        let mut rf = Relation::new(self.n);
        for (r, s) in self.src.iter().enumerate() {
            if let Some(s) = s {
                rf.add(*s as usize, r);
            }
        }
        rf
    }

    /// The synchronizes-with relation (same semantics as
    /// [`crate::sw_relation`]) assembled from per-thread fence index lists
    /// and a bitset release-sequence fixpoint.
    pub fn sw_relation(&self) -> Relation {
        let g = self.g;
        let mut sw = Relation::new(self.n);
        // Per-thread ascending dense indices of ⊒rel / ⊒acq fences.
        let nt = g.num_threads();
        let mut rel_fences: Vec<Vec<usize>> = vec![Vec::new(); nt];
        let mut acq_fences: Vec<Vec<usize>> = vec![Vec::new(); nt];
        // All writes (idx, thread, po-index, is_release); all resolved
        // reads (idx, thread, po-index, src, is_acquire).
        let mut writes: Vec<(usize, usize, u32, bool)> = Vec::new();
        let mut reads: Vec<(usize, usize, u32, u32, bool)> = Vec::new();
        for (id, ev) in g.events() {
            let idx = self.ix.index_of(id);
            let (t, i) = (id.thread().unwrap() as usize, id.index().unwrap());
            match &ev.kind {
                EventKind::Fence { mode } => {
                    if mode.is_release() {
                        rel_fences[t].push(idx);
                    }
                    if mode.is_acquire() {
                        acq_fences[t].push(idx);
                    }
                }
                EventKind::Write { mode, .. } => {
                    writes.push((idx, t, i, mode.is_release()));
                }
                EventKind::Read { mode, .. } => {
                    if let Some(s) = self.src[idx] {
                        reads.push((idx, t, i, s, mode.is_acquire()));
                    }
                }
                _ => {}
            }
        }
        let idx_to_po = |idx: usize| self.ix.id_of(idx).index().unwrap();
        let mut rseq = vec![0u64; self.words];
        let mut sources: Vec<usize> = Vec::new();
        let mut targets: Vec<usize> = Vec::new();
        for &(widx, wt, wi, wrel) in &writes {
            sources.clear();
            if wrel {
                sources.push(widx);
            }
            for &f in &rel_fences[wt] {
                if idx_to_po(f) < wi {
                    sources.push(f);
                }
            }
            if sources.is_empty() {
                continue;
            }
            // Release sequence of w: w plus the RMW writes reading
            // (transitively) from it — bitset fixpoint over the pairs.
            rseq.iter_mut().for_each(|w| *w = 0);
            rseq[widx / 64] |= 1u64 << (widx % 64);
            loop {
                let mut changed = false;
                for &(r, w2) in &self.rmw_pairs {
                    if rseq[w2 / 64] & (1u64 << (w2 % 64)) != 0 {
                        continue;
                    }
                    let Some(s) = self.src[r] else { continue };
                    let s = s as usize;
                    if rseq[s / 64] & (1u64 << (s % 64)) != 0 {
                        rseq[w2 / 64] |= 1u64 << (w2 % 64);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            // Acquire targets: readers of the release sequence.
            for &(ridx, rt, ri, s, racq) in &reads {
                if rseq[s as usize / 64] & (1u64 << (s % 64)) == 0 {
                    continue;
                }
                targets.clear();
                if racq {
                    targets.push(ridx);
                }
                for &f in &acq_fences[rt] {
                    if idx_to_po(f) > ri {
                        targets.push(f);
                    }
                }
                for &s in &sources {
                    for &t in &targets {
                        sw.add(s, t);
                    }
                }
            }
        }
        sw
    }

    /// Add the immediate modification order into `rel` (enough for
    /// acyclicity checks, where `mo⁺` and `mo` have the same cycles).
    fn add_mo_immediate(&self, rel: &mut Relation) {
        for l in self.g.written_locs() {
            let mut prev = self.ix.index_of(EventId::Init(l));
            for &w in self.g.mo(l) {
                let cur = self.ix.index_of(w);
                rel.add(prev, cur);
                prev = cur;
            }
        }
    }

    /// Add the from-read relation into `rel`: each resolved read to every
    /// write positioned after its source.
    fn add_fr(&self, rel: &mut Relation) {
        for (r, p) in self.pos.iter().enumerate() {
            let (true, Some(p)) = (self.is_read[r], p) else { continue };
            let l = self.loc[r].expect("read has a location");
            for (wpos, &w) in self.g.mo(l).iter().enumerate() {
                if wpos as u32 + 1 > *p {
                    rel.add(r, self.ix.index_of(w));
                }
            }
        }
    }

    /// RMW atomicity via positions: each RMW write must sit immediately
    /// after its read's source in the extended mo.
    pub fn atomicity_holds(&self) -> bool {
        self.rmw_pairs.iter().all(|&(r, w)| {
            matches!((self.pos[r], self.pos[w]), (Some(rp), Some(wp)) if wp == rp + 1)
        })
    }

    /// Per-location coherence (CoWW/CoWR/CoRW/CoRR) in one pass per
    /// thread: positions must be non-decreasing along each thread's
    /// same-location accesses, strictly increasing into writes.
    ///
    /// Checking only *adjacent* resolved accesses is complete: the pair
    /// constraint `pos(a) < pos(b)` (strict iff `b` writes) composes
    /// transitively along the subsequence (DESIGN.md).
    pub fn per_loc_coherent(&self) -> bool {
        let g = self.g;
        let mut last: Vec<(Loc, u32)> = Vec::with_capacity(8); // loc -> last pos
        for t in 0..g.num_threads() {
            last.clear();
            for i in 0..g.thread_len(t as u32) {
                let idx = self.ix.index_of(EventId::new(t as u32, i as u32));
                let (Some(l), Some(p)) = (self.loc[idx], self.pos[idx]) else { continue };
                match last.iter_mut().find(|(ll, _)| *ll == l) {
                    Some((_, prev)) => {
                        let ok = if self.is_write[idx] { *prev < p } else { *prev <= p };
                        if !ok {
                            return false;
                        }
                        *prev = p;
                    }
                    None => last.push((l, p)),
                }
            }
        }
        true
    }

    /// `acyclic(po ∪ rf)` (no-thin-air) via DFS — no closure.
    pub fn porf_acyclic(&self) -> bool {
        let mut porf = self.po_relation();
        porf.union_with(&self.rf_relation());
        porf.is_acyclic()
    }

    /// The SC global order `po ∪ rf ∪ mo ∪ fr` with immediate mo edges
    /// (same cycles as the closed version).
    pub fn sc_order(&self) -> Relation {
        let mut rel = self.po_relation();
        rel.union_with(&self.rf_relation());
        self.add_mo_immediate(&mut rel);
        self.add_fr(&mut rel);
        rel
    }

    /// The happens-before closure `hb = (po ∪ sw)⁺`, or `None` if `po ∪ sw`
    /// is cyclic (i.e. `hb` would be reflexive).
    pub fn hb_closure(&self, sw: &Relation) -> Option<Relation> {
        let mut hb = self.po_relation();
        hb.union_with(sw);
        hb.close_acyclic().then_some(hb)
    }

    /// RC11 coherence given the closed `hb`: no `hb` edge may be
    /// contradicted by `eco` — `irreflexive(hb ; eco)`. Only same-location
    /// successors can matter, so rows are masked by location first.
    pub fn coherent(&self, hb: &Relation) -> bool {
        let mut scratch = vec![0u64; self.words];
        for a in 0..self.n {
            let Some(l) = self.loc[a] else { continue };
            let Some(mask) = self.mask_of(l) else { continue };
            for (w, s) in scratch.iter_mut().enumerate() {
                *s = hb.row(a)[w] & mask[w];
            }
            if iter_set_bits(&scratch).any(|b| self.eco(b, a)) {
                return false;
            }
        }
        true
    }

    /// Per-event bitset rows of the same-thread po-successors (a reverse
    /// sweep per thread).
    fn thread_suffix_rows(&self) -> Vec<u64> {
        let words = self.words;
        let mut rows = vec![0u64; self.n * words];
        let g = self.g;
        for t in 0..g.num_threads() {
            let len = g.thread_len(t as u32);
            let mut suffix = vec![0u64; words];
            for i in (0..len).rev() {
                let idx = self.ix.index_of(EventId::new(t as u32, i as u32));
                rows[idx * words..(idx + 1) * words].copy_from_slice(&suffix);
                suffix[idx / 64] |= 1u64 << (idx % 64);
            }
        }
        rows
    }

    /// Per-event bitset rows of the same-location *writes* with strictly
    /// greater position: a write's closed-`mo` successors, a read's `fr`
    /// targets. Built with one descending sweep per location.
    fn writes_after_rows(&self) -> Vec<u64> {
        let words = self.words;
        let mut rows = vec![0u64; self.n * words];
        let g = self.g;
        for (k, &l) in self.locs.iter().enumerate() {
            // Suffix masks over [init, mo...]: suffix[p] = writes at pos > p.
            let mo = g.mo(l);
            let mut suffix = vec![0u64; (mo.len() + 1) * words];
            let mut acc = vec![0u64; words];
            for p in (0..=mo.len()).rev() {
                suffix[p * words..(p + 1) * words].copy_from_slice(&acc);
                let idx = if p == 0 {
                    self.ix.index_of(EventId::Init(l))
                } else {
                    self.ix.index_of(mo[p - 1])
                };
                acc[idx / 64] |= 1u64 << (idx % 64);
            }
            let mask = &self.loc_masks[k * words..(k + 1) * words];
            for idx in iter_set_bits(mask) {
                if let Some(p) = self.pos[idx] {
                    let p = (p as usize).min(mo.len());
                    rows[idx * words..(idx + 1) * words]
                        .copy_from_slice(&suffix[p * words..(p + 1) * words]);
                }
            }
        }
        rows
    }

    /// The RC11 SC axiom `acyclic(psc_base ∪ psc_F)`, computed over the SC
    /// events only (the only possible carriers of a `psc` cycle). The
    /// `scb = (po \ po_loc) ∪ hb|loc ∪ mo ∪ fr` rows are synthesized on
    /// demand from suffix masks — the `n × n` relation is never built.
    pub fn psc_acyclic(&self, hb: &Relation) -> bool {
        let g = self.g;
        // Classify SC events once.
        let mut sc_fence = vec![false; self.n];
        let mut sc_nodes: Vec<usize> = Vec::new();
        for (id, ev) in g.events() {
            let sc = match &ev.kind {
                EventKind::Fence { mode } if mode.is_sc() => {
                    sc_fence[self.ix.index_of(id)] = true;
                    true
                }
                EventKind::Fence { .. } => false,
                EventKind::Read { mode, .. } | EventKind::Write { mode, .. } => mode.is_sc(),
                _ => false,
            };
            if sc {
                sc_nodes.push(self.ix.index_of(id));
            }
        }
        if sc_nodes.is_empty() {
            return true; // no SC events, axiom trivially holds
        }
        sc_nodes.sort_unstable();

        let words = self.words;
        let po_suffix = self.thread_suffix_rows();
        let writes_after = self.writes_after_rows();
        // scb_row(a) = (po-successors \ same-loc) ∪ (hb_row(a) ∩ loc(a))
        //            ∪ same-loc writes after a — written into `out`.
        let scb_row_into = |a: usize, out: &mut [u64]| {
            let posuf = &po_suffix[a * words..(a + 1) * words];
            match self.loc[a].and_then(|l| self.mask_of(l)) {
                Some(mask) => {
                    let wa = &writes_after[a * words..(a + 1) * words];
                    for (w, o) in out.iter_mut().enumerate() {
                        *o |= (posuf[w] & !mask[w]) | (hb.row(a)[w] & mask[w]) | wa[w];
                    }
                }
                None => {
                    for (w, o) in out.iter_mut().enumerate() {
                        *o |= posuf[w];
                    }
                }
            }
        };

        // Per SC node: L = {s} (∪ hb-successors for fences),
        //              R = {s} (∪ hb-predecessors for fences) as a bitset.
        let m = sc_nodes.len();
        let mut r_sets: Vec<u64> = vec![0u64; m * words];
        for (k, &s) in sc_nodes.iter().enumerate() {
            r_sets[k * words + s / 64] |= 1u64 << (s % 64);
        }
        for a in 0..self.n {
            for (k, &s) in sc_nodes.iter().enumerate() {
                if sc_fence[s] && hb.has(a, s) {
                    r_sets[k * words + a / 64] |= 1u64 << (a % 64);
                }
            }
        }
        let mut psc = Relation::new(m);
        let mut reach = vec![0u64; words];
        for (k1, &s1) in sc_nodes.iter().enumerate() {
            // X = ∪_{a ∈ L(s1)} scb_row(a)
            reach.iter_mut().for_each(|w| *w = 0);
            scb_row_into(s1, &mut reach);
            if sc_fence[s1] {
                for a in hb.successors(s1) {
                    scb_row_into(a, &mut reach);
                }
            }
            for k2 in 0..m {
                let rset = &r_sets[k2 * words..(k2 + 1) * words];
                if reach.iter().zip(rset).any(|(x, y)| x & y != 0) {
                    psc.add(k1, k2);
                }
            }
        }

        // psc_F = [Fsc] ; (hb ∪ hb;eco;hb) ; [Fsc]. The eco rows are only
        // materialized when SC fences actually exist.
        let fences: Vec<(usize, usize)> = sc_nodes
            .iter()
            .enumerate()
            .filter(|&(_, &s)| sc_fence[s])
            .map(|(k, &s)| (k, s))
            .collect();
        if !fences.is_empty() {
            let eco_rows = self.eco_rows();
            for &(k1, f1) in &fences {
                // Z = ∪_{a ∈ hb.row(f1)} eco_row(a): everything hb;eco
                // after f1.
                reach.iter_mut().for_each(|w| *w = 0);
                for a in hb.successors(f1) {
                    let row = &eco_rows[a * self.words..(a + 1) * self.words];
                    for (w, r) in reach.iter_mut().enumerate() {
                        *r |= row[w];
                    }
                }
                for &(k2, f2) in &fences {
                    if hb.has(f1, f2) {
                        psc.add(k1, k2);
                        continue;
                    }
                    // hb;eco;hb: some b ∈ Z with hb(b, f2)?
                    if iter_set_bits(&reach).any(|b| hb.has(b, f2)) {
                        psc.add(k1, k2);
                    }
                }
            }
        }
        psc.is_acyclic()
    }

    /// The TSO global order: `ppo ∪ rfe ∪ mo ∪ fr`, where `ppo` drops
    /// unfenced write→read pairs and `rfe` is external reads-from.
    pub fn tso_order(
        &self,
        wr_ordered: impl Fn(&ExecutionGraph, u32, usize, usize) -> bool,
    ) -> Relation {
        let g = self.g;
        let mut ghb = Relation::new(self.n);
        self.add_mo_immediate(&mut ghb);
        self.add_fr(&mut ghb);
        // External reads-from only (init counts as external).
        for (r, s) in self.src.iter().enumerate() {
            let Some(s) = s else { continue };
            let w = self.ix.id_of(*s as usize);
            let rid = self.ix.id_of(r);
            if w.thread() != rid.thread() {
                ghb.add(*s as usize, r);
            }
        }
        // Preserved program order.
        for init_idx in 0..self.ix.init_count() {
            for t in 0..g.num_threads() {
                if g.thread_len(t as u32) > 0 {
                    ghb.add(init_idx, self.ix.index_of(EventId::new(t as u32, 0)));
                }
            }
        }
        for t in 0..g.num_threads() {
            let evs = g.thread_events(t as u32);
            for i in 0..evs.len() {
                for j in i + 1..evs.len() {
                    let keep = if evs[i].kind.is_write() && evs[j].kind.is_read() {
                        wr_ordered(g, t as u32, i, j)
                    } else {
                        true
                    };
                    if keep {
                        ghb.add(
                            self.ix.index_of(EventId::new(t as u32, i as u32)),
                            self.ix.index_of(EventId::new(t as u32, j as u32)),
                        );
                    }
                }
            }
        }
        ghb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms;
    use std::collections::BTreeMap;
    use vsync_graph::Mode;

    fn w(loc: u64, val: u64) -> EventKind {
        EventKind::Write { loc, val, mode: Mode::Rlx, rmw: false }
    }

    fn r(loc: u64, rf: RfSource) -> EventKind {
        EventKind::Read { loc, mode: Mode::Rlx, rf, rmw: false, awaiting: false }
    }

    fn sample() -> ExecutionGraph {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w1 = g.push_event(0, w(1, 1));
        g.insert_mo(1, w1, 0);
        let w2 = g.push_event(0, w(1, 2));
        g.insert_mo(1, w2, 1);
        g.push_event(1, r(1, RfSource::Write(w1)));
        g.push_event(1, r(2, RfSource::Write(EventId::Init(2))));
        g
    }

    #[test]
    fn positions_match_mo_position() {
        let g = sample();
        let cx = AxiomContext::new(&g);
        for (i, id) in cx.ix.iter() {
            let expected = match id {
                EventId::Init(_) => Some(0),
                _ => match &g.event(id).kind {
                    EventKind::Write { .. } => g.mo_position(id),
                    EventKind::Read { rf: RfSource::Write(src), .. } => g.mo_position(*src),
                    _ => None,
                },
            };
            assert_eq!(cx.pos[i].map(|p| p as usize), expected, "position of {id}");
        }
    }

    #[test]
    fn eco_fast_equals_closed_reference() {
        let g = sample();
        let cx = AxiomContext::new(&g);
        let eco_ref = axioms::eco_relation(&g, &cx.ix);
        let eco_fast = cx.eco_relation();
        for a in 0..cx.len() {
            for b in 0..cx.len() {
                assert_eq!(
                    eco_fast.has(a, b),
                    eco_ref.has(a, b),
                    "eco({}, {})",
                    cx.ix.id_of(a),
                    cx.ix.id_of(b)
                );
            }
        }
    }

    #[test]
    fn eco_rows_match_pairwise_predicate() {
        let g = sample();
        let cx = AxiomContext::new(&g);
        let eco = cx.eco_relation();
        for a in 0..cx.len() {
            for b in 0..cx.len() {
                assert_eq!(eco.has(a, b), cx.eco(a, b), "({a}, {b})");
            }
        }
    }

    #[test]
    fn sw_fast_equals_reference() {
        // A graph exercising release fences, acquire fences and an RMW
        // release sequence.
        let (d, f) = (1, 2);
        let mut g = ExecutionGraph::new(3, BTreeMap::new());
        let wd = g.push_event(0, w(d, 1));
        g.insert_mo(d, wd, 0);
        g.push_event(0, EventKind::Fence { mode: Mode::Rel });
        let wf = g.push_event(0, EventKind::Write { loc: f, val: 1, mode: Mode::Rel, rmw: false });
        g.insert_mo(f, wf, 0);
        g.push_event(
            1,
            EventKind::Read { loc: f, mode: Mode::Rlx, rf: RfSource::Write(wf), rmw: true, awaiting: false },
        );
        let wu = g.push_event(1, EventKind::Write { loc: f, val: 2, mode: Mode::Rlx, rmw: true });
        g.insert_mo(f, wu, 1);
        g.push_event(2, r(f, RfSource::Write(wu)));
        g.push_event(2, EventKind::Fence { mode: Mode::Acq });
        g.push_event(2, r(d, RfSource::Write(EventId::Init(d))));
        let cx = AxiomContext::new(&g);
        let fast = cx.sw_relation();
        let naive = crate::sw_relation(&g, &cx.ix);
        for a in 0..cx.len() {
            for b in 0..cx.len() {
                assert_eq!(
                    fast.has(a, b),
                    naive.has(a, b),
                    "sw({}, {})",
                    cx.ix.id_of(a),
                    cx.ix.id_of(b)
                );
            }
        }
    }

    #[test]
    fn fast_structural_axioms_agree() {
        let g = sample();
        let cx = AxiomContext::new(&g);
        assert_eq!(cx.atomicity_holds(), axioms::atomicity_holds(&g));
        assert_eq!(cx.per_loc_coherent(), axioms::per_loc_coherent(&g));
    }

    #[test]
    fn coherence_fast_catches_corr_violation() {
        // T1 reads w2 then w1 (older): CoRR violation.
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w1 = g.push_event(0, w(1, 1));
        g.insert_mo(1, w1, 0);
        let w2 = g.push_event(0, w(1, 2));
        g.insert_mo(1, w2, 1);
        g.push_event(1, r(1, RfSource::Write(w2)));
        g.push_event(1, r(1, RfSource::Write(w1)));
        let cx = AxiomContext::new(&g);
        assert!(!cx.per_loc_coherent());
        assert!(!axioms::per_loc_coherent(&g));
    }
}
