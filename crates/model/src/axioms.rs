//! Relation builders and axioms shared by all memory models.
//!
//! These are the *reference* formulations: every relation is rebuilt from
//! scratch and acyclicity goes through a full transitive closure. The
//! explorer's hot path uses [`crate::fast`] instead; the reference is
//! retained as the oracle of the differential test suite and as the
//! baseline of the `explore_perf` benchmark.

use vsync_graph::{EventId, EventIndex, EventKind, ExecutionGraph, Relation, RfSource};

/// Acyclicity the closure-based way: close a copy, check irreflexivity.
/// `O(n³/64)` — kept as the reference-checker formulation.
pub fn acyclic_by_closure(r: &Relation) -> bool {
    let mut c = r.clone();
    c.close();
    c.is_irreflexive()
}

/// Build the program-order relation (immediate edges; callers close it when
/// needed). Init events are ordered before the first event of every thread,
/// modelling that initialization happens before the program starts.
pub fn po_relation(g: &ExecutionGraph, ix: &EventIndex) -> Relation {
    let mut po = Relation::new(ix.len());
    for init_idx in 0..ix.init_count() {
        for t in 0..g.num_threads() {
            if g.thread_len(t as u32) > 0 {
                po.add(init_idx, ix.index_of(EventId::new(t as u32, 0)));
            }
        }
    }
    for t in 0..g.num_threads() {
        for i in 1..g.thread_len(t as u32) {
            po.add(
                ix.index_of(EventId::new(t as u32, (i - 1) as u32)),
                ix.index_of(EventId::new(t as u32, i as u32)),
            );
        }
    }
    po
}

/// Build the reads-from relation (write -> read). Pending (`⊥`) reads have
/// no edge.
pub fn rf_relation(g: &ExecutionGraph, ix: &EventIndex) -> Relation {
    let mut rf = Relation::new(ix.len());
    for (r, _, src) in g.reads() {
        if let RfSource::Write(w) = src {
            rf.add(ix.index_of(w), ix.index_of(r));
        }
    }
    rf
}

/// Build the modification-order relation (immediate successor edges,
/// starting at the init write of each location).
pub fn mo_relation(g: &ExecutionGraph, ix: &EventIndex) -> Relation {
    let mut mo = Relation::new(ix.len());
    for loc in g.written_locs().collect::<Vec<_>>() {
        let mut prev = ix.index_of(EventId::Init(loc));
        for &w in g.mo(loc) {
            let cur = ix.index_of(w);
            mo.add(prev, cur);
            prev = cur;
        }
    }
    mo
}

/// Build the from-read relation `fr = rf⁻¹; mo` (read -> every write
/// `mo`-after the read's source). Pending reads have no edges.
pub fn fr_relation(g: &ExecutionGraph, ix: &EventIndex) -> Relation {
    let mut fr = Relation::new(ix.len());
    for (r, loc, src) in g.reads() {
        let RfSource::Write(w) = src else { continue };
        let src_pos = g.mo_position(w).expect("rf source must be in mo");
        let ridx = ix.index_of(r);
        for (pos, &w2) in g.mo(loc).iter().enumerate() {
            if pos + 1 > src_pos && w2 != r {
                fr.add(ridx, ix.index_of(w2));
            }
        }
    }
    fr
}

/// The extended coherence order `eco = (rf ∪ mo ∪ fr)⁺`, returned closed.
pub fn eco_relation(g: &ExecutionGraph, ix: &EventIndex) -> Relation {
    let mut eco = rf_relation(g, ix);
    eco.union_with(&mo_relation(g, ix));
    eco.union_with(&fr_relation(g, ix));
    eco.close();
    eco
}

/// All read-modify-write pairs `(read_part, write_part)` in the graph.
///
/// The language emits the two parts as adjacent events of the same thread,
/// so the write part of an RMW always immediately follows its read part.
pub fn rmw_pairs(g: &ExecutionGraph) -> Vec<(EventId, EventId)> {
    let mut pairs = Vec::new();
    for (id, ev) in g.events() {
        if let EventKind::Write { rmw: true, loc, .. } = &ev.kind {
            let EventId::Event { thread, index } = id else { unreachable!() };
            assert!(index > 0, "RMW write {id} has no preceding read part");
            let r = EventId::new(thread, index - 1);
            match &g.event(r).kind {
                EventKind::Read { rmw: true, loc: rloc, .. } if rloc == loc => {}
                k => panic!("event before RMW write {id} is not its read part: {k}"),
            }
            pairs.push((r, id));
        }
    }
    pairs
}

/// The atomicity axiom: for every RMW pair, no other write to the same
/// location sits `mo`-between the read's source and the RMW's write.
///
/// Equivalently, the RMW write must be placed immediately after its read's
/// source in `mo`. RMW reads whose source is still `⊥` never have a write
/// part, so they cannot violate atomicity.
pub fn atomicity_holds(g: &ExecutionGraph) -> bool {
    for (r, w) in rmw_pairs(g) {
        match g.rf(r) {
            RfSource::Bottom => return false, // write part exists but read unresolved
            RfSource::Write(src) => {
                let (Some(sp), Some(wp)) = (g.mo_position(src), g.mo_position(w)) else {
                    return false;
                };
                if wp != sp + 1 {
                    return false;
                }
            }
        }
    }
    true
}

/// Per-location coherence ("SC per location" / the four CoXX axioms).
///
/// Checks, for every pair of same-location accesses ordered by program
/// order, that their positions in the extended modification order agree:
/// CoWW, CoWR, CoRW and CoRR. Pending reads are unconstrained.
pub fn per_loc_coherent(g: &ExecutionGraph) -> bool {
    for t in 0..g.num_threads() {
        let evs = g.thread_events(t as u32);
        for i in 0..evs.len() {
            let Some(loc_a) = evs[i].kind.loc() else { continue };
            let pos_a = access_pos(g, EventId::new(t as u32, i as u32));
            for (j, ev_j) in evs.iter().enumerate().skip(i + 1) {
                if ev_j.kind.loc() != Some(loc_a) {
                    continue;
                }
                let pos_b = access_pos(g, EventId::new(t as u32, j as u32));
                let (Some(pa), Some(pb)) = (pos_a, pos_b) else { continue };
                let a_is_write = evs[i].kind.is_write();
                let b_is_write = ev_j.kind.is_write();
                let ok = match (a_is_write, b_is_write) {
                    (true, true) => pa < pb,   // CoWW
                    (true, false) => pb >= pa, // CoWR: b reads a or newer
                    (false, true) => pa < pb,  // CoRW
                    (false, false) => pa <= pb, // CoRR
                };
                if !ok {
                    return false;
                }
            }
        }
    }
    true
}

/// The coherence position of an access: a write's own mo position, a read's
/// source position. `None` for pending reads.
fn access_pos(g: &ExecutionGraph, id: EventId) -> Option<usize> {
    match &g.event(id).kind {
        EventKind::Write { .. } => g.mo_position(id),
        EventKind::Read { rf: RfSource::Write(w), .. } => g.mo_position(*w),
        EventKind::Read { rf: RfSource::Bottom, .. } => None,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vsync_graph::Mode;

    fn w(loc: u64, val: u64) -> EventKind {
        EventKind::Write { loc, val, mode: Mode::Rlx, rmw: false }
    }

    fn r(loc: u64, rf: RfSource) -> EventKind {
        EventKind::Read { loc, mode: Mode::Rlx, rf, rmw: false, awaiting: false }
    }

    #[test]
    fn fr_points_at_newer_writes() {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w1 = g.push_event(0, w(1, 1));
        g.insert_mo(1, w1, 0);
        let w2 = g.push_event(0, w(1, 2));
        g.insert_mo(1, w2, 1);
        let rd = g.push_event(1, r(1, RfSource::Write(w1)));
        let ix = EventIndex::new(&g);
        let fr = fr_relation(&g, &ix);
        assert!(fr.has(ix.index_of(rd), ix.index_of(w2)));
        assert!(!fr.has(ix.index_of(rd), ix.index_of(w1)));
    }

    #[test]
    fn fr_from_init_read_covers_all_writes() {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w1 = g.push_event(0, w(1, 1));
        g.insert_mo(1, w1, 0);
        let rd = g.push_event(1, r(1, RfSource::Write(EventId::Init(1))));
        let ix = EventIndex::new(&g);
        let fr = fr_relation(&g, &ix);
        assert!(fr.has(ix.index_of(rd), ix.index_of(w1)));
    }

    #[test]
    fn coherence_rejects_reading_overwritten_value_after_own_write() {
        // T0: W(x,1); R(x) <- init   — CoWR violation.
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        let w1 = g.push_event(0, w(1, 1));
        g.insert_mo(1, w1, 0);
        g.push_event(0, r(1, RfSource::Write(EventId::Init(1))));
        assert!(!per_loc_coherent(&g));
    }

    #[test]
    fn coherence_rejects_backwards_corr() {
        // T1: R(x)<-w2 ; R(x)<-w1 with w1 mo-before w2 — CoRR violation.
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w1 = g.push_event(0, w(1, 1));
        g.insert_mo(1, w1, 0);
        let w2 = g.push_event(0, w(1, 2));
        g.insert_mo(1, w2, 1);
        g.push_event(1, r(1, RfSource::Write(w2)));
        g.push_event(1, r(1, RfSource::Write(w1)));
        assert!(!per_loc_coherent(&g));
    }

    #[test]
    fn coherence_rejects_reading_own_future_write() {
        // T0: R(x)<-w1 ; W(x,1)=w1 — CoRW violation (reading the future).
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        g.push_event(0, r(1, RfSource::Write(EventId::new(0, 1))));
        let w1 = g.push_event(0, w(1, 1));
        g.insert_mo(1, w1, 0);
        assert!(!per_loc_coherent(&g));
    }

    #[test]
    fn coherence_accepts_pending_reads() {
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        let w1 = g.push_event(0, w(1, 1));
        g.insert_mo(1, w1, 0);
        g.push_event(0, r(1, RfSource::Bottom));
        assert!(per_loc_coherent(&g));
    }

    #[test]
    fn atomicity_requires_adjacent_mo() {
        // T0 RMW reads init and writes; T1's plain write squeezes between.
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        g.push_event(
            0,
            EventKind::Read { loc: 1, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(1)), rmw: true, awaiting: false },
        );
        let wr = g.push_event(0, EventKind::Write { loc: 1, val: 1, mode: Mode::Rlx, rmw: true });
        let other = g.push_event(1, w(1, 9));
        g.insert_mo(1, other, 0);
        g.insert_mo(1, wr, 1); // rmw write after the interloper: violation
        assert!(!atomicity_holds(&g));
        // Reorder mo so the RMW write is adjacent to init: ok.
        let mut g2 = ExecutionGraph::new(2, BTreeMap::new());
        g2.push_event(
            0,
            EventKind::Read { loc: 1, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(1)), rmw: true, awaiting: false },
        );
        let wr2 = g2.push_event(0, EventKind::Write { loc: 1, val: 1, mode: Mode::Rlx, rmw: true });
        let other2 = g2.push_event(1, w(1, 9));
        g2.insert_mo(1, wr2, 0);
        g2.insert_mo(1, other2, 1);
        assert!(atomicity_holds(&g2));
    }

    #[test]
    fn rmw_pairs_found() {
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        let rd = g.push_event(
            0,
            EventKind::Read { loc: 1, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(1)), rmw: true, awaiting: false },
        );
        let wr = g.push_event(0, EventKind::Write { loc: 1, val: 1, mode: Mode::Rlx, rmw: true });
        g.insert_mo(1, wr, 0);
        assert_eq!(rmw_pairs(&g), vec![(rd, wr)]);
    }
}
