//! # vsync-model
//!
//! Axiomatic weak memory models as consistency predicates over execution
//! graphs (`consM(G)`, paper §1.1).
//!
//! Three models are provided:
//!
//! * [`Sc`] — sequential consistency (the reference; also what the paper's
//!   "sc-only" lock variants assume);
//! * [`Tso`] — x86-style total store order;
//! * [`Vmm`] — an RC11-style model standing in for the paper's IMM (see
//!   the [`Vmm`] docs and DESIGN.md §5 for the substitution rationale).
//!
//! Models are *monotone*: adding events or edges to an inconsistent graph
//! never makes it consistent, which is what allows the AMC explorer to
//! discard inconsistent partial graphs early.
//!
//! ```
//! use vsync_model::{MemoryModel, ModelKind};
//! use vsync_graph::ExecutionGraph;
//! use std::collections::BTreeMap;
//!
//! let g = ExecutionGraph::new(1, BTreeMap::new());
//! assert!(ModelKind::Vmm.model().is_consistent(&g));
//! ```

#![warn(missing_docs)]

pub mod axioms;
pub mod fast;
mod sc;
mod tso;
mod vmm;

pub use fast::attribution::{checker_attribution, set_checker_attribution};
pub use fast::AxiomContext;
pub use sc::Sc;
pub use tso::Tso;
pub use vmm::{sw_relation, Vmm};

use vsync_graph::ExecutionGraph;

/// A weak memory model: a consistency predicate over execution graphs.
pub trait MemoryModel: std::fmt::Debug + Send + Sync {
    /// Short display name (`"SC"`, `"TSO"`, `"VMM"`).
    fn name(&self) -> &'static str;

    /// Does the model admit this (possibly partial) execution graph?
    ///
    /// Runs the closure-free fast path (see [`fast`]).
    fn is_consistent(&self, g: &ExecutionGraph) -> bool;

    /// The naive closure-based formulation of the same predicate.
    ///
    /// Extensionally equal to [`MemoryModel::is_consistent`]; retained as
    /// the oracle for differential testing and as the performance baseline
    /// measured by `explore_perf`. Deliberately has no default body: a
    /// model without a genuine reference formulation would make the
    /// differential tests vacuous.
    fn is_consistent_reference(&self, g: &ExecutionGraph) -> bool;
}

/// Which consistency-check implementation the explorer should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckerKind {
    /// The closure-free fast path (the default).
    #[default]
    Fast,
    /// The naive closure-based reference formulation — for differential
    /// testing and baseline measurements only.
    Reference,
}

/// A [`MemoryModel`] adapter that answers with the reference formulation.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceModel(pub ModelKind);

impl MemoryModel for ReferenceModel {
    fn name(&self) -> &'static str {
        match self.0 {
            ModelKind::Sc => "SC(ref)",
            ModelKind::Tso => "TSO(ref)",
            ModelKind::Vmm => "VMM(ref)",
        }
    }

    fn is_consistent(&self, g: &ExecutionGraph) -> bool {
        self.0.model().is_consistent_reference(g)
    }

    fn is_consistent_reference(&self, g: &ExecutionGraph) -> bool {
        // Already the reference: both flavors answer identically.
        self.is_consistent(g)
    }
}

/// Enumeration of the built-in models, for configuration surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// Sequential consistency.
    Sc,
    /// Total store order.
    Tso,
    /// The RC11-style default model.
    #[default]
    Vmm,
}

impl ModelKind {
    /// The model implementation for this kind.
    pub fn model(self) -> &'static dyn MemoryModel {
        match self {
            ModelKind::Sc => &Sc,
            ModelKind::Tso => &Tso,
            ModelKind::Vmm => &Vmm,
        }
    }

    /// The closure-based reference checker for this kind.
    pub fn reference_model(self) -> &'static dyn MemoryModel {
        const SC_REF: ReferenceModel = ReferenceModel(ModelKind::Sc);
        const TSO_REF: ReferenceModel = ReferenceModel(ModelKind::Tso);
        const VMM_REF: ReferenceModel = ReferenceModel(ModelKind::Vmm);
        match self {
            ModelKind::Sc => &SC_REF,
            ModelKind::Tso => &TSO_REF,
            ModelKind::Vmm => &VMM_REF,
        }
    }

    /// The checker implementation for this kind and checker flavor.
    pub fn checker(self, kind: CheckerKind) -> &'static dyn MemoryModel {
        match kind {
            CheckerKind::Fast => self.model(),
            CheckerKind::Reference => self.reference_model(),
        }
    }

    /// All built-in models, weakest-checked last — the default *model
    /// matrix* for cross-model sessions (`Session::models(ModelKind::all())`)
    /// and tests.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::Sc, ModelKind::Tso, ModelKind::Vmm]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.model().name())
    }
}

/// Parse a model name, case-insensitively (`"sc"`, `"TSO"`, `"vmm"`) —
/// the inverse of `Display` for configuration surfaces (CLI `--model`,
/// service request fields).
impl std::str::FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sc" => Ok(ModelKind::Sc),
            "tso" => Ok(ModelKind::Tso),
            "vmm" => Ok(ModelKind::Vmm),
            other => Err(format!("unknown memory model '{other}' (sc, tso, vmm)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_resolve_to_models() {
        assert_eq!(ModelKind::Sc.model().name(), "SC");
        assert_eq!(ModelKind::Tso.model().name(), "TSO");
        assert_eq!(ModelKind::Vmm.model().name(), "VMM");
        assert_eq!(ModelKind::default(), ModelKind::Vmm);
        assert_eq!(ModelKind::Vmm.to_string(), "VMM");
    }

    #[test]
    fn kinds_parse_back_from_display_and_lowercase() {
        for kind in ModelKind::all() {
            assert_eq!(kind.to_string().parse::<ModelKind>(), Ok(kind));
            assert_eq!(kind.to_string().to_lowercase().parse::<ModelKind>(), Ok(kind));
        }
        assert!("power".parse::<ModelKind>().is_err());
    }

    /// SC admits a subset of TSO which admits a subset of VMM on the
    /// store-buffering shape (the canonical strength witness).
    #[test]
    fn strength_ordering_on_sb() {
        use std::collections::BTreeMap;
        use vsync_graph::{EventId, EventKind, Mode, RfSource};
        let (x, y) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wx = g.push_event(0, EventKind::Write { loc: x, val: 1, mode: Mode::Rel, rmw: false });
        g.insert_mo(x, wx, 0);
        g.push_event(0, EventKind::Read { loc: y, mode: Mode::Acq, rf: RfSource::Write(EventId::Init(y)), rmw: false, awaiting: false });
        let wy = g.push_event(1, EventKind::Write { loc: y, val: 1, mode: Mode::Rel, rmw: false });
        g.insert_mo(y, wy, 0);
        g.push_event(1, EventKind::Read { loc: x, mode: Mode::Acq, rf: RfSource::Write(EventId::Init(x)), rmw: false, awaiting: false });
        assert!(!Sc.is_consistent(&g));
        assert!(Tso.is_consistent(&g));
        assert!(Vmm.is_consistent(&g));
    }
}
