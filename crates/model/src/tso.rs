//! Total store order (x86-style).

use vsync_graph::{EventId, EventIndex, EventKind, ExecutionGraph};

use crate::axioms::{
    acyclic_by_closure, atomicity_holds, fr_relation, mo_relation, per_loc_coherent, rf_relation,
};
use crate::fast::AxiomContext;
use crate::MemoryModel;

/// The TSO memory model in the style of x86-TSO.
///
/// * per-location coherence and RMW atomicity;
/// * `acyclic(ppo ∪ rfe ∪ mo ∪ fr)` where `ppo` is program order minus
///   write→read pairs, unless the pair is separated by an SC fence
///   (`mfence`) or either end is part of a locked RMW;
/// * only *external* reads-from edges constrain the global order (a thread
///   may read its own buffered store early).
///
/// Barrier modes other than SC fences are ignored: every x86 load already
/// has acquire semantics and every store release semantics, which is why the
/// paper's x86 speedups come almost exclusively from eliminating SC
/// fences/accesses (§4.2.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tso;

impl Tso {
    /// Is the `W -> R` pair (a po-earlier write, a po-later read of the same
    /// thread) ordered despite store buffering?
    fn wr_ordered(g: &ExecutionGraph, thread: u32, wi: usize, ri: usize) -> bool {
        let evs = g.thread_events(thread);
        // Locked RMWs drain the buffer; so does an mfence in between.
        let end_is_locked = |k: &EventKind| match k {
            EventKind::Read { rmw, .. } | EventKind::Write { rmw, .. } => *rmw,
            _ => false,
        };
        if end_is_locked(&evs[wi].kind) || end_is_locked(&evs[ri].kind) {
            return true;
        }
        evs[wi + 1..ri].iter().any(|e| match &e.kind {
            EventKind::Fence { mode } => mode.is_sc(),
            EventKind::Read { rmw, .. } | EventKind::Write { rmw, .. } => *rmw,
            _ => false,
        })
    }
}

impl MemoryModel for Tso {
    fn name(&self) -> &'static str {
        "TSO"
    }

    fn is_consistent(&self, g: &ExecutionGraph) -> bool {
        if crate::fast::below_fast_path_threshold(g) {
            return self.is_consistent_reference(g);
        }
        let cx = AxiomContext::new(g);
        if !cx.atomicity_holds() || !cx.per_loc_coherent() {
            return false;
        }
        cx.tso_order(Tso::wr_ordered).is_acyclic()
    }

    fn is_consistent_reference(&self, g: &ExecutionGraph) -> bool {
        if !atomicity_holds(g) || !per_loc_coherent(g) {
            return false;
        }
        let ix = EventIndex::new(g);
        let mut ghb = mo_relation(g, &ix);
        ghb.union_with(&fr_relation(g, &ix));
        // External reads-from only (init counts as external).
        let rf = rf_relation(g, &ix);
        for (widx, ridx) in rf.edges() {
            let w = ix.id_of(widx);
            let r = ix.id_of(ridx);
            if w.thread() != r.thread() {
                ghb.add(widx, ridx);
            }
        }
        // Preserved program order.
        for init_idx in 0..ix.init_count() {
            for t in 0..g.num_threads() {
                if g.thread_len(t as u32) > 0 {
                    ghb.add(init_idx, ix.index_of(EventId::new(t as u32, 0)));
                }
            }
        }
        for t in 0..g.num_threads() {
            let evs = g.thread_events(t as u32);
            for i in 0..evs.len() {
                for j in i + 1..evs.len() {
                    let a_w = evs[i].kind.is_write();
                    let b_r = evs[j].kind.is_read();
                    let keep = if a_w && b_r {
                        Tso::wr_ordered(g, t as u32, i, j)
                    } else {
                        true
                    };
                    if keep {
                        ghb.add(
                            ix.index_of(EventId::new(t as u32, i as u32)),
                            ix.index_of(EventId::new(t as u32, j as u32)),
                        );
                    }
                }
            }
        }
        acyclic_by_closure(&ghb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vsync_graph::{Mode, RfSource};

    fn w(loc: u64, val: u64) -> EventKind {
        EventKind::Write { loc, val, mode: Mode::Rlx, rmw: false }
    }

    fn r(loc: u64, rf: RfSource) -> EventKind {
        EventKind::Read { loc, mode: Mode::Rlx, rf, rmw: false, awaiting: false }
    }

    /// Every Tso test asserts both paths: fast and reference must agree.
    fn consistent(g: &ExecutionGraph) -> bool {
        let fast = Tso.is_consistent(g);
        let naive = Tso.is_consistent_reference(g);
        assert_eq!(fast, naive, "fast/reference divergence on:\n{}", g.render());
        fast
    }

    fn store_buffering(with_fences: bool) -> ExecutionGraph {
        let (x, y) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wx = g.push_event(0, w(x, 1));
        g.insert_mo(x, wx, 0);
        if with_fences {
            g.push_event(0, EventKind::Fence { mode: Mode::Sc });
        }
        g.push_event(0, r(y, RfSource::Write(EventId::Init(y))));
        let wy = g.push_event(1, w(y, 1));
        g.insert_mo(y, wy, 0);
        if with_fences {
            g.push_event(1, EventKind::Fence { mode: Mode::Sc });
        }
        g.push_event(1, r(x, RfSource::Write(EventId::Init(x))));
        g
    }

    #[test]
    fn sb_allowed_without_fences() {
        // The hallmark TSO relaxation: both threads read 0.
        assert!(consistent(&store_buffering(false)));
    }

    #[test]
    fn sb_forbidden_with_mfence() {
        assert!(!consistent(&store_buffering(true)));
    }

    #[test]
    fn message_passing_stale_read_forbidden() {
        // TSO preserves W->W and R->R order: MP is forbidden.
        let (d, f) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let wd = g.push_event(0, w(d, 1));
        g.insert_mo(d, wd, 0);
        let wf = g.push_event(0, w(f, 1));
        g.insert_mo(f, wf, 0);
        g.push_event(1, r(f, RfSource::Write(wf)));
        g.push_event(1, r(d, RfSource::Write(EventId::Init(d))));
        assert!(!consistent(&g));
    }

    #[test]
    fn own_store_forwarding_allowed() {
        // T0: W(x,1); R(x)=1 (own store) while T1's write is mo-later.
        let x = 1;
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w0 = g.push_event(0, w(x, 1));
        g.insert_mo(x, w0, 0);
        g.push_event(0, r(x, RfSource::Write(w0)));
        let w1 = g.push_event(1, w(x, 2));
        g.insert_mo(x, w1, 1);
        assert!(consistent(&g));
    }

    #[test]
    fn locked_rmw_orders_like_fence() {
        // Replace T0's plain write in SB by an RMW: pair becomes ordered.
        let (x, y) = (1, 2);
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        g.push_event(
            0,
            EventKind::Read { loc: x, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(x)), rmw: true, awaiting: false },
        );
        let wx = g.push_event(0, EventKind::Write { loc: x, val: 1, mode: Mode::Rlx, rmw: true });
        g.insert_mo(x, wx, 0);
        g.push_event(0, r(y, RfSource::Write(EventId::Init(y))));
        let wy = g.push_event(1, w(y, 1));
        g.insert_mo(y, wy, 0);
        g.push_event(1, EventKind::Fence { mode: Mode::Sc });
        g.push_event(1, r(x, RfSource::Write(EventId::Init(x))));
        assert!(!consistent(&g));
    }
}
