//! Reproduce the paper's Fig. 2 verbatim: two hand-built execution graphs
//! of the Fig. 1 program, one consistent (ⓐ) and one ruled out by the
//! rel/acq handshake on `q` (ⓑ — the highlighted cyclic path
//! `po;[W_rel];rf;[R_acq];po;mo`). Removing the barriers makes ⓑ
//! consistent again, exactly as the paper notes.

use std::collections::BTreeMap;

use vsync_graph::{EventId, EventKind, ExecutionGraph, Mode, RfSource};
use vsync_model::{MemoryModel, Sc, Vmm};

const L: u64 = 0x10; // locked
const Q: u64 = 0x20;

fn read(loc: u64, mode: Mode, rf: EventId, awaiting: bool) -> EventKind {
    EventKind::Read { loc, mode, rf: RfSource::Write(rf), rmw: false, awaiting }
}

fn write(loc: u64, val: u64, mode: Mode) -> EventKind {
    EventKind::Write { loc, val, mode, rmw: false }
}

/// Graph ⓐ: `W_T1(l,1)` precedes `W_T2(l,0)` in mo; T2 polls `q` twice
/// before seeing the signal; both awaits terminate.
fn graph_a(q_write_mode: Mode, q_read_mode: Mode) -> ExecutionGraph {
    let mut g = ExecutionGraph::new(2, BTreeMap::new());
    // T1: W(l,1); W_rel(q,1); R(l,0) <- T2's unlock.
    let wl1 = g.push_event(0, write(L, 1, Mode::Rlx));
    let wq = g.push_event(0, write(Q, 1, q_write_mode));
    // T2: R_acq(q,0); R_acq(q,0); R_acq(q,1); W(l,0).
    g.push_event(1, read(Q, q_read_mode, EventId::Init(Q), true));
    g.push_event(1, read(Q, q_read_mode, EventId::Init(Q), true));
    g.push_event(1, read(Q, q_read_mode, wq, true));
    let wl2 = g.push_event(1, write(L, 0, Mode::Rlx));
    // T1's await reads T2's unlock.
    g.push_event(0, read(L, Mode::Rlx, wl2, true));
    g.insert_mo(L, wl1, 0);
    g.insert_mo(L, wl2, 1);
    g.insert_mo(Q, wq, 0);
    g
}

/// Graph ⓑ: mo of `l` is the other way around (`W_T2(l,0)` first), and T1
/// reads its own `W(l,1)` — the await would spin forever. A finite prefix
/// suffices to exhibit the forbidden cycle.
fn graph_b(q_write_mode: Mode, q_read_mode: Mode) -> ExecutionGraph {
    let mut g = ExecutionGraph::new(2, BTreeMap::new());
    let wl1 = g.push_event(0, write(L, 1, Mode::Rlx));
    let wq = g.push_event(0, write(Q, 1, q_write_mode));
    g.push_event(1, read(Q, q_read_mode, EventId::Init(Q), true));
    g.push_event(1, read(Q, q_read_mode, EventId::Init(Q), true));
    g.push_event(1, read(Q, q_read_mode, wq, true));
    let wl2 = g.push_event(1, write(L, 0, Mode::Rlx));
    // T2's assert-read observes T1's lock write...
    g.push_event(1, read(L, Mode::Rlx, wl1, false));
    // ...and T1's await keeps reading its own write.
    g.push_event(0, read(L, Mode::Rlx, wl1, true));
    // mo: init -> W_T2(l,0) -> W_T1(l,1).
    g.insert_mo(L, wl2, 0);
    g.insert_mo(L, wl1, 1);
    g.insert_mo(Q, wq, 0);
    g
}

#[test]
fn graph_a_is_consistent() {
    assert!(Vmm.is_consistent(&graph_a(Mode::Rel, Mode::Acq)));
    assert!(Sc.is_consistent(&graph_a(Mode::Rel, Mode::Acq)));
}

#[test]
fn graph_b_violates_the_rel_acq_path() {
    // The cycle: W(l,1) -po-> W_rel(q,1) -rf-> R_acq(q,1) -po-> W(l,0)
    //            -mo-> W(l,1). Forbidden with the barriers in place.
    assert!(!Vmm.is_consistent(&graph_b(Mode::Rel, Mode::Acq)));
}

#[test]
fn graph_b_without_barriers_is_consistent() {
    // Paper: "If say the rel barriers on the accesses to q would be
    // removed, the graph would be consistent with IMM."
    assert!(Vmm.is_consistent(&graph_b(Mode::Rlx, Mode::Rlx)));
    // One-sided barriers don't create the synchronizes-with edge either.
    assert!(Vmm.is_consistent(&graph_b(Mode::Rel, Mode::Rlx)));
    assert!(Vmm.is_consistent(&graph_b(Mode::Rlx, Mode::Acq)));
}

#[test]
fn graph_b_is_never_sequentially_consistent() {
    // Under SC even the relaxed variant is impossible (T2 saw l==1 after
    // writing l=0 that is mo-later... the interleaving cannot be built).
    assert!(!Sc.is_consistent(&graph_b(Mode::Rlx, Mode::Rlx)));
}

/// The divergent graph of Fig. 7 — infinitely many reads from the initial
/// store — is memory-model-consistent at every finite prefix; it is the
/// *program* semantics (`consP`) that rules it out. Here we check the
/// model half of that statement.
#[test]
fn fig7_prefixes_are_model_consistent() {
    let mut g = ExecutionGraph::new(1, BTreeMap::new());
    for _ in 0..6 {
        g.push_event(0, read(L, Mode::Rlx, EventId::Init(L), false));
        assert!(Vmm.is_consistent(&g));
        assert!(Sc.is_consistent(&g));
    }
}
