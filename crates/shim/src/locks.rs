//! Real Rust spinlocks over shim atomics, with registry twins.
//!
//! Each lock here is ordinary code — the loops are real `while` loops over
//! [`crate::atomic`] types — annotated with the *same barrier-site names*
//! as its hand-built `vsync-locks` registry twin. Recording its generic
//! mutual-exclusion client with [`mutex_client`] therefore lowers to a
//! program that is event-for-event isomorphic to the twin's, which the
//! differential suite exploits: verdicts, execution counts and optimized
//! barrier assignments must all agree.

use crate::atomic::{AtomicU32, Ordering};
use crate::{site, Model, Recording, ShimError};

/// A spinlock expressed with shim atomics, paired with the name of its
/// hand-built `vsync-locks` registry twin.
pub trait ShimLock: Default + Sync {
    /// Registry name of the equivalent hand-built lock model.
    const REGISTRY_TWIN: &'static str;

    /// Acquire the lock.
    fn lock(&self);

    /// Release the lock.
    fn unlock(&self);
}

/// Test-and-set spinlock: `while lock.swap(1, Acquire) != 0 {}`.
/// Registry twin: `taslock`.
#[derive(Debug, Default)]
pub struct TasSpinlock {
    locked: AtomicU32,
}

impl ShimLock for TasSpinlock {
    const REGISTRY_TWIN: &'static str = "taslock";

    fn lock(&self) {
        site("tas.acquire.xchg", || while self.locked.swap(1, Ordering::Acquire) != 0 {});
    }

    fn unlock(&self) {
        site("tas.release.store", || self.locked.store(0, Ordering::Release));
    }
}

/// Compare-and-swap spinlock: retry `compare_exchange(0, 1, Acquire)`.
/// Registry twin: `caslock`.
#[derive(Debug, Default)]
pub struct CasSpinlock {
    locked: AtomicU32,
}

impl ShimLock for CasSpinlock {
    const REGISTRY_TWIN: &'static str = "caslock";

    fn lock(&self) {
        site("caslock.acquire.cas", || {
            while self
                .locked
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {}
        });
    }

    fn unlock(&self) {
        site("caslock.release.store", || self.locked.store(0, Ordering::Release));
    }
}

/// FIFO ticket lock: draw a ticket with `fetch_add`, spin until `owner`
/// reaches it. Registry twin: `ticketlock`.
#[derive(Debug, Default)]
pub struct TicketSpinlock {
    next: AtomicU32,
    owner: AtomicU32,
}

impl ShimLock for TicketSpinlock {
    const REGISTRY_TWIN: &'static str = "ticketlock";

    fn lock(&self) {
        let my = site("ticket.acquire.fai", || self.next.fetch_add(1, Ordering::Relaxed));
        site("ticket.acquire.await", || while self.owner.load(Ordering::Acquire) != my {});
    }

    fn unlock(&self) {
        // Only the owner writes `owner`: a plain load/store pair suffices.
        let cur = site("ticket.release.load", || self.owner.load(Ordering::Relaxed));
        site("ticket.release.store", || self.owner.store(cur + 1, Ordering::Release));
    }
}

/// Record the paper's generic mutual-exclusion client over a shim lock:
/// `threads` template-identical threads each acquire, increment a shared
/// counter with relaxed accesses, and release, `acquires` times; the
/// final-state check demands no increment is lost.
///
/// This is the shim analogue of `vsync_locks::mutex_client`, built from
/// *real code* instead of a thread builder.
///
/// # Errors
///
/// Any [`ShimError`] of the underlying recording.
pub fn mutex_client<L: ShimLock>(threads: usize, acquires: usize) -> Result<Recording, ShimError> {
    let lock = L::default();
    let counter = AtomicU32::new(0);
    Model::new(L::REGISTRY_TWIN)
        .template(threads, |_| {
            for _ in 0..acquires {
                lock.lock();
                let c = counter.load(Ordering::Relaxed);
                counter.store(c + 1, Ordering::Relaxed);
                lock.unlock();
            }
        })
        .final_eq(
            &counter,
            (threads * acquires) as u32,
            "no increment lost in the critical section",
        )
        .record()
}
