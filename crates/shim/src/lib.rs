//! # vsync-shim
//!
//! A loom-style instrumented runtime that checks *real Rust code*: swap
//! `std::sync::atomic` for [`atomic`], run the threads once under a
//! deterministic recording scheduler ([`Model::record`]), and the
//! recorded trace is lowered into a `vsync_lang::Program` — spin loops
//! become native `Await` instructions, template-identical threads become
//! the declared symmetry partition — which AMC then explores exhaustively
//! under every memory model, and whose annotated barrier sites the
//! optimizer can relax.
//!
//! ```
//! use vsync_core::Session;
//! use vsync_shim::atomic::{AtomicU32, Ordering};
//! use vsync_shim::{site, Model, SessionExt as _};
//!
//! let lock = AtomicU32::new(0);
//! let counter = AtomicU32::new(0);
//! let rec = Model::new("tas-demo")
//!     .template(2, |_| {
//!         site("acquire", || while lock.swap(1, Ordering::Acquire) != 0 {});
//!         let c = counter.load(Ordering::Relaxed);
//!         counter.store(c + 1, Ordering::Relaxed);
//!         site("release", || lock.store(0, Ordering::Release));
//!     })
//!     .final_eq(&counter, 2, "no lost increment")
//!     .record()
//!     .expect("recording succeeds");
//! assert!(Session::from_shim(&rec).run().is_verified());
//! ```
//!
//! ## Soundness caveats
//!
//! The recording observes **one** execution; lowering generalizes it.
//! The guarantees and their limits (bounded iteration, data-independence,
//! pure exit conditions, spin-detection heuristics) are documented in
//! `DESIGN.md` §11 — read it before trusting a verdict on new code.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

use vsync_lang::trace::{self, Trace, TraceError};
use vsync_lang::Program;

pub mod atomic;
pub mod locks;
mod runtime;
mod sync;

pub use runtime::site;
pub use sync::{Mutex, MutexGuard};

use atomic::Observable;

/// Default recording step budget: instrumented operations (including
/// blocked re-polls) across all threads before the recording aborts.
pub const DEFAULT_STEP_BUDGET: u64 = 1 << 20;

/// Errors of [`Model::record`].
#[derive(Debug)]
pub enum ShimError {
    /// Every unfinished thread is blocked on a spin whose location nobody
    /// left runnable can change; `(thread, watched location)` pairs.
    Deadlock {
        /// The blocked threads and the locations they watch.
        blocked: Vec<(usize, u64)>,
    },
    /// The recording exceeded its step budget (see
    /// [`Model::step_budget`]).
    StepBudget {
        /// The exhausted budget.
        limit: u64,
    },
    /// A recorded thread panicked with a non-shim payload.
    UserPanic {
        /// Index of the panicking thread.
        thread: usize,
        /// The panic message, if it was a string.
        message: String,
    },
    /// `Model::record` was called from inside a recorded closure.
    Nested,
    /// The recorded trace could not be lowered into a program.
    Lower(TraceError),
}

impl fmt::Display for ShimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShimError::Deadlock { blocked } => {
                write!(f, "recording deadlocked: ")?;
                for (i, (t, loc)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "thread {t} spins on {loc:#x}")?;
                }
                write!(f, " and no runnable thread can write the watched location(s)")
            }
            ShimError::StepBudget { limit } => {
                write!(f, "recording exceeded its step budget of {limit} operations")
            }
            ShimError::UserPanic { thread, message } => {
                write!(f, "recorded thread {thread} panicked: {message}")
            }
            ShimError::Nested => {
                write!(f, "Model::record called from inside a recorded closure")
            }
            ShimError::Lower(e) => write!(f, "cannot lower the recorded trace: {e}"),
        }
    }
}

impl std::error::Error for ShimError {}

impl From<TraceError> for ShimError {
    fn from(e: TraceError) -> ShimError {
        ShimError::Lower(e)
    }
}

/// A declared concurrent workload: named, with threads added via
/// [`Model::template`] / [`Model::thread`] and final-state expectations
/// via [`Model::final_eq`]; [`Model::record`] runs it once under the
/// recording scheduler.
pub struct Model<'env> {
    name: String,
    jobs: Vec<(runtime::Job<'env>, Option<u32>)>,
    next_template: u32,
    finals: Vec<(u64, u64, u64, String)>,
    budget: u64,
    on_step: Option<Arc<dyn Fn(u64, usize) + Send + Sync>>,
}

impl<'env> Model<'env> {
    /// A new, empty model; `name` becomes the lowered program's name.
    pub fn new(name: &str) -> Model<'env> {
        Model {
            name: name.to_owned(),
            jobs: Vec::new(),
            next_template: 0,
            finals: Vec::new(),
            budget: DEFAULT_STEP_BUDGET,
            on_step: None,
        }
    }

    /// Add `n` threads running the same closure (called with its member
    /// index `0..n`). Declaring threads as one template is what lets the
    /// lowering unify them into identical code — and the checker prune
    /// their relabeled twin executions via thread symmetry. The closure
    /// must treat all members identically up to the values they observe;
    /// branching on the index diverges the traces and falls back to
    /// independent lowering.
    #[must_use]
    pub fn template(
        mut self,
        n: usize,
        f: impl Fn(usize) + Send + Sync + 'env,
    ) -> Model<'env> {
        let f: Arc<dyn Fn(usize) + Send + Sync + 'env> = Arc::new(f);
        let class = self.next_template;
        self.next_template += 1;
        for index in 0..n {
            self.jobs
                .push((runtime::Job::Member { f: Arc::clone(&f), index }, Some(class)));
        }
        self
    }

    /// Add a single thread with its own closure (no symmetry declared).
    #[must_use]
    pub fn thread(mut self, f: impl FnOnce() + Send + 'env) -> Model<'env> {
        self.jobs.push((runtime::Job::Single(Box::new(f)), None));
        self
    }

    /// Expect `atomic` to hold `expected` in every final state; checked by
    /// the model checker across **all** executions, not just the recorded
    /// one.
    #[must_use]
    pub fn final_eq<A: Observable>(
        mut self,
        atomic: &A,
        expected: A::Value,
        message: &str,
    ) -> Model<'env> {
        let (id, init) = atomic.raw();
        self.finals.push((id, init, A::encode(expected), message.to_owned()));
        self
    }

    /// Override the recording step budget (default
    /// [`DEFAULT_STEP_BUDGET`]).
    #[must_use]
    pub fn step_budget(mut self, budget: u64) -> Model<'env> {
        self.budget = budget;
        self
    }

    /// Observe each recording-scheduler step as it is charged: the
    /// callback receives `(step, thread)` — the running total of charged
    /// steps and the index of the thread holding the token. Called with
    /// the scheduler lock held, so keep it cheap; `'static` because the
    /// runtime's thread-local context outlives this builder's borrows.
    #[must_use]
    pub fn on_step(
        mut self,
        callback: impl Fn(u64, usize) + Send + Sync + 'static,
    ) -> Model<'env> {
        self.on_step = Some(Arc::new(callback));
        self
    }

    /// Run the workload once under the deterministic recording scheduler
    /// and lower the trace into a checkable program.
    ///
    /// If template threads genuinely diverged (the closure branched on its
    /// index), lowering retries with templates cleared — the program is
    /// still sound, but loses the declared symmetry partition; the
    /// fallback is visible as [`Recording::symmetry_fallback`].
    ///
    /// # Errors
    ///
    /// See [`ShimError`].
    pub fn record(self) -> Result<Recording, ShimError> {
        let mut trace =
            runtime::run(&self.name, self.jobs, &self.finals, self.budget, self.on_step)?;
        let (program, symmetry_fallback) = match trace::lower(&trace) {
            Ok(p) => (p, false),
            Err(TraceError::TemplateMismatch { .. }) => {
                trace.clear_templates();
                (trace::lower(&trace)?, true)
            }
            Err(e) => return Err(e.into()),
        };
        let mut annotated: Vec<String> = trace
            .threads
            .iter()
            .flat_map(|t| t.ops.iter().filter_map(|e| e.site.clone()))
            .collect();
        annotated.sort();
        annotated.dedup();
        Ok(Recording { trace, program, annotated, symmetry_fallback })
    }
}

impl fmt::Debug for Model<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Model")
            .field("name", &self.name)
            .field("threads", &self.jobs.len())
            .field("on_step", &self.on_step.is_some())
            .finish()
    }
}

/// Record an `n`-thread symmetric workload in one call:
/// `Model::new(name).template(n, f).record()`.
///
/// # Errors
///
/// See [`ShimError`].
pub fn model<'env>(
    name: &str,
    n: usize,
    f: impl Fn(usize) + Send + Sync + 'env,
) -> Result<Recording, ShimError> {
    Model::new(name).template(n, f).record()
}

/// The result of a successful [`Model::record`]: the raw trace, the
/// lowered program, and the barrier-site annotations that survived into
/// the program's relaxable site table.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The recorded per-thread trace (initial memory, op sequences,
    /// final checks) the program was lowered from.
    pub trace: Trace,
    program: Program,
    annotated: Vec<String>,
    /// Template unification failed and the threads were lowered
    /// independently: the program carries no declared symmetry partition.
    pub symmetry_fallback: bool,
}

impl Recording {
    /// The lowered, checkable program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The distinct `shim::site` names seen during recording, sorted.
    /// These are exactly the program's *relaxable* barrier sites, so an
    /// optimizer report's per-site modes map 1:1 back onto the annotated
    /// source scopes.
    #[must_use]
    pub fn annotated_sites(&self) -> &[String] {
        &self.annotated
    }
}

/// Recording-powered constructor for [`vsync_core::Session`]: bring this
/// trait into scope and `Session::from_shim(&recording)` builds a session
/// over the lowered program.
pub trait SessionExt: Sized {
    /// A session over the recording's lowered program.
    fn from_shim(recording: &Recording) -> Self;
}

impl SessionExt for vsync_core::Session {
    fn from_shim(recording: &Recording) -> vsync_core::Session {
        vsync_core::Session::new(recording.program().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{AtomicBool, AtomicU32, Ordering};
    use crate::locks::{mutex_client, CasSpinlock, TasSpinlock, TicketSpinlock};
    use vsync_core::Session;
    use vsync_lang::trace::TraceOp;
    use vsync_lang::Instr;

    #[test]
    fn tas_client_lowers_with_symmetry_and_verifies() {
        let rec = mutex_client::<TasSpinlock>(2, 1).expect("recording");
        assert!(!rec.symmetry_fallback);
        assert_eq!(rec.annotated_sites(), ["tas.acquire.xchg", "tas.release.store"]);
        let p = rec.program();
        assert_eq!(p.num_threads(), 2);
        assert!(p.declared_symmetry().is_some());
        // The contended acquire collapsed into a native await on every
        // template member (group promotion covers the uncontended winner).
        for t in 0..2 {
            assert!(
                p.thread_code(t).iter().any(|i| matches!(i, Instr::AwaitRmw { .. })),
                "thread {t} lost its await"
            );
        }
        let report = Session::from_shim(&rec).run();
        assert!(report.is_verified());
    }

    #[test]
    fn cas_client_awaits_and_verifies() {
        let rec = mutex_client::<CasSpinlock>(2, 1).expect("recording");
        assert!(!rec.symmetry_fallback);
        let p = rec.program();
        assert!(p.thread_code(0).iter().any(|i| matches!(i, Instr::AwaitCas { .. })));
        assert!(Session::from_shim(&rec).run().is_verified());
    }

    #[test]
    fn ticket_client_awaits_and_verifies() {
        let rec = mutex_client::<TicketSpinlock>(2, 1).expect("recording");
        assert!(!rec.symmetry_fallback);
        let p = rec.program();
        assert!(p.thread_code(0).iter().any(|i| matches!(i, Instr::AwaitLoad { .. })));
        assert!(Session::from_shim(&rec).run().is_verified());
    }

    #[test]
    fn annotated_sites_match_relaxable_site_table() {
        let rec = mutex_client::<TasSpinlock>(2, 1).expect("recording");
        let p = rec.program();
        let mut relaxable: Vec<String> = p
            .relaxable_sites()
            .into_iter()
            .map(|s| p.sites()[s as usize].name.clone())
            .collect();
        relaxable.sort();
        relaxable.dedup();
        assert_eq!(relaxable, rec.annotated_sites());
    }

    #[test]
    fn deadlock_on_a_spin_nobody_resolves() {
        let flag = AtomicBool::new(false);
        let err = model("stuck", 1, |_| {
            while !flag.load(Ordering::Acquire) {}
        })
        .expect_err("must deadlock");
        match err {
            ShimError::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].0, 0);
            }
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn step_budget_is_enforced() {
        let x = AtomicU32::new(0);
        let err = Model::new("busy")
            .thread(|| {
                for i in 0..100 {
                    x.store(i, Ordering::Relaxed);
                }
            })
            .step_budget(5)
            .record()
            .expect_err("must exhaust the budget");
        assert!(matches!(err, ShimError::StepBudget { limit: 5 }), "{err}");
    }

    #[test]
    fn user_panic_is_reported_with_its_message() {
        let err = Model::new("boom")
            .thread(|| panic!("the roof is on fire"))
            .record()
            .expect_err("must report the panic");
        match err {
            ShimError::UserPanic { thread, message } => {
                assert_eq!(thread, 0);
                assert!(message.contains("the roof is on fire"), "{message}");
            }
            other => panic!("expected UserPanic, got {other}"),
        }
    }

    #[test]
    fn nested_recording_is_rejected() {
        let saw_nested = std::sync::Mutex::new(false);
        let rec = Model::new("outer")
            .thread(|| {
                let inner = model("inner", 1, |_| {});
                *saw_nested.lock().unwrap() = matches!(inner, Err(ShimError::Nested));
            })
            .record()
            .expect("outer recording survives");
        assert!(*saw_nested.lock().unwrap());
        assert_eq!(rec.program().num_threads(), 1);
    }

    #[test]
    fn diverging_template_falls_back_without_symmetry() {
        let x = AtomicU32::new(0);
        let rec = model("diverge", 2, |i| {
            x.load(Ordering::Relaxed);
            if i == 1 {
                x.store(1, Ordering::Relaxed);
            }
        })
        .expect("fallback lowering succeeds");
        assert!(rec.symmetry_fallback);
        assert!(!rec.program().symmetry_partition().same_class(0, 1));
        assert!(rec.program().thread_code(1).len() > rec.program().thread_code(0).len());
    }

    #[test]
    fn fences_are_recorded() {
        let rec = Model::new("fenced")
            .thread(|| crate::atomic::fence(Ordering::SeqCst))
            .record()
            .expect("recording");
        assert!(rec.trace.threads[0]
            .ops
            .iter()
            .any(|e| matches!(e.op, TraceOp::Fence { .. })));
    }

    #[test]
    fn shim_mutex_verifies_and_mutates_for_real() {
        // The critical section must span >= 2 instrumented ops so the
        // loser's spin is observed (see DESIGN.md §11 on uncontended
        // acquires); the shadow counter also gives the checker a
        // final-state claim that only holds if the mutex excludes.
        let m = Mutex::new(0u32);
        let obs = AtomicU32::new(0);
        let rec = Model::new("mutex")
            .template(2, |_| {
                let mut g = m.lock();
                *g += 1;
                let v = obs.load(Ordering::Relaxed);
                obs.store(v + 1, Ordering::Relaxed);
            })
            .final_eq(&obs, 2, "mutex protects the counter")
            .record()
            .expect("recording");
        assert!(!rec.symmetry_fallback);
        assert!(Session::from_shim(&rec).run().is_verified());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn final_eq_violation_is_caught_by_the_checker() {
        // Unlocked increments race; the recorded interleaving happens to be
        // serial, but the checker explores the others and must refute the
        // final-state claim.
        let c = AtomicU32::new(0);
        let rec = Model::new("racy")
            .template(2, |_| {
                let v = c.load(Ordering::Relaxed);
                c.store(v + 1, Ordering::Relaxed);
            })
            .final_eq(&c, 4, "both increments land")
            .record()
            .expect("recording");
        let report = Session::from_shim(&rec).run();
        assert!(!report.is_verified());
    }

    #[test]
    fn atomics_fall_back_to_std_outside_a_session() {
        let x = AtomicU32::new(7);
        assert_eq!(x.load(Ordering::SeqCst), 7);
        assert_eq!(x.fetch_add(3, Ordering::AcqRel), 7);
        assert_eq!(x.swap(1, Ordering::SeqCst), 10);
        assert_eq!(x.compare_exchange(1, 5, Ordering::SeqCst, Ordering::Relaxed), Ok(1));
        assert_eq!(x.compare_exchange(9, 0, Ordering::SeqCst, Ordering::Relaxed), Err(5));
        crate::atomic::fence(Ordering::Relaxed); // accepted, unlike std
        let b = AtomicBool::default();
        assert!(!b.fetch_or(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
    }
}
