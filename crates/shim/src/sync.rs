//! An instrumented [`Mutex`] built from a shim test-and-set spinlock.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use crate::atomic::{AtomicU32, Ordering};
use crate::runtime::site;

/// A drop-in mutual-exclusion lock whose acquire/release are instrumented
/// shim operations: under `shim::model` the lock word becomes a model
/// location and the spin becomes a native `Await`, so data protected by
/// the mutex is checked for lost updates like any other recorded state.
///
/// The implementation is a test-and-set spinlock (`swap(1, Acquire)` until
/// it returns 0; `store(0, Release)` to unlock). Both operations carry
/// per-instance barrier-site annotations (`mutex<id>.acquire.xchg` /
/// `mutex<id>.release.store`), so the optimizer can relax each mutex
/// independently.
///
/// Unlike `std::sync::Mutex`, [`Mutex::lock`] cannot fail and there is no
/// poisoning.
#[derive(Debug)]
pub struct Mutex<T> {
    word: AtomicU32,
    value: UnsafeCell<T>,
}

// Safety: access to `value` is serialized by the `word` spinlock, exactly
// like `std::sync::Mutex`.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { word: AtomicU32::new(0), value: UnsafeCell::new(value) }
    }

    /// Acquire the lock, spinning until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let name = format!("mutex{}.acquire.xchg", self.word.raw_id());
        site(&name, || while self.word.swap(1, Ordering::Acquire) != 0 {});
        MutexGuard { mutex: self }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// RAII guard of [`Mutex::lock`]; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard holds the lock.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard holds the lock exclusively.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let name = format!("mutex{}.release.store", self.mutex.word.raw_id());
        site(&name, || self.mutex.word.store(0, Ordering::Release));
    }
}
