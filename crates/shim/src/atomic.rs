//! Drop-in instrumented atomic types.
//!
//! Each type mirrors its `std::sync::atomic` namesake with per-call
//! [`Ordering`]. Inside a recording session (`shim::model` /
//! [`crate::Model::record`]) every operation is serialized by the
//! recording scheduler and appended to the session trace; outside a
//! session the types fall back to a plain `std` atomic, so instrumented
//! code keeps working in ordinary tests and binaries.
//!
//! Two documented deviations from `std`:
//!
//! * model values are 64-bit — `AtomicU32` arithmetic wraps at 2^64, not
//!   2^32, in both the fallback and the checked model (keep counters small);
//! * [`fence`] accepts `Ordering::Relaxed` as a no-op instead of
//!   panicking (a relaxed fence is meaningful to the model's site table).

use std::sync::atomic::AtomicU64;
pub use std::sync::atomic::Ordering;

use vsync_graph::Mode;
use vsync_lang::RmwOp;

use crate::runtime::{self, OpKind};

fn mode(o: Ordering) -> Mode {
    match o {
        Ordering::Relaxed => Mode::Rlx,
        Ordering::Acquire => Mode::Acq,
        Ordering::Release => Mode::Rel,
        Ordering::AcqRel => Mode::AcqRel,
        _ => Mode::Sc,
    }
}

/// The untyped core of every shim atomic: a stable identity plus a shadow
/// `std` atomic that carries the value outside recording sessions (and
/// supplies the initial value when the atomic is first touched inside
/// one).
#[derive(Debug)]
pub(crate) struct RawAtomic {
    id: u64,
    shadow: AtomicU64,
}

impl RawAtomic {
    pub(crate) fn new(v: u64) -> RawAtomic {
        RawAtomic { id: runtime::fresh_atomic_id(), shadow: AtomicU64::new(v) }
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn init(&self) -> u64 {
        self.shadow.load(Ordering::Relaxed)
    }

    fn record(&self, kind: &OpKind) -> Option<u64> {
        let (sched, tid) = runtime::context()?;
        Some(sched.perform(tid, self.id, self.init(), kind))
    }

    pub(crate) fn load(&self, o: Ordering) -> u64 {
        self.record(&OpKind::Load { mode: mode(o) })
            .unwrap_or_else(|| self.shadow.load(o))
    }

    pub(crate) fn store(&self, v: u64, o: Ordering) {
        if self.record(&OpKind::Store { mode: mode(o), value: v }).is_none() {
            self.shadow.store(v, o);
        }
    }

    pub(crate) fn rmw(&self, op: RmwOp, operand: u64, o: Ordering) -> u64 {
        self.record(&OpKind::Rmw { mode: mode(o), op, operand })
            .unwrap_or_else(|| match op {
                RmwOp::Xchg => self.shadow.swap(operand, o),
                RmwOp::Add => self.shadow.fetch_add(operand, o),
                RmwOp::Sub => self.shadow.fetch_sub(operand, o),
                RmwOp::Or => self.shadow.fetch_or(operand, o),
                RmwOp::And => self.shadow.fetch_and(operand, o),
                RmwOp::Xor => self.shadow.fetch_xor(operand, o),
            })
    }

    /// Returns the observed old value; success iff it equals `expected`.
    pub(crate) fn cas(&self, expected: u64, new: u64, success: Ordering) -> u64 {
        self.record(&OpKind::Cas { mode: mode(success), expected, new })
            .unwrap_or_else(|| {
                match self.shadow.compare_exchange(expected, new, success, Ordering::Relaxed) {
                    Ok(old) | Err(old) => old,
                }
            })
    }
}

/// Issue a memory fence with the given ordering.
///
/// Unlike [`std::sync::atomic::fence`], `Ordering::Relaxed` is accepted
/// (recorded as a relaxed fence site; a no-op outside a session).
pub fn fence(o: Ordering) {
    if let Some((sched, tid)) = runtime::context() {
        sched.fence(tid, mode(o));
    } else if o != Ordering::Relaxed {
        std::sync::atomic::fence(o);
    }
}

/// An atomic whose final value can be asserted with
/// [`crate::Model::final_eq`].
pub trait Observable {
    /// The user-facing value type.
    type Value;
    /// Encode a value into the model's 64-bit value domain.
    fn encode(v: Self::Value) -> u64;
    #[doc(hidden)]
    fn raw(&self) -> (u64, u64);
}

macro_rules! shim_atomic {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $enc:expr, $dec:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            raw: RawAtomic,
        }

        impl $name {
            /// Create a new atomic with the given initial value.
            ///
            /// Unlike `std`, this is not `const`: each shim atomic draws a
            /// process-unique identity at construction.
            pub fn new(v: $ty) -> $name {
                $name { raw: RawAtomic::new($enc(v)) }
            }

            /// Atomically load the value.
            pub fn load(&self, order: Ordering) -> $ty {
                $dec(self.raw.load(order))
            }

            /// Atomically store `v`.
            pub fn store(&self, v: $ty, order: Ordering) {
                self.raw.store($enc(v), order);
            }

            /// Atomically replace the value with `v`, returning the old
            /// value.
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                $dec(self.raw.rmw(RmwOp::Xchg, $enc(v), order))
            }

            /// Atomically replace the value with `new` if it equals
            /// `current`; `Ok`/`Err` carry the previous value as in `std`.
            /// The failure ordering only needs to be no stronger than
            /// `success`; the recorded site uses the success ordering.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                let old = self.raw.cas($enc(current), $enc(new), success);
                if old == $enc(current) { Ok($dec(old)) } else { Err($dec(old)) }
            }

            /// [`Self::compare_exchange`]; the shim never fails spuriously.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            // Only some instantiations need the identity (e.g. the
            // `Mutex` lock word names its per-instance sites with it).
            #[allow(dead_code)]
            pub(crate) fn raw_id(&self) -> u64 {
                self.raw.id()
            }
        }

        impl Default for $name {
            /// The zero-initialized atomic.
            fn default() -> $name {
                $name::new(<$ty>::default())
            }
        }

        impl Observable for $name {
            type Value = $ty;
            fn encode(v: $ty) -> u64 {
                $enc(v)
            }
            fn raw(&self) -> (u64, u64) {
                (self.raw.id(), self.raw.init())
            }
        }
    };
}

macro_rules! shim_atomic_arith {
    ($name:ident, $ty:ty, $enc:expr, $dec:expr) => {
        impl $name {
            /// Atomically add, returning the previous value (wraps at
            /// 2^64 — the model's value width — not the type's).
            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                $dec(self.raw.rmw(RmwOp::Add, $enc(v), order))
            }

            /// Atomically subtract, returning the previous value (wraps
            /// at 2^64).
            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                $dec(self.raw.rmw(RmwOp::Sub, $enc(v), order))
            }

            /// Atomically bitwise-or, returning the previous value.
            pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                $dec(self.raw.rmw(RmwOp::Or, $enc(v), order))
            }

            /// Atomically bitwise-and, returning the previous value.
            pub fn fetch_and(&self, v: $ty, order: Ordering) -> $ty {
                $dec(self.raw.rmw(RmwOp::And, $enc(v), order))
            }

            /// Atomically bitwise-xor, returning the previous value.
            pub fn fetch_xor(&self, v: $ty, order: Ordering) -> $ty {
                $dec(self.raw.rmw(RmwOp::Xor, $enc(v), order))
            }
        }
    };
}

shim_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU32`].
    AtomicU32,
    u32,
    (|v: u32| v as u64),
    (|v: u64| v as u32)
);
shim_atomic_arith!(AtomicU32, u32, (|v: u32| v as u64), (|v: u64| v as u32));

shim_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    usize,
    (|v: usize| v as u64),
    (|v: u64| v as usize)
);
shim_atomic_arith!(AtomicUsize, usize, (|v: usize| v as u64), (|v: u64| v as usize));

shim_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicBool`].
    AtomicBool,
    bool,
    (|v: bool| v as u64),
    (|v: u64| v != 0)
);

impl AtomicBool {
    /// Atomically bitwise-and, returning the previous value.
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        self.raw.rmw(RmwOp::And, v as u64, order) != 0
    }

    /// Atomically bitwise-or, returning the previous value.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        self.raw.rmw(RmwOp::Or, v as u64, order) != 0
    }

    /// Atomically bitwise-xor, returning the previous value.
    pub fn fetch_xor(&self, v: bool, order: Ordering) -> bool {
        self.raw.rmw(RmwOp::Xor, v as u64, order) != 0
    }
}
