//! The recording scheduler: a cooperative, token-passing round-robin
//! executor that serializes every instrumented shared-memory access,
//! detects polling loops, and assembles the per-thread [`Trace`] that
//! `vsync_lang::trace::lower` turns into a checkable program.
//!
//! ## Scheduling discipline
//!
//! Exactly one thread holds the *token* at any time; only the holder may
//! perform an instrumented operation. After each operation the token
//! passes to the next runnable thread in round-robin order, and a thread's
//! termination is itself a token-synchronized step — so the recorded
//! interleaving is a deterministic function of the program alone.
//!
//! ## Spin detection
//!
//! A *pure poll* is an operation with no memory effect: any load, a
//! value-preserving RMW (`swap(1)` on a locked lock), or a failing CAS.
//! When a thread performs a pure poll whose op **and** observed values are
//! identical to its immediately preceding trace entry, the recorder infers
//! a polling loop: both entries are tagged as spinning and the thread
//! blocks, watching the polled location. Any write that changes the
//! location's value re-enables the thread; the re-executed poll is
//! recorded with the spin tag as the loop's continuation. A run of
//! spin-tagged identical polls later collapses into a single native
//! `Await` instruction.
//!
//! If every live thread is blocked, recording aborts with
//! [`ShimError::Deadlock`] naming the watched locations.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use vsync_graph::Mode;
use vsync_lang::trace::{Trace, TraceEntry, TraceOp, ThreadTrace};
use vsync_lang::RmwOp;

use crate::ShimError;

/// Location handed to the first registered atomic; later ones step by 8.
const LOC_BASE: u64 = 0x10;
/// Address stride between registered atomics.
const LOC_STEP: u64 = 0x8;

/// Panic payload used to unwind user closures when recording aborts.
struct ShimAbort;

/// Serializes recording sessions process-wide: one `Model::record` at a
/// time keeps cross-test interleavings trivially independent.
static SESSION_SERIAL: Mutex<()> = Mutex::new(());

/// Global id source for instrumented atomics.
static NEXT_ATOMIC_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_atomic_id() -> u64 {
    NEXT_ATOMIC_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

thread_local! {
    /// The recording session this thread performs operations under, if any.
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
    /// Stack of active `shim::site` annotation scopes.
    static SITES: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with every instrumented operation annotated as barrier site
/// `name` (innermost scope wins). Annotated operations lower to *named,
/// relaxable* barrier sites — the optimizer's targets — shared across
/// threads by name; unannotated operations stay pinned at their recorded
/// mode.
pub fn site<R>(name: &str, f: impl FnOnce() -> R) -> R {
    SITES.with(|s| s.borrow_mut().push(name.to_owned()));
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            SITES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

fn current_site() -> Option<String> {
    SITES.with(|s| s.borrow().last().cloned())
}

pub(crate) fn context() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn in_session() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// One instrumented operation, as issued by a shim atomic.
pub(crate) enum OpKind {
    Load { mode: Mode },
    Store { mode: Mode, value: u64 },
    Rmw { mode: Mode, op: RmwOp, operand: u64 },
    Cas { mode: Mode, expected: u64, new: u64 },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked { loc: u64, seen: u64 },
    Done,
}

struct ThreadRec {
    status: Status,
    trace: Vec<TraceEntry>,
    template: Option<u32>,
}

struct Inner {
    memory: BTreeMap<u64, u64>,
    /// Atomic id → assigned location, in first-access order.
    locs: BTreeMap<u64, u64>,
    next_loc: u64,
    init: BTreeMap<u64, u64>,
    threads: Vec<ThreadRec>,
    /// Token holder (`usize::MAX` once every thread is done).
    current: usize,
    steps: u64,
    budget: u64,
    abort: Option<ShimError>,
}

pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
    /// Telemetry hook: called with `(step, thread)` after each scheduler
    /// step is charged. `'static` because the `CTX` thread-local keeps the
    /// scheduler alive past the borrow-checker's view of the session.
    on_step: Option<Arc<dyn Fn(u64, usize) + Send + Sync>>,
}

/// A worker's body: a one-off closure or one member of an n-thread
/// template (called with its member index).
pub(crate) enum Job<'env> {
    Single(Box<dyn FnOnce() + Send + 'env>),
    Member { f: Arc<dyn Fn(usize) + Send + Sync + 'env>, index: usize },
}

impl Scheduler {
    fn new(
        templates: Vec<Option<u32>>,
        budget: u64,
        on_step: Option<Arc<dyn Fn(u64, usize) + Send + Sync>>,
    ) -> Scheduler {
        Scheduler {
            on_step,
            inner: Mutex::new(Inner {
                memory: BTreeMap::new(),
                locs: BTreeMap::new(),
                next_loc: LOC_BASE,
                init: BTreeMap::new(),
                threads: templates
                    .into_iter()
                    .map(|template| ThreadRec {
                        status: Status::Runnable,
                        trace: Vec::new(),
                        template,
                    })
                    .collect(),
                current: 0,
                steps: 0,
                budget,
                abort: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Unwind the calling user closure; the abort reason is already set.
    fn unwind(g: MutexGuard<'_, Inner>) -> ! {
        drop(g);
        panic::panic_any(ShimAbort);
    }

    /// Wait until this thread holds the token and is runnable.
    fn wait_for_token<'a>(
        &'a self,
        mut g: MutexGuard<'a, Inner>,
        tid: usize,
    ) -> MutexGuard<'a, Inner> {
        loop {
            if g.abort.is_some() {
                Self::unwind(g);
            }
            if g.current == tid && g.threads[tid].status == Status::Runnable {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pass the token to the next runnable thread after `from` (round
    /// robin; `from` itself is eligible again last). With nobody runnable,
    /// a blocked thread means deadlock; all-done parks the token.
    fn advance(&self, g: &mut Inner, from: usize) {
        let n = g.threads.len();
        for k in 1..=n {
            let j = (from + k) % n;
            if g.threads[j].status == Status::Runnable {
                g.current = j;
                self.cv.notify_all();
                return;
            }
        }
        let blocked: Vec<(usize, u64)> = g
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                Status::Blocked { loc, .. } => Some((i, loc)),
                _ => None,
            })
            .collect();
        if !blocked.is_empty() {
            g.abort = Some(ShimError::Deadlock { blocked });
        }
        g.current = usize::MAX;
        self.cv.notify_all();
    }

    fn loc_of(g: &mut Inner, atomic: u64, init: u64) -> u64 {
        if let Some(&l) = g.locs.get(&atomic) {
            return l;
        }
        let l = g.next_loc;
        g.next_loc += LOC_STEP;
        g.locs.insert(atomic, l);
        g.memory.insert(l, init);
        g.init.insert(l, init);
        l
    }

    fn charge_step<'a>(&'a self, mut g: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        g.steps += 1;
        if let Some(cb) = &self.on_step {
            cb(g.steps, g.current);
        }
        if g.steps > g.budget {
            let limit = g.budget;
            g.abort = Some(ShimError::StepBudget { limit });
            self.cv.notify_all();
            Self::unwind(g);
        }
        g
    }

    /// Record a fence on thread `tid`.
    pub(crate) fn fence(&self, tid: usize, mode: Mode) {
        let g = self.lock();
        let mut g = self.charge_step(self.wait_for_token(g, tid));
        let site = current_site();
        g.threads[tid].trace.push(TraceEntry {
            op: TraceOp::Fence { mode },
            site,
            spin: false,
        });
        self.advance(&mut g, tid);
    }

    /// Execute one instrumented memory operation on thread `tid` against
    /// the atomic with id `atomic` (registered with value `init` on first
    /// access). Returns the observed value: the value read for loads,
    /// RMWs and CASes, `0` for stores.
    pub(crate) fn perform(&self, tid: usize, atomic: u64, init: u64, kind: &OpKind) -> u64 {
        let g = self.lock();
        let mut g = self.wait_for_token(g, tid);
        let loc = Self::loc_of(&mut g, atomic, init);
        let site = current_site();
        // Set once this call has blocked and been re-enabled: the re-poll
        // is the continuation (and possibly the exit) of the spin.
        let mut woken = false;
        loop {
            g = self.charge_step(g);
            let cur = *g.memory.get(&loc).expect("registered location");
            let (op, write, ret) = match *kind {
                OpKind::Load { mode } => (TraceOp::Load { loc, mode, value: cur }, None, cur),
                OpKind::Store { mode, value } => {
                    (TraceOp::Store { loc, mode, value }, Some(value), 0)
                }
                OpKind::Rmw { mode, op, operand } => (
                    TraceOp::Rmw { loc, mode, op, operand, old: cur },
                    Some(op.apply(cur, operand)),
                    cur,
                ),
                OpKind::Cas { mode, expected, new } => (
                    TraceOp::Cas { loc, mode, expected, new, old: cur },
                    (cur == expected).then_some(new),
                    cur,
                ),
            };
            // A pure poll: no memory effect (failing CAS, value-preserving
            // RMW, or any load).
            let pure = match kind {
                OpKind::Load { .. } => true,
                OpKind::Store { .. } => false,
                OpKind::Rmw { .. } => write == Some(cur),
                OpKind::Cas { .. } => write.is_none(),
            };
            let t = &mut g.threads[tid];
            let repeats = t
                .trace
                .last()
                .is_some_and(|last| last.op == op && last.site == site);
            if pure && !woken && repeats {
                // Second identical pure poll in a row: assume a polling
                // loop, retro-tag both entries and block until the
                // location's value changes.
                t.trace.last_mut().expect("just matched").spin = true;
                t.trace.push(TraceEntry { op, site: site.clone(), spin: true });
                t.status = Status::Blocked { loc, seen: cur };
                self.advance(&mut g, tid);
                g = self.wait_for_token(g, tid);
                woken = true;
                continue;
            }
            if let Some(nv) = write {
                if nv != cur {
                    g.memory.insert(loc, nv);
                    for th in &mut g.threads {
                        if let Status::Blocked { loc: l, seen } = th.status {
                            if l == loc && seen != nv {
                                th.status = Status::Runnable;
                            }
                        }
                    }
                }
            }
            g.threads[tid].trace.push(TraceEntry { op, site, spin: woken });
            self.advance(&mut g, tid);
            return ret;
        }
    }

    /// A worker's exit protocol. Normal completion waits for the token so
    /// that termination is a deterministic scheduling step; a non-shim
    /// panic aborts the whole recording.
    fn finish(&self, tid: usize, outcome: Result<(), Box<dyn std::any::Any + Send>>) {
        let mut g = self.lock();
        match outcome {
            Ok(()) => {
                while g.abort.is_none()
                    && !(g.current == tid && g.threads[tid].status == Status::Runnable)
                {
                    g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
            }
            Err(payload) => {
                if !payload.is::<ShimAbort>() && g.abort.is_none() {
                    g.abort = Some(ShimError::UserPanic {
                        thread: tid,
                        message: panic_message(&payload),
                    });
                }
            }
        }
        g.threads[tid].status = Status::Done;
        if g.abort.is_some() {
            self.cv.notify_all();
        } else {
            self.advance(&mut g, tid);
        }
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Run `jobs` to completion under the recording scheduler and assemble
/// the trace. `finals` are `(atomic id, init, expected, message)` final
/// state checks, resolved against the location map after the run.
pub(crate) fn run(
    name: &str,
    jobs: Vec<(Job<'_>, Option<u32>)>,
    finals: &[(u64, u64, u64, String)],
    budget: u64,
    on_step: Option<Arc<dyn Fn(u64, usize) + Send + Sync>>,
) -> Result<Trace, ShimError> {
    if in_session() {
        return Err(ShimError::Nested);
    }
    let _serial = SESSION_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let templates: Vec<Option<u32>> = jobs.iter().map(|(_, t)| *t).collect();
    let sched = Arc::new(Scheduler::new(templates, budget, on_step));
    std::thread::scope(|s| {
        for (tid, (job, _)) in jobs.into_iter().enumerate() {
            let sched = Arc::clone(&sched);
            s.spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), tid)));
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| match job {
                    Job::Single(f) => f(),
                    Job::Member { f, index } => f(index),
                }));
                CTX.with(|c| *c.borrow_mut() = None);
                sched.finish(tid, outcome);
            });
        }
    });
    let mut inner = Arc::into_inner(sched)
        .expect("all workers joined")
        .inner
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = inner.abort.take() {
        return Err(e);
    }
    let mut trace = Trace {
        name: name.to_owned(),
        init: BTreeMap::new(),
        threads: inner
            .threads
            .iter()
            .map(|t| ThreadTrace { ops: t.trace.clone(), template: t.template })
            .collect(),
        final_checks: Vec::new(),
    };
    for (atomic, init, expected, msg) in finals {
        let loc = Scheduler::loc_of(&mut inner, *atomic, *init);
        trace.final_checks.push((loc, *expected, msg.clone()));
    }
    trace.init = inner.init.iter().map(|(&l, &v)| (l, v)).collect();
    Ok(trace)
}
