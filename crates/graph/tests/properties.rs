//! Randomized property tests of the execution-graph substrate: prefix
//! closure, restriction, canonical encoding and the relation algebra.
//!
//! The build environment has no network access, so instead of proptest we
//! use a tiny deterministic SplitMix64-driven generator; every case is
//! reproducible from the printed seed.

use std::collections::{BTreeMap, HashSet};

use vsync_graph::{
    canonical_bytes, content_hash, EventId, EventKind, ExecutionGraph, Mode, Relation, RfSource,
};

const LOCS: [u64; 3] = [0x10, 0x20, 0x30];
const CASES: u64 = 128;

/// SplitMix64: tiny, deterministic, good-enough mixing for test generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A compact recipe for one random event.
#[derive(Debug, Clone)]
enum Ev {
    Write { loc: usize, val: u64 },
    /// Read from the `k`-th most recent write to `loc` (init if none).
    Read { loc: usize, back: usize },
    Fence,
}

fn random_threads(rng: &mut Rng) -> Vec<Vec<Ev>> {
    let n_threads = 1 + rng.below(3) as usize;
    (0..n_threads)
        .map(|_| {
            let len = rng.below(5) as usize;
            (0..len)
                .map(|_| match rng.below(3) {
                    0 => Ev::Write { loc: rng.below(LOCS.len() as u64) as usize, val: rng.below(4) },
                    1 => Ev::Read {
                        loc: rng.below(LOCS.len() as u64) as usize,
                        back: rng.below(3) as usize,
                    },
                    _ => Ev::Fence,
                })
                .collect()
        })
        .collect()
}

/// Materialize recipes into a graph: writes append to mo, reads pick an
/// existing write (or init) so rf edges always point backwards in time —
/// a porf-acyclic graph by construction.
fn build(threads: &[Vec<Ev>]) -> ExecutionGraph {
    let mut g = ExecutionGraph::new(threads.len(), BTreeMap::new());
    let mut order: Vec<(usize, usize)> = Vec::new();
    for (t, evs) in threads.iter().enumerate() {
        for i in 0..evs.len() {
            order.push((t, i));
        }
    }
    // Round-robin interleave so threads' events mix in timestamp order.
    order.sort_by_key(|&(t, i)| (i, t));
    for (t, i) in order {
        match &threads[t][i] {
            Ev::Write { loc, val } => {
                let id = g.push_event(
                    t as u32,
                    EventKind::Write { loc: LOCS[*loc], val: *val, mode: Mode::Rlx, rmw: false },
                );
                let pos = g.mo(LOCS[*loc]).len();
                g.insert_mo(LOCS[*loc], id, pos);
            }
            Ev::Read { loc, back } => {
                let writes = g.mo(LOCS[*loc]);
                let src = if writes.is_empty() || *back >= writes.len() {
                    EventId::Init(LOCS[*loc])
                } else {
                    writes[writes.len() - 1 - back]
                };
                g.push_event(
                    t as u32,
                    EventKind::Read {
                        loc: LOCS[*loc],
                        mode: Mode::Rlx,
                        rf: RfSource::Write(src),
                        rmw: false,
                        awaiting: false,
                    },
                );
            }
            Ev::Fence => {
                g.push_event(t as u32, EventKind::Fence { mode: Mode::Sc });
            }
        }
    }
    g
}

/// Run `check` on `CASES` random graphs, reporting the failing seed.
fn for_random_graphs(test_name: &str, mut check: impl FnMut(&ExecutionGraph)) {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x5851f42d4c957f2d).wrapping_add(0xda3e39cb94b95bdb));
        let g = build(&random_threads(&mut rng));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&g)));
        if let Err(e) = r {
            eprintln!("{test_name}: failing case at seed {seed}:\n{}", g.render());
            std::panic::resume_unwind(e);
        }
    }
}

/// porf-prefixes are closed under po and rf predecessors.
#[test]
fn porf_prefix_is_closed() {
    for_random_graphs("porf_prefix_is_closed", |g| {
        let all: Vec<EventId> = g.events().map(|(id, _)| id).collect();
        for &seed in all.iter().take(4) {
            let prefix = g.porf_prefix([seed]);
            for &e in &prefix {
                if let EventId::Event { thread, index } = e {
                    if index > 0 {
                        assert!(
                            prefix.contains(&EventId::new(thread, index - 1)),
                            "po predecessor of {e} missing"
                        );
                    }
                }
                if let EventKind::Read { rf: RfSource::Write(w), .. } = &g.event(e).kind {
                    if !w.is_init() {
                        assert!(prefix.contains(w), "rf source of {e} missing");
                    }
                }
            }
        }
    });
}

/// Restricting to a porf-prefix keeps rf intact and produces per-thread
/// prefixes; restricting to everything is the identity.
#[test]
fn restrict_to_prefix_is_sound() {
    for_random_graphs("restrict_to_prefix_is_sound", |g| {
        let all: HashSet<EventId> = g.events().map(|(id, _)| id).collect();
        let identity = g.restrict(&all);
        assert_eq!(content_hash(g), content_hash(&identity));
        if let Some((seed, _)) = g.events().last() {
            let keep = g.porf_prefix([seed]);
            let sub = g.restrict(&keep);
            assert_eq!(sub.num_events(), keep.len());
            // Every kept read still has its source.
            for (_, _, rf) in sub.reads() {
                if let RfSource::Write(w) = rf {
                    assert_eq!(sub.write_value(w), g.write_value(w));
                }
            }
        }
    });
}

/// Canonical encodings are stable (pure) and equal encodings mean equal
/// hashes; touching rf changes the encoding.
#[test]
fn canonical_encoding_is_pure() {
    for_random_graphs("canonical_encoding_is_pure", |g| {
        assert_eq!(canonical_bytes(g), canonical_bytes(g));
        assert_eq!(content_hash(g), content_hash(g));
        let mut g2 = g.clone();
        let target = g2.reads().find_map(|(r, loc, rf)| match rf {
            RfSource::Write(w) if !w.is_init() => Some((r, loc)),
            _ => None,
        });
        if let Some((r, loc)) = target {
            // Re-point the read at init: the encoding must change.
            g2.set_rf(r, RfSource::Write(EventId::Init(loc)));
            assert_ne!(content_hash(g), content_hash(&g2));
        }
    });
}

/// final_state reports exactly the mo-maximal writes.
#[test]
fn final_state_is_mo_maximal() {
    for_random_graphs("final_state_is_mo_maximal", |g| {
        let state = g.final_state();
        for loc in LOCS {
            if let Some(&w) = g.mo(loc).last() {
                assert_eq!(state.get(&loc).copied(), Some(g.write_value(w)));
            }
        }
    });
}

/// The transitive closure of an acyclic relation built from the graph's
/// po edges stays acyclic and contains the base relation.
#[test]
fn closure_preserves_acyclicity() {
    for_random_graphs("closure_preserves_acyclicity", |g| {
        let n = g.num_events();
        if n == 0 {
            return;
        }
        let mut rel = Relation::new(n);
        let ids: Vec<EventId> = g.events().map(|(id, _)| id).collect();
        let index_of = |id: EventId| ids.iter().position(|x| *x == id).unwrap();
        for (id, _) in g.events() {
            if let EventId::Event { thread, index } = id {
                if index > 0 {
                    rel.add(index_of(EventId::new(thread, index - 1)), index_of(id));
                }
            }
        }
        assert!(rel.is_acyclic());
        let mut closed = rel.clone();
        closed.close();
        for (a, b) in rel.edges() {
            assert!(closed.has(a, b));
        }
        assert!(closed.is_irreflexive());
    });
}
