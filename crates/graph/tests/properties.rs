//! Property-based tests of the execution-graph substrate: prefix closure,
//! restriction, canonical encoding and the relation algebra.

use std::collections::{BTreeMap, HashSet};

use proptest::prelude::*;
use vsync_graph::{
    canonical_bytes, content_hash, EventId, EventKind, ExecutionGraph, Mode, Relation, RfSource,
};

const LOCS: [u64; 3] = [0x10, 0x20, 0x30];

/// A compact recipe for one random event.
#[derive(Debug, Clone)]
enum Ev {
    Write { loc: usize, val: u64 },
    /// Read from the `k`-th most recent write to `loc` (init if none).
    Read { loc: usize, back: usize },
    Fence,
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        ((0..LOCS.len()), 0u64..4).prop_map(|(loc, val)| Ev::Write { loc, val }),
        ((0..LOCS.len()), 0usize..3).prop_map(|(loc, back)| Ev::Read { loc, back }),
        Just(Ev::Fence),
    ]
}

/// Materialize recipes into a graph: writes append to mo, reads pick an
/// existing write (or init) so rf edges always point backwards in time —
/// a porf-acyclic graph by construction.
fn build(threads: &[Vec<Ev>]) -> ExecutionGraph {
    let mut g = ExecutionGraph::new(threads.len(), BTreeMap::new());
    let mut order: Vec<(usize, usize)> = Vec::new();
    for (t, evs) in threads.iter().enumerate() {
        for i in 0..evs.len() {
            order.push((t, i));
        }
    }
    // Round-robin interleave so threads' events mix in timestamp order.
    order.sort_by_key(|&(t, i)| (i, t));
    for (t, i) in order {
        match &threads[t][i] {
            Ev::Write { loc, val } => {
                let id = g.push_event(
                    t as u32,
                    EventKind::Write { loc: LOCS[*loc], val: *val, mode: Mode::Rlx, rmw: false },
                );
                let pos = g.mo(LOCS[*loc]).len();
                g.insert_mo(LOCS[*loc], id, pos);
            }
            Ev::Read { loc, back } => {
                let writes = g.mo(LOCS[*loc]);
                let src = if writes.is_empty() || *back >= writes.len() {
                    EventId::Init(LOCS[*loc])
                } else {
                    writes[writes.len() - 1 - back]
                };
                g.push_event(
                    t as u32,
                    EventKind::Read {
                        loc: LOCS[*loc],
                        mode: Mode::Rlx,
                        rf: RfSource::Write(src),
                        rmw: false,
                        awaiting: false,
                    },
                );
            }
            Ev::Fence => {
                g.push_event(t as u32, EventKind::Fence { mode: Mode::Sc });
            }
        }
    }
    g
}

fn graph_strategy() -> impl Strategy<Value = ExecutionGraph> {
    prop::collection::vec(prop::collection::vec(ev_strategy(), 0..5), 1..4)
        .prop_map(|threads| build(&threads))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// porf-prefixes are closed under po and rf predecessors.
    #[test]
    fn porf_prefix_is_closed(g in graph_strategy()) {
        let all: Vec<EventId> = g.events().map(|(id, _)| id).collect();
        for &seed in all.iter().take(4) {
            let prefix = g.porf_prefix([seed]);
            for &e in &prefix {
                if let EventId::Event { thread, index } = e {
                    if index > 0 {
                        prop_assert!(prefix.contains(&EventId::new(thread, index - 1)),
                            "po predecessor of {e} missing");
                    }
                }
                if let EventKind::Read { rf: RfSource::Write(w), .. } = &g.event(e).kind {
                    if !w.is_init() {
                        prop_assert!(prefix.contains(w), "rf source of {e} missing");
                    }
                }
            }
        }
    }

    /// Restricting to a porf-prefix keeps rf intact and produces per-thread
    /// prefixes; restricting to everything is the identity.
    #[test]
    fn restrict_to_prefix_is_sound(g in graph_strategy()) {
        let all: HashSet<EventId> = g.events().map(|(id, _)| id).collect();
        let identity = g.restrict(&all);
        prop_assert_eq!(content_hash(&g), content_hash(&identity));
        if let Some((seed, _)) = g.events().last() {
            let keep = g.porf_prefix([seed]);
            let sub = g.restrict(&keep);
            prop_assert_eq!(sub.num_events(), keep.len());
            // Every kept read still has its source.
            for (r, _, rf) in sub.reads() {
                if let RfSource::Write(w) = rf {
                    prop_assert_eq!(sub.write_value(w), g.write_value(w));
                    let _ = r;
                }
            }
        }
    }

    /// Canonical encodings are stable (pure) and equal encodings mean equal
    /// hashes; touching rf changes the encoding.
    #[test]
    fn canonical_encoding_is_pure(g in graph_strategy()) {
        prop_assert_eq!(canonical_bytes(&g), canonical_bytes(&g));
        prop_assert_eq!(content_hash(&g), content_hash(&g));
        let mut g2 = g.clone();
        let target = g2
            .reads()
            .find_map(|(r, loc, rf)| match rf {
                RfSource::Write(w) if !w.is_init() => Some((r, loc)),
                _ => None,
            });
        if let Some((r, loc)) = target {
            // Re-point the read at init: the encoding must change.
            g2.set_rf(r, RfSource::Write(EventId::Init(loc)));
            prop_assert_ne!(content_hash(&g), content_hash(&g2));
        }
    }

    /// final_state reports exactly the mo-maximal writes.
    #[test]
    fn final_state_is_mo_maximal(g in graph_strategy()) {
        let state = g.final_state();
        for loc in LOCS {
            if let Some(&w) = g.mo(loc).last() {
                prop_assert_eq!(state.get(&loc).copied(), Some(g.write_value(w)));
            }
        }
    }

    /// The transitive closure of an acyclic relation built from the graph's
    /// po edges stays acyclic and contains the base relation.
    #[test]
    fn closure_preserves_acyclicity(g in graph_strategy()) {
        let n = g.num_events();
        prop_assume!(n > 0);
        let mut rel = Relation::new(n);
        let ids: Vec<EventId> = g.events().map(|(id, _)| id).collect();
        let index_of = |id: EventId| ids.iter().position(|x| *x == id).unwrap();
        for (id, _) in g.events() {
            if let EventId::Event { thread, index } = id {
                if index > 0 {
                    rel.add(index_of(EventId::new(thread, index - 1)), index_of(id));
                }
            }
        }
        prop_assert!(rel.is_acyclic());
        let mut closed = rel.clone();
        closed.close();
        for (a, b) in rel.edges() {
            prop_assert!(closed.has(a, b));
        }
        prop_assert!(closed.is_irreflexive());
    }
}
