//! Thread-symmetry partitions.
//!
//! A [`ThreadPartition`] groups the threads of a program into classes that
//! are *interchangeable*: permuting the event sequences of threads within
//! a class (and relabeling every cross-thread reference accordingly) maps
//! any execution graph of the program onto another valid execution graph
//! of the same program with the same verdict-relevant properties. The
//! canonical encoding ([`crate::canonical_bytes_modulo`]) quotients graphs
//! by exactly these permutations, which lets the explorer prune the up to
//! `k!` symmetric twins of every graph a `k`-thread class induces.
//!
//! The partition itself is *declared* by the language layer (threads whose
//! resolved code is identical); this module only provides the group
//! structure: class bookkeeping, refinement, and enumeration of the
//! induced permutations.

use crate::event::ThreadId;

/// Cap on the number of permutations a partition may induce before
/// [`ThreadPartition::limited`] starts splitting classes. `7! = 5040` is
/// far beyond any exhaustively-checkable thread count; the cap only
/// guards against pathological declared partitions.
pub const MAX_SYMMETRY_PERMUTATIONS: u64 = 5040;

/// A partition of the threads `0..n` into symmetry classes.
///
/// Stored as a class id per thread, normalized so that each class is
/// identified by its smallest member. Two partitions are equal iff they
/// induce the same classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPartition {
    /// `class[t]` = smallest thread index in `t`'s class.
    class: Vec<u32>,
}

impl ThreadPartition {
    /// The trivial partition: every thread in its own class (no symmetry).
    #[must_use]
    pub fn identity(n_threads: usize) -> Self {
        ThreadPartition { class: (0..n_threads as u32).collect() }
    }

    /// Build a partition from a class id per thread. Ids are arbitrary
    /// labels; they are normalized to smallest-member representatives.
    #[must_use]
    pub fn from_class_ids(ids: &[u32]) -> Self {
        let mut class: Vec<u32> = (0..ids.len() as u32).collect();
        for t in 0..ids.len() {
            for s in 0..t {
                if ids[s] == ids[t] {
                    class[t] = class[s];
                    break;
                }
            }
        }
        ThreadPartition { class }
    }

    /// Number of threads partitioned.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.class.len()
    }

    /// Is every class a singleton (no usable symmetry)?
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.class.iter().enumerate().all(|(t, &c)| c == t as u32)
    }

    /// Are two threads in the same class?
    #[must_use]
    pub fn same_class(&self, a: ThreadId, b: ThreadId) -> bool {
        self.class[a as usize] == self.class[b as usize]
    }

    /// The non-singleton classes, each sorted ascending, ordered by their
    /// smallest member.
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<ThreadId>> {
        let mut groups: Vec<Vec<ThreadId>> = Vec::new();
        for rep in 0..self.class.len() as u32 {
            if self.class[rep as usize] != rep {
                continue;
            }
            let members: Vec<ThreadId> = (0..self.class.len() as u32)
                .filter(|&t| self.class[t as usize] == rep)
                .collect();
            if members.len() > 1 {
                groups.push(members);
            }
        }
        groups
    }

    /// The common refinement (meet) of two partitions over the same thread
    /// count: threads share a class iff they do in *both* inputs. This is
    /// how a declared partition is reconciled with the one recomputed from
    /// the program text — the result never merges more than either side.
    ///
    /// # Panics
    ///
    /// Panics if the partitions cover different thread counts.
    #[must_use]
    pub fn refine(&self, other: &ThreadPartition) -> ThreadPartition {
        assert_eq!(
            self.class.len(),
            other.class.len(),
            "refining partitions over different thread counts"
        );
        let mut class: Vec<u32> = (0..self.class.len() as u32).collect();
        for t in 0..self.class.len() {
            for s in 0..t {
                if self.class[s] == self.class[t] && other.class[s] == other.class[t] {
                    class[t] = class[s];
                    break;
                }
            }
        }
        ThreadPartition { class }
    }

    /// The order of the induced permutation group: the product of the
    /// factorials of the class sizes (saturating).
    #[must_use]
    pub fn num_permutations(&self) -> u64 {
        let mut total: u64 = 1;
        for g in self.groups() {
            for k in 2..=g.len() as u64 {
                total = total.saturating_mul(k);
            }
        }
        total
    }

    /// A copy whose permutation count is at most `cap`, obtained by
    /// splitting the largest class (demoting its highest member to a
    /// singleton) until the bound holds. Splitting only *loses* pruning
    /// power; it never merges threads, so the result is always sound.
    #[must_use]
    pub fn limited(mut self, cap: u64) -> ThreadPartition {
        while self.num_permutations() > cap.max(1) {
            let largest = self
                .groups()
                .into_iter()
                .max_by_key(Vec::len)
                .expect("non-trivial partition has a group");
            let demoted = *largest.last().expect("group has members");
            self.class[demoted as usize] = demoted;
        }
        self
    }

    /// All thread relabelings the partition allows, as full maps
    /// `perm[original_thread] = new_label`, identity first. Threads only
    /// ever trade labels within their class.
    ///
    /// The enumeration is the cartesian product of the per-class
    /// permutations; call [`ThreadPartition::limited`] first if the
    /// partition may be adversarial (`MAX_SYMMETRY_PERMUTATIONS`).
    #[must_use]
    pub fn permutations(&self) -> Vec<Vec<ThreadId>> {
        let identity: Vec<ThreadId> = (0..self.class.len() as u32).collect();
        let mut result = vec![identity];
        for group in self.groups() {
            let orderings = orderings_of(&group);
            let mut next = Vec::with_capacity(result.len() * orderings.len());
            for base in &result {
                for ord in &orderings {
                    let mut p = base.clone();
                    // Member `ord[i]` takes the label of slot `group[i]`.
                    for (slot, &member) in group.iter().zip(ord) {
                        p[member as usize] = *slot;
                    }
                    next.push(p);
                }
            }
            result = next;
        }
        result
    }
}

/// All orderings of `items` (Heap's algorithm, iterative-enough for the
/// tiny class sizes symmetry reduction meets).
fn orderings_of(items: &[ThreadId]) -> Vec<Vec<ThreadId>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    permute_rec(&mut work, 0, &mut out);
    out
}

fn permute_rec(work: &mut Vec<ThreadId>, k: usize, out: &mut Vec<Vec<ThreadId>>) {
    if k + 1 >= work.len() {
        out.push(work.clone());
        return;
    }
    for i in k..work.len() {
        work.swap(k, i);
        permute_rec(work, k + 1, out);
        work.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_trivial() {
        let p = ThreadPartition::identity(3);
        assert!(p.is_trivial());
        assert!(p.groups().is_empty());
        assert_eq!(p.num_permutations(), 1);
        assert_eq!(p.permutations(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn class_ids_normalize() {
        let p = ThreadPartition::from_class_ids(&[7, 3, 7, 3]);
        assert!(!p.is_trivial());
        assert!(p.same_class(0, 2));
        assert!(p.same_class(1, 3));
        assert!(!p.same_class(0, 1));
        assert_eq!(p.groups(), vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(p, ThreadPartition::from_class_ids(&[0, 1, 0, 1]));
    }

    #[test]
    fn permutation_count_is_product_of_factorials() {
        let p = ThreadPartition::from_class_ids(&[0, 0, 0, 1, 1]);
        assert_eq!(p.num_permutations(), 6 * 2);
        assert_eq!(p.permutations().len(), 12);
    }

    #[test]
    fn permutations_fix_singletons_and_start_with_identity() {
        let p = ThreadPartition::from_class_ids(&[0, 1, 0]);
        let perms = p.permutations();
        assert_eq!(perms[0], vec![0, 1, 2]);
        assert_eq!(perms.len(), 2);
        for perm in &perms {
            assert_eq!(perm[1], 1, "singleton thread never relabeled");
            let mut seen = perm.clone();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2], "must be a permutation");
        }
    }

    #[test]
    fn refine_is_the_meet() {
        let a = ThreadPartition::from_class_ids(&[0, 0, 0]);
        let b = ThreadPartition::from_class_ids(&[0, 0, 1]);
        assert_eq!(a.refine(&b), b);
        assert_eq!(b.refine(&a), b);
        assert_eq!(b.refine(&b), b);
        let c = ThreadPartition::from_class_ids(&[0, 1, 1]);
        assert!(b.refine(&c).is_trivial());
    }

    #[test]
    fn limited_splits_down_to_cap() {
        let p = ThreadPartition::from_class_ids(&[0; 8]); // 8! = 40320 perms
        let l = p.limited(MAX_SYMMETRY_PERMUTATIONS);
        assert!(l.num_permutations() <= MAX_SYMMETRY_PERMUTATIONS);
        assert!(!l.is_trivial(), "splitting stops as soon as the cap holds");
        assert_eq!(l.groups(), vec![(0..7).collect::<Vec<u32>>()]);
    }
}
