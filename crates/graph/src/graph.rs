//! The execution-graph data structure.
//!
//! Graph internals are copy-on-write: each thread's event list and the
//! (immutable) init table sit behind `Arc`s, so the explorer's
//! one-clone-per-child pattern copies only the single thread it then
//! extends — every other thread's events are shared with the parent.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use crate::event::{Event, EventId, EventKind, Loc, Mode, RfSource, ThreadId, Value};

/// An execution graph `G` (paper §1.1): per-thread event sequences
/// (program order), a reads-from map, and a per-location modification
/// order.
///
/// Graphs are *partial* during exploration — they grow event by event — and
/// *complete* once every thread has either terminated or blocked inside an
/// await.
///
/// Initialization writes are virtual: every location carries an implicit
/// `mo`-minimal `Winit(x, v)` whose value comes from the graph's init table
/// (default `0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionGraph {
    /// Events of each thread, in program order (copy-on-write per thread).
    threads: Vec<Arc<Vec<Event>>>,
    /// Modification order per location: all non-init write events, oldest
    /// first. The virtual init write is implicitly at position `-1`.
    mo: BTreeMap<Loc, Vec<EventId>>,
    /// Initial values of locations (missing entries are `0`); immutable
    /// after construction, shared between clones.
    init: Arc<BTreeMap<Loc, Value>>,
    /// Next exploration timestamp.
    next_ts: u32,
}

impl ExecutionGraph {
    /// Create an empty graph for `n_threads` threads with the given initial
    /// memory values.
    pub fn new(n_threads: usize, init: BTreeMap<Loc, Value>) -> Self {
        ExecutionGraph {
            threads: (0..n_threads).map(|_| Arc::new(Vec::new())).collect(),
            mo: BTreeMap::new(),
            init: Arc::new(init),
            next_ts: 0,
        }
    }

    /// Number of threads the graph was created for.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of regular (non-init) events currently in the graph.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }

    /// Number of events of one thread.
    pub fn thread_len(&self, thread: ThreadId) -> usize {
        self.threads[thread as usize].len()
    }

    /// Approximate heap footprint of this graph in bytes, for resource
    /// budgeting. Counts every thread's event list at full size even
    /// though copy-on-write clones share unmodified threads, so summing
    /// over a frontier of sibling graphs over-estimates — budgets degrade
    /// early rather than late. The shared init table is not counted.
    pub fn approx_heap_bytes(&self) -> usize {
        let events: usize = self.threads.iter().map(|t| t.len()).sum();
        let mo_entries: usize = self.mo.values().map(Vec::len).sum();
        // Rough BTreeMap node overhead per mo location.
        const MO_NODE_BYTES: usize = 48;
        std::mem::size_of::<Self>()
            + self.threads.len() * std::mem::size_of::<Arc<Vec<Event>>>()
            + events * std::mem::size_of::<Event>()
            + mo_entries * std::mem::size_of::<EventId>()
            + self.mo.len() * MO_NODE_BYTES
    }

    /// The events of one thread in program order.
    pub fn thread_events(&self, thread: ThreadId) -> &[Event] {
        &self.threads[thread as usize]
    }

    /// The initial value of a location.
    pub fn init_value(&self, loc: Loc) -> Value {
        self.init.get(&loc).copied().unwrap_or(0)
    }

    /// The init table of the graph.
    pub fn init_table(&self) -> &BTreeMap<Loc, Value> {
        &self.init
    }

    /// Look up a regular event.
    ///
    /// # Panics
    ///
    /// Panics if `id` is an init event or out of bounds.
    pub fn event(&self, id: EventId) -> &Event {
        match id {
            EventId::Init(loc) => panic!("init event of {loc:#x} has no Event record"),
            EventId::Event { thread, index } => &self.threads[thread as usize][index as usize],
        }
    }

    fn event_mut(&mut self, id: EventId) -> &mut Event {
        match id {
            EventId::Init(loc) => panic!("init event of {loc:#x} has no Event record"),
            EventId::Event { thread, index } => {
                &mut Arc::make_mut(&mut self.threads[thread as usize])[index as usize]
            }
        }
    }

    /// The location accessed by an event (init events access their location).
    pub fn loc_of(&self, id: EventId) -> Option<Loc> {
        match id {
            EventId::Init(loc) => Some(loc),
            _ => self.event(id).kind.loc(),
        }
    }

    /// The value written by a write event (init writes have init values).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a write event.
    pub fn write_value(&self, id: EventId) -> Value {
        match id {
            EventId::Init(loc) => self.init_value(loc),
            _ => match &self.event(id).kind {
                EventKind::Write { val, .. } => *val,
                k => panic!("{id} is not a write: {k}"),
            },
        }
    }

    /// The mode of an event (init writes are relaxed).
    pub fn mode_of(&self, id: EventId) -> Mode {
        match id {
            EventId::Init(_) => Mode::Rlx,
            _ => self.event(id).kind.mode(),
        }
    }

    /// Append an event to a thread's program order; returns its id.
    pub fn push_event(&mut self, thread: ThreadId, kind: EventKind) -> EventId {
        let index = self.threads[thread as usize].len() as u32;
        let mut ev = Event::new(kind);
        ev.ts = self.next_ts;
        self.next_ts += 1;
        Arc::make_mut(&mut self.threads[thread as usize]).push(ev);
        EventId::new(thread, index)
    }

    /// Remove the most recently pushed event of `thread` and return its
    /// kind, rolling back the exploration timestamp.
    ///
    /// This is the undo half of the revisit engine's speculative
    /// consistency pre-check (`push_event` → check → `pop_event`); it is
    /// only valid while the popped event is the globally newest one, so
    /// the timestamp counter rewinds exactly.
    ///
    /// # Panics
    ///
    /// Panics if the thread is empty or its last event is not the
    /// globally newest (its `ts` must be `next_ts - 1`).
    pub fn pop_event(&mut self, thread: ThreadId) -> EventKind {
        let evs = Arc::make_mut(&mut self.threads[thread as usize]);
        let ev = evs.pop().expect("pop_event on empty thread");
        assert_eq!(ev.ts + 1, self.next_ts, "pop_event must undo the newest push");
        self.next_ts -= 1;
        ev.kind
    }

    /// Remove a write from the modification order of `loc` at `pos` — the
    /// undo of [`ExecutionGraph::insert_mo`]. A location whose last write
    /// is removed disappears from [`ExecutionGraph::written_locs`], as if
    /// it had never been written.
    ///
    /// # Panics
    ///
    /// Panics if `loc` has no modification order or `pos` is out of
    /// bounds.
    pub fn remove_mo(&mut self, loc: Loc, pos: usize) -> EventId {
        let list = self.mo.get_mut(&loc).expect("remove_mo on unwritten location");
        let id = list.remove(pos);
        if list.is_empty() {
            self.mo.remove(&loc);
        }
        id
    }

    /// Insert a write event into the modification order of its location at
    /// `pos` (0 = immediately after the init write).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a write event of `loc` or `pos` is out of
    /// bounds.
    pub fn insert_mo(&mut self, loc: Loc, id: EventId, pos: usize) {
        debug_assert!(matches!(&self.event(id).kind, EventKind::Write { loc: l, .. } if *l == loc));
        let list = self.mo.entry(loc).or_default();
        assert!(pos <= list.len(), "mo position {pos} out of bounds");
        list.insert(pos, id);
    }

    /// The modification order of `loc` (non-init writes, oldest first).
    pub fn mo(&self, loc: Loc) -> &[EventId] {
        self.mo.get(&loc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All locations with at least one non-init write.
    pub fn written_locs(&self) -> impl Iterator<Item = Loc> + '_ {
        self.mo.keys().copied()
    }

    /// The position of a write in the extended modification order of its
    /// location: init is 0, the first non-init write is 1, and so on.
    ///
    /// Returns `None` if the write is not in the mo (e.g. not yet inserted).
    pub fn mo_position(&self, id: EventId) -> Option<usize> {
        match id {
            EventId::Init(_) => Some(0),
            _ => {
                let loc = self.loc_of(id)?;
                self.mo(loc).iter().position(|w| *w == id).map(|p| p + 1)
            }
        }
    }

    /// Set (or overwrite) the reads-from source of a read event.
    ///
    /// # Panics
    ///
    /// Panics if `read` is not a read event.
    pub fn set_rf(&mut self, read: EventId, src: RfSource) {
        match &mut self.event_mut(read).kind {
            EventKind::Read { rf, .. } => *rf = src,
            k => panic!("{read} is not a read: {k}"),
        }
    }

    /// Overwrite the derived flags of a read event.
    ///
    /// `rmw` and `awaiting` are functions of the instruction and the value
    /// read; after a revisit changes a read's source, the replayer repairs
    /// them through this method.
    ///
    /// # Panics
    ///
    /// Panics if `read` is not a read event.
    pub fn set_read_flags(&mut self, read: EventId, rmw: bool, awaiting: bool) {
        match &mut self.event_mut(read).kind {
            EventKind::Read { rmw: r, awaiting: a, .. } => {
                *r = rmw;
                *a = awaiting;
            }
            k => panic!("{read} is not a read: {k}"),
        }
    }

    /// Overwrite the barrier mode of a read, write or fence event.
    ///
    /// Modes are program-derived data: an execution graph recorded under
    /// one barrier assignment can be re-interpreted under another by
    /// rewriting each event's mode from the new program's site table
    /// (`vsync_lang::replay_adopt_modes` — the optimizer's witness-cache
    /// replay). Only the mode changes; the event structure, values, `rf`
    /// and `mo` are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `id` is an init or error event (neither carries a mode).
    pub fn set_event_mode(&mut self, id: EventId, mode: Mode) {
        match &mut self.event_mut(id).kind {
            EventKind::Read { mode: m, .. }
            | EventKind::Write { mode: m, .. }
            | EventKind::Fence { mode: m } => *m = mode,
            k => panic!("{id} carries no mode: {k}"),
        }
    }

    /// The reads-from source of a read event.
    pub fn rf(&self, read: EventId) -> RfSource {
        match &self.event(read).kind {
            EventKind::Read { rf, .. } => *rf,
            k => panic!("{read} is not a read: {k}"),
        }
    }

    /// The value observed by a read, or `None` while its source is `⊥`.
    pub fn read_value(&self, read: EventId) -> Option<Value> {
        match self.rf(read) {
            RfSource::Bottom => None,
            RfSource::Write(w) => Some(self.write_value(w)),
        }
    }

    /// Iterate over all regular events with their ids, by thread then
    /// program order.
    pub fn events(&self) -> impl Iterator<Item = (EventId, &Event)> + '_ {
        self.threads.iter().enumerate().flat_map(|(t, evs)| {
            evs.iter()
                .enumerate()
                .map(move |(i, e)| (EventId::new(t as ThreadId, i as u32), e))
        })
    }

    /// Iterate over all read events (id, loc, rf).
    pub fn reads(&self) -> impl Iterator<Item = (EventId, Loc, RfSource)> + '_ {
        self.events().filter_map(|(id, e)| match &e.kind {
            EventKind::Read { loc, rf, .. } => Some((id, *loc, *rf)),
            _ => None,
        })
    }

    /// Iterate over the reads of a given location.
    pub fn reads_of(&self, loc: Loc) -> impl Iterator<Item = (EventId, RfSource)> + '_ {
        self.reads()
            .filter(move |(_, l, _)| *l == loc)
            .map(|(id, _, rf)| (id, rf))
    }

    /// All reads whose source is still `⊥`.
    pub fn pending_reads(&self) -> impl Iterator<Item = (EventId, Loc)> + '_ {
        self.reads()
            .filter(|(_, _, rf)| rf.is_bottom())
            .map(|(id, loc, _)| (id, loc))
    }

    /// The RMW read that reads from write `w`, if any.
    ///
    /// Atomicity demands at most one RMW reads from any given write; the
    /// explorer uses this to prune conflicting rf choices.
    pub fn rmw_reader_of(&self, w: EventId) -> Option<EventId> {
        let loc = self.loc_of(w)?;
        self.reads_of(loc).find_map(|(id, rf)| {
            let is_rmw = matches!(&self.event(id).kind, EventKind::Read { rmw: true, .. });
            (is_rmw && rf == RfSource::Write(w)).then_some(id)
        })
    }

    /// The error event of the graph, if one was generated.
    pub fn error(&self) -> Option<(EventId, &str)> {
        self.events().find_map(|(id, e)| match &e.kind {
            EventKind::Error { msg } => Some((id, msg.as_str())),
            _ => None,
        })
    }

    /// The final memory state: for every location, the value of its
    /// `mo`-maximal write (or the initial value).
    ///
    /// Meaningful for complete executions; used by final-state assertions.
    pub fn final_state(&self) -> BTreeMap<Loc, Value> {
        let mut state = (*self.init).clone();
        for (&loc, writes) in &self.mo {
            if let Some(&w) = writes.last() {
                state.insert(loc, self.write_value(w));
            } else {
                state.entry(loc).or_insert(0);
            }
        }
        state
    }

    /// The `porf`-prefix of a set of events: all events reachable backwards
    /// through program order and reads-from edges, *including* the seeds.
    ///
    /// Init events are implicit and never included.
    pub fn porf_prefix(&self, seeds: impl IntoIterator<Item = EventId>) -> HashSet<EventId> {
        self.porf_prefix_set(seeds).iter(self).collect()
    }

    /// [`ExecutionGraph::porf_prefix`] as a dense [`EventSet`] — the
    /// allocation-light form used by the explorer's revisit hot path.
    pub fn porf_prefix_set(&self, seeds: impl IntoIterator<Item = EventId>) -> EventSet {
        let mut prefix = EventSet::new(self);
        let mut work: Vec<EventId> = seeds.into_iter().filter(|e| !e.is_init()).collect();
        while let Some(id) = work.pop() {
            if !prefix.insert(id) {
                continue;
            }
            let (thread, index) = match id {
                EventId::Event { thread, index } => (thread, index),
                EventId::Init(_) => continue,
            };
            if index > 0 {
                // The whole po-prefix of the thread is in the porf-prefix;
                // mark it in one go, chasing only the rf edges of newly
                // marked reads.
                work.push(EventId::new(thread, index - 1));
            }
            if let EventKind::Read { rf: RfSource::Write(w), .. } = &self.event(id).kind {
                if !w.is_init() {
                    work.push(*w);
                }
            }
        }
        prefix
    }

    /// Restrict the graph to a set of kept events.
    ///
    /// `keep` must be closed under `po` and `rf` predecessors (a union of
    /// `porf`-prefixes); reads-from edges of kept reads then stay inside the
    /// kept set and each thread keeps a prefix of its program order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `keep` is not prefix-closed.
    pub fn restrict(&self, keep: &HashSet<EventId>) -> ExecutionGraph {
        self.restrict_with(|id| keep.contains(&id))
    }

    /// [`ExecutionGraph::restrict`] with a dense [`EventSet`] keep-set.
    pub fn restrict_set(&self, keep: &EventSet) -> ExecutionGraph {
        self.restrict_with(|id| keep.contains(id))
    }

    fn restrict_with(&self, keep: impl Fn(EventId) -> bool) -> ExecutionGraph {
        let mut threads = Vec::with_capacity(self.threads.len());
        for (t, evs) in self.threads.iter().enumerate() {
            // Find the cut first so a fully-surviving thread shares the
            // parent's storage without copying a single event.
            let mut cut = 0;
            while cut < evs.len() && keep(EventId::new(t as ThreadId, cut as u32)) {
                cut += 1;
            }
            #[cfg(debug_assertions)]
            for i in cut..evs.len() {
                assert!(
                    !keep(EventId::new(t as ThreadId, i as u32)),
                    "keep set is not po-prefix-closed for thread {t}"
                );
            }
            if cut == evs.len() {
                threads.push(Arc::clone(evs));
            } else {
                threads.push(Arc::new(evs[..cut].to_vec()));
            }
        }
        let mo = self
            .mo
            .iter()
            .map(|(&loc, ws)| {
                (loc, ws.iter().filter(|w| keep(**w)).copied().collect::<Vec<_>>())
            })
            .filter(|(_, ws): &(Loc, Vec<EventId>)| !ws.is_empty())
            .collect();
        let g = ExecutionGraph { threads, mo, init: self.init.clone(), next_ts: self.next_ts };
        #[cfg(debug_assertions)]
        for (id, _, rf) in g.reads() {
            if let RfSource::Write(w) = rf {
                if !w.is_init() {
                    assert!(keep(w), "dangling rf after restrict: {id} reads deleted {w}");
                }
            }
        }
        g
    }

    /// The graph with its threads relabeled by `perm`
    /// (`perm[original] = new label`): thread `t`'s event sequence becomes
    /// thread `perm[t]`'s, and every embedded [`EventId`] — reads-from
    /// sources and modification-order entries — is rewritten accordingly.
    /// Per-location `mo` *order* and the init table are unchanged.
    ///
    /// Relabeling between threads running identical code maps execution
    /// graphs of a program onto execution graphs of the same program;
    /// the explorer uses this to replace a work item by its
    /// symmetry-canonical representative.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_threads`.
    #[must_use]
    pub fn permute_threads(&self, perm: &[ThreadId]) -> ExecutionGraph {
        assert_eq!(perm.len(), self.threads.len(), "permutation covers all threads");
        let map_id = |id: EventId| match id {
            EventId::Init(_) => id,
            EventId::Event { thread, index } => {
                EventId::Event { thread: perm[thread as usize], index }
            }
        };
        // Placeholder Arcs; every slot is overwritten below (sharing the
        // placeholder between slots until then is fine — clippy's
        // rc_clone_in_vec_init lint wants that made explicit).
        let placeholder: Arc<Vec<Event>> = Arc::new(Vec::new());
        let mut threads: Vec<Arc<Vec<Event>>> =
            (0..self.threads.len()).map(|_| Arc::clone(&placeholder)).collect();
        let mut placed = vec![false; self.threads.len()];
        for (t, evs) in self.threads.iter().enumerate() {
            let mapped: Vec<Event> = evs
                .iter()
                .map(|ev| {
                    let kind = match &ev.kind {
                        EventKind::Read { loc, mode, rf, rmw, awaiting } => EventKind::Read {
                            loc: *loc,
                            mode: *mode,
                            rf: match rf {
                                RfSource::Bottom => RfSource::Bottom,
                                RfSource::Write(w) => RfSource::Write(map_id(*w)),
                            },
                            rmw: *rmw,
                            awaiting: *awaiting,
                        },
                        other => other.clone(),
                    };
                    Event { kind, ts: ev.ts }
                })
                .collect();
            let slot = perm[t] as usize;
            assert!(!placed[slot], "perm maps two threads to label {slot}");
            placed[slot] = true;
            threads[slot] = Arc::new(mapped);
        }
        let mo = self
            .mo
            .iter()
            .map(|(&loc, ws)| (loc, ws.iter().map(|&w| map_id(w)).collect()))
            .collect();
        ExecutionGraph { threads, mo, init: self.init.clone(), next_ts: self.next_ts }
    }

    /// Pretty multi-line rendering used in counterexample reports.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (&loc, &val) in self.init.iter() {
            let _ = writeln!(out, "  Winit({loc:#x}) = {val}");
        }
        for (t, evs) in self.threads.iter().enumerate() {
            let _ = writeln!(out, "  thread T{t}:");
            for (i, ev) in evs.iter().enumerate() {
                let _ = writeln!(out, "    [{i:>3}] {}", ev.kind);
            }
        }
        for (&loc, ws) in &self.mo {
            let order: Vec<String> = ws.iter().map(|w| w.to_string()).collect();
            let _ = writeln!(out, "  mo({loc:#x}): init -> {}", order.join(" -> "));
        }
        out
    }
}

/// A dense set of a graph's regular events, stored as one bitset over
/// `(thread, index)` pairs.
///
/// The explorer computes `porf`-prefixes for every write placement and
/// revisit; a `HashSet<EventId>` there means hashing on the hottest path.
/// `EventSet` replaces it with word-level bit operations. The set is tied
/// to the shape (per-thread lengths) of the graph it was created from.
#[derive(Debug, Clone)]
pub struct EventSet {
    /// `offsets[t]` is the first bit of thread `t`; the last entry is the
    /// total bit count.
    offsets: Vec<u32>,
    bits: Vec<u64>,
}

impl EventSet {
    /// An empty set shaped for `g`'s current events.
    pub fn new(g: &ExecutionGraph) -> Self {
        let mut offsets = Vec::with_capacity(g.num_threads() + 1);
        let mut total = 0u32;
        for t in 0..g.num_threads() {
            offsets.push(total);
            total += g.thread_len(t as u32) as u32;
        }
        offsets.push(total);
        EventSet { offsets, bits: vec![0; (total as usize).div_ceil(64)] }
    }

    fn slot(&self, id: EventId) -> Option<usize> {
        match id {
            EventId::Init(_) => None,
            EventId::Event { thread, index } => {
                Some(self.offsets[thread as usize] as usize + index as usize)
            }
        }
    }

    /// Insert an event; returns `true` iff it was not already present.
    /// Init events are implicit in every prefix and never stored.
    pub fn insert(&mut self, id: EventId) -> bool {
        let Some(b) = self.slot(id) else { return false };
        let (w, m) = (b / 64, 1u64 << (b % 64));
        let fresh = self.bits[w] & m == 0;
        self.bits[w] |= m;
        fresh
    }

    /// Is the event in the set?
    pub fn contains(&self, id: EventId) -> bool {
        match self.slot(id) {
            Some(b) => self.bits[b / 64] & (1u64 << (b % 64)) != 0,
            None => false,
        }
    }

    /// Union another set of the same shape into this one.
    pub fn union_with(&mut self, other: &EventSet) {
        debug_assert_eq!(self.offsets, other.offsets, "sets from different graph shapes");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Per-thread kept-prefix lengths of a po-prefix-closed set: entry `t`
    /// is the number of kept events of thread `t`. Because a prefix-closed
    /// set keeps a contiguous program-order prefix of every thread, the
    /// popcount of a thread's bit range *is* its cut position — this is
    /// how the revisit engine describes a restriction without building the
    /// restricted graph.
    pub fn prefix_lens(&self) -> Vec<u32> {
        (0..self.offsets.len() - 1)
            .map(|t| {
                let (lo, hi) = (self.offsets[t] as usize, self.offsets[t + 1] as usize);
                (lo..hi)
                    .filter(|b| self.bits[b / 64] & (1u64 << (b % 64)) != 0)
                    .count() as u32
            })
            .collect()
    }

    /// Iterate the members as [`EventId`]s (`g` must be the graph the set
    /// was created from, or one with the same per-thread lengths).
    pub fn iter<'a>(&'a self, g: &'a ExecutionGraph) -> impl Iterator<Item = EventId> + 'a {
        (0..g.num_threads()).flat_map(move |t| {
            let base = self.offsets[t] as usize;
            (0..g.thread_len(t as u32)).filter_map(move |i| {
                let b = base + i;
                (self.bits[b / 64] & (1u64 << (b % 64)) != 0)
                    .then(|| EventId::new(t as ThreadId, i as u32))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_kind(loc: Loc, rf: RfSource) -> EventKind {
        EventKind::Read { loc, mode: Mode::Rlx, rf, rmw: false, awaiting: false }
    }

    fn write_kind(loc: Loc, val: Value) -> EventKind {
        EventKind::Write { loc, val, mode: Mode::Rlx, rmw: false }
    }

    fn two_thread_graph() -> ExecutionGraph {
        // T0: W(x,1); T1: R(x)<-T0.0
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(0, write_kind(0x10, 1));
        g.insert_mo(0x10, w, 0);
        let _r = g.push_event(1, read_kind(0x10, RfSource::Write(w)));
        g
    }

    #[test]
    fn push_and_lookup() {
        let g = two_thread_graph();
        assert_eq!(g.num_events(), 2);
        assert_eq!(g.thread_len(0), 1);
        assert_eq!(g.write_value(EventId::new(0, 0)), 1);
        assert_eq!(g.read_value(EventId::new(1, 0)), Some(1));
    }

    #[test]
    fn init_values_default_to_zero() {
        let mut init = BTreeMap::new();
        init.insert(0x20, 7);
        let g = ExecutionGraph::new(1, init);
        assert_eq!(g.init_value(0x20), 7);
        assert_eq!(g.init_value(0x10), 0);
        assert_eq!(g.write_value(EventId::Init(0x20)), 7);
    }

    #[test]
    fn mo_positions() {
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        let w1 = g.push_event(0, write_kind(0x10, 1));
        let w2 = g.push_event(0, write_kind(0x10, 2));
        g.insert_mo(0x10, w1, 0);
        g.insert_mo(0x10, w2, 0); // w2 placed *before* w1
        assert_eq!(g.mo(0x10), &[w2, w1]);
        assert_eq!(g.mo_position(EventId::Init(0x10)), Some(0));
        assert_eq!(g.mo_position(w2), Some(1));
        assert_eq!(g.mo_position(w1), Some(2));
    }

    #[test]
    fn read_from_bottom_has_no_value() {
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        let r = g.push_event(0, read_kind(0x10, RfSource::Bottom));
        assert_eq!(g.read_value(r), None);
        assert_eq!(g.pending_reads().count(), 1);
        g.set_rf(r, RfSource::Write(EventId::Init(0x10)));
        assert_eq!(g.read_value(r), Some(0));
        assert_eq!(g.pending_reads().count(), 0);
    }

    #[test]
    fn final_state_is_mo_maximal() {
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        let w1 = g.push_event(0, write_kind(0x10, 1));
        let w2 = g.push_event(0, write_kind(0x10, 2));
        g.insert_mo(0x10, w1, 0);
        g.insert_mo(0x10, w2, 1);
        assert_eq!(g.final_state().get(&0x10), Some(&2));
    }

    #[test]
    fn porf_prefix_follows_po_and_rf() {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w0 = g.push_event(0, write_kind(0x10, 1)); // T0.0
        g.insert_mo(0x10, w0, 0);
        let w1 = g.push_event(0, write_kind(0x20, 1)); // T0.1
        g.insert_mo(0x20, w1, 0);
        let r = g.push_event(1, read_kind(0x20, RfSource::Write(w1))); // T1.0
        let prefix = g.porf_prefix([r]);
        // r's prefix: r itself, w1 (rf), w0 (po before w1).
        assert!(prefix.contains(&r));
        assert!(prefix.contains(&w1));
        assert!(prefix.contains(&w0));
        assert_eq!(prefix.len(), 3);
        // w0's prefix is just w0.
        assert_eq!(g.porf_prefix([w0]).len(), 1);
    }

    #[test]
    fn restrict_keeps_prefixes_and_filters_mo() {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w0 = g.push_event(0, write_kind(0x10, 1));
        g.insert_mo(0x10, w0, 0);
        let w1 = g.push_event(0, write_kind(0x10, 2));
        g.insert_mo(0x10, w1, 1);
        let r = g.push_event(1, read_kind(0x10, RfSource::Write(w0)));
        let keep: HashSet<EventId> = [w0, r].into_iter().collect();
        let g2 = g.restrict(&keep);
        assert_eq!(g2.num_events(), 2);
        assert_eq!(g2.mo(0x10), &[w0]);
        assert_eq!(g2.read_value(r), Some(1));
    }

    #[test]
    fn rmw_reader_lookup() {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(0, write_kind(0x10, 1));
        g.insert_mo(0x10, w, 0);
        let r = g.push_event(
            1,
            EventKind::Read {
                loc: 0x10,
                mode: Mode::Rlx,
                rf: RfSource::Write(w),
                rmw: true,
                awaiting: false,
            },
        );
        assert_eq!(g.rmw_reader_of(w), Some(r));
        assert_eq!(g.rmw_reader_of(EventId::Init(0x10)), None);
    }

    #[test]
    fn permute_threads_relabels_ids_and_keeps_mo_order() {
        let g = two_thread_graph(); // T0: W(x,1); T1: R(x)<-T0.0
        let p = g.permute_threads(&[1, 0]);
        assert_eq!(p.thread_len(0), 1);
        assert_eq!(p.thread_len(1), 1);
        // The write now lives on T1, the read on T0 — pointing at T1.0.
        assert_eq!(p.write_value(EventId::new(1, 0)), 1);
        assert_eq!(p.rf(EventId::new(0, 0)), RfSource::Write(EventId::new(1, 0)));
        assert_eq!(p.mo(0x10), &[EventId::new(1, 0)]);
        // Involution: permuting back restores the original content.
        let back = p.permute_threads(&[1, 0]);
        assert_eq!(back, g);
        // Identity is a no-op.
        assert_eq!(g.permute_threads(&[0, 1]), g);
    }

    #[test]
    fn pop_event_and_remove_mo_undo_a_speculative_extension() {
        let mut g = two_thread_graph();
        let snapshot = g.clone();
        let w = g.push_event(1, write_kind(0x30, 9));
        g.insert_mo(0x30, w, 0);
        assert_eq!(g.written_locs().count(), 2);
        g.remove_mo(0x30, 0);
        let kind = g.pop_event(1);
        assert!(matches!(kind, EventKind::Write { loc: 0x30, val: 9, .. }));
        // Full undo: content *and* timestamps match, so a re-push gets the
        // same ts the speculative push had.
        assert_eq!(g, snapshot);
        // A location whose only write is removed vanishes entirely.
        assert_eq!(g.written_locs().count(), 1);
    }

    #[test]
    #[should_panic(expected = "newest push")]
    fn pop_event_rejects_non_newest() {
        let mut g = two_thread_graph(); // T1's read is newer than T0's write
        let _ = g.pop_event(0);
    }

    #[test]
    fn prefix_lens_count_kept_prefixes() {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w0 = g.push_event(0, write_kind(0x10, 1));
        g.insert_mo(0x10, w0, 0);
        let _w1 = g.push_event(0, write_kind(0x10, 2));
        let r = g.push_event(1, read_kind(0x10, RfSource::Write(w0)));
        let keep = g.porf_prefix_set([r]);
        assert_eq!(keep.prefix_lens(), vec![1, 1]);
        let all = g.porf_prefix_set([EventId::new(0, 1), r]);
        assert_eq!(all.prefix_lens(), vec![2, 1]);
        assert_eq!(EventSet::new(&g).prefix_lens(), vec![0, 0]);
    }

    #[test]
    fn error_lookup() {
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        assert!(g.error().is_none());
        g.push_event(0, EventKind::Error { msg: "boom".into() });
        let (_, msg) = g.error().unwrap();
        assert_eq!(msg, "boom");
    }

    #[test]
    fn render_mentions_threads_and_mo() {
        let g = two_thread_graph();
        let s = g.render();
        assert!(s.contains("thread T0"));
        assert!(s.contains("mo(0x10)"));
    }
}
