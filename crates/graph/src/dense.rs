//! Dense event indexing and bit-matrix relations.
//!
//! Memory-model axioms are phrased as (a)cyclicity and irreflexivity
//! constraints over relations between events. For the small graphs AMC
//! explores (tens to a few hundred events) a dense bitset matrix is the
//! right substrate; the checker's hot path avoids Floyd–Warshall-style
//! `O(n³/64)` closures entirely:
//!
//! * [`Relation::is_acyclic`] runs an iterative DFS over the bitset rows
//!   (`O(n²/64)` words scanned, usually far less);
//! * [`Relation::close_acyclic`] computes the transitive closure of a DAG
//!   by word-level row unions in reverse topological order
//!   (`O((n + E) · n/64)`), detecting cycles on the way;
//! * [`Relation::close`] — the classic word-parallel Floyd–Warshall — is
//!   retained for the naive reference checkers that the differential tests
//!   compare against.

use crate::event::EventId;
use crate::graph::ExecutionGraph;

/// A bijection between the events of a graph (including virtual init
/// writes) and dense indices `0..len`.
///
/// Init events come first (in location order), then each thread's events in
/// program order.
#[derive(Debug, Clone)]
pub struct EventIndex {
    ids: Vec<EventId>,
    thread_base: Vec<usize>,
    init_count: usize,
    init_locs: Vec<u64>,
}

impl EventIndex {
    /// Build the index for a graph.
    pub fn new(g: &ExecutionGraph) -> Self {
        let mut ids = Vec::with_capacity(g.num_events() + 8);
        let mut init_locs: Vec<u64> = g.written_locs().collect();
        // Locations that are only read still have init writes worth indexing.
        for (_, loc, _) in g.reads() {
            if !init_locs.contains(&loc) {
                init_locs.push(loc);
            }
        }
        init_locs.sort_unstable();
        init_locs.dedup();
        for &loc in &init_locs {
            ids.push(EventId::Init(loc));
        }
        let init_count = ids.len();
        let mut thread_base = Vec::with_capacity(g.num_threads());
        for t in 0..g.num_threads() {
            thread_base.push(ids.len());
            for i in 0..g.thread_len(t as u32) {
                ids.push(EventId::new(t as u32, i as u32));
            }
        }
        EventIndex { ids, thread_base, init_count, init_locs }
    }

    /// Total number of indexed events.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of init events (they occupy indices `0..init_count`).
    pub fn init_count(&self) -> usize {
        self.init_count
    }

    /// Dense index of an event id.
    ///
    /// # Panics
    ///
    /// Panics if the event is not part of the indexed graph.
    pub fn index_of(&self, id: EventId) -> usize {
        match id {
            EventId::Init(loc) => self
                .init_locs
                .binary_search(&loc)
                .unwrap_or_else(|_| panic!("init event {id} not indexed")),
            EventId::Event { thread, index } => self.thread_base[thread as usize] + index as usize,
        }
    }

    /// Event id of a dense index.
    pub fn id_of(&self, idx: usize) -> EventId {
        self.ids[idx]
    }

    /// Iterate over all (index, id) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, EventId)> + '_ {
        self.ids.iter().copied().enumerate()
    }
}

/// Iterator over the set-bit positions of a single word.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

/// Iterate the set-bit positions of a bitset stored as little-endian words
/// (the row format of [`Relation`] and the per-location masks built on top
/// of it).
pub fn iter_set_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words
        .iter()
        .enumerate()
        .flat_map(|(w, &word)| BitIter(word).map(move |b| w * 64 + b))
}

/// A binary relation over `n` events stored as a bitset matrix.
#[derive(Debug, Clone)]
pub struct Relation {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Relation { n, words_per_row, bits: vec![0; n * words_per_row] }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the relation over an empty carrier?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add the edge `a -> b`.
    pub fn add(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.n && b < self.n);
        self.bits[a * self.words_per_row + b / 64] |= 1u64 << (b % 64);
    }

    /// Does the edge `a -> b` exist?
    pub fn has(&self, a: usize, b: usize) -> bool {
        self.bits[a * self.words_per_row + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// Union with another relation of the same size.
    pub fn union_with(&mut self, other: &Relation) {
        debug_assert_eq!(self.n, other.n);
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
    }

    /// Replace `self` by its transitive closure.
    ///
    /// Word-parallel Floyd–Warshall: `O(n^2 * n/64)`.
    pub fn close(&mut self) {
        let wpr = self.words_per_row;
        for k in 0..self.n {
            let (kw, kb) = (k / 64, 1u64 << (k % 64));
            for i in 0..self.n {
                if i == k {
                    continue; // row_k |= row_k is a no-op
                }
                if self.bits[i * wpr + kw] & kb != 0 {
                    let (krow, irow) = if i < k {
                        let (a, b) = self.bits.split_at_mut(k * wpr);
                        (&b[..wpr], &mut a[i * wpr..i * wpr + wpr])
                    } else {
                        let (a, b) = self.bits.split_at_mut(i * wpr);
                        (&a[k * wpr..k * wpr + wpr], &mut b[..wpr])
                    };
                    for (iw, kw2) in irow.iter_mut().zip(krow) {
                        *iw |= kw2;
                    }
                }
            }
        }
    }

    /// Is the relation irreflexive (no `a -> a` edge)?
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.has(i, i))
    }

    /// The words of row `a` (successor bitset of event `a`).
    pub fn row(&self, a: usize) -> &[u64] {
        &self.bits[a * self.words_per_row..(a + 1) * self.words_per_row]
    }

    /// Union an external row bitset into row `a`.
    pub fn union_row_into(&mut self, a: usize, words: &[u64]) {
        debug_assert_eq!(words.len(), self.words_per_row);
        let dst = &mut self.bits[a * self.words_per_row..(a + 1) * self.words_per_row];
        for (d, s) in dst.iter_mut().zip(words) {
            *d |= s;
        }
    }

    /// Iterate over the successors of `a` (set bits of its row).
    pub fn successors(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        iter_set_bits(self.row(a))
    }

    /// Is the relation acyclic? Iterative three-color DFS over the bitset
    /// rows — no transitive closure is computed.
    pub fn is_acyclic(&self) -> bool {
        // 0 = white, 1 = on stack (grey), 2 = done (black).
        let mut color = vec![0u8; self.n];
        // (node, next word index, remaining bits of current word).
        let mut stack: Vec<(usize, usize, u64)> = Vec::new();
        for root in 0..self.n {
            if color[root] != 0 {
                continue;
            }
            color[root] = 1;
            let first = self.row(root).first().copied().unwrap_or(0);
            stack.push((root, 0, first));
            while let Some(&mut (v, ref mut w, ref mut word)) = stack.last_mut() {
                if *word == 0 {
                    *w += 1;
                    if *w >= self.words_per_row {
                        color[v] = 2;
                        stack.pop();
                        continue;
                    }
                    *word = self.row(v)[*w];
                    continue;
                }
                let b = word.trailing_zeros() as usize;
                *word &= *word - 1;
                let u = *w * 64 + b;
                match color[u] {
                    0 => {
                        color[u] = 1;
                        let first = self.row(u).first().copied().unwrap_or(0);
                        stack.push((u, 0, first));
                    }
                    1 => return false, // back edge: cycle
                    _ => {}
                }
            }
        }
        true
    }

    /// A topological order of the relation's nodes (sources first), or
    /// `None` if the relation has a cycle. Kahn's algorithm over the bitset
    /// rows.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0u32; self.n];
        for a in 0..self.n {
            for b in self.successors(a) {
                indeg[b] += 1;
            }
        }
        let mut order: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for u in self.successors(v) {
                indeg[u] -= 1;
                if indeg[u] == 0 {
                    order.push(u);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// Replace `self` by its transitive closure, assuming acyclicity:
    /// processes nodes in reverse topological order and unions each
    /// successor's (already final) row into the node's row — word-level,
    /// `O((n + E) · n/64)`.
    ///
    /// Returns `false` (leaving the relation unchanged) if the relation has
    /// a cycle; use [`Relation::close`] when closure of a cyclic relation
    /// is actually needed.
    pub fn close_acyclic(&mut self) -> bool {
        let Some(order) = self.topo_order() else { return false };
        let wpr = self.words_per_row;
        let mut orig = vec![0u64; wpr];
        for &v in order.iter().rev() {
            orig.copy_from_slice(self.row(v));
            for (w, &word) in orig.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let u = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if u != v {
                        let (vrow, urow) = if v < u {
                            let (a, b) = self.bits.split_at_mut(u * wpr);
                            (&mut a[v * wpr..v * wpr + wpr], &b[..wpr])
                        } else {
                            let (a, b) = self.bits.split_at_mut(v * wpr);
                            (&mut b[..wpr], &a[u * wpr..u * wpr + wpr])
                        };
                        for (d, s) in vrow.iter_mut().zip(urow) {
                            *d |= s;
                        }
                    }
                }
            }
        }
        true
    }

    /// Compose: `self ; other`, returning a new relation.
    pub fn compose(&self, other: &Relation) -> Relation {
        debug_assert_eq!(self.n, other.n);
        let mut out = Relation::new(self.n);
        let wpr = self.words_per_row;
        for a in 0..self.n {
            for b in 0..self.n {
                if self.has(a, b) {
                    let dst = &mut out.bits[a * wpr..(a + 1) * wpr];
                    let src = &other.bits[b * wpr..(b + 1) * wpr];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d |= s;
                    }
                }
            }
        }
        out
    }

    /// Iterate over all edges `(a, b)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| (0..self.n).filter(move |&b| self.has(a, b)).map(move |b| (a, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Mode, RfSource};
    use std::collections::BTreeMap;

    #[test]
    fn index_round_trips() {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(0, EventKind::Write { loc: 5, val: 1, mode: Mode::Rlx, rmw: false });
        g.insert_mo(5, w, 0);
        g.push_event(
            1,
            EventKind::Read { loc: 9, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(9)), rmw: false, awaiting: false },
        );
        let ix = EventIndex::new(&g);
        // init(5), init(9), T0.0, T1.0
        assert_eq!(ix.len(), 4);
        assert_eq!(ix.init_count(), 2);
        for (i, id) in ix.iter() {
            assert_eq!(ix.index_of(id), i);
            assert_eq!(ix.id_of(i), id);
        }
    }

    #[test]
    fn closure_and_acyclicity() {
        let mut r = Relation::new(4);
        r.add(0, 1);
        r.add(1, 2);
        assert!(r.is_acyclic());
        let mut c = r.clone();
        c.close();
        assert!(c.has(0, 2));
        assert!(!c.has(2, 0));
        r.add(2, 0);
        assert!(!r.is_acyclic());
    }

    #[test]
    fn closure_handles_long_chains() {
        let n = 130; // exercise multi-word rows
        let mut r = Relation::new(n);
        for i in 0..n - 1 {
            r.add(i, i + 1);
        }
        r.close();
        assert!(r.has(0, n - 1));
        assert!(r.is_irreflexive());
    }

    #[test]
    fn compose_chains_edges() {
        let mut a = Relation::new(3);
        a.add(0, 1);
        let mut b = Relation::new(3);
        b.add(1, 2);
        let c = a.compose(&b);
        assert!(c.has(0, 2));
        assert!(!c.has(0, 1));
        assert_eq!(c.edges().count(), 1);
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut r = Relation::new(2);
        r.add(1, 1);
        assert!(!r.is_acyclic());
        assert!(!r.is_irreflexive());
    }

    #[test]
    fn union_merges() {
        let mut a = Relation::new(2);
        a.add(0, 1);
        let mut b = Relation::new(2);
        b.add(1, 0);
        a.union_with(&b);
        assert!(a.has(0, 1) && a.has(1, 0));
    }

    #[test]
    fn dfs_acyclicity_agrees_with_closure_on_random_relations() {
        // Deterministic xorshift sweep: the DFS fast path and the closure
        // reference must agree on every random relation.
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let n = 1 + (next() % 24) as usize;
            let mut r = Relation::new(n);
            let edges = next() % (2 * n as u64);
            for _ in 0..edges {
                r.add((next() % n as u64) as usize, (next() % n as u64) as usize);
            }
            let mut c = r.clone();
            c.close();
            let naive = c.is_irreflexive();
            assert_eq!(r.is_acyclic(), naive, "case {case} (n={n}) disagrees");
            assert_eq!(r.topo_order().is_some(), naive, "topo_order cycle detection");
        }
    }

    #[test]
    fn close_acyclic_matches_floyd_warshall_on_dags() {
        let mut state = 0x13198a2e03707344u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let n = 1 + (next() % 20) as usize;
            let mut r = Relation::new(n);
            for _ in 0..next() % (2 * n as u64) {
                // Forward edges only: guaranteed acyclic.
                let a = (next() % n as u64) as usize;
                let b = (next() % n as u64) as usize;
                if a < b {
                    r.add(a, b);
                }
            }
            let mut fast = r.clone();
            assert!(fast.close_acyclic(), "DAG misdetected as cyclic (case {case})");
            let mut slow = r.clone();
            slow.close();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(fast.has(a, b), slow.has(a, b), "case {case}: edge {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn close_acyclic_refuses_cycles() {
        let mut r = Relation::new(3);
        r.add(0, 1);
        r.add(1, 2);
        r.add(2, 0);
        assert!(!r.close_acyclic());
    }

    #[test]
    fn successors_and_rows() {
        let mut r = Relation::new(130);
        r.add(0, 1);
        r.add(0, 129);
        assert_eq!(r.successors(0).collect::<Vec<_>>(), vec![1, 129]);
        assert_eq!(r.row(0).len(), 3);
        let ext = {
            let mut e = Relation::new(130);
            e.add(1, 64);
            e.row(1).to_vec()
        };
        r.union_row_into(0, &ext);
        assert_eq!(r.successors(0).collect::<Vec<_>>(), vec![1, 64, 129]);
    }
}
