//! Dense event indexing and bit-matrix relations.
//!
//! Memory-model axioms are phrased as (a)cyclicity and irreflexivity
//! constraints over relations between events. For the small graphs AMC
//! explores (tens to a few hundred events) a dense bitset matrix with
//! Floyd–Warshall-style closure is both simple and fast.

use crate::event::EventId;
use crate::graph::ExecutionGraph;

/// A bijection between the events of a graph (including virtual init
/// writes) and dense indices `0..len`.
///
/// Init events come first (in location order), then each thread's events in
/// program order.
#[derive(Debug, Clone)]
pub struct EventIndex {
    ids: Vec<EventId>,
    thread_base: Vec<usize>,
    init_count: usize,
    init_locs: Vec<u64>,
}

impl EventIndex {
    /// Build the index for a graph.
    pub fn new(g: &ExecutionGraph) -> Self {
        let mut ids = Vec::with_capacity(g.num_events() + 8);
        let mut init_locs: Vec<u64> = g.written_locs().collect();
        // Locations that are only read still have init writes worth indexing.
        for (_, loc, _) in g.reads() {
            if !init_locs.contains(&loc) {
                init_locs.push(loc);
            }
        }
        init_locs.sort_unstable();
        init_locs.dedup();
        for &loc in &init_locs {
            ids.push(EventId::Init(loc));
        }
        let init_count = ids.len();
        let mut thread_base = Vec::with_capacity(g.num_threads());
        for t in 0..g.num_threads() {
            thread_base.push(ids.len());
            for i in 0..g.thread_len(t as u32) {
                ids.push(EventId::new(t as u32, i as u32));
            }
        }
        EventIndex { ids, thread_base, init_count, init_locs }
    }

    /// Total number of indexed events.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of init events (they occupy indices `0..init_count`).
    pub fn init_count(&self) -> usize {
        self.init_count
    }

    /// Dense index of an event id.
    ///
    /// # Panics
    ///
    /// Panics if the event is not part of the indexed graph.
    pub fn index_of(&self, id: EventId) -> usize {
        match id {
            EventId::Init(loc) => self
                .init_locs
                .binary_search(&loc)
                .unwrap_or_else(|_| panic!("init event {id} not indexed")),
            EventId::Event { thread, index } => self.thread_base[thread as usize] + index as usize,
        }
    }

    /// Event id of a dense index.
    pub fn id_of(&self, idx: usize) -> EventId {
        self.ids[idx]
    }

    /// Iterate over all (index, id) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, EventId)> + '_ {
        self.ids.iter().copied().enumerate()
    }
}

/// A binary relation over `n` events stored as a bitset matrix.
#[derive(Debug, Clone)]
pub struct Relation {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Relation { n, words_per_row, bits: vec![0; n * words_per_row] }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the relation over an empty carrier?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add the edge `a -> b`.
    pub fn add(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.n && b < self.n);
        self.bits[a * self.words_per_row + b / 64] |= 1u64 << (b % 64);
    }

    /// Does the edge `a -> b` exist?
    pub fn has(&self, a: usize, b: usize) -> bool {
        self.bits[a * self.words_per_row + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// Union with another relation of the same size.
    pub fn union_with(&mut self, other: &Relation) {
        debug_assert_eq!(self.n, other.n);
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
    }

    /// Replace `self` by its transitive closure.
    ///
    /// Word-parallel Floyd–Warshall: `O(n^2 * n/64)`.
    pub fn close(&mut self) {
        let wpr = self.words_per_row;
        for k in 0..self.n {
            let (kw, kb) = (k / 64, 1u64 << (k % 64));
            for i in 0..self.n {
                if i == k {
                    continue; // row_k |= row_k is a no-op
                }
                if self.bits[i * wpr + kw] & kb != 0 {
                    let (krow, irow) = if i < k {
                        let (a, b) = self.bits.split_at_mut(k * wpr);
                        (&b[..wpr], &mut a[i * wpr..i * wpr + wpr])
                    } else {
                        let (a, b) = self.bits.split_at_mut(i * wpr);
                        (&a[k * wpr..k * wpr + wpr], &mut b[..wpr])
                    };
                    for (iw, kw2) in irow.iter_mut().zip(krow) {
                        *iw |= kw2;
                    }
                }
            }
        }
    }

    /// Is the relation irreflexive (no `a -> a` edge)?
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.has(i, i))
    }

    /// Is the relation acyclic? (Checked via closure on a copy.)
    pub fn is_acyclic(&self) -> bool {
        let mut c = self.clone();
        c.close();
        c.is_irreflexive()
    }

    /// Compose: `self ; other`, returning a new relation.
    pub fn compose(&self, other: &Relation) -> Relation {
        debug_assert_eq!(self.n, other.n);
        let mut out = Relation::new(self.n);
        let wpr = self.words_per_row;
        for a in 0..self.n {
            for b in 0..self.n {
                if self.has(a, b) {
                    let dst = &mut out.bits[a * wpr..(a + 1) * wpr];
                    let src = &other.bits[b * wpr..(b + 1) * wpr];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d |= s;
                    }
                }
            }
        }
        out
    }

    /// Iterate over all edges `(a, b)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| (0..self.n).filter(move |&b| self.has(a, b)).map(move |b| (a, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Mode, RfSource};
    use std::collections::BTreeMap;

    #[test]
    fn index_round_trips() {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(0, EventKind::Write { loc: 5, val: 1, mode: Mode::Rlx, rmw: false });
        g.insert_mo(5, w, 0);
        g.push_event(
            1,
            EventKind::Read { loc: 9, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(9)), rmw: false, awaiting: false },
        );
        let ix = EventIndex::new(&g);
        // init(5), init(9), T0.0, T1.0
        assert_eq!(ix.len(), 4);
        assert_eq!(ix.init_count(), 2);
        for (i, id) in ix.iter() {
            assert_eq!(ix.index_of(id), i);
            assert_eq!(ix.id_of(i), id);
        }
    }

    #[test]
    fn closure_and_acyclicity() {
        let mut r = Relation::new(4);
        r.add(0, 1);
        r.add(1, 2);
        assert!(r.is_acyclic());
        let mut c = r.clone();
        c.close();
        assert!(c.has(0, 2));
        assert!(!c.has(2, 0));
        r.add(2, 0);
        assert!(!r.is_acyclic());
    }

    #[test]
    fn closure_handles_long_chains() {
        let n = 130; // exercise multi-word rows
        let mut r = Relation::new(n);
        for i in 0..n - 1 {
            r.add(i, i + 1);
        }
        r.close();
        assert!(r.has(0, n - 1));
        assert!(r.is_irreflexive());
    }

    #[test]
    fn compose_chains_edges() {
        let mut a = Relation::new(3);
        a.add(0, 1);
        let mut b = Relation::new(3);
        b.add(1, 2);
        let c = a.compose(&b);
        assert!(c.has(0, 2));
        assert!(!c.has(0, 1));
        assert_eq!(c.edges().count(), 1);
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut r = Relation::new(2);
        r.add(1, 1);
        assert!(!r.is_acyclic());
        assert!(!r.is_irreflexive());
    }

    #[test]
    fn union_merges() {
        let mut a = Relation::new(2);
        a.add(0, 1);
        let mut b = Relation::new(2);
        b.add(1, 0);
        a.union_with(&b);
        assert!(a.has(0, 1) && a.has(1, 0));
    }
}
