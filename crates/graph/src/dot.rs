//! Graphviz rendering of execution graphs.
//!
//! Counterexamples found by AMC (paper Figs. 14–19) are much easier to read
//! as a drawing: one column per thread in program order, with `rf` and `mo`
//! edges across columns.

use std::fmt::Write as _;

use crate::event::{EventId, EventKind, RfSource};
use crate::graph::ExecutionGraph;

fn node_name(id: EventId) -> String {
    match id {
        EventId::Init(loc) => format!("init_{loc:x}"),
        EventId::Event { thread, index } => format!("t{thread}_{index}"),
    }
}

/// Render a graph in Graphviz `dot` format.
///
/// ```
/// # use vsync_graph::{ExecutionGraph, EventKind, Mode};
/// # use std::collections::BTreeMap;
/// let mut g = ExecutionGraph::new(1, BTreeMap::new());
/// g.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
/// let dot = vsync_graph::to_dot(&g);
/// assert!(dot.starts_with("digraph execution"));
/// ```
pub fn to_dot(g: &ExecutionGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph execution {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];");
    for (&loc, &val) in g.init_table() {
        let _ = writeln!(out, "  init_{loc:x} [label=\"Winit({loc:#x},{val})\", style=dotted];");
    }
    // Also render inits of locations that are written but not in the table.
    for loc in g.written_locs() {
        if !g.init_table().contains_key(&loc) {
            let _ = writeln!(out, "  init_{loc:x} [label=\"Winit({loc:#x},0)\", style=dotted];");
        }
    }
    for t in 0..g.num_threads() {
        let _ = writeln!(out, "  subgraph cluster_t{t} {{ label=\"T{t}\";");
        let mut prev: Option<EventId> = None;
        for (i, ev) in g.thread_events(t as u32).iter().enumerate() {
            let id = EventId::new(t as u32, i as u32);
            let label = ev.kind.to_string().replace('"', "'");
            let _ = writeln!(out, "    {} [label=\"{}\"];", node_name(id), label);
            if let Some(p) = prev {
                let _ = writeln!(out, "    {} -> {} [label=\"po\", color=gray];", node_name(p), node_name(id));
            }
            prev = Some(id);
        }
        let _ = writeln!(out, "  }}");
    }
    for (r, _, rf) in g.reads() {
        if let RfSource::Write(w) = rf {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"rf\", color=forestgreen, constraint=false];",
                node_name(w),
                node_name(r)
            );
        }
    }
    for loc in g.written_locs().collect::<Vec<_>>() {
        let mut prev = EventId::Init(loc);
        for &w in g.mo(loc) {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"mo\", color=crimson, style=dashed, constraint=false];",
                node_name(prev),
                node_name(w)
            );
            prev = w;
        }
    }
    // Mark pending (⊥) reads.
    for (r, _) in g.pending_reads() {
        let _ = writeln!(out, "  {} [color=red, penwidth=2];", node_name(r));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a one-line-per-event text form, for terminal diagnostics.
pub fn to_text(g: &ExecutionGraph) -> String {
    let mut out = String::new();
    for (id, ev) in g.events() {
        let marker = match &ev.kind {
            EventKind::Read { rf: RfSource::Bottom, .. } => "  <- AT-pending",
            EventKind::Error { .. } => "  <- ERROR",
            _ => "",
        };
        let _ = writeln!(out, "{id}: {}{marker}", ev.kind);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Mode;
    use std::collections::BTreeMap;

    fn sample() -> ExecutionGraph {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
        g.insert_mo(0x10, w, 0);
        g.push_event(
            1,
            EventKind::Read { loc: 0x10, mode: Mode::Acq, rf: RfSource::Write(w), rmw: false, awaiting: false },
        );
        g.push_event(1, EventKind::Read { loc: 0x10, mode: Mode::Acq, rf: RfSource::Bottom, rmw: false, awaiting: true });
        g
    }

    #[test]
    fn dot_contains_edges() {
        let dot = to_dot(&sample());
        assert!(dot.contains("digraph"));
        assert!(dot.contains("rf"));
        assert!(dot.contains("mo"));
        assert!(dot.contains("cluster_t0"));
        // Pending read highlighted.
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn text_marks_pending_reads() {
        let txt = to_text(&sample());
        assert!(txt.contains("AT-pending"));
        assert!(txt.contains("T0.0"));
    }
}
