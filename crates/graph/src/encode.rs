//! Canonical encoding and strong hashing of execution graphs.
//!
//! The explorer deduplicates work items by graph *content* (events, rf, mo
//! — not exploration timestamps): two work items with the same content have
//! identical futures under the deterministic scheduler, so one can be
//! dropped. Content is serialized canonically and hashed with a 128-bit
//! two-lane multiply-rotate hash ([`hash128`]) that absorbs 8 bytes per
//! step — the explorer hashes every popped graph, so the per-byte FNV
//! multiply this replaced was one of the hottest instructions in the whole
//! checker. At lock-verification scale (well under 2^40 graphs) collisions
//! are negligible.

use crate::event::{EventId, EventKind, RfSource};
use crate::graph::ExecutionGraph;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hash a byte string with 128-bit FNV-1a.
///
/// Retained for callers hashing small byte strings; the graph content hash
/// uses the word-at-a-time [`hash128`].
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64's finalizer: full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Streaming two-lane 128-bit hash absorbing one `u64` per step.
///
/// Each lane is a multiply-rotate chain with its own odd constant; the
/// finalizer cross-mixes the lanes and the total length through
/// [`mix64`]. Sequential absorption keeps the full 128-bit state on the
/// dependency chain, and the finalizer provides avalanche.
struct Hash128 {
    a: u64,
    b: u64,
    len: u64,
    /// Pending bytes not yet forming a full word (little-endian).
    buf: u64,
    buf_len: u32,
}

impl Hash128 {
    fn new() -> Self {
        Hash128 { a: 0x243f6a8885a308d3, b: 0x13198a2e03707344, len: 0, buf: 0, buf_len: 0 }
    }

    #[inline]
    fn word(&mut self, v: u64) {
        self.a = (self.a ^ v).wrapping_mul(0x9e3779b97f4a7c15).rotate_left(31);
        self.b = (self.b ^ v).wrapping_mul(0xc2b2ae3d27d4eb4f).rotate_left(29);
        self.len = self.len.wrapping_add(8);
    }

    #[inline]
    fn byte(&mut self, v: u8) {
        self.buf |= (v as u64) << (8 * self.buf_len);
        self.buf_len += 1;
        if self.buf_len == 8 {
            self.flush();
        }
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        // Keep byte-stream identity: equivalent to 8 `byte` calls.
        if self.buf_len == 0 {
            self.word(v);
        } else {
            for b in v.to_le_bytes() {
                self.byte(b);
            }
        }
    }

    #[inline]
    fn flush(&mut self) {
        if self.buf_len > 0 {
            let (v, n) = (self.buf, self.buf_len as u64);
            self.word(v);
            self.len = self.len.wrapping_sub(8 - n); // count real bytes only
            self.buf = 0;
            self.buf_len = 0;
        }
    }

    fn finish(mut self) -> u128 {
        self.flush();
        let x = mix64(self.a ^ mix64(self.len));
        let y = mix64(self.b.wrapping_add(x));
        ((x as u128) << 64) | y as u128
    }
}

/// Hash a byte string with the two-lane word-at-a-time 128-bit hash used
/// by [`content_hash`] (zero-padded tail word, length folded in at the
/// end). `content_hash(g)` equals `hash128(&canonical_bytes(g))`.
pub fn hash128(bytes: &[u8]) -> u128 {
    let mut h = Hash128::new();
    for &b in bytes {
        h.byte(b);
    }
    h.finish()
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_event_id(out: &mut Vec<u8>, id: EventId) {
    match id {
        EventId::Init(loc) => {
            out.push(0);
            push_u64(out, loc);
        }
        EventId::Event { thread, index } => {
            out.push(1);
            out.extend_from_slice(&thread.to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
        }
    }
}

/// Serialize the semantic content of a graph to a canonical byte string.
///
/// Timestamps are deliberately excluded: they record the exploration path,
/// not the execution. Two graphs encode equally iff they have the same
/// events (kinds, in program order), reads-from edges and modification
/// orders.
pub fn canonical_bytes(g: &ExecutionGraph) -> Vec<u8> {
    let mut out = Vec::with_capacity(g.num_events() * 24 + 64);
    for (&loc, &val) in g.init_table() {
        push_u64(&mut out, loc);
        push_u64(&mut out, val);
    }
    out.push(0xfe);
    for t in 0..g.num_threads() {
        out.push(0xfd);
        for ev in g.thread_events(t as u32) {
            match &ev.kind {
                EventKind::Read { loc, mode, rf, rmw, awaiting } => {
                    out.push(1);
                    push_u64(&mut out, *loc);
                    out.push(mode.tag());
                    out.push((*rmw as u8) | ((*awaiting as u8) << 1));
                    match rf {
                        RfSource::Bottom => out.push(0),
                        RfSource::Write(w) => {
                            out.push(1);
                            push_event_id(&mut out, *w);
                        }
                    }
                }
                EventKind::Write { loc, val, mode, rmw } => {
                    out.push(2);
                    push_u64(&mut out, *loc);
                    push_u64(&mut out, *val);
                    out.push(mode.tag());
                    out.push(*rmw as u8);
                }
                EventKind::Fence { mode } => {
                    out.push(3);
                    out.push(mode.tag());
                }
                EventKind::Error { msg } => {
                    out.push(4);
                    push_u64(&mut out, msg.len() as u64);
                    out.extend_from_slice(msg.as_bytes());
                }
            }
        }
    }
    out.push(0xfc);
    for loc in g.written_locs().collect::<Vec<_>>() {
        push_u64(&mut out, loc);
        for &w in g.mo(loc) {
            push_event_id(&mut out, w);
        }
        out.push(0xfb);
    }
    out
}

impl Hash128 {
    fn event_id(&mut self, id: EventId) {
        match id {
            EventId::Init(loc) => {
                self.byte(0);
                self.u64(loc);
            }
            EventId::Event { thread, index } => {
                self.byte(1);
                for b in thread.to_le_bytes() {
                    self.byte(b);
                }
                for b in index.to_le_bytes() {
                    self.byte(b);
                }
            }
        }
    }
}

/// 128-bit content hash of a graph: [`hash128`] over the canonical
/// encoding, streamed (identical to `hash128(&canonical_bytes(g))`,
/// without the intermediate allocation).
pub fn content_hash(g: &ExecutionGraph) -> u128 {
    let mut h = Hash128::new();
    for (&loc, &val) in g.init_table() {
        h.u64(loc);
        h.u64(val);
    }
    h.byte(0xfe);
    for t in 0..g.num_threads() {
        h.byte(0xfd);
        for ev in g.thread_events(t as u32) {
            match &ev.kind {
                EventKind::Read { loc, mode, rf, rmw, awaiting } => {
                    h.byte(1);
                    h.u64(*loc);
                    h.byte(mode.tag());
                    h.byte((*rmw as u8) | ((*awaiting as u8) << 1));
                    match rf {
                        RfSource::Bottom => h.byte(0),
                        RfSource::Write(w) => {
                            h.byte(1);
                            h.event_id(*w);
                        }
                    }
                }
                EventKind::Write { loc, val, mode, rmw } => {
                    h.byte(2);
                    h.u64(*loc);
                    h.u64(*val);
                    h.byte(mode.tag());
                    h.byte(*rmw as u8);
                }
                EventKind::Fence { mode } => {
                    h.byte(3);
                    h.byte(mode.tag());
                }
                EventKind::Error { msg } => {
                    h.byte(4);
                    h.u64(msg.len() as u64);
                    for &b in msg.as_bytes() {
                        h.byte(b);
                    }
                }
            }
        }
    }
    h.byte(0xfc);
    for loc in g.written_locs() {
        h.u64(loc);
        for &w in g.mo(loc) {
            h.event_id(w);
        }
        h.byte(0xfb);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Mode, RfSource};
    use std::collections::BTreeMap;

    fn sample() -> ExecutionGraph {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
        g.insert_mo(0x10, w, 0);
        g.push_event(
            1,
            EventKind::Read {
                loc: 0x10,
                mode: Mode::Acq,
                rf: RfSource::Write(w),
                rmw: false,
                awaiting: false,
            },
        );
        g
    }

    #[test]
    fn equal_content_equal_hash() {
        assert_eq!(content_hash(&sample()), content_hash(&sample()));
    }

    #[test]
    fn rf_change_changes_hash() {
        let g1 = sample();
        let mut g2 = sample();
        g2.set_rf(crate::event::EventId::new(1, 0), RfSource::Write(crate::event::EventId::Init(0x10)));
        assert_ne!(content_hash(&g1), content_hash(&g2));
    }

    #[test]
    fn timestamps_do_not_affect_hash() {
        let g1 = sample();
        let mut g2 = ExecutionGraph::new(2, BTreeMap::new());
        // Add in a different order => different timestamps, same content.
        g2.push_event(
            1,
            EventKind::Read {
                loc: 0x10,
                mode: Mode::Acq,
                rf: RfSource::Write(crate::event::EventId::new(0, 0)),
                rmw: false,
                awaiting: false,
            },
        );
        let w = g2.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
        g2.insert_mo(0x10, w, 0);
        assert_eq!(content_hash(&g1), content_hash(&g2));
    }

    #[test]
    fn mo_order_affects_hash() {
        let mk = |swap: bool| {
            let mut g = ExecutionGraph::new(2, BTreeMap::new());
            let w0 = g.push_event(0, EventKind::Write { loc: 1, val: 1, mode: Mode::Rlx, rmw: false });
            let w1 = g.push_event(1, EventKind::Write { loc: 1, val: 2, mode: Mode::Rlx, rmw: false });
            if swap {
                g.insert_mo(1, w1, 0);
                g.insert_mo(1, w0, 1);
            } else {
                g.insert_mo(1, w0, 0);
                g.insert_mo(1, w1, 1);
            }
            g
        };
        assert_ne!(content_hash(&mk(false)), content_hash(&mk(true)));
    }

    #[test]
    fn fnv_is_stable() {
        // Golden value guards against accidental algorithm changes that
        // would silently invalidate persisted hashes.
        assert_eq!(fnv128(b""), FNV_OFFSET);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }

    #[test]
    fn streamed_hash_equals_buffered_hash() {
        let g = sample();
        assert_eq!(content_hash(&g), hash128(&canonical_bytes(&g)));
        let empty = ExecutionGraph::new(0, BTreeMap::new());
        assert_eq!(content_hash(&empty), hash128(&canonical_bytes(&empty)));
    }

    #[test]
    fn hash128_separates_close_inputs() {
        assert_ne!(hash128(b""), hash128(b"\0"));
        assert_ne!(hash128(b"\0"), hash128(b"\0\0"));
        assert_ne!(hash128(b"abcdefgh"), hash128(b"abcdefg"));
        assert_ne!(hash128(b"abcdefghi"), hash128(b"abcdefgh\0"));
        // Word-boundary-aligned swaps must differ.
        assert_ne!(hash128(b"aaaaaaaabbbbbbbb"), hash128(b"bbbbbbbbaaaaaaaa"));
    }
}
