//! Canonical encoding and strong hashing of execution graphs.
//!
//! The explorer deduplicates work items by graph *content* (events, rf, mo
//! — not exploration timestamps): two work items with the same content have
//! identical futures under the deterministic scheduler, so one can be
//! dropped. Content is serialized to a canonical byte string and hashed
//! with a 128-bit FNV-1a variant; at lock-verification scale (well under
//! 2^40 graphs) collisions are negligible.

use crate::event::{EventId, EventKind, RfSource};
use crate::graph::ExecutionGraph;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hash a byte string with 128-bit FNV-1a.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_event_id(out: &mut Vec<u8>, id: EventId) {
    match id {
        EventId::Init(loc) => {
            out.push(0);
            push_u64(out, loc);
        }
        EventId::Event { thread, index } => {
            out.push(1);
            out.extend_from_slice(&thread.to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
        }
    }
}

/// Serialize the semantic content of a graph to a canonical byte string.
///
/// Timestamps are deliberately excluded: they record the exploration path,
/// not the execution. Two graphs encode equally iff they have the same
/// events (kinds, in program order), reads-from edges and modification
/// orders.
pub fn canonical_bytes(g: &ExecutionGraph) -> Vec<u8> {
    let mut out = Vec::with_capacity(g.num_events() * 24 + 64);
    for (&loc, &val) in g.init_table() {
        push_u64(&mut out, loc);
        push_u64(&mut out, val);
    }
    out.push(0xfe);
    for t in 0..g.num_threads() {
        out.push(0xfd);
        for ev in g.thread_events(t as u32) {
            match &ev.kind {
                EventKind::Read { loc, mode, rf, rmw, awaiting } => {
                    out.push(1);
                    push_u64(&mut out, *loc);
                    out.push(mode.tag());
                    out.push((*rmw as u8) | ((*awaiting as u8) << 1));
                    match rf {
                        RfSource::Bottom => out.push(0),
                        RfSource::Write(w) => {
                            out.push(1);
                            push_event_id(&mut out, *w);
                        }
                    }
                }
                EventKind::Write { loc, val, mode, rmw } => {
                    out.push(2);
                    push_u64(&mut out, *loc);
                    push_u64(&mut out, *val);
                    out.push(mode.tag());
                    out.push(*rmw as u8);
                }
                EventKind::Fence { mode } => {
                    out.push(3);
                    out.push(mode.tag());
                }
                EventKind::Error { msg } => {
                    out.push(4);
                    push_u64(&mut out, msg.len() as u64);
                    out.extend_from_slice(msg.as_bytes());
                }
            }
        }
    }
    out.push(0xfc);
    for loc in g.written_locs().collect::<Vec<_>>() {
        push_u64(&mut out, loc);
        for &w in g.mo(loc) {
            push_event_id(&mut out, w);
        }
        out.push(0xfb);
    }
    out
}

/// 128-bit content hash of a graph (see [`canonical_bytes`]).
pub fn content_hash(g: &ExecutionGraph) -> u128 {
    fnv128(&canonical_bytes(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Mode, RfSource};
    use std::collections::BTreeMap;

    fn sample() -> ExecutionGraph {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
        g.insert_mo(0x10, w, 0);
        g.push_event(
            1,
            EventKind::Read {
                loc: 0x10,
                mode: Mode::Acq,
                rf: RfSource::Write(w),
                rmw: false,
                awaiting: false,
            },
        );
        g
    }

    #[test]
    fn equal_content_equal_hash() {
        assert_eq!(content_hash(&sample()), content_hash(&sample()));
    }

    #[test]
    fn rf_change_changes_hash() {
        let g1 = sample();
        let mut g2 = sample();
        g2.set_rf(crate::event::EventId::new(1, 0), RfSource::Write(crate::event::EventId::Init(0x10)));
        assert_ne!(content_hash(&g1), content_hash(&g2));
    }

    #[test]
    fn timestamps_do_not_affect_hash() {
        let g1 = sample();
        let mut g2 = ExecutionGraph::new(2, BTreeMap::new());
        // Add in a different order => different timestamps, same content.
        g2.push_event(
            1,
            EventKind::Read {
                loc: 0x10,
                mode: Mode::Acq,
                rf: RfSource::Write(crate::event::EventId::new(0, 0)),
                rmw: false,
                awaiting: false,
            },
        );
        let w = g2.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
        g2.insert_mo(0x10, w, 0);
        assert_eq!(content_hash(&g1), content_hash(&g2));
    }

    #[test]
    fn mo_order_affects_hash() {
        let mk = |swap: bool| {
            let mut g = ExecutionGraph::new(2, BTreeMap::new());
            let w0 = g.push_event(0, EventKind::Write { loc: 1, val: 1, mode: Mode::Rlx, rmw: false });
            let w1 = g.push_event(1, EventKind::Write { loc: 1, val: 2, mode: Mode::Rlx, rmw: false });
            if swap {
                g.insert_mo(1, w1, 0);
                g.insert_mo(1, w0, 1);
            } else {
                g.insert_mo(1, w0, 0);
                g.insert_mo(1, w1, 1);
            }
            g
        };
        assert_ne!(content_hash(&mk(false)), content_hash(&mk(true)));
    }

    #[test]
    fn fnv_is_stable() {
        // Golden value guards against accidental algorithm changes that
        // would silently invalidate persisted hashes.
        assert_eq!(fnv128(b""), FNV_OFFSET);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }
}
