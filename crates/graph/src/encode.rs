//! Canonical encoding and strong hashing of execution graphs.
//!
//! The explorer deduplicates work items by graph *content* (events, rf, mo
//! — not exploration timestamps): two work items with the same content have
//! identical futures under the deterministic scheduler, so one can be
//! dropped. Content is serialized canonically and hashed with a 128-bit
//! two-lane multiply-rotate hash ([`hash128`]) that absorbs 8 bytes per
//! step — the explorer hashes every popped graph, so the per-byte FNV
//! multiply this replaced was one of the hottest instructions in the whole
//! checker. At lock-verification scale (well under 2^40 graphs) collisions
//! are negligible.

use crate::event::{EventId, EventKind, RfSource, ThreadId};
use crate::graph::ExecutionGraph;
use crate::symmetry::{ThreadPartition, MAX_SYMMETRY_PERMUTATIONS};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hash a byte string with 128-bit FNV-1a.
///
/// Retained for callers hashing small byte strings; the graph content hash
/// uses the word-at-a-time [`hash128`].
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64's finalizer: full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Streaming two-lane 128-bit hash absorbing one `u64` per step.
///
/// Each lane is a multiply-rotate chain with its own odd constant; the
/// finalizer cross-mixes the lanes and the total length through
/// [`mix64`]. Sequential absorption keeps the full 128-bit state on the
/// dependency chain, and the finalizer provides avalanche.
struct Hash128 {
    a: u64,
    b: u64,
    len: u64,
    /// Pending bytes not yet forming a full word (little-endian).
    buf: u64,
    buf_len: u32,
}

impl Hash128 {
    fn new() -> Self {
        Hash128 { a: 0x243f6a8885a308d3, b: 0x13198a2e03707344, len: 0, buf: 0, buf_len: 0 }
    }

    #[inline]
    fn word(&mut self, v: u64) {
        self.a = (self.a ^ v).wrapping_mul(0x9e3779b97f4a7c15).rotate_left(31);
        self.b = (self.b ^ v).wrapping_mul(0xc2b2ae3d27d4eb4f).rotate_left(29);
        self.len = self.len.wrapping_add(8);
    }

    #[inline]
    fn byte(&mut self, v: u8) {
        self.buf |= (v as u64) << (8 * self.buf_len);
        self.buf_len += 1;
        if self.buf_len == 8 {
            self.flush();
        }
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        // Keep byte-stream identity: equivalent to 8 `byte` calls.
        if self.buf_len == 0 {
            self.word(v);
        } else {
            for b in v.to_le_bytes() {
                self.byte(b);
            }
        }
    }

    #[inline]
    fn flush(&mut self) {
        if self.buf_len > 0 {
            let (v, n) = (self.buf, self.buf_len as u64);
            self.word(v);
            self.len = self.len.wrapping_sub(8 - n); // count real bytes only
            self.buf = 0;
            self.buf_len = 0;
        }
    }

    fn finish(mut self) -> u128 {
        self.flush();
        let x = mix64(self.a ^ mix64(self.len));
        let y = mix64(self.b.wrapping_add(x));
        ((x as u128) << 64) | y as u128
    }
}

/// Hash a byte string with the two-lane word-at-a-time 128-bit hash used
/// by [`content_hash`] (zero-padded tail word, length folded in at the
/// end). `content_hash(g)` equals `hash128(&canonical_bytes(g))`.
pub fn hash128(bytes: &[u8]) -> u128 {
    let mut h = Hash128::new();
    for &b in bytes {
        h.byte(b);
    }
    h.finish()
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_event_id(out: &mut Vec<u8>, id: EventId) {
    match id {
        EventId::Init(loc) => {
            out.push(0);
            push_u64(out, loc);
        }
        EventId::Event { thread, index } => {
            out.push(1);
            out.extend_from_slice(&thread.to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
        }
    }
}

/// Serialize the semantic content of a graph to a canonical byte string.
///
/// Timestamps are deliberately excluded: they record the exploration path,
/// not the execution. Two graphs encode equally iff they have the same
/// events (kinds, in program order), reads-from edges and modification
/// orders.
pub fn canonical_bytes(g: &ExecutionGraph) -> Vec<u8> {
    let mut out = Vec::with_capacity(g.num_events() * 24 + 64);
    canonical_bytes_into(g, &mut out);
    out
}

/// [`canonical_bytes`] into a caller-owned buffer (cleared first, capacity
/// kept). The dedup hot path encodes every popped graph; reusing one
/// scratch buffer per worker removes that per-graph allocation.
pub fn canonical_bytes_into(g: &ExecutionGraph, out: &mut Vec<u8>) {
    encode_relabeled(g, None, out);
}

/// Serialize `g` as if its threads were relabeled by `perm`
/// (`perm[original] = new label`, with `inv` its inverse): thread blocks
/// appear in new-label order and every embedded [`EventId`] has its thread
/// rewritten through `perm`. `None` encodes the graph as-is.
fn encode_relabeled(g: &ExecutionGraph, perm: Option<(&[ThreadId], &[ThreadId])>, out: &mut Vec<u8>) {
    out.clear();
    let map_id = |id: EventId| match (perm, id) {
        (Some((fwd, _)), EventId::Event { thread, index }) => {
            EventId::Event { thread: fwd[thread as usize], index }
        }
        _ => id,
    };
    for (&loc, &val) in g.init_table() {
        push_u64(out, loc);
        push_u64(out, val);
    }
    out.push(0xfe);
    for t in 0..g.num_threads() as ThreadId {
        out.push(0xfd);
        let source = match perm {
            Some((_, inv)) => inv[t as usize],
            None => t,
        };
        for ev in g.thread_events(source) {
            match &ev.kind {
                EventKind::Read { loc, mode, rf, rmw, awaiting } => {
                    out.push(1);
                    push_u64(out, *loc);
                    out.push(mode.tag());
                    out.push((*rmw as u8) | ((*awaiting as u8) << 1));
                    match rf {
                        RfSource::Bottom => out.push(0),
                        RfSource::Write(w) => {
                            out.push(1);
                            push_event_id(out, map_id(*w));
                        }
                    }
                }
                EventKind::Write { loc, val, mode, rmw } => {
                    out.push(2);
                    push_u64(out, *loc);
                    push_u64(out, *val);
                    out.push(mode.tag());
                    out.push(*rmw as u8);
                }
                EventKind::Fence { mode } => {
                    out.push(3);
                    out.push(mode.tag());
                }
                EventKind::Error { msg } => {
                    out.push(4);
                    push_u64(out, msg.len() as u64);
                    out.extend_from_slice(msg.as_bytes());
                }
            }
        }
    }
    out.push(0xfc);
    for loc in g.written_locs().collect::<Vec<_>>() {
        push_u64(out, loc);
        for &w in g.mo(loc) {
            push_event_id(out, map_id(w));
        }
        out.push(0xfb);
    }
}

/// A filtered view of a graph — the revisit engine's
/// hash-before-materialize probe target.
///
/// Describes the graph that *would* result from restricting `g` to
/// per-thread program-order prefixes (`keep_lens`; `None` keeps
/// everything) and re-pointing at most one read's reads-from edge
/// (`rf_override`), without building that graph. The encoding is
/// **flag-blind**: the derived `rmw` / `awaiting` read flags are excluded,
/// because the one read a revisit re-points carries stale flags until the
/// next replay repairs them. The flags are pure functions of the program,
/// the event structure and the rf edge, so among the executions of a
/// single program flag-blind equality coincides with full content
/// equality — but hashes from this encoding live in a different universe
/// than [`content_hash`] and must never be mixed with it.
#[derive(Debug, Clone, Copy)]
pub struct GraphView<'a> {
    g: &'a ExecutionGraph,
    keep_lens: Option<&'a [u32]>,
    rf_override: Option<(EventId, EventId)>,
}

impl<'a> GraphView<'a> {
    /// View the whole graph as-is.
    #[must_use]
    pub fn full(g: &'a ExecutionGraph) -> Self {
        GraphView { g, keep_lens: None, rf_override: None }
    }

    /// View the whole graph with `read`'s source re-pointed to `write`
    /// (the shape of a blocked-await resolution revisit).
    #[must_use]
    pub fn with_rf(g: &'a ExecutionGraph, read: EventId, write: EventId) -> Self {
        GraphView { g, keep_lens: None, rf_override: Some((read, write)) }
    }

    /// View the restriction of `g` to the per-thread prefixes `keep_lens`
    /// (as from [`crate::EventSet::prefix_lens`] of a porf-closed keep
    /// set), with `read`'s source re-pointed to `write` (the shape of a
    /// backward revisit). Both `read` and `write` must survive the cut.
    #[must_use]
    pub fn restricted(
        g: &'a ExecutionGraph,
        keep_lens: &'a [u32],
        read: EventId,
        write: EventId,
    ) -> Self {
        GraphView { g, keep_lens: Some(keep_lens), rf_override: Some((read, write)) }
    }

    fn kept(&self, id: EventId) -> bool {
        match (self.keep_lens, id) {
            (Some(lens), EventId::Event { thread, index }) => index < lens[thread as usize],
            _ => true,
        }
    }
}

/// Serialize a [`GraphView`] as if its threads were relabeled by `perm`
/// (same convention as `encode_relabeled`). The byte layout mirrors
/// [`canonical_bytes`] except that read events carry no flags byte, so a
/// view encoding never collides with a flag-aware encoding by layout
/// accident alone — they are compared only among themselves.
fn encode_view_relabeled(
    v: &GraphView<'_>,
    perm: Option<(&[ThreadId], &[ThreadId])>,
    out: &mut Vec<u8>,
) {
    out.clear();
    let g = v.g;
    let map_id = |id: EventId| match (perm, id) {
        (Some((fwd, _)), EventId::Event { thread, index }) => {
            EventId::Event { thread: fwd[thread as usize], index }
        }
        _ => id,
    };
    for (&loc, &val) in g.init_table() {
        push_u64(out, loc);
        push_u64(out, val);
    }
    out.push(0xfe);
    for t in 0..g.num_threads() as ThreadId {
        out.push(0xfd);
        let source = match perm {
            Some((_, inv)) => inv[t as usize],
            None => t,
        };
        let evs = g.thread_events(source);
        let cut = match v.keep_lens {
            Some(lens) => (lens[source as usize] as usize).min(evs.len()),
            None => evs.len(),
        };
        for (i, ev) in evs[..cut].iter().enumerate() {
            match &ev.kind {
                EventKind::Read { loc, mode, rf, .. } => {
                    let id = EventId::new(source, i as u32);
                    let rf = match v.rf_override {
                        Some((read, write)) if read == id => RfSource::Write(write),
                        _ => *rf,
                    };
                    out.push(1);
                    push_u64(out, *loc);
                    out.push(mode.tag());
                    match rf {
                        RfSource::Bottom => out.push(0),
                        RfSource::Write(w) => {
                            out.push(1);
                            push_event_id(out, map_id(w));
                        }
                    }
                }
                EventKind::Write { loc, val, mode, rmw } => {
                    out.push(2);
                    push_u64(out, *loc);
                    push_u64(out, *val);
                    out.push(mode.tag());
                    out.push(*rmw as u8);
                }
                EventKind::Fence { mode } => {
                    out.push(3);
                    out.push(mode.tag());
                }
                EventKind::Error { msg } => {
                    out.push(4);
                    push_u64(out, msg.len() as u64);
                    out.extend_from_slice(msg.as_bytes());
                }
            }
        }
    }
    out.push(0xfc);
    for loc in g.written_locs().collect::<Vec<_>>() {
        let mut any = false;
        for &w in g.mo(loc) {
            if !v.kept(w) {
                continue;
            }
            if !any {
                push_u64(out, loc);
                any = true;
            }
            push_event_id(out, map_id(w));
        }
        // A location whose every write is cut vanishes, exactly as in
        // `ExecutionGraph::restrict`: the encoding of a view equals the
        // encoding of the materialized restriction.
        if any {
            out.push(0xfb);
        }
    }
}

/// Reusable hashing state for [`GraphView`]s — the revisit engine's
/// counterpart of [`Canonicalizer`]. Holds the partition's non-identity
/// relabelings (none ⇒ plain content hashing) and scratch buffers; one
/// instance per explorer worker.
#[derive(Debug)]
pub struct ExploreEncoder {
    perms: Vec<(Vec<ThreadId>, Vec<ThreadId>)>,
    best: Vec<u8>,
    cur: Vec<u8>,
    chosen: Option<usize>,
    /// Encodings performed since the last [`ExploreEncoder::take_probes`]
    /// (each hash costs `1 + |perms|`).
    probes: u64,
}

impl ExploreEncoder {
    /// Build the encoder; `None` (or a trivial partition) hashes views
    /// as-is, a partition hashes them modulo its thread relabelings.
    #[must_use]
    pub fn new(partition: Option<&ThreadPartition>) -> Self {
        let perms = match partition {
            None => Vec::new(),
            Some(p) => {
                let limited = p.clone().limited(MAX_SYMMETRY_PERMUTATIONS);
                limited
                    .permutations()
                    .into_iter()
                    .filter(|perm| perm.iter().enumerate().any(|(t, &l)| l != t as ThreadId))
                    .map(|fwd| {
                        let mut inv = vec![0 as ThreadId; fwd.len()];
                        for (t, &l) in fwd.iter().enumerate() {
                            inv[l as usize] = t as ThreadId;
                        }
                        (fwd, inv)
                    })
                    .collect()
            }
        };
        ExploreEncoder { perms, best: Vec::new(), cur: Vec::new(), chosen: None, probes: 0 }
    }

    /// Flag-blind (orbit-canonical, if a partition is active) hash of a
    /// view, plus whether a non-identity relabeling produced the canonical
    /// form ([`ExploreEncoder::chosen_perm`] then reports which).
    pub fn hash_view(&mut self, v: &GraphView<'_>) -> (u128, bool) {
        let (best, cur) = (&mut self.best, &mut self.cur);
        encode_view_relabeled(v, None, best);
        self.probes += 1 + self.perms.len() as u64;
        self.chosen = None;
        for (i, (fwd, inv)) in self.perms.iter().enumerate() {
            encode_view_relabeled(v, Some((fwd, inv)), cur);
            if cur.as_slice() < best.as_slice() {
                std::mem::swap(best, cur);
                self.chosen = Some(i);
            }
        }
        (hash128(&self.best), self.chosen.is_some())
    }

    /// Drain the encoding-work counter: total view serializations since
    /// the last call (the symmetry-dedup cost telemetry reports as
    /// `probes`).
    pub fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }

    /// The relabeling (`perm[original] = new`) that produced the last
    /// canonical form, or `None` if the view already was the orbit
    /// representative.
    #[must_use]
    pub fn chosen_perm(&self) -> Option<&[ThreadId]> {
        self.chosen.map(|i| self.perms[i].0.as_slice())
    }
}

/// Reusable canonicalization state for one [`ThreadPartition`]: the
/// allowed non-identity thread relabelings (with inverses) and two scratch
/// encoding buffers. One instance per explorer worker; feeding it graphs
/// of different programs with the same partition shape is fine.
#[derive(Debug)]
pub struct Canonicalizer {
    /// Non-identity relabelings: `(forward, inverse)` pairs.
    perms: Vec<(Vec<ThreadId>, Vec<ThreadId>)>,
    best: Vec<u8>,
    cur: Vec<u8>,
    /// Index into `perms` of the minimizing relabeling of the last
    /// [`Canonicalizer::canonicalize`] call (`None` = identity won).
    chosen: Option<usize>,
    /// Encodings performed since the last [`Canonicalizer::take_probes`]
    /// (each canonicalization costs `1 + |perms|`).
    probes: u64,
}

impl Canonicalizer {
    /// Build the canonicalizer for a partition. Partitions beyond
    /// [`MAX_SYMMETRY_PERMUTATIONS`] are split down to the cap first
    /// (sound: splitting only loses pruning power).
    #[must_use]
    pub fn new(partition: &ThreadPartition) -> Self {
        let limited = partition.clone().limited(MAX_SYMMETRY_PERMUTATIONS);
        let perms = limited
            .permutations()
            .into_iter()
            .filter(|p| p.iter().enumerate().any(|(t, &l)| l != t as ThreadId))
            .map(|fwd| {
                let mut inv = vec![0 as ThreadId; fwd.len()];
                for (t, &l) in fwd.iter().enumerate() {
                    inv[l as usize] = t as ThreadId;
                }
                (fwd, inv)
            })
            .collect();
        Canonicalizer { perms, best: Vec::new(), cur: Vec::new(), chosen: None, probes: 0 }
    }

    /// Does the partition allow any relabeling at all?
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.perms.is_empty()
    }

    /// The canonical encoding of `g` modulo the partition: the
    /// lexicographically smallest [`canonical_bytes`]-style serialization
    /// over all allowed relabelings. The returned slice lives in the
    /// canonicalizer's scratch buffer; [`Canonicalizer::chosen_perm`]
    /// reports which relabeling won.
    pub fn canonicalize(&mut self, g: &ExecutionGraph) -> &[u8] {
        // Swap-based double buffering: `best` holds the minimum so far.
        let (best, cur) = (&mut self.best, &mut self.cur);
        encode_relabeled(g, None, best);
        self.probes += 1 + self.perms.len() as u64;
        self.chosen = None;
        for (i, (fwd, inv)) in self.perms.iter().enumerate() {
            encode_relabeled(g, Some((fwd, inv)), cur);
            if cur.as_slice() < best.as_slice() {
                std::mem::swap(best, cur);
                self.chosen = Some(i);
            }
        }
        &self.best
    }

    /// [`hash128`] of [`Canonicalizer::canonicalize`], plus whether a
    /// non-identity relabeling produced the canonical form (i.e. the graph
    /// was *not* already the orbit representative).
    pub fn canonical_hash(&mut self, g: &ExecutionGraph) -> (u128, bool) {
        let h = hash128(self.canonicalize(g));
        (h, self.chosen.is_some())
    }

    /// The relabeling (`perm[original] = new`) that produced the last
    /// canonical form, or `None` if the graph already was the
    /// representative.
    #[must_use]
    pub fn chosen_perm(&self) -> Option<&[ThreadId]> {
        self.chosen.map(|i| self.perms[i].0.as_slice())
    }

    /// Drain the encoding-work counter: total graph serializations since
    /// the last call (the symmetry-dedup cost telemetry reports as
    /// `probes`).
    pub fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }
}

/// The canonical encoding of `g` under permutations of symmetric threads:
/// the lexicographically smallest serialization over all relabelings the
/// partition allows. Graphs related by such a relabeling — and only those
/// — encode identically. With a trivial partition this is exactly
/// [`canonical_bytes`].
///
/// One-shot convenience over [`Canonicalizer`], which the explorer uses to
/// reuse the permutation table and scratch buffers across graphs.
#[must_use]
pub fn canonical_bytes_modulo(g: &ExecutionGraph, partition: &ThreadPartition) -> Vec<u8> {
    let mut c = Canonicalizer::new(partition);
    c.canonicalize(g).to_vec()
}

/// [`hash128`] over [`canonical_bytes_modulo`]: the orbit-invariant
/// content hash the explorer's symmetry-aware dedup keys on.
#[must_use]
pub fn canonical_hash_modulo(g: &ExecutionGraph, partition: &ThreadPartition) -> u128 {
    Canonicalizer::new(partition).canonical_hash(g).0
}

impl Hash128 {
    fn event_id(&mut self, id: EventId) {
        match id {
            EventId::Init(loc) => {
                self.byte(0);
                self.u64(loc);
            }
            EventId::Event { thread, index } => {
                self.byte(1);
                for b in thread.to_le_bytes() {
                    self.byte(b);
                }
                for b in index.to_le_bytes() {
                    self.byte(b);
                }
            }
        }
    }
}

/// 128-bit content hash of a graph: [`hash128`] over the canonical
/// encoding, streamed (identical to `hash128(&canonical_bytes(g))`,
/// without the intermediate allocation).
pub fn content_hash(g: &ExecutionGraph) -> u128 {
    let mut h = Hash128::new();
    for (&loc, &val) in g.init_table() {
        h.u64(loc);
        h.u64(val);
    }
    h.byte(0xfe);
    for t in 0..g.num_threads() {
        h.byte(0xfd);
        for ev in g.thread_events(t as u32) {
            match &ev.kind {
                EventKind::Read { loc, mode, rf, rmw, awaiting } => {
                    h.byte(1);
                    h.u64(*loc);
                    h.byte(mode.tag());
                    h.byte((*rmw as u8) | ((*awaiting as u8) << 1));
                    match rf {
                        RfSource::Bottom => h.byte(0),
                        RfSource::Write(w) => {
                            h.byte(1);
                            h.event_id(*w);
                        }
                    }
                }
                EventKind::Write { loc, val, mode, rmw } => {
                    h.byte(2);
                    h.u64(*loc);
                    h.u64(*val);
                    h.byte(mode.tag());
                    h.byte(*rmw as u8);
                }
                EventKind::Fence { mode } => {
                    h.byte(3);
                    h.byte(mode.tag());
                }
                EventKind::Error { msg } => {
                    h.byte(4);
                    h.u64(msg.len() as u64);
                    for &b in msg.as_bytes() {
                        h.byte(b);
                    }
                }
            }
        }
    }
    h.byte(0xfc);
    for loc in g.written_locs() {
        h.u64(loc);
        for &w in g.mo(loc) {
            h.event_id(w);
        }
        h.byte(0xfb);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Mode, RfSource};
    use std::collections::BTreeMap;

    fn sample() -> ExecutionGraph {
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
        g.insert_mo(0x10, w, 0);
        g.push_event(
            1,
            EventKind::Read {
                loc: 0x10,
                mode: Mode::Acq,
                rf: RfSource::Write(w),
                rmw: false,
                awaiting: false,
            },
        );
        g
    }

    #[test]
    fn equal_content_equal_hash() {
        assert_eq!(content_hash(&sample()), content_hash(&sample()));
    }

    #[test]
    fn rf_change_changes_hash() {
        let g1 = sample();
        let mut g2 = sample();
        g2.set_rf(crate::event::EventId::new(1, 0), RfSource::Write(crate::event::EventId::Init(0x10)));
        assert_ne!(content_hash(&g1), content_hash(&g2));
    }

    #[test]
    fn timestamps_do_not_affect_hash() {
        let g1 = sample();
        let mut g2 = ExecutionGraph::new(2, BTreeMap::new());
        // Add in a different order => different timestamps, same content.
        g2.push_event(
            1,
            EventKind::Read {
                loc: 0x10,
                mode: Mode::Acq,
                rf: RfSource::Write(crate::event::EventId::new(0, 0)),
                rmw: false,
                awaiting: false,
            },
        );
        let w = g2.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
        g2.insert_mo(0x10, w, 0);
        assert_eq!(content_hash(&g1), content_hash(&g2));
    }

    #[test]
    fn mo_order_affects_hash() {
        let mk = |swap: bool| {
            let mut g = ExecutionGraph::new(2, BTreeMap::new());
            let w0 = g.push_event(0, EventKind::Write { loc: 1, val: 1, mode: Mode::Rlx, rmw: false });
            let w1 = g.push_event(1, EventKind::Write { loc: 1, val: 2, mode: Mode::Rlx, rmw: false });
            if swap {
                g.insert_mo(1, w1, 0);
                g.insert_mo(1, w0, 1);
            } else {
                g.insert_mo(1, w0, 0);
                g.insert_mo(1, w1, 1);
            }
            g
        };
        assert_ne!(content_hash(&mk(false)), content_hash(&mk(true)));
    }

    #[test]
    fn fnv_is_stable() {
        // Golden value guards against accidental algorithm changes that
        // would silently invalidate persisted hashes.
        assert_eq!(fnv128(b""), FNV_OFFSET);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }

    #[test]
    fn streamed_hash_equals_buffered_hash() {
        let g = sample();
        assert_eq!(content_hash(&g), hash128(&canonical_bytes(&g)));
        let empty = ExecutionGraph::new(0, BTreeMap::new());
        assert_eq!(content_hash(&empty), hash128(&canonical_bytes(&empty)));
    }

    /// Two threads with mirrored roles: T0 writes 1, T1 writes 2 (same
    /// loc, both in mo), plus a swapped twin. Symmetric under {0,1}.
    fn twin_pair() -> (ExecutionGraph, ExecutionGraph) {
        let mk = |first: u32| {
            let mut g = ExecutionGraph::new(2, BTreeMap::new());
            let w0 = g.push_event(first, EventKind::Write { loc: 1, val: 1, mode: Mode::Rlx, rmw: false });
            let w1 =
                g.push_event(1 - first, EventKind::Write { loc: 1, val: 2, mode: Mode::Rlx, rmw: false });
            g.insert_mo(1, w0, 0);
            g.insert_mo(1, w1, 1);
            g
        };
        (mk(0), mk(1))
    }

    #[test]
    fn canonical_bytes_into_matches_allocating_variant() {
        let g = sample();
        let mut buf = vec![0xAA; 3]; // stale contents must be cleared
        canonical_bytes_into(&g, &mut buf);
        assert_eq!(buf, canonical_bytes(&g));
    }

    #[test]
    fn modulo_trivial_partition_is_plain_canonical_bytes() {
        let g = sample();
        let p = crate::ThreadPartition::identity(2);
        assert_eq!(canonical_bytes_modulo(&g, &p), canonical_bytes(&g));
        assert_eq!(canonical_hash_modulo(&g, &p), content_hash(&g));
    }

    #[test]
    fn symmetric_twins_share_canonical_form_iff_partitioned() {
        let (a, b) = twin_pair();
        assert_ne!(content_hash(&a), content_hash(&b), "twins differ as content");
        let sym = crate::ThreadPartition::from_class_ids(&[0, 0]);
        assert_eq!(canonical_bytes_modulo(&a, &sym), canonical_bytes_modulo(&b, &sym));
        assert_eq!(canonical_hash_modulo(&a, &sym), canonical_hash_modulo(&b, &sym));
        // A trivial partition must never merge them.
        let triv = crate::ThreadPartition::identity(2);
        assert_ne!(canonical_hash_modulo(&a, &triv), canonical_hash_modulo(&b, &triv));
    }

    #[test]
    fn canonicalizer_reports_the_winning_relabeling() {
        let (a, b) = twin_pair();
        let sym = crate::ThreadPartition::from_class_ids(&[0, 0]);
        let mut c = Canonicalizer::new(&sym);
        assert!(c.is_active());
        let (ha, a_permuted) = c.canonical_hash(&a);
        let (hb, b_permuted) = c.canonical_hash(&b);
        assert_eq!(ha, hb);
        // Exactly one of the twins is the representative.
        assert_ne!(a_permuted, b_permuted);
        let (permuted_graph, flag) = if a_permuted { (&a, a_permuted) } else { (&b, b_permuted) };
        assert!(flag);
        let mut c2 = Canonicalizer::new(&sym);
        let _ = c2.canonical_hash(permuted_graph);
        let perm = c2.chosen_perm().expect("non-identity relabeling chosen");
        // Applying the winning relabeling lands on the representative.
        let canon = permuted_graph.permute_threads(perm);
        let (_, again) = c2.canonical_hash(&canon);
        assert!(!again, "the representative canonicalizes to itself");
        assert_eq!(canonical_hash_modulo(&canon, &sym), ha);
    }

    #[test]
    fn asymmetric_content_never_merges_even_when_partitioned() {
        // Same shape but different values: relabeling cannot equate them.
        let mk = |val| {
            let mut g = ExecutionGraph::new(2, BTreeMap::new());
            let w = g.push_event(0, EventKind::Write { loc: 1, val, mode: Mode::Rlx, rmw: false });
            g.insert_mo(1, w, 0);
            g
        };
        let sym = crate::ThreadPartition::from_class_ids(&[0, 0]);
        assert_ne!(canonical_hash_modulo(&mk(1), &sym), canonical_hash_modulo(&mk(2), &sym));
    }

    fn view_hash(v: &GraphView<'_>) -> u128 {
        ExploreEncoder::new(None).hash_view(v).0
    }

    #[test]
    fn view_hash_is_flag_blind_but_rf_sensitive() {
        let mk = |rmw: bool, awaiting: bool| {
            let mut g = ExecutionGraph::new(2, BTreeMap::new());
            let w = g.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
            g.insert_mo(0x10, w, 0);
            g.push_event(
                1,
                EventKind::Read { loc: 0x10, mode: Mode::Acq, rf: RfSource::Write(w), rmw, awaiting },
            );
            g
        };
        let (plain, stale) = (mk(false, false), mk(true, true));
        // The flag-aware content hash separates stale and repaired flags…
        assert_ne!(content_hash(&plain), content_hash(&stale));
        // …the view hash deliberately merges them…
        assert_eq!(view_hash(&GraphView::full(&plain)), view_hash(&GraphView::full(&stale)));
        // …while still separating genuinely different rf edges.
        let mut other = mk(false, false);
        other.set_rf(EventId::new(1, 0), RfSource::Write(EventId::Init(0x10)));
        assert_ne!(view_hash(&GraphView::full(&plain)), view_hash(&GraphView::full(&other)));
        assert_eq!(
            view_hash(&GraphView::with_rf(&other, EventId::new(1, 0), EventId::new(0, 0))),
            view_hash(&GraphView::full(&plain)),
            "an rf override hashes like the graph with that edge applied"
        );
    }

    #[test]
    fn restricted_view_hash_matches_materialized_restriction() {
        // T0: W(x,1) W(x,2); T1: R(x)<-W(x,2) W(y,1); T1's read gets
        // revisited to W(x,1) with T0 cut to [W(x,1)] and T1 cut to [R].
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w1 = g.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rlx, rmw: false });
        g.insert_mo(0x10, w1, 0);
        let w2 = g.push_event(0, EventKind::Write { loc: 0x10, val: 2, mode: Mode::Rlx, rmw: false });
        g.insert_mo(0x10, w2, 1);
        let r = g.push_event(
            1,
            EventKind::Read { loc: 0x10, mode: Mode::Rlx, rf: RfSource::Write(w2), rmw: true, awaiting: false },
        );
        let wy = g.push_event(1, EventKind::Write { loc: 0x20, val: 1, mode: Mode::Rlx, rmw: false });
        g.insert_mo(0x20, wy, 0);

        // The engine's keep set: porf-prefix of the write ∪ porf-prefix of
        // the read (which always contains the read's old source).
        let mut keep = g.porf_prefix_set([w1]);
        keep.union_with(&g.porf_prefix_set([r]));
        let keep_lens = keep.prefix_lens();
        assert_eq!(keep_lens, vec![2, 1], "wy is cut, both x-writes survive");
        let view = GraphView::restricted(&g, &keep_lens, r, w1);
        // Materialize the same child the long way.
        let mut child = g.restrict_set(&keep);
        child.set_rf(r, RfSource::Write(w1));
        assert_eq!(view_hash(&view), view_hash(&GraphView::full(&child)));
        // 0x20 lost its only write: the child must not encode a stale
        // empty mo entry for it.
        assert_eq!(child.written_locs().count(), 1);
        // Repairing the revisited read's stale rmw flag must not move the
        // hash — that is the whole point of flag-blindness.
        child.set_read_flags(r, false, false);
        assert_eq!(view_hash(&view), view_hash(&GraphView::full(&child)));
    }

    #[test]
    fn explore_encoder_canonicalizes_twins_like_canonicalizer() {
        let (a, b) = twin_pair();
        let sym = crate::ThreadPartition::from_class_ids(&[0, 0]);
        let mut enc = ExploreEncoder::new(Some(&sym));
        let (ha, a_perm) = enc.hash_view(&GraphView::full(&a));
        let (hb, b_perm) = enc.hash_view(&GraphView::full(&b));
        assert_eq!(ha, hb, "twins share the orbit hash");
        assert_ne!(a_perm, b_perm, "exactly one twin is the representative");
        let loser = if a_perm { &a } else { &b };
        let mut enc2 = ExploreEncoder::new(Some(&sym));
        let _ = enc2.hash_view(&GraphView::full(loser));
        let perm = enc2.chosen_perm().expect("non-identity relabeling chosen").to_vec();
        let canon = loser.permute_threads(&perm);
        let (hc, again) = enc2.hash_view(&GraphView::full(&canon));
        assert_eq!(hc, ha);
        assert!(!again, "the representative is already canonical");
        // Without a partition the twins stay distinct.
        let mut plain = ExploreEncoder::new(None);
        assert_ne!(plain.hash_view(&GraphView::full(&a)).0, plain.hash_view(&GraphView::full(&b)).0);
        assert!(plain.chosen_perm().is_none());
    }

    #[test]
    fn hash128_separates_close_inputs() {
        assert_ne!(hash128(b""), hash128(b"\0"));
        assert_ne!(hash128(b"\0"), hash128(b"\0\0"));
        assert_ne!(hash128(b"abcdefgh"), hash128(b"abcdefg"));
        assert_ne!(hash128(b"abcdefghi"), hash128(b"abcdefgh\0"));
        // Word-boundary-aligned swaps must differ.
        assert_ne!(hash128(b"aaaaaaaabbbbbbbb"), hash128(b"bbbbbbbbaaaaaaaa"));
    }
}
