//! Events of an execution graph.
//!
//! An execution graph abstracts one (possibly partial) execution of a
//! concurrent program as a set of *events* — reads, writes, fences and
//! errors — connected by the program order (`po`), reads-from (`rf`) and
//! modification order (`mo`) relations (paper §1.1).

use std::fmt;

/// A shared-memory location (a plain address).
///
/// Locations are untyped 64-bit cells. Lock data structures lay out their
/// fields at distinct addresses; dynamically computed addresses (e.g.
/// `prev->next` in an MCS lock) are ordinary `Loc` values produced at
/// runtime.
pub type Loc = u64;

/// A value stored in a location or register.
pub type Value = u64;

/// Index of a thread in a program (0-based).
pub type ThreadId = u32;

/// Barrier mode of a memory access or fence (C11-style subset used by IMM
/// and the VSync atomics).
///
/// The per-kind lattices used by the optimizer are:
/// * reads: `Rlx < Acq < Sc`
/// * writes: `Rlx < Rel < Sc`
/// * read-modify-writes: `Rlx < {Acq, Rel} < AcqRel < Sc`
/// * fences: `Rlx (no-op) < {Acq, Rel} < AcqRel < Sc`
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mode {
    /// Relaxed: no ordering beyond coherence. For fences this is a no-op.
    Rlx,
    /// Acquire (reads, RMWs, fences).
    Acq,
    /// Release (writes, RMWs, fences).
    Rel,
    /// Acquire + release (RMWs and fences).
    AcqRel,
    /// Sequentially consistent.
    Sc,
}

impl Mode {
    /// Does this mode provide acquire semantics (for a read or fence)?
    pub fn is_acquire(self) -> bool {
        matches!(self, Mode::Acq | Mode::AcqRel | Mode::Sc)
    }

    /// Does this mode provide release semantics (for a write or fence)?
    pub fn is_release(self) -> bool {
        matches!(self, Mode::Rel | Mode::AcqRel | Mode::Sc)
    }

    /// Is this the strongest (sequentially consistent) mode?
    pub fn is_sc(self) -> bool {
        matches!(self, Mode::Sc)
    }

    /// Compact lowercase name as used in the paper's figures
    /// (`rlx`, `acq`, `rel`, `acq_rel`, `sc`).
    pub fn short_name(self) -> &'static str {
        match self {
            Mode::Rlx => "rlx",
            Mode::Acq => "acq",
            Mode::Rel => "rel",
            Mode::AcqRel => "acq_rel",
            Mode::Sc => "sc",
        }
    }

    /// A small stable integer used by canonical encodings.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Mode::Rlx => 0,
            Mode::Acq => 1,
            Mode::Rel => 2,
            Mode::AcqRel => 3,
            Mode::Sc => 4,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Identifier of an event inside an execution graph.
///
/// Regular events are addressed by `(thread, index-in-program-order)`.
/// Initialization writes (`Winit(x, v)`) are virtual events addressed per
/// location; they are `mo`-minimal and `po`-before every regular event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventId {
    /// The virtual initialization write of a location.
    Init(Loc),
    /// A regular event: `thread`'s `index`-th event in program order.
    Event {
        /// Thread that issued the event.
        thread: ThreadId,
        /// Position in the thread's program order (0-based).
        index: u32,
    },
}

impl EventId {
    /// Construct a regular (non-init) event id.
    pub fn new(thread: ThreadId, index: u32) -> Self {
        EventId::Event { thread, index }
    }

    /// Is this a virtual initialization write?
    pub fn is_init(self) -> bool {
        matches!(self, EventId::Init(_))
    }

    /// The thread of a regular event, or `None` for init events.
    pub fn thread(self) -> Option<ThreadId> {
        match self {
            EventId::Init(_) => None,
            EventId::Event { thread, .. } => Some(thread),
        }
    }

    /// The program-order index of a regular event, or `None` for inits.
    pub fn index(self) -> Option<u32> {
        match self {
            EventId::Init(_) => None,
            EventId::Event { index, .. } => Some(index),
        }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventId::Init(loc) => write!(f, "init[{loc:#x}]"),
            EventId::Event { thread, index } => write!(f, "T{thread}.{index}"),
        }
    }
}

/// The reads-from source of a read event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfSource {
    /// The read has no incoming rf-edge (written `⊥ →rf r` in the paper).
    ///
    /// Only reads polled by await loops may carry a pending source; a
    /// complete stagnant graph with such a read is the evidence for an
    /// await-termination violation (paper §1.2).
    Bottom,
    /// The read observes the given write event (or an init write).
    Write(EventId),
}

impl RfSource {
    /// Is this the missing (`⊥`) source?
    pub fn is_bottom(self) -> bool {
        matches!(self, RfSource::Bottom)
    }

    /// The source event, if any.
    pub fn event(self) -> Option<EventId> {
        match self {
            RfSource::Bottom => None,
            RfSource::Write(w) => Some(w),
        }
    }
}

impl fmt::Display for RfSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfSource::Bottom => f.write_str("⊥"),
            RfSource::Write(w) => write!(f, "{w}"),
        }
    }
}

/// Payload of an event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A read of `loc`.
    Read {
        /// Location read.
        loc: Loc,
        /// Barrier mode of the access.
        mode: Mode,
        /// Where the value comes from (`⊥` while unresolved).
        rf: RfSource,
        /// Is this the read part of a read-modify-write?
        rmw: bool,
        /// Is this read polled by an await loop?
        ///
        /// Await reads participate in the wasteful filter `W(G)` and may
        /// carry a `⊥` source (paper Def. 2 / §1.2).
        awaiting: bool,
    },
    /// A write of `val` to `loc`.
    Write {
        /// Location written.
        loc: Loc,
        /// Value written.
        val: Value,
        /// Barrier mode of the access.
        mode: Mode,
        /// Is this the write part of a read-modify-write?
        rmw: bool,
    },
    /// A memory fence.
    Fence {
        /// Strength of the fence (`Rlx` fences are no-ops).
        mode: Mode,
    },
    /// A failed assertion (the paper's error event `E`).
    Error {
        /// Program-defined message describing the failed assertion.
        msg: String,
    },
}

impl EventKind {
    /// The location accessed by a read or write, if any.
    pub fn loc(&self) -> Option<Loc> {
        match self {
            EventKind::Read { loc, .. } | EventKind::Write { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// Is this a read event?
    pub fn is_read(&self) -> bool {
        matches!(self, EventKind::Read { .. })
    }

    /// Is this a write event?
    pub fn is_write(&self) -> bool {
        matches!(self, EventKind::Write { .. })
    }

    /// Is this an error (failed assertion) event?
    pub fn is_error(&self) -> bool {
        matches!(self, EventKind::Error { .. })
    }

    /// Barrier mode of the event (`Rlx` for errors).
    pub fn mode(&self) -> Mode {
        match self {
            EventKind::Read { mode, .. }
            | EventKind::Write { mode, .. }
            | EventKind::Fence { mode } => *mode,
            EventKind::Error { .. } => Mode::Rlx,
        }
    }
}

/// One event of an execution graph: its payload plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Payload.
    pub kind: EventKind,
    /// Exploration timestamp: the order in which the event was added to the
    /// graph. Used only for diagnostics; the exploration algorithm restricts
    /// graphs to `porf`-prefixes, which are content-determined.
    pub ts: u32,
}

impl Event {
    /// Create an event with timestamp 0 (the graph assigns the real one).
    pub fn new(kind: EventKind) -> Self {
        Event { kind, ts: 0 }
    }
}

/// Render a kind compactly, e.g. `Racq(0x10)=1<-T1.2` or `Wrel(0x10,0)`.
impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Read { loc, mode, rf, rmw, awaiting } => {
                let u = if *rmw { "U" } else { "" };
                let a = if *awaiting { "~" } else { "" };
                write!(f, "{a}{u}R{mode}({loc:#x})<-{rf}")
            }
            EventKind::Write { loc, val, mode, rmw } => {
                let u = if *rmw { "U" } else { "" };
                write!(f, "{u}W{mode}({loc:#x},{val})")
            }
            EventKind::Fence { mode } => write!(f, "F{mode}"),
            EventKind::Error { msg } => write!(f, "E({msg})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_capabilities() {
        assert!(Mode::Acq.is_acquire());
        assert!(Mode::AcqRel.is_acquire());
        assert!(Mode::Sc.is_acquire());
        assert!(!Mode::Rel.is_acquire());
        assert!(!Mode::Rlx.is_acquire());

        assert!(Mode::Rel.is_release());
        assert!(Mode::AcqRel.is_release());
        assert!(Mode::Sc.is_release());
        assert!(!Mode::Acq.is_release());
        assert!(!Mode::Rlx.is_release());

        assert!(Mode::Sc.is_sc());
        assert!(!Mode::AcqRel.is_sc());
    }

    #[test]
    fn mode_names_match_paper() {
        assert_eq!(Mode::Rlx.to_string(), "rlx");
        assert_eq!(Mode::Acq.to_string(), "acq");
        assert_eq!(Mode::Rel.to_string(), "rel");
        assert_eq!(Mode::Sc.to_string(), "sc");
    }

    #[test]
    fn event_id_accessors() {
        let e = EventId::new(3, 7);
        assert_eq!(e.thread(), Some(3));
        assert_eq!(e.index(), Some(7));
        assert!(!e.is_init());

        let i = EventId::Init(0x40);
        assert!(i.is_init());
        assert_eq!(i.thread(), None);
        assert_eq!(i.index(), None);
    }

    #[test]
    fn event_id_display() {
        assert_eq!(EventId::new(1, 2).to_string(), "T1.2");
        assert_eq!(EventId::Init(16).to_string(), "init[0x10]");
    }

    #[test]
    fn rf_source_accessors() {
        assert!(RfSource::Bottom.is_bottom());
        assert_eq!(RfSource::Bottom.event(), None);
        let w = EventId::new(0, 0);
        assert_eq!(RfSource::Write(w).event(), Some(w));
        assert_eq!(RfSource::Bottom.to_string(), "⊥");
    }

    #[test]
    fn kind_display_forms() {
        let r = EventKind::Read {
            loc: 0x10,
            mode: Mode::Acq,
            rf: RfSource::Write(EventId::new(1, 2)),
            rmw: false,
            awaiting: true,
        };
        assert_eq!(r.to_string(), "~Racq(0x10)<-T1.2");
        let w = EventKind::Write { loc: 0x10, val: 0, mode: Mode::Rel, rmw: true };
        assert_eq!(w.to_string(), "UWrel(0x10,0)");
    }

    #[test]
    fn kind_accessors() {
        let w = EventKind::Write { loc: 1, val: 2, mode: Mode::Rlx, rmw: false };
        assert_eq!(w.loc(), Some(1));
        assert!(w.is_write() && !w.is_read() && !w.is_error());
        let f = EventKind::Fence { mode: Mode::Sc };
        assert_eq!(f.loc(), None);
        assert_eq!(f.mode(), Mode::Sc);
        let e = EventKind::Error { msg: "x".into() };
        assert!(e.is_error());
        assert_eq!(e.mode(), Mode::Rlx);
    }
}
