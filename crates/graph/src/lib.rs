//! # vsync-graph
//!
//! Execution graphs for axiomatic weak-memory reasoning — the substrate of
//! the AMC model checker (paper §1.1, §2.1).
//!
//! An [`ExecutionGraph`] abstracts one (possibly partial) execution of a
//! concurrent program:
//!
//! * **events** ([`Event`], [`EventKind`]): reads, writes, fences and error
//!   events, each tagged with a barrier [`Mode`];
//! * **program order** (`po`): the per-thread event sequences;
//! * **reads-from** (`rf`): which write each read observes — possibly the
//!   missing edge `⊥` ([`RfSource::Bottom`]) for reads polled by awaits;
//! * **modification order** (`mo`): a per-location total order of writes.
//!
//! The crate also provides dense bit-matrix relations ([`Relation`],
//! [`EventIndex`]) used by the memory models, canonical content hashing
//! used by the explorer's deduplication ([`content_hash`]) — including
//! the thread-symmetry-aware quotient ([`canonical_hash_modulo`],
//! [`ThreadPartition`]) that collapses relabeled twin executions of
//! template-identical threads — and Graphviz / text rendering of
//! counterexamples ([`to_dot`], [`to_text`]).
//!
//! ```
//! use std::collections::BTreeMap;
//! use vsync_graph::{EventKind, ExecutionGraph, Mode, RfSource};
//!
//! // Build the message-passing graph: T0 writes, T1 observes.
//! let mut g = ExecutionGraph::new(2, BTreeMap::new());
//! let w = g.push_event(0, EventKind::Write { loc: 0x10, val: 1, mode: Mode::Rel, rmw: false });
//! g.insert_mo(0x10, w, 0);
//! let r = g.push_event(1, EventKind::Read {
//!     loc: 0x10, mode: Mode::Acq, rf: RfSource::Write(w), rmw: false, awaiting: false,
//! });
//! assert_eq!(g.read_value(r), Some(1));
//! ```

#![warn(missing_docs)]

mod dense;
mod dot;
mod encode;
mod event;
mod graph;
mod symmetry;

pub use dense::{iter_set_bits, EventIndex, Relation};
pub use dot::{to_dot, to_text};
pub use encode::{
    canonical_bytes, canonical_bytes_into, canonical_bytes_modulo, canonical_hash_modulo,
    content_hash, fnv128, hash128, Canonicalizer, ExploreEncoder, GraphView,
};
pub use event::{Event, EventId, EventKind, Loc, Mode, RfSource, ThreadId, Value};
pub use graph::{EventSet, ExecutionGraph};
pub use symmetry::{ThreadPartition, MAX_SYMMETRY_PERMUTATIONS};
