//! Statistics over benchmark records: grouping, stability, speedups
//! (paper §4.2.2, Tables 3–5).

use std::collections::BTreeMap;

use crate::arch::Arch;
use crate::harness::{Record, Variant};

/// Key of one experiment group (a row of Table 3).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroupKey {
    /// Platform.
    pub arch: &'static str,
    /// Lock algorithm.
    pub algorithm: String,
    /// Variant (`seq` / `opt`).
    pub variant: Variant,
    /// Thread count.
    pub threads: usize,
}

/// Aggregates of one group's throughput samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Standard deviation.
    pub std: f64,
    /// `max / min` — 1.0 is perfectly stable (paper's `stability`).
    pub stability: f64,
    /// Number of samples.
    pub n: usize,
}

/// Group raw records by (arch, algorithm, variant, threads) and compute
/// mean/median/std/stability — the paper's Table 3.
pub fn group_records(records: &[Record]) -> BTreeMap<GroupKey, GroupStat> {
    let mut buckets: BTreeMap<GroupKey, Vec<f64>> = BTreeMap::new();
    for r in records {
        let key = GroupKey {
            arch: r.arch.label(),
            algorithm: r.algorithm.clone(),
            variant: r.variant,
            threads: r.threads,
        };
        buckets.entry(key).or_default().push(r.throughput);
    }
    buckets
        .into_iter()
        .map(|(k, mut v)| {
            v.sort_by(f64::total_cmp);
            let n = v.len();
            let mean = v.iter().sum::<f64>() / n as f64;
            let median = if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 };
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let stability = if v[0] > 0.0 { v[n - 1] / v[0] } else { f64::INFINITY };
            (k, GroupStat { mean, median, std: var.sqrt(), stability, n })
        })
        .collect()
}

/// The paper's Table 4: count groups by stability band.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StabilityBands {
    /// stability ≤ 1.1
    pub le_1_1: usize,
    /// stability > 1.1
    pub gt_1_1: usize,
    /// stability > 1.2
    pub gt_1_2: usize,
    /// stability > 1.3
    pub gt_1_3: usize,
    /// stability > 1.4
    pub gt_1_4: usize,
    /// total groups
    pub total: usize,
}

/// Categorize group stabilities into the bands of Table 4.
pub fn stability_bands(groups: &BTreeMap<GroupKey, GroupStat>) -> StabilityBands {
    let mut b = StabilityBands::default();
    for s in groups.values() {
        b.total += 1;
        if s.stability <= 1.1 {
            b.le_1_1 += 1;
        } else {
            b.gt_1_1 += 1;
        }
        if s.stability > 1.2 {
            b.gt_1_2 += 1;
        }
        if s.stability > 1.3 {
            b.gt_1_3 += 1;
        }
        if s.stability > 1.4 {
            b.gt_1_4 += 1;
        }
    }
    b
}

/// Render Table 4.
pub fn render_stability_bands(b: &StabilityBands) -> String {
    let pct = |n: usize| 100.0 * n as f64 / b.total.max(1) as f64;
    format!(
        "Stability values   Amount (absolute)   Amount (%)\n\
         <= 1.1             {:>17}   {:>9.2}%\n\
         > 1.1              {:>17}   {:>9.2}%\n\
         > 1.2              {:>17}   {:>9.2}%\n\
         > 1.3              {:>17}   {:>9.2}%\n\
         > 1.4              {:>17}   {:>9.2}%\n\
         Total              {:>17}      100.00%\n",
        b.le_1_1,
        pct(b.le_1_1),
        b.gt_1_1,
        pct(b.gt_1_1),
        b.gt_1_2,
        pct(b.gt_1_2),
        b.gt_1_3,
        pct(b.gt_1_3),
        b.gt_1_4,
        pct(b.gt_1_4),
        b.total
    )
}

/// One speedup sample: optimized over sc-only at a given contention level.
#[derive(Debug, Clone, PartialEq)]
pub struct Speedup {
    /// Platform.
    pub arch: &'static str,
    /// Lock algorithm.
    pub algorithm: String,
    /// Thread count.
    pub threads: usize,
    /// `T_opt / T_seq - 1` (paper's definition).
    pub speedup: f64,
}

/// The stability threshold above which records are dropped (the paper
/// filters out > 20 % instability before computing speedups).
pub const STABILITY_FILTER: f64 = 1.2;

/// Compute per-(algorithm, threads) speedups from grouped stats, dropping
/// unstable groups (either variant) per the paper's filtering rule.
pub fn speedups(groups: &BTreeMap<GroupKey, GroupStat>) -> Vec<Speedup> {
    let mut out = Vec::new();
    for (k, seq_stat) in groups.iter().filter(|(k, _)| k.variant == Variant::Seq) {
        let opt_key = GroupKey { variant: Variant::Opt, ..k.clone() };
        let Some(opt_stat) = groups.get(&opt_key) else { continue };
        if seq_stat.stability > STABILITY_FILTER || opt_stat.stability > STABILITY_FILTER {
            continue;
        }
        out.push(Speedup {
            arch: k.arch,
            algorithm: k.algorithm.clone(),
            threads: k.threads,
            speedup: opt_stat.median / seq_stat.median - 1.0,
        });
    }
    out
}

/// Table 5 row: descriptive statistics of one algorithm's speedups on one
/// platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupSummary {
    /// Platform.
    pub arch: &'static str,
    /// Lock algorithm.
    pub algorithm: String,
    /// Maximum observed speedup.
    pub max: f64,
    /// Mean speedup.
    pub mean: f64,
    /// Minimum observed speedup.
    pub min: f64,
    /// Standard deviation.
    pub std: f64,
}

/// Aggregate speedups per (arch, algorithm) — the paper's Table 5.
pub fn summarize_speedups(samples: &[Speedup]) -> Vec<SpeedupSummary> {
    let mut buckets: BTreeMap<(&'static str, String), Vec<f64>> = BTreeMap::new();
    for s in samples {
        buckets.entry((s.arch, s.algorithm.clone())).or_default().push(s.speedup);
    }
    buckets
        .into_iter()
        .map(|((arch, algorithm), v)| {
            let n = v.len().max(1) as f64;
            let mean = v.iter().sum::<f64>() / n;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            SpeedupSummary {
                arch,
                algorithm,
                max: v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                mean,
                min: v.iter().copied().fold(f64::INFINITY, f64::min),
                std: var.sqrt(),
            }
        })
        .collect()
}

/// Render Table 3.
pub fn render_groups(groups: &BTreeMap<GroupKey, GroupStat>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>7} {:>8} {:>13} {:>13} {:>12} {:>10}",
        "arch", "algorithm", "seqopt", "threads", "mean", "median", "std", "stability"
    );
    for (k, s) in groups {
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>7} {:>8} {:>13.5e} {:>13.5e} {:>12.4e} {:>10.5}",
            k.arch,
            k.algorithm,
            k.variant.label(),
            k.threads,
            s.mean,
            s.median,
            s.std,
            s.stability
        );
    }
    out
}

/// Render Table 5.
pub fn render_speedup_summaries(rows: &[SpeedupSummary], arch: Arch) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Speedups of VSYNC-optimized over sc-only ({}):", arch.label());
    let _ = writeln!(out, "{:<16} {:>10} {:>10} {:>10} {:>10}", "Lock", "max", "mean", "min", "std");
    for r in rows.iter().filter(|r| r.arch == arch.label()) {
        let _ = writeln!(
            out,
            "{:<16} {:>10.6} {:>10.6} {:>10.6} {:>10.6}",
            r.algorithm, r.max, r.mean, r.min, r.std
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(alg: &str, variant: Variant, threads: usize, run: usize, tp: f64) -> Record {
        Record {
            arch: Arch::ArmV8,
            algorithm: alg.into(),
            variant,
            threads,
            run,
            count: (tp * 0.02) as u64,
            duration: 0.02,
            throughput: tp,
        }
    }

    #[test]
    fn grouping_computes_median_and_stability() {
        let records = vec![
            rec("a", Variant::Seq, 2, 1, 100.0),
            rec("a", Variant::Seq, 2, 2, 110.0),
            rec("a", Variant::Seq, 2, 3, 105.0),
        ];
        let groups = group_records(&records);
        assert_eq!(groups.len(), 1);
        let s = groups.values().next().unwrap();
        assert_eq!(s.median, 105.0);
        assert!((s.mean - 105.0).abs() < 1e-9);
        assert!((s.stability - 1.1).abs() < 1e-9);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn speedup_is_opt_over_seq_minus_one() {
        let records = vec![
            rec("a", Variant::Seq, 2, 1, 100.0),
            rec("a", Variant::Opt, 2, 1, 150.0),
        ];
        let groups = group_records(&records);
        let sp = speedups(&groups);
        assert_eq!(sp.len(), 1);
        assert!((sp[0].speedup - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unstable_groups_are_filtered() {
        let records = vec![
            rec("a", Variant::Seq, 2, 1, 100.0),
            rec("a", Variant::Seq, 2, 2, 130.0), // stability 1.3 > 1.2
            rec("a", Variant::Opt, 2, 1, 150.0),
        ];
        let groups = group_records(&records);
        assert!(speedups(&groups).is_empty());
    }

    #[test]
    fn stability_bands_count_correctly() {
        let records = vec![
            rec("a", Variant::Seq, 1, 1, 100.0),
            rec("a", Variant::Seq, 1, 2, 105.0), // 1.05
            rec("b", Variant::Seq, 1, 1, 100.0),
            rec("b", Variant::Seq, 1, 2, 145.0), // 1.45
        ];
        let groups = group_records(&records);
        let b = stability_bands(&groups);
        assert_eq!(b.total, 2);
        assert_eq!(b.le_1_1, 1);
        assert_eq!(b.gt_1_4, 1);
        let rendered = render_stability_bands(&b);
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn summaries_aggregate_across_threads() {
        let samples = vec![
            Speedup { arch: "aarch64", algorithm: "a".into(), threads: 1, speedup: 0.5 },
            Speedup { arch: "aarch64", algorithm: "a".into(), threads: 2, speedup: 0.1 },
        ];
        let rows = summarize_speedups(&samples);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].max - 0.5).abs() < 1e-9);
        assert!((rows[0].min - 0.1).abs() < 1e-9);
        assert!((rows[0].mean - 0.3).abs() < 1e-9);
        let table = render_speedup_summaries(&rows, Arch::ArmV8);
        assert!(table.contains("aarch64"));
    }
}
