//! Architecture cost models.
//!
//! These stand in for the paper's two testbeds (DESIGN.md §5):
//!
//! * [`Arch::ArmV8`] — the `taishan200-128c` Kunpeng 920 server (128 cores,
//!   2 NUMA nodes). `ldar`/`stlr` implement acquire/SC loads and
//!   release/SC stores alike, so relaxation gains come from demoting
//!   accesses to plain `ldr`/`str` and from deleting `dmb ish` fences.
//! * [`Arch::X86_64`] — the `gigabyte-96c` EPYC server (96 hardware
//!   threads, 2 nodes). Plain loads/stores already have acquire/release
//!   semantics; only SC stores (implemented with `lock xchg`/`mfence`) and
//!   explicit SC fences cost extra, which is why the paper's x86 speedups
//!   concentrate in low-contention cases and can reach several-fold.
//!
//! Costs are in CPU cycles at the paper's fixed 1.5 GHz operating point.
//! Absolute values are synthetic; only their relations matter for the
//! reproduced phenomena.

use vsync_graph::Mode;

/// The memory-access categories the cost model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A load.
    Load,
    /// A store.
    Store,
    /// An atomic read-modify-write (including CAS).
    Rmw,
    /// A standalone fence.
    Fence,
}

/// Simulated hardware platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// ARMv8 server (`taishan200-128c`).
    ArmV8,
    /// x86_64 server (`gigabyte-96c`).
    X86_64,
}

impl Arch {
    /// Identifier used in record tables (matches the paper's `arch` column).
    pub fn label(self) -> &'static str {
        match self {
            Arch::ArmV8 => "aarch64",
            Arch::X86_64 => "x86_64",
        }
    }

    /// Machine identifier from the paper's §4.1.1.
    pub fn machine(self) -> &'static str {
        match self {
            Arch::ArmV8 => "taishan200-128c",
            Arch::X86_64 => "gigabyte-96c",
        }
    }

    /// Number of usable cores (core 0 is reserved for the OS, as in the
    /// paper's isolcpus setup).
    pub fn cores(self) -> usize {
        match self {
            Arch::ArmV8 => 128,
            Arch::X86_64 => 96,
        }
    }

    /// NUMA node of a core.
    pub fn node_of(self, core: usize) -> usize {
        match self {
            Arch::ArmV8 => core / 64,
            Arch::X86_64 => core / 48,
        }
    }

    /// The thread counts the paper sweeps (§4.2.1), capped at the core
    /// count (the 127-thread case exists only on the 128-core machine).
    pub fn thread_counts(self) -> Vec<usize> {
        [1usize, 2, 4, 8, 16, 23, 31, 63, 95, 127]
            .into_iter()
            .filter(|&n| n < self.cores())
            .collect()
    }

    /// Base (cache-hit) cost of an access in cycles.
    pub fn op_cost(self, class: OpClass, mode: Mode) -> u64 {
        match self {
            Arch::ArmV8 => match class {
                OpClass::Load => match mode {
                    Mode::Rlx => 4,           // ldr
                    Mode::Acq | Mode::Sc => 11, // ldar
                    _ => 11,
                },
                OpClass::Store => match mode {
                    Mode::Rlx => 4,           // str
                    Mode::Rel | Mode::Sc => 14, // stlr
                    _ => 14,
                },
                OpClass::Rmw => match mode {
                    Mode::Rlx => 18,
                    Mode::Acq | Mode::Rel => 24,
                    Mode::AcqRel => 28,
                    Mode::Sc => 32,
                },
                OpClass::Fence => match mode {
                    Mode::Rlx => 0,
                    Mode::Acq | Mode::Rel => 18, // dmb ishld / ishst
                    Mode::AcqRel => 28,
                    Mode::Sc => 38, // dmb ish
                },
            },
            Arch::X86_64 => match class {
                OpClass::Load => 4, // mov — acquire for free
                OpClass::Store => match mode {
                    Mode::Rlx | Mode::Rel => 4, // mov — release for free
                    _ => 90,                    // seq_cst: xchg / mov+mfence
                },
                OpClass::Rmw => 34, // lock-prefixed regardless of mode
                OpClass::Fence => match mode {
                    Mode::Sc => 95, // mfence
                    _ => 0,         // compiler-only
                },
            },
        }
    }

    /// Cost of pulling a cache line from another core, same NUMA node.
    pub fn local_transfer(self) -> u64 {
        match self {
            Arch::ArmV8 => 65,
            Arch::X86_64 => 55,
        }
    }

    /// Cost of pulling a cache line across NUMA nodes.
    pub fn remote_transfer(self) -> u64 {
        match self {
            Arch::ArmV8 => 165,
            Arch::X86_64 => 130,
        }
    }

    /// Cost of one `pause`/`yield` spin hint.
    pub fn pause_cost(self) -> u64 {
        match self {
            Arch::ArmV8 => 30,
            Arch::X86_64 => 35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_relaxation_saves_on_loads_and_stores() {
        let a = Arch::ArmV8;
        assert!(a.op_cost(OpClass::Load, Mode::Rlx) < a.op_cost(OpClass::Load, Mode::Acq));
        // acquire and sc loads both compile to ldar: same cost.
        assert_eq!(a.op_cost(OpClass::Load, Mode::Acq), a.op_cost(OpClass::Load, Mode::Sc));
        assert_eq!(a.op_cost(OpClass::Store, Mode::Rel), a.op_cost(OpClass::Store, Mode::Sc));
        assert!(a.op_cost(OpClass::Fence, Mode::Sc) > a.op_cost(OpClass::Fence, Mode::Rel));
        assert_eq!(a.op_cost(OpClass::Fence, Mode::Rlx), 0);
    }

    #[test]
    fn x86_only_pays_for_sc() {
        let x = Arch::X86_64;
        assert_eq!(x.op_cost(OpClass::Load, Mode::Acq), x.op_cost(OpClass::Load, Mode::Rlx));
        assert_eq!(x.op_cost(OpClass::Store, Mode::Rel), x.op_cost(OpClass::Store, Mode::Rlx));
        assert!(x.op_cost(OpClass::Store, Mode::Sc) > 10 * x.op_cost(OpClass::Store, Mode::Rel));
        assert_eq!(x.op_cost(OpClass::Rmw, Mode::Rlx), x.op_cost(OpClass::Rmw, Mode::Sc));
    }

    #[test]
    fn numa_topology() {
        assert_eq!(Arch::ArmV8.node_of(0), 0);
        assert_eq!(Arch::ArmV8.node_of(64), 1);
        assert_eq!(Arch::X86_64.node_of(47), 0);
        assert_eq!(Arch::X86_64.node_of(48), 1);
        assert!(Arch::ArmV8.remote_transfer() > Arch::ArmV8.local_transfer());
    }

    #[test]
    fn thread_counts_match_paper() {
        assert_eq!(Arch::ArmV8.thread_counts(), vec![1, 2, 4, 8, 16, 23, 31, 63, 95, 127]);
        assert_eq!(Arch::X86_64.thread_counts(), vec![1, 2, 4, 8, 16, 23, 31, 63, 95]);
    }
}
