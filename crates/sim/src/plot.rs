//! Terminal renderings of the paper's figures: density histograms
//! (Figs. 23/24) and speedup heat maps (Figs. 25/26).

use std::collections::BTreeMap;

use crate::stats::Speedup;

/// Render a binned histogram of values, one row per bin, bar length
/// proportional to the count (Figs. 23/24 are densities of stability and
/// speedup values).
pub fn histogram(title: &str, values: &[f64], bins: usize, width: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title} (n = {})", values.len());
    if values.is_empty() || bins == 0 {
        out.push_str("  (no data)\n");
        return out;
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let i = (((v - min) / span) * bins as f64) as usize;
        counts[i.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + span * i as f64 / bins as f64;
        let hi = min + span * (i + 1) as f64 / bins as f64;
        let bar = "#".repeat(c * width / peak);
        let _ = writeln!(out, "  [{lo:>8.3}, {hi:>8.3}) {c:>5} {bar}");
    }
    out
}

/// Render a speedup heat map: rows = locks, columns = thread counts, cells
/// = speedup (blank = filtered out for instability, like the white squares
/// of Figs. 25/26).
pub fn heat_map(title: &str, samples: &[Speedup], thread_counts: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut by_lock: BTreeMap<&str, BTreeMap<usize, f64>> = BTreeMap::new();
    for s in samples {
        by_lock.entry(&s.algorithm).or_default().insert(s.threads, s.speedup);
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<16}", "lock \\ threads");
    for t in thread_counts {
        let _ = write!(out, "{t:>8}");
    }
    out.push('\n');
    for (lock, cells) in &by_lock {
        let _ = write!(out, "{lock:<16}");
        for t in thread_counts {
            match cells.get(t) {
                Some(v) => {
                    let _ = write!(out, "{:>8}", format!("{:+.2}", v));
                }
                None => {
                    let _ = write!(out, "{:>8}", "."); // filtered / not run
                }
            }
        }
        out.push('\n');
    }
    out.push_str("(cells are To/Ts - 1; '.' = filtered for instability)\n");
    out
}

/// Render the Fig. 27 comparison: one throughput column per implementation
/// for each thread count.
pub fn comparison_table(
    title: &str,
    impl_names: &[&str],
    rows: &[(usize, Vec<f64>)], // (threads, throughput per impl)
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title} (median throughput, M ops/s)");
    let _ = write!(out, "{:<10}", "threads");
    for n in impl_names {
        let _ = write!(out, "{n:>14}");
    }
    out.push('\n');
    for (threads, vals) in rows {
        let _ = write!(out, "{threads:<10}");
        for v in vals {
            let _ = write!(out, "{:>14.3}", v / 1e6);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_bars() {
        let values = vec![0.0, 0.1, 0.1, 0.9];
        let h = histogram("density", &values, 4, 20);
        assert!(h.contains("density (n = 4)"));
        assert!(h.contains('#'));
        // The bin with two samples has the longest bar.
        let longest = h.lines().map(|l| l.matches('#').count()).max().unwrap();
        assert_eq!(longest, 20);
    }

    #[test]
    fn histogram_handles_empty() {
        assert!(histogram("x", &[], 4, 10).contains("no data"));
    }

    #[test]
    fn heat_map_marks_missing_cells() {
        let samples = vec![
            Speedup { arch: "aarch64", algorithm: "mcs".into(), threads: 1, speedup: 0.5 },
            Speedup { arch: "aarch64", algorithm: "mcs".into(), threads: 4, speedup: -0.1 },
        ];
        let m = heat_map("ARM speedups", &samples, &[1, 2, 4]);
        assert!(m.contains("mcs"));
        assert!(m.contains("+0.50"));
        assert!(m.contains("-0.10"));
        assert!(m.contains('.'), "missing threads=2 cell rendered as dot");
    }

    #[test]
    fn comparison_table_scales_to_mops() {
        let t = comparison_table("MCS", &["dpdk", "own"], &[(1, vec![2.0e6, 3.0e6])]);
        assert!(t.contains("2.000"));
        assert!(t.contains("3.000"));
    }
}
