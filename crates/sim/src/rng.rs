//! A tiny deterministic PRNG (SplitMix64).
//!
//! The simulator needs reproducible per-run jitter; SplitMix64 is
//! statistically adequate, seedable, and keeps the crate dependency-free.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Jitter a cost by ±`percent`% (deterministic per state).
    pub fn jitter(&mut self, value: u64, percent: u64) -> u64 {
        if value == 0 || percent == 0 {
            return value;
        }
        let span = (value * percent / 100).max(1);
        let delta = self.below(2 * span + 1);
        (value + delta).saturating_sub(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn jitter_stays_within_band() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.jitter(100, 10);
            assert!((90..=110).contains(&v), "{v}");
        }
        assert_eq!(r.jitter(0, 10), 0);
        assert_eq!(r.jitter(100, 0), 100);
    }

    #[test]
    fn jitter_varies() {
        let mut r = SplitMix64::new(11);
        let vals: std::collections::HashSet<u64> = (0..50).map(|_| r.jitter(1000, 10)).collect();
        assert!(vals.len() > 10);
    }
}
