//! # vsync-sim
//!
//! The evaluation substrate standing in for the paper's hardware testbeds
//! (§4.1): a deterministic virtual-time multicore simulator with
//! MESI-style coherence costs, NUMA topology and per-architecture barrier
//! cost models, plus the microbenchmark harness, statistics and terminal
//! plots that regenerate Tables 2–5 and Figures 23–27.
//!
//! Worker threads are real OS threads sequenced by a min-virtual-clock
//! conductor, so lock implementations are ordinary blocking Rust code and
//! every run is reproducible from its seed.
//!
//! ```
//! use vsync_sim::{run_microbench, Arch, SimConfig, SimLock, SimThread, Workload};
//! use vsync_graph::Mode;
//!
//! #[derive(Debug)]
//! struct SpinLock;
//! impl SimLock for SpinLock {
//!     fn name(&self) -> &'static str { "spin" }
//!     fn acquire(&self, ctx: &mut SimThread) {
//!         while ctx.cas(0x40, 0, 1, Mode::Acq) != 0 {
//!             ctx.spin_until(0x40, Mode::Rlx, |v| v == 0);
//!         }
//!     }
//!     fn release(&self, ctx: &mut SimThread) { ctx.store(0x40, 0, Mode::Rel); }
//! }
//!
//! let cfg = SimConfig { arch: Arch::ArmV8, threads: 2, duration: 30_000, seed: 1, jitter_percent: 5 };
//! let (count, secs) = run_microbench(&SpinLock, &cfg, &Workload::default());
//! assert!(count > 0 && secs > 0.0);
//! ```

#![warn(missing_docs)]

mod arch;
mod engine;
mod harness;
mod plot;
mod rng;
mod stats;

pub use arch::{Arch, OpClass};
pub use engine::{run_simulation, Shared, SimConfig, SimOutput, SimThread};
pub use harness::{
    render_records, run_microbench, run_repetitions, sweep, LockPair, Record, SimLock, Variant,
    Workload, COUNTER_ADDR, CS_LINES_BASE, ES_LINES_BASE,
};
pub use plot::{comparison_table, heat_map, histogram};
pub use rng::SplitMix64;
pub use stats::{
    group_records, render_groups, render_speedup_summaries, render_stability_bands,
    speedups, stability_bands, summarize_speedups, GroupKey, GroupStat, Speedup, SpeedupSummary,
    StabilityBands, STABILITY_FILTER,
};
