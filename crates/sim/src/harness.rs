//! The microbenchmark harness (paper §4.2.1, Listing 1).
//!
//! Each thread repeatedly acquires a lock, increments a shared counter
//! (touching `cs_size` cache lines inside the critical section), releases,
//! and optionally touches `es_size` private lines outside. The returned
//! counter value divided by the duration is the throughput — exactly the
//! paper's `count / duration` column.

use std::collections::HashMap;

use crate::arch::Arch;
use crate::engine::{run_simulation, SimConfig, SimThread};

/// Address of the shared counter (cache-line aligned, alone on its line).
pub const COUNTER_ADDR: u64 = 0x10_0000;
/// Base of the extra shared lines touched for `cs_size > 1`.
pub const CS_LINES_BASE: u64 = 0x20_0000;
/// Base of the per-thread private lines touched for `es_size > 0`.
pub const ES_LINES_BASE: u64 = 0x40_0000;

/// A runtime lock implementation driven by the simulator.
pub trait SimLock: Send + Sync {
    /// Algorithm name as it appears in the paper's tables (e.g. `"mcs"`).
    fn name(&self) -> &'static str;

    /// Initialize lock memory (defaults to all-zero).
    fn init_mem(&self, _mem: &mut HashMap<u64, u64>) {}

    /// Acquire the lock.
    fn acquire(&self, ctx: &mut SimThread);

    /// Release the lock.
    fn release(&self, ctx: &mut SimThread);
}

/// sc-only or VSYNC-optimized variant (the paper's `seqopt` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Variant {
    /// Every barrier sequentially consistent.
    Seq,
    /// Maximally relaxed barriers.
    Opt,
}

impl Variant {
    /// Column label (`"seq"` / `"opt"`).
    pub fn label(self) -> &'static str {
        match self {
            Variant::Seq => "seq",
            Variant::Opt => "opt",
        }
    }
}

/// Workload shape knobs (§4.2.2 "Critical and non-critical section sizes").
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Cache lines touched inside the critical section (≥ 1; the counter
    /// line is the first).
    pub cs_size: usize,
    /// Private cache lines touched outside the critical section.
    pub es_size: usize,
}

impl Default for Workload {
    fn default() -> Self {
        // The paper's final configuration: cs_size = 1, es_size = 0.
        Workload { cs_size: 1, es_size: 0 }
    }
}

/// One raw benchmark record (a row of the paper's Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Platform label (`aarch64` / `x86_64`).
    pub arch: Arch,
    /// Lock algorithm.
    pub algorithm: String,
    /// sc-only or optimized.
    pub variant: Variant,
    /// Thread count.
    pub threads: usize,
    /// Run number (1-based).
    pub run: usize,
    /// Critical sections executed.
    pub count: u64,
    /// Measured duration in (virtual) seconds.
    pub duration: f64,
    /// `count / duration`.
    pub throughput: f64,
}

/// Run the Listing-1 microbenchmark once.
pub fn run_microbench(lock: &dyn SimLock, cfg: &SimConfig, wl: &Workload) -> (u64, f64) {
    let mut init = HashMap::new();
    lock.init_mem(&mut init);
    let duration = cfg.duration;
    let (out, count) = run_simulation(
        cfg,
        &init,
        |ctx| {
            let es_base = ES_LINES_BASE + ctx.tid() as u64 * 0x10_000;
            while ctx.now() < duration {
                lock.acquire(ctx);
                // Critical section: (*shared_counter)++ ...
                let v = ctx.load(COUNTER_ADDR, vsync_graph::Mode::Rlx);
                ctx.store(COUNTER_ADDR, v + 1, vsync_graph::Mode::Rlx);
                // ... plus cs_size-1 further shared lines.
                for i in 1..wl.cs_size {
                    let addr = CS_LINES_BASE + (i as u64) * 64;
                    let w = ctx.load(addr, vsync_graph::Mode::Rlx);
                    ctx.store(addr, w + 1, vsync_graph::Mode::Rlx);
                }
                lock.release(ctx);
                // Non-critical work on private lines.
                for i in 0..wl.es_size {
                    let addr = es_base + (i as u64) * 64;
                    let w = ctx.load(addr, vsync_graph::Mode::Rlx);
                    ctx.store(addr, w + 1, vsync_graph::Mode::Rlx);
                }
            }
        },
        |st| st.read_mem(COUNTER_ADDR),
    );
    let secs = out.duration.max(duration) as f64 / SimConfig::CYCLES_PER_SECOND;
    (count, secs)
}

/// Produce the paper's 5 repetitions for one configuration.
pub fn run_repetitions(
    lock: &dyn SimLock,
    variant: Variant,
    arch: Arch,
    threads: usize,
    duration: u64,
    wl: &Workload,
    repetitions: usize,
) -> Vec<Record> {
    (1..=repetitions)
        .map(|run| {
            let seed = seed_for(lock.name(), variant, arch, threads, run);
            let cfg = SimConfig { arch, threads, duration, seed, jitter_percent: 8 };
            let (count, secs) = run_microbench(lock, &cfg, wl);
            Record {
                arch,
                algorithm: lock.name().to_owned(),
                variant,
                threads,
                run,
                count,
                duration: secs,
                throughput: count as f64 / secs,
            }
        })
        .collect()
}

fn seed_for(name: &str, variant: Variant, arch: Arch, threads: usize, run: usize) -> u64 {
    let mut h = vsync_graph::fnv128(name.as_bytes()) as u64;
    h ^= (threads as u64) << 32 | (run as u64) << 8 | (variant as u64) << 1;
    h ^= match arch {
        Arch::ArmV8 => 0xA,
        Arch::X86_64 => 0xB,
    };
    h | 1
}

/// A seq/opt pair of the same algorithm, ready for the sweep.
pub struct LockPair {
    /// sc-only variant.
    pub seq: Box<dyn SimLock>,
    /// optimized variant.
    pub opt: Box<dyn SimLock>,
}

/// Run the full sweep of one architecture: every lock pair × the paper's
/// thread counts × both variants × `repetitions` runs.
pub fn sweep(
    pairs: &[LockPair],
    arch: Arch,
    duration: u64,
    wl: &Workload,
    repetitions: usize,
) -> Vec<Record> {
    let mut records = Vec::new();
    for pair in pairs {
        for &threads in &arch.thread_counts() {
            for (variant, lock) in
                [(Variant::Seq, pair.seq.as_ref()), (Variant::Opt, pair.opt.as_ref())]
            {
                let t0 = std::time::Instant::now();
                records.extend(run_repetitions(lock, variant, arch, threads, duration, wl, repetitions));
                if std::env::var("VSYNC_PROGRESS").is_ok() {
                    eprintln!(
                        "  {} {} {} {}t: {:.1?}",
                        arch.label(),
                        lock.name(),
                        variant.label(),
                        threads,
                        t0.elapsed()
                    );
                }
            }
        }
    }
    records
}

/// Render records as the paper's Table 2 (raw captured records).
pub fn render_records(records: &[Record]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<5} {:>8} {:>14} {:>7} {:>11} {:>7} {:>14} {:>9} {:>13}",
        "", "arch", "algorithm", "seqopt", "threads_nb", "run_nb", "count", "duration", "throughput"
    );
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<5} {:>8} {:>14} {:>7} {:>11} {:>7} {:>14} {:>9.4} {:>13.5e}",
            i,
            r.arch.label(),
            r.algorithm,
            r.variant.label(),
            r.threads,
            r.run,
            r.count,
            r.duration,
            r.throughput
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_graph::Mode;

    /// A trivial CAS lock for harness tests.
    #[derive(Debug)]
    struct TestLock {
        sc: bool,
    }

    impl SimLock for TestLock {
        fn name(&self) -> &'static str {
            "test-cas"
        }
        fn acquire(&self, ctx: &mut SimThread) {
            let m = if self.sc { Mode::Sc } else { Mode::Acq };
            loop {
                if ctx.cas(0x40, 0, 1, m) == 0 {
                    return;
                }
                ctx.spin_until(0x40, Mode::Rlx, |v| v == 0);
            }
        }
        fn release(&self, ctx: &mut SimThread) {
            let m = if self.sc { Mode::Sc } else { Mode::Rel };
            ctx.store(0x40, 0, m);
        }
    }

    #[test]
    fn microbench_counts_critical_sections() {
        let cfg = SimConfig { arch: Arch::ArmV8, threads: 2, duration: 40_000, seed: 5, jitter_percent: 5 };
        let (count, secs) = run_microbench(&TestLock { sc: false }, &cfg, &Workload::default());
        assert!(count > 50, "expected progress, got {count}");
        assert!(secs > 0.0);
    }

    #[test]
    fn repetitions_are_stable_but_not_identical() {
        let recs = run_repetitions(
            &TestLock { sc: false },
            Variant::Opt,
            Arch::ArmV8,
            2,
            40_000,
            &Workload::default(),
            5,
        );
        assert_eq!(recs.len(), 5);
        let min = recs.iter().map(|r| r.throughput).fold(f64::MAX, f64::min);
        let max = recs.iter().map(|r| r.throughput).fold(0.0, f64::max);
        assert!(max / min < 1.5, "runs should be in the same ballpark");
        assert!(max > min, "jitter should differentiate runs");
    }

    #[test]
    fn x86_sc_variant_is_slower_single_thread() {
        // The core Table 5 phenomenon at 1 thread on x86.
        let wl = Workload::default();
        let run = |sc: bool| {
            let cfg = SimConfig { arch: Arch::X86_64, threads: 1, duration: 60_000, seed: 5, jitter_percent: 0 };
            run_microbench(&TestLock { sc }, &cfg, &wl).0
        };
        let seq = run(true);
        let opt = run(false);
        assert!(opt as f64 / seq as f64 > 1.5, "opt {opt} vs seq {seq}");
    }

    #[test]
    fn bigger_critical_sections_shrink_the_gap() {
        // §4.2.2: "the bigger the critical section, the less the impact".
        let gap = |cs_size: usize| {
            let wl = Workload { cs_size, es_size: 0 };
            let run = |sc: bool| {
                let cfg = SimConfig { arch: Arch::X86_64, threads: 1, duration: 120_000, seed: 5, jitter_percent: 0 };
                run_microbench(&TestLock { sc }, &cfg, &wl).0 as f64
            };
            run(false) / run(true)
        };
        assert!(gap(1) > gap(8), "cs=1 gap {} should exceed cs=8 gap {}", gap(1), gap(8));
    }

    #[test]
    fn records_render_like_table2() {
        let recs = run_repetitions(
            &TestLock { sc: true },
            Variant::Seq,
            Arch::X86_64,
            2,
            30_000,
            &Workload::default(),
            2,
        );
        let table = render_records(&recs);
        assert!(table.contains("x86_64"));
        assert!(table.contains("seq"));
        assert!(table.contains("throughput"));
    }
}
