//! The virtual-time multicore engine.
//!
//! Worker threads are real OS threads, but only the thread with the
//! smallest virtual clock may execute an operation at any moment — a
//! conductor pattern that makes every simulation fully deterministic for a
//! given seed while letting lock implementations be written as ordinary
//! blocking Rust code. Each memory operation pays a cost from the
//! [`Arch`] model plus MESI-style coherence traffic, advancing the
//! thread's clock.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use vsync_graph::Mode;

use crate::arch::{Arch, OpClass};
use crate::rng::SplitMix64;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated platform.
    pub arch: Arch,
    /// Number of worker threads.
    pub threads: usize,
    /// Virtual duration in cycles (the paper runs 30 s wall-clock; scale
    /// with [`SimConfig::CYCLES_PER_SECOND`] when converting).
    pub duration: u64,
    /// RNG seed (one "run" of the paper's 5 repetitions per seed).
    pub seed: u64,
    /// Cost jitter in percent (models thermal/measurement noise).
    pub jitter_percent: u64,
}

impl SimConfig {
    /// Simulated clock rate: the paper fixes 1.5 GHz on all platforms.
    pub const CYCLES_PER_SECOND: f64 = 1.5e9;

    /// A config with sensible defaults for the given arch/thread count.
    pub fn new(arch: Arch, threads: usize) -> Self {
        SimConfig { arch, threads, duration: 300_000, seed: 1, jitter_percent: 8 }
    }
}

/// Exclusive-or-shared state of one cache line.
#[derive(Debug, Clone, Default)]
struct Line {
    owner: Option<usize>,
    sharers: u128,
}

/// Engine-internal shared state (all guarded by one mutex).
pub struct Shared {
    arch: Arch,
    jitter_percent: u64,
    mem: HashMap<u64, u64>,
    lines: HashMap<u64, Line>,
    clocks: Vec<u64>,
    done: Vec<bool>,
    rng: SplitMix64,
    total_ops: u64,
}

impl Shared {
    fn line_of(addr: u64) -> u64 {
        addr >> 6
    }

    /// Read memory (no cost accounting).
    pub fn read_mem(&self, addr: u64) -> u64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    fn write_mem(&mut self, addr: u64, val: u64) {
        self.mem.insert(addr, val);
    }

    /// Coherence cost of accessing `addr` from `core`, updating line state.
    fn access_cost(&mut self, core: usize, addr: u64, write: bool) -> u64 {
        let arch = self.arch;
        let line = self.lines.entry(Shared::line_of(addr)).or_default();
        let bit = 1u128 << core;
        let my_node = arch.node_of(core);
        let transfer = |other: usize| {
            if arch.node_of(other) == my_node {
                arch.local_transfer()
            } else {
                arch.remote_transfer()
            }
        };
        if write {
            match line.owner {
                Some(o) if o == core => 0,
                Some(o) => {
                    let c = transfer(o);
                    line.owner = Some(core);
                    line.sharers = bit;
                    c
                }
                None => {
                    // Invalidate all sharers; pay for the farthest.
                    let mut cost = arch.local_transfer() / 2; // upgrade/cold
                    for sc in 0..128usize {
                        if line.sharers & (1u128 << sc) != 0 && sc != core {
                            cost = cost.max(transfer(sc));
                        }
                    }
                    line.owner = Some(core);
                    line.sharers = bit;
                    cost
                }
            }
        } else {
            match line.owner {
                Some(o) if o == core => 0,
                Some(o) => {
                    // Downgrade M -> S at the owner.
                    let c = transfer(o);
                    line.owner = None;
                    line.sharers |= bit | (1u128 << o);
                    c
                }
                None => {
                    if line.sharers & bit != 0 {
                        0
                    } else {
                        let cold = line.sharers == 0;
                        line.sharers |= bit;
                        if cold {
                            arch.local_transfer() // memory fetch
                        } else {
                            arch.local_transfer() / 2 // shared copy nearby
                        }
                    }
                }
            }
        }
    }
}

struct EngineInner {
    state: Mutex<Shared>,
    cvs: Vec<Condvar>,
}

impl EngineInner {
    /// Is `tid` the unique minimum-clock runnable thread?
    fn is_turn(st: &Shared, tid: usize) -> bool {
        let me = (st.clocks[tid], tid);
        (0..st.clocks.len())
            .filter(|&t| !st.done[t] && t != tid)
            .all(|t| (st.clocks[t], t) > me)
    }

    /// Wake the thread whose turn it now is.
    fn wake_next(&self, st: &Shared) {
        if let Some(next) = (0..st.clocks.len())
            .filter(|&t| !st.done[t])
            .min_by_key(|&t| (st.clocks[t], t))
        {
            self.cvs[next].notify_one();
        }
    }
}

/// Handle passed to each simulated thread: the atomics API locks are
/// written against.
pub struct SimThread {
    engine: Arc<EngineInner>,
    tid: usize,
    core: usize,
    clock_cache: u64,
}

impl SimThread {
    /// This thread's index.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The core this thread is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The thread's virtual clock after its last operation.
    pub fn now(&self) -> u64 {
        self.clock_cache
    }

    /// Run one operation when it is this thread's turn.
    fn step<R>(&mut self, f: impl FnOnce(&mut Shared, usize) -> (u64, R)) -> R {
        let engine = Arc::clone(&self.engine);
        let mut st = engine.state.lock().unwrap();
        while !EngineInner::is_turn(&st, self.tid) {
            st = engine.cvs[self.tid].wait(st).unwrap();
        }
        let (cost, result) = f(&mut st, self.core);
        let jittered = {
            let pct = st.jitter_percent;
            st.rng.jitter(cost.max(1), pct)
        };
        st.clocks[self.tid] += jittered.max(1);
        st.total_ops += 1;
        self.clock_cache = st.clocks[self.tid];
        engine.wake_next(&st);
        result
    }

    /// Atomic load.
    pub fn load(&mut self, addr: u64, mode: Mode) -> u64 {
        self.step(|st, core| {
            let cost = st.arch.op_cost(OpClass::Load, mode) + st.access_cost(core, addr, false);
            (cost, st.read_mem(addr))
        })
    }

    /// Atomic store.
    pub fn store(&mut self, addr: u64, val: u64, mode: Mode) {
        self.step(|st, core| {
            let cost = st.arch.op_cost(OpClass::Store, mode) + st.access_cost(core, addr, true);
            st.write_mem(addr, val);
            (cost, ())
        })
    }

    /// Compare-and-swap; returns the old value.
    pub fn cas(&mut self, addr: u64, expected: u64, new: u64, mode: Mode) -> u64 {
        self.step(|st, core| {
            let cost = st.arch.op_cost(OpClass::Rmw, mode) + st.access_cost(core, addr, true);
            let old = st.read_mem(addr);
            if old == expected {
                st.write_mem(addr, new);
            }
            (cost, old)
        })
    }

    /// Atomic exchange; returns the old value.
    pub fn xchg(&mut self, addr: u64, val: u64, mode: Mode) -> u64 {
        self.step(|st, core| {
            let cost = st.arch.op_cost(OpClass::Rmw, mode) + st.access_cost(core, addr, true);
            let old = st.read_mem(addr);
            st.write_mem(addr, val);
            (cost, old)
        })
    }

    /// Fetch-and-add; returns the old value.
    pub fn fetch_add(&mut self, addr: u64, val: u64, mode: Mode) -> u64 {
        self.fetch_op(addr, mode, move |old| old.wrapping_add(val))
    }

    /// Fetch-and-sub; returns the old value.
    pub fn fetch_sub(&mut self, addr: u64, val: u64, mode: Mode) -> u64 {
        self.fetch_op(addr, mode, move |old| old.wrapping_sub(val))
    }

    /// Fetch-and-or; returns the old value.
    pub fn fetch_or(&mut self, addr: u64, val: u64, mode: Mode) -> u64 {
        self.fetch_op(addr, mode, move |old| old | val)
    }

    fn fetch_op(&mut self, addr: u64, mode: Mode, f: impl FnOnce(u64) -> u64) -> u64 {
        self.step(|st, core| {
            let cost = st.arch.op_cost(OpClass::Rmw, mode) + st.access_cost(core, addr, true);
            let old = st.read_mem(addr);
            let new = f(old);
            st.write_mem(addr, new);
            (cost, old)
        })
    }

    /// Masked store: `mem[addr] = (mem[addr] & !mask) | val`, charged as a
    /// plain store. Models sub-word stores into a wider word, e.g. the
    /// Linux qspinlock's byte store that releases the locked byte while
    /// pending/tail bits live in the same 32-bit word (paper §3.3 discusses
    /// exactly these mixed-size accesses).
    pub fn store_masked(&mut self, addr: u64, mask: u64, val: u64, mode: Mode) {
        self.step(|st, core| {
            let cost = st.arch.op_cost(OpClass::Store, mode) + st.access_cost(core, addr, true);
            let old = st.read_mem(addr);
            st.write_mem(addr, (old & !mask) | (val & mask));
            (cost, ())
        })
    }

    /// Memory fence.
    pub fn fence(&mut self, mode: Mode) {
        self.step(|st, _| (st.arch.op_cost(OpClass::Fence, mode), ()));
    }

    /// One spin-hint pause.
    pub fn pause(&mut self) {
        self.step(|st, _| (st.arch.pause_cost(), ()));
    }

    /// Local (non-memory) work of `cycles` cycles.
    pub fn work(&mut self, cycles: u64) {
        self.step(|_, _| (cycles, ()));
    }

    /// Spin with exponential backoff until `pred(value at addr)` holds;
    /// returns the satisfying value. This keeps contended simulations from
    /// drowning in poll events while preserving polling semantics.
    pub fn spin_until(&mut self, addr: u64, mode: Mode, pred: impl Fn(u64) -> bool) -> u64 {
        let mut backoff = 1u64;
        let mut polls = 0u64;
        loop {
            let v = self.load(addr, mode);
            if pred(v) {
                return v;
            }
            polls += 1;
            assert!(
                polls < 2_000_000,
                "thread {} spun 2M times on {addr:#x} (last value {v}) —                  livelocked lock implementation?",
                self.tid
            );
            self.work(self.arch_pause() * backoff);
            backoff = (backoff * 2).min(64);
        }
    }

    /// Futex-style wait: sleep in coarse quanta while `addr` still holds
    /// `expected`. Models the syscall cost asymmetry of blocking mutexes.
    pub fn futex_wait(&mut self, addr: u64, expected: u64) {
        // Syscall entry cost.
        self.work(600);
        let mut backoff = 1u64;
        loop {
            let v = self.load(addr, Mode::Acq);
            if v != expected {
                return;
            }
            self.work(800 * backoff);
            backoff = (backoff * 2).min(16);
        }
    }

    /// Futex-style wake (the wakeup itself is polled by waiters).
    pub fn futex_wake(&mut self) {
        self.work(500); // syscall cost
    }

    fn arch_pause(&self) -> u64 {
        // Constant per arch; read once without locking.
        30
    }
}

/// Result of [`run_simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutput {
    /// Final value of each probed address.
    pub duration: u64,
    /// Total operations executed (diagnostics).
    pub total_ops: u64,
}

/// Run a simulation: `threads` workers execute `body(ctx)` until their
/// virtual clock passes `cfg.duration`. Returns the final memory and
/// counters via the `finish` closure.
pub fn run_simulation<R: Send>(
    cfg: &SimConfig,
    init_mem: &HashMap<u64, u64>,
    body: impl Fn(&mut SimThread) + Sync,
    finish: impl FnOnce(&Shared) -> R,
) -> (SimOutput, R) {
    assert!(cfg.threads >= 1, "need at least one thread");
    assert!(
        cfg.threads < cfg.arch.cores(),
        "{} threads exceed the {} usable cores of {}",
        cfg.threads,
        cfg.arch.cores() - 1,
        cfg.arch.machine()
    );
    // Pin thread i to core i+1 (core 0 reserved, as in the paper §4.1.2);
    // threads fill NUMA node 0 first.
    let cores: Vec<usize> = (0..cfg.threads).map(|i| i + 1).collect();
    let shared = Shared {
        arch: cfg.arch,
        jitter_percent: cfg.jitter_percent,
        mem: init_mem.clone(),
        lines: HashMap::new(),
        clocks: vec![0; cfg.threads],
        done: vec![false; cfg.threads],
        rng: SplitMix64::new(cfg.seed),
        total_ops: 0,
    };
    let engine = Arc::new(EngineInner {
        state: Mutex::new(shared),
        cvs: (0..cfg.threads).map(|_| Condvar::new()).collect(),
    });
    std::thread::scope(|scope| {
        for (tid, &core) in cores.iter().enumerate() {
            let engine = Arc::clone(&engine);
            let body = &body;
            scope.spawn(move || {
                let mut ctx = SimThread { engine: Arc::clone(&engine), tid, core, clock_cache: 0 };
                body(&mut ctx);
                let mut st = engine.state.lock().unwrap();
                st.done[tid] = true;
                engine.wake_next(&st);
            });
        }
    });
    let st = engine.state.lock().unwrap();
    let out = SimOutput {
        duration: st.clocks.iter().copied().max().unwrap_or(0),
        total_ops: st.total_ops,
    };
    let r = finish(&st);
    (out, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(threads: usize) -> SimConfig {
        SimConfig { arch: Arch::ArmV8, threads, duration: 20_000, seed: 7, jitter_percent: 5 }
    }

    #[test]
    fn single_thread_counts_deterministically() {
        let cfg = tiny_cfg(1);
        let run = || {
            run_simulation(
                &cfg,
                &HashMap::new(),
                |ctx| {
                    while ctx.now() < 20_000 {
                        let v = ctx.load(0x40, Mode::Rlx);
                        ctx.store(0x40, v + 1, Mode::Rlx);
                    }
                },
                |st| st.read_mem(0x40),
            )
        };
        let (o1, c1) = run();
        let (o2, c2) = run();
        assert_eq!(c1, c2, "same seed, same count");
        assert_eq!(o1.total_ops, o2.total_ops);
        assert!(c1 > 100, "should make progress: {c1}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = tiny_cfg(1);
        let count = |cfg: &SimConfig| {
            run_simulation(
                cfg,
                &HashMap::new(),
                |ctx| {
                    while ctx.now() < 20_000 {
                        let v = ctx.load(0x40, Mode::Rlx);
                        ctx.store(0x40, v + 1, Mode::Rlx);
                    }
                },
                |st| st.read_mem(0x40),
            )
            .1
        };
        let a = count(&cfg);
        cfg.seed = 99;
        let b = count(&cfg);
        assert_ne!(a, b, "jitter should shift counts across seeds");
    }

    #[test]
    fn operations_are_serialized_no_lost_updates() {
        // Increments through the min-clock conductor are atomic even with
        // plain load/store pairs *within one op* (fetch_add).
        let cfg = tiny_cfg(4);
        let (_, total) = run_simulation(
            &cfg,
            &HashMap::new(),
            |ctx| {
                for _ in 0..100 {
                    ctx.fetch_add(0x80, 1, Mode::Rlx);
                }
            },
            |st| st.read_mem(0x80),
        );
        assert_eq!(total, 400);
    }

    #[test]
    fn contended_line_is_slower_than_private() {
        let shared_count = {
            let cfg = tiny_cfg(2);
            run_simulation(
                &cfg,
                &HashMap::new(),
                |ctx| {
                    while ctx.now() < 20_000 {
                        ctx.fetch_add(0x100, 1, Mode::Rlx); // same line
                    }
                },
                |st| st.read_mem(0x100),
            )
            .1
        };
        let private_sum = {
            let cfg = tiny_cfg(2);
            run_simulation(
                &cfg,
                &HashMap::new(),
                |ctx| {
                    let addr = 0x100 + ctx.tid() as u64 * 0x200; // distinct lines
                    while ctx.now() < 20_000 {
                        ctx.fetch_add(addr, 1, Mode::Rlx);
                    }
                },
                |st| st.read_mem(0x100) + st.read_mem(0x300),
            )
            .1
        };
        assert!(
            private_sum > shared_count + shared_count / 2,
            "coherence traffic should hurt: private {private_sum} vs shared {shared_count}"
        );
    }

    #[test]
    fn spin_until_sees_signal() {
        let cfg = tiny_cfg(2);
        let (_, v) = run_simulation(
            &cfg,
            &HashMap::new(),
            |ctx| {
                if ctx.tid() == 0 {
                    ctx.work(500);
                    ctx.store(0x40, 42, Mode::Rel);
                } else {
                    let v = ctx.spin_until(0x40, Mode::Acq, |v| v != 0);
                    ctx.store(0x80, v, Mode::Rlx);
                }
            },
            |st| st.read_mem(0x80),
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn sc_stores_cost_more_on_x86() {
        let count_with = |mode: Mode| {
            let cfg = SimConfig {
                arch: Arch::X86_64,
                threads: 1,
                duration: 50_000,
                seed: 3,
                jitter_percent: 0,
            };
            run_simulation(
                &cfg,
                &HashMap::new(),
                move |ctx| {
                    while ctx.now() < 50_000 {
                        let v = ctx.load(0x40, Mode::Rlx);
                        ctx.store(0x40, v + 1, mode);
                    }
                },
                |st| st.read_mem(0x40),
            )
            .1
        };
        let relaxed = count_with(Mode::Rlx);
        let seq = count_with(Mode::Sc);
        assert!(
            relaxed > seq * 3,
            "x86 sc stores should be far slower: rlx {relaxed} vs sc {seq}"
        );
    }
}
