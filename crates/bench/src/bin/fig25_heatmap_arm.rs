//! Regenerate the paper's **Figure 25**: ARM speedup heat map
//! (locks x thread counts; '.' marks cells filtered for instability).

use vsync_sim::Arch;

fn main() {
    let records = vsync_bench::full_sweep(vsync_bench::env_duration(), vsync_bench::env_reps());
    let groups = vsync_sim::group_records(&records);
    let samples: Vec<_> = vsync_sim::speedups(&groups)
        .into_iter()
        .filter(|s| s.arch == Arch::ArmV8.label())
        .collect();
    println!(
        "{}",
        vsync_sim::heat_map(
            "Fig. 25: speedups observed on ARMv8 (taishan200-128c)",
            &samples,
            &Arch::ArmV8.thread_counts()
        )
    );
}
