//! Run the complete §4 evaluation once and print every artifact — Tables
//! 2–5 and Figures 23–26 from a single sweep, then Fig. 27 — so a full
//! reproduction needs only one command:
//!
//! ```sh
//! VSYNC_DURATION=40000 VSYNC_REPS=2 \
//!   cargo run --release -p vsync-bench --bin evaluation_report
//! ```

use vsync_locks::runtime::fig27_impls;
use vsync_sim::{run_repetitions, Arch, Variant, Workload};

fn main() {
    let (duration, reps) = (vsync_bench::env_duration(), vsync_bench::env_reps());
    eprintln!("sweep: 18 locks x 2 variants x thread counts x {reps} runs x 2 archs...");
    let records = vsync_bench::full_sweep(duration, reps);

    println!("== Table 2: raw records (first and last 8 of {}) ==", records.len());
    let head: Vec<_> = records.iter().take(8).cloned().collect();
    let tail: Vec<_> = records.iter().rev().take(8).rev().cloned().collect();
    println!("{}...", vsync_sim::render_records(&head));
    println!("{}", vsync_sim::render_records(&tail));

    let groups = vsync_sim::group_records(&records);
    println!("== Table 3: grouped records ({} groups; aarch64 mcs/qspin excerpt) ==", groups.len());
    let excerpt: std::collections::BTreeMap<_, _> = groups
        .iter()
        .filter(|(k, _)| k.arch == "aarch64" && (k.algorithm == "mcs" || k.algorithm == "qspin"))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    println!("{}", vsync_sim::render_groups(&excerpt));

    println!("== Table 4: stability bands ==");
    let bands = vsync_sim::stability_bands(&groups);
    println!("{}", vsync_sim::render_stability_bands(&bands));

    println!("== Table 5: speedup summaries ==");
    let samples = vsync_sim::speedups(&groups);
    let rows = vsync_sim::summarize_speedups(&samples);
    for arch in [Arch::ArmV8, Arch::X86_64] {
        println!("{}", vsync_sim::render_speedup_summaries(&rows, arch));
    }

    for arch in [Arch::ArmV8, Arch::X86_64] {
        let stab: Vec<f64> = groups
            .iter()
            .filter(|(k, _)| k.arch == arch.label())
            .map(|(_, s)| s.stability)
            .collect();
        println!(
            "{}",
            vsync_sim::histogram(
                &format!("== Fig. 23: stability density, {} ==", arch.label()),
                &stab,
                10,
                40
            )
        );
    }
    for arch in [Arch::ArmV8, Arch::X86_64] {
        let sp: Vec<f64> =
            samples.iter().filter(|s| s.arch == arch.label()).map(|s| s.speedup).collect();
        println!(
            "{}",
            vsync_sim::histogram(
                &format!("== Fig. 24: speedup density, {} ==", arch.label()),
                &sp,
                12,
                40
            )
        );
    }
    for arch in [Arch::ArmV8, Arch::X86_64] {
        let here: Vec<_> =
            samples.iter().filter(|s| s.arch == arch.label()).cloned().collect();
        println!(
            "{}",
            vsync_sim::heat_map(
                &format!("== Fig. 25/26: speedup heat map, {} ==", arch.label()),
                &here,
                &arch.thread_counts()
            )
        );
    }

    eprintln!("fig 27: MCS implementation comparison...");
    for arch in [Arch::ArmV8, Arch::X86_64] {
        let impls = fig27_impls();
        let names: Vec<&str> = impls.iter().map(|l| l.name()).collect();
        let mut rows = Vec::new();
        for &threads in &arch.thread_counts() {
            let mut vals = Vec::new();
            for lock in &impls {
                let recs =
                    run_repetitions(lock.as_ref(), Variant::Opt, arch, threads, duration, &Workload::default(), reps);
                let mut tps: Vec<f64> = recs.iter().map(|r| r.throughput).collect();
                tps.sort_by(f64::total_cmp);
                vals.push(tps[tps.len() / 2]);
            }
            rows.push((threads, vals));
        }
        println!(
            "{}",
            vsync_sim::comparison_table(
                &format!("== Fig. 27: MCS lock implementations on {} ==", arch.label()),
                &names,
                &rows
            )
        );
    }
}
