//! Regenerate the paper's **Figure 26**: x86 speedup heat map — the
//! one-thread column dominates (up to several-fold speedups).

use vsync_sim::Arch;

fn main() {
    let records = vsync_bench::full_sweep(vsync_bench::env_duration(), vsync_bench::env_reps());
    let groups = vsync_sim::group_records(&records);
    let samples: Vec<_> = vsync_sim::speedups(&groups)
        .into_iter()
        .filter(|s| s.arch == Arch::X86_64.label())
        .collect();
    println!(
        "{}",
        vsync_sim::heat_map(
            "Fig. 26: speedups observed on x86_64 (gigabyte-96c)",
            &samples,
            &Arch::X86_64.thread_counts()
        )
    );
}
