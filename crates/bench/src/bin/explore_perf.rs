//! `explore_perf` — the AMC explorer performance matrix.
//!
//! Times the verification of the lock catalog under three configurations:
//!
//! * `baseline` — the naive closure-based reference checker, 1 worker
//!   (the pre-optimization cost model: Floyd–Warshall closures per axiom);
//! * `fast-1`   — the closure-free consistency fast path, 1 worker;
//! * `fast-N`   — the fast path with one worker per CPU.
//!
//! Every run goes through the [`Session`] pipeline (the production front
//! door), resolving locks from the name-based registry. Asserts that all
//! three configurations produce identical verdicts and
//! `complete_executions` counts, prints a table, and writes
//! `BENCH_explore.json` (validated by the in-repo JSON parser) so the
//! perf trajectory is tracked across PRs.
//!
//! Each row additionally runs the enumerate-and-dedup reference search
//! (untimed, 1 sample) and records how many graphs each strategy
//! *constructed*: `reduction = enumerate_graphs / constructed_graphs` is
//! the per-row stateless-optimality claim of the revisit search.
//!
//! ```sh
//! cargo run --release -p vsync-bench --bin explore_perf
//! ```
//!
//! Knobs: `VSYNC_BENCH_SAMPLES` (default 3), `VSYNC_WORKERS` (default:
//! available parallelism).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use vsync_core::{Report, SearchMode, Session};
use vsync_model::{CheckerKind, ModelKind};

struct Row {
    name: String,
    graphs: u64,
    events: u64,
    executions: u64,
    constructed: u64,
    duplicates: u64,
    revisits: u64,
    enumerate_graphs: u64,
    baseline: Duration,
    fast1: Duration,
    fast_n: Duration,
}

// The 11-entry matrix lives in the lock registry (shared with
// `optimize_perf` and the strategy-differential tests); row labels are
// stable so the JSON's per-row history stays diffable across PRs.

fn median_time(samples: usize, mut f: impl FnMut() -> Report) -> (Duration, Report) {
    // Discarded warmup so cold-start cost is not charged to whichever
    // configuration happens to run first (the baseline).
    let _ = std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed());
        last = Some(r);
    }
    times.sort();
    (times[times.len() / 2], last.expect("at least one sample"))
}

fn main() {
    let samples = vsync_bench::timing::env_samples().clamp(1, 5);
    let workers = std::env::var("VSYNC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .max(1);

    let matrix = vsync_locks::registry::perf_matrix();
    eprintln!(
        "explore_perf: {} locks x 3 configs x {samples} samples (fast-N uses {workers} workers)",
        matrix.len()
    );
    let mut rows = Vec::new();
    for row in matrix {
        let label = row.label;
        // Build the client program once per row, outside the timed
        // closures, so registry/program construction is not charged to
        // the explorer (a Program clone is a few hundred bytes).
        let program = row.client();
        let session = || Session::new(program.clone()).model(ModelKind::Vmm);
        let (baseline, r_base) =
            median_time(samples, || session().checker(CheckerKind::Reference).run());
        let (fast1, r_fast) = median_time(samples, || session().run());
        let (fast_n, r_par) = median_time(samples, || session().workers(workers).run());
        // The enumerate-and-dedup reference search: untimed, one sample;
        // its constructed count is the revisit reduction's denominator.
        let r_enum = session().search(SearchMode::Enumerate).run();
        assert!(
            r_base.is_verified()
                && r_fast.is_verified()
                && r_par.is_verified()
                && r_enum.is_verified(),
            "{label}: catalog lock failed to verify"
        );
        let (sb, sf, sp, se) = (
            r_base.models[0].stats,
            r_fast.models[0].stats,
            r_par.models[0].stats,
            r_enum.models[0].stats,
        );
        assert_eq!(
            sb.complete_executions, sf.complete_executions,
            "{label}: baseline/fast execution counts diverge"
        );
        assert_eq!(
            sf.complete_executions, sp.complete_executions,
            "{label}: sequential/parallel execution counts diverge"
        );
        assert_eq!(
            sf.complete_executions, se.complete_executions,
            "{label}: revisit/enumerate execution counts diverge"
        );
        eprintln!(
            "  {label:<14} baseline {baseline:>9.2?}  fast-1 {fast1:>9.2?}  fast-{workers} {fast_n:>9.2?}  ({} constructed, {} enumerated)",
            sf.constructed, se.constructed
        );
        rows.push(Row {
            name: label.to_owned(),
            graphs: sf.popped,
            events: sf.events,
            executions: sf.complete_executions,
            constructed: sf.constructed,
            duplicates: sf.duplicates,
            revisits: sf.revisits,
            enumerate_graphs: se.constructed,
            baseline,
            fast1,
            fast_n,
        });
    }

    let total = |f: fn(&Row) -> Duration| rows.iter().map(f).sum::<Duration>();
    let (tb, t1, tn) = (total(|r| r.baseline), total(|r| r.fast1), total(|r| r.fast_n));
    let speedup1 = tb.as_secs_f64() / t1.as_secs_f64().max(1e-9);
    let speedup_n = tb.as_secs_f64() / tn.as_secs_f64().max(1e-9);
    let total_graphs: u64 = rows.iter().map(|r| r.graphs).sum();
    let total_events: u64 = rows.iter().map(|r| r.events).sum();

    let total_constructed: u64 = rows.iter().map(|r| r.constructed).sum();
    let total_enumerated: u64 = rows.iter().map(|r| r.enumerate_graphs).sum();
    let reduction =
        |constructed: u64, enumerated: u64| enumerated as f64 / (constructed as f64).max(1.0);

    println!(
        "{:<14} {:>11} {:>11} {:>10} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "lock", "constructed", "enumerated", "events", "baseline", "fast-1", "fast-N", "speedup",
        "reduction"
    );
    for r in &rows {
        println!(
            "{:<14} {:>11} {:>11} {:>10} {:>11.2?} {:>11.2?} {:>11.2?} {:>8.2}x {:>8.2}x",
            r.name,
            r.constructed,
            r.enumerate_graphs,
            r.events,
            r.baseline,
            r.fast1,
            r.fast_n,
            r.baseline.as_secs_f64() / r.fast1.as_secs_f64().max(1e-9),
            reduction(r.constructed, r.enumerate_graphs),
        );
    }
    println!(
        "{:<14} {:>11} {:>11} {:>10} {:>11.2?} {:>11.2?} {:>11.2?} {:>8.2}x {:>8.2}x",
        "TOTAL",
        total_constructed,
        total_enumerated,
        total_events,
        tb,
        t1,
        tn,
        speedup1,
        reduction(total_constructed, total_enumerated),
    );
    println!(
        "fast-1: {:.0} graphs/s, {:.0} events/s | fast-{workers}: {:.0} graphs/s | speedup vs baseline: {speedup1:.2}x (1 worker), {speedup_n:.2}x ({workers} workers)",
        total_graphs as f64 / t1.as_secs_f64(),
        total_events as f64 / t1.as_secs_f64(),
        total_graphs as f64 / tn.as_secs_f64(),
    );

    // Hand-rolled JSON (the build environment has no serde).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"explore_perf\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"graphs\": {}, \"events\": {}, \"complete_executions\": {}, \
             \"constructed_graphs\": {}, \"duplicates\": {}, \"revisits\": {}, \
             \"enumerate_graphs\": {}, \"reduction\": {:.3}, \
             \"baseline_ms\": {:.3}, \"fast1_ms\": {:.3}, \"fastN_ms\": {:.3}, \
             \"graphs_per_sec_fast1\": {:.1}, \"events_per_sec_fast1\": {:.1}, \"speedup_fast1\": {:.3}}}{comma}",
            r.name,
            r.graphs,
            r.events,
            r.executions,
            r.constructed,
            r.duplicates,
            r.revisits,
            r.enumerate_graphs,
            reduction(r.constructed, r.enumerate_graphs),
            r.baseline.as_secs_f64() * 1e3,
            r.fast1.as_secs_f64() * 1e3,
            r.fast_n.as_secs_f64() * 1e3,
            r.graphs as f64 / r.fast1.as_secs_f64().max(1e-9),
            r.events as f64 / r.fast1.as_secs_f64().max(1e-9),
            r.baseline.as_secs_f64() / r.fast1.as_secs_f64().max(1e-9),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"total\": {{\"graphs\": {total_graphs}, \"events\": {total_events}, \
         \"constructed_graphs\": {total_constructed}, \
         \"enumerate_graphs\": {total_enumerated}, \"reduction\": {:.3}, \
         \"baseline_ms\": {:.3}, \"fast1_ms\": {:.3}, \"fastN_ms\": {:.3}, \
         \"graphs_per_sec_fast1\": {:.1}, \"events_per_sec_fast1\": {:.1}, \
         \"speedup_fast1\": {speedup1:.3}, \"speedup_fastN\": {speedup_n:.3}}}",
        reduction(total_constructed, total_enumerated),
        tb.as_secs_f64() * 1e3,
        t1.as_secs_f64() * 1e3,
        tn.as_secs_f64() * 1e3,
        total_graphs as f64 / t1.as_secs_f64(),
        total_events as f64 / t1.as_secs_f64(),
    );
    let _ = writeln!(json, "}}");
    // Self-check: the artifact must stay machine-readable.
    let parsed = vsync_bench::json::parse(&json).expect("BENCH_explore.json is valid JSON");
    assert_eq!(parsed.get("rows").map(|r| r.items().len()), Some(rows.len()));
    std::fs::write("BENCH_explore.json", json).expect("write BENCH_explore.json");
    eprintln!("wrote BENCH_explore.json");
}
