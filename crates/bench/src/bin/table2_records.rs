//! Regenerate the paper's **Table 2**: the raw microbenchmark records
//! (arch, algorithm, seq/opt, threads, run, count, duration, throughput)
//! for all 18 locks on both simulated platforms.

fn main() {
    let (duration, reps) = (vsync_bench::env_duration(), vsync_bench::env_reps());
    eprintln!("sweeping 18 locks x 2 variants x thread counts x {reps} runs...");
    let records = vsync_bench::full_sweep(duration, reps);
    println!("Table 2: Raw captured records ({} rows)", records.len());
    println!("{}", vsync_sim::render_records(&records));
}
