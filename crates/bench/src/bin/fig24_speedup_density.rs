//! Regenerate the paper's **Figure 24**: density of speedups per
//! architecture (mass near zero from contended cases; a long positive tail
//! on x86 from the low-contention sc-store savings).

use vsync_sim::Arch;

fn main() {
    let records = vsync_bench::full_sweep(vsync_bench::env_duration(), vsync_bench::env_reps());
    let groups = vsync_sim::group_records(&records);
    let samples = vsync_sim::speedups(&groups);
    for arch in [Arch::ArmV8, Arch::X86_64] {
        let values: Vec<f64> =
            samples.iter().filter(|s| s.arch == arch.label()).map(|s| s.speedup).collect();
        println!(
            "{}",
            vsync_sim::histogram(
                &format!("Fig. 24: speedup density on {}", arch.label()),
                &values,
                12,
                50
            )
        );
    }
}
