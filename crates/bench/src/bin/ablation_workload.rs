//! Ablation study of the workload knobs (paper §4.2.2, "Critical and
//! non-critical section sizes"):
//!
//! 1. `es_size` (work outside the critical section) does **not** change
//!    the seq-vs-opt speedup;
//! 2. `cs_size` (cache lines touched inside the critical section) shrinks
//!    it — all locks converge as the critical section grows, which is why
//!    the paper fixes `cs_size = 1`, `es_size = 0` for the final results.

use vsync_locks::runtime::{McsProfile, McsSim, TicketSim};
use vsync_sim::{run_microbench, Arch, SimConfig, SimLock, Workload};

fn speedup(seq: &dyn SimLock, opt: &dyn SimLock, threads: usize, wl: &Workload) -> f64 {
    let run = |lock: &dyn SimLock, seed: u64| {
        let cfg = SimConfig {
            arch: Arch::X86_64,
            threads,
            duration: vsync_bench::env_duration(),
            seed,
            jitter_percent: 5,
        };
        run_microbench(lock, &cfg, wl).0 as f64
    };
    run(opt, 11) / run(seq, 11) - 1.0
}

fn main() {
    let mcs_seq = McsSim::new(McsProfile::own().all_sc("mcs"));
    let mcs_opt = McsSim::new(McsProfile::own());
    let tkt_seq = TicketSim { sc: true };
    let tkt_opt = TicketSim { sc: false };

    println!("Ablation: speedup (x86_64, 2 threads) vs critical-section size");
    println!("{:<10} {:>12} {:>12}", "cs_size", "mcs", "ticket");
    for cs_size in [1usize, 2, 4, 8, 16] {
        let wl = Workload { cs_size, es_size: 0 };
        println!(
            "{:<10} {:>+12.3} {:>+12.3}",
            cs_size,
            speedup(&mcs_seq, &mcs_opt, 2, &wl),
            speedup(&tkt_seq, &tkt_opt, 2, &wl)
        );
    }

    println!("\nAblation: speedup (x86_64, 2 threads) vs non-critical work");
    println!("{:<10} {:>12} {:>12}", "es_size", "mcs", "ticket");
    for es_size in [0usize, 2, 4, 8, 16] {
        let wl = Workload { cs_size: 1, es_size };
        println!(
            "{:<10} {:>+12.3} {:>+12.3}",
            es_size,
            speedup(&mcs_seq, &mcs_opt, 2, &wl),
            speedup(&tkt_seq, &tkt_opt, 2, &wl)
        );
    }
    println!(
        "\nExpected shape (paper §4.2.2): the cs_size column decays toward 0;\n\
         the es_size column stays roughly flat."
    );
}
