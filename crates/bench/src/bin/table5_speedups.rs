//! Regenerate the paper's **Table 5**: speedups of the VSYNC-optimized
//! variants over the sc-only variants, per lock and platform
//! (max/mean/min/std over contention levels, unstable groups filtered).

use vsync_sim::Arch;

fn main() {
    let records = vsync_bench::full_sweep(vsync_bench::env_duration(), vsync_bench::env_reps());
    let groups = vsync_sim::group_records(&records);
    let samples = vsync_sim::speedups(&groups);
    let rows = vsync_sim::summarize_speedups(&samples);
    println!("Table 5: Speedups of VSYNC-optimized over sc-only variants\n");
    for arch in [Arch::ArmV8, Arch::X86_64] {
        println!("{}", vsync_sim::render_speedup_summaries(&rows, arch));
    }
}
