//! Regenerate the paper's **Table 1**: barrier optimization of the Linux
//! qspinlock. Prints the Linux history (reported numbers from the paper)
//! plus the row measured by this reproduction's push-button optimizer, and
//! the Fig. 20-style per-site assignment.
//!
//! Set `VSYNC_QUICK=1` to use only the 2-thread oracle (~seconds); the
//! default also verifies the 3-thread queue-path scenario per step.

fn main() {
    let quick = vsync_bench::env_quick();
    eprintln!(
        "optimizing qspinlock from the all-SC baseline ({} oracle)...",
        if quick { "quick 2-thread" } else { "2-thread + 3-thread" }
    );
    let result = vsync_bench::table1_experiment(quick);
    let mut rows = vsync_bench::table1_linux_rows();
    rows.push(result.row);
    println!("Table 1: Barrier optimization results for Linux's qspinlock");
    println!("{}", vsync_bench::render_table1(&rows));
    println!("Oracle scenarios: {}", result.scenarios.join(", "));
    println!(
        "Verification runs: {} ({} relaxation steps accepted)",
        result.report.verifications,
        result.report.steps.iter().filter(|s| s.accepted).count()
    );
    println!("\nPer-site assignment (cf. paper Fig. 20):");
    println!("{}", result.report.program.render_barriers());
}
