//! Regenerate the paper's **Table 3**: records grouped by (platform, lock,
//! variant, thread count) with mean, median, std and stability.

fn main() {
    let records = vsync_bench::full_sweep(vsync_bench::env_duration(), vsync_bench::env_reps());
    let groups = vsync_sim::group_records(&records);
    println!("Table 3: Grouped records ({} groups)", groups.len());
    println!("{}", vsync_sim::render_groups(&groups));
}
