//! `symmetry_perf` — thread-symmetry reduction on the symmetric lock
//! matrix.
//!
//! Runs every symmetric row of the registry's perf matrix twice through
//! the [`Session`] pipeline — symmetry-aware canonical dedup (the
//! default) vs the naive twin-exploring reference (`--no-symmetry`) —
//! and reports the explored-graph reduction alongside wall-clock medians.
//! Asserts that
//!
//! * verdicts are identical in both modes (all rows verify);
//! * symmetry never explores more graphs, prunes something on every
//!   symmetric row, and its counts are worker-count independent;
//! * **on every 3-thread row the naive exploration visits at least 2x as
//!   many graphs** — the acceptance bar of the symmetry PR (in practice
//!   the reduction approaches `3! = 6x`).
//!
//! Writes `BENCH_symmetry.json` (validated by the in-repo JSON parser)
//! next to `BENCH_explore.json` / `BENCH_optimize.json` so the reduction
//! is tracked across PRs.
//!
//! ```sh
//! cargo run --release -p vsync-bench --bin symmetry_perf
//! ```
//!
//! Knobs: `VSYNC_BENCH_SAMPLES` (default 3).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use vsync_core::{ExploreStats, Report, Session};
use vsync_model::ModelKind;

struct Row {
    name: String,
    threads: usize,
    graphs_on: u64,
    graphs_off: u64,
    pruned: u64,
    executions_on: u64,
    executions_off: u64,
    time_on: Duration,
    time_off: Duration,
}

fn median_time(samples: usize, mut f: impl FnMut() -> Report) -> (Duration, Report) {
    let _ = std::hint::black_box(f()); // discarded warmup
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed());
        last = Some(r);
    }
    times.sort();
    (times[times.len() / 2], last.expect("at least one sample"))
}

fn main() {
    let samples = vsync_bench::timing::env_samples().clamp(1, 5);
    let matrix = vsync_locks::registry::symmetric_matrix();
    eprintln!(
        "symmetry_perf: {} symmetric rows x {{on, off}} x {samples} samples",
        matrix.len()
    );

    let mut rows = Vec::new();
    for row in &matrix {
        let program = row.client();
        let session = || Session::new(program.clone()).model(ModelKind::Vmm);
        let (time_on, r_on) = median_time(samples, || session().run());
        let (time_off, r_off) = median_time(samples, || session().symmetry(false).run());
        assert!(
            r_on.is_verified() && r_off.is_verified(),
            "{}: verdicts must be identical and verified (on: {}, off: {})",
            row.label,
            r_on.models[0].verdict,
            r_off.models[0].verdict
        );
        let (on, off): (ExploreStats, ExploreStats) =
            (r_on.models[0].stats, r_off.models[0].stats);
        assert!(on.symmetry_pruned > 0, "{}: symmetric row pruned nothing", row.label);
        assert_eq!(off.symmetry_pruned, 0, "{}", row.label);
        assert!(
            on.popped <= off.popped,
            "{}: symmetry explored more ({} vs {})",
            row.label,
            on.popped,
            off.popped
        );
        // Worker-count independence of the reduced counts (spot check).
        let par = session().workers(4).run();
        assert_eq!(par.models[0].stats.popped, on.popped, "{}: parallel drift", row.label);
        if row.threads >= 3 {
            assert!(
                off.popped >= 2 * on.popped,
                "{}: acceptance bar missed — {} naive vs {} reduced graphs (< 2x)",
                row.label,
                off.popped,
                on.popped
            );
        }
        eprintln!(
            "  {:<14} on {:>8} graphs {:>9.2?}   off {:>8} graphs {:>9.2?}   ({:.2}x fewer)",
            row.label,
            on.popped,
            time_on,
            off.popped,
            time_off,
            off.popped as f64 / on.popped.max(1) as f64,
        );
        rows.push(Row {
            name: row.label.to_owned(),
            threads: row.threads,
            graphs_on: on.popped,
            graphs_off: off.popped,
            pruned: on.symmetry_pruned,
            executions_on: on.complete_executions,
            executions_off: off.complete_executions,
            time_on,
            time_off,
        });
    }

    let (g_on, g_off) = (
        rows.iter().map(|r| r.graphs_on).sum::<u64>(),
        rows.iter().map(|r| r.graphs_off).sum::<u64>(),
    );
    let (t_on, t_off) = (
        rows.iter().map(|r| r.time_on).sum::<Duration>(),
        rows.iter().map(|r| r.time_off).sum::<Duration>(),
    );
    let reduction = g_off as f64 / g_on.max(1) as f64;
    let speedup = t_off.as_secs_f64() / t_on.as_secs_f64().max(1e-9);

    println!(
        "{:<14} {:>3} {:>10} {:>10} {:>10} {:>9} {:>11} {:>11} {:>9}",
        "lock", "thr", "graphs-on", "graphs-off", "pruned", "reduction", "time-on", "time-off",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:<14} {:>3} {:>10} {:>10} {:>10} {:>8.2}x {:>11.2?} {:>11.2?} {:>8.2}x",
            r.name,
            r.threads,
            r.graphs_on,
            r.graphs_off,
            r.pruned,
            r.graphs_off as f64 / r.graphs_on.max(1) as f64,
            r.time_on,
            r.time_off,
            r.time_off.as_secs_f64() / r.time_on.as_secs_f64().max(1e-9),
        );
    }
    println!(
        "TOTAL: {g_on} vs {g_off} graphs ({reduction:.2}x fewer), {t_on:.2?} vs {t_off:.2?} ({speedup:.2}x faster)"
    );

    // Hand-rolled JSON (the build environment has no serde).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"symmetry_perf\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"graphs_on\": {}, \"graphs_off\": {}, \
             \"symmetry_pruned\": {}, \"executions_on\": {}, \"executions_off\": {}, \
             \"reduction\": {:.3}, \"on_ms\": {:.3}, \"off_ms\": {:.3}}}{comma}",
            r.name,
            r.threads,
            r.graphs_on,
            r.graphs_off,
            r.pruned,
            r.executions_on,
            r.executions_off,
            r.graphs_off as f64 / r.graphs_on.max(1) as f64,
            r.time_on.as_secs_f64() * 1e3,
            r.time_off.as_secs_f64() * 1e3,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"total\": {{\"graphs_on\": {g_on}, \"graphs_off\": {g_off}, \
         \"reduction\": {reduction:.3}, \"on_ms\": {:.3}, \"off_ms\": {:.3}, \
         \"speedup\": {speedup:.3}}}",
        t_on.as_secs_f64() * 1e3,
        t_off.as_secs_f64() * 1e3,
    );
    let _ = writeln!(json, "}}");
    // Self-check: the artifact must stay machine-readable.
    let parsed = vsync_bench::json::parse(&json).expect("BENCH_symmetry.json is valid JSON");
    assert_eq!(parsed.get("rows").map(|r| r.items().len()), Some(rows.len()));
    std::fs::write("BENCH_symmetry.json", json).expect("write BENCH_symmetry.json");
    eprintln!("wrote BENCH_symmetry.json");
}
