//! `optimize_perf` — the barrier-optimizer strategy matrix.
//!
//! Runs push-button optimization of every row of the standard 11-entry
//! lock matrix (each from its all-SC baseline) under the three
//! [`OptimizeStrategy`]s and compares *oracle-call counts*: full AMC
//! explorations, candidate verifications and witness-cache hits. Asserts
//! that
//!
//! * every strategy reaches the **identical final barrier assignment**
//!   (the differential guarantee the engine's monotonic merge provides),
//!   and
//! * the adaptive strategy pays **at least 2x fewer full explorations**
//!   than the sequential reference across the matrix (batch/bisect
//!   screening + witness-cache replays).
//!
//! Prints a table and writes `BENCH_optimize.json` (validated by the
//! in-repo JSON parser) next to `BENCH_explore.json` so the optimizer's
//! cost trajectory is tracked across PRs.
//!
//! ```sh
//! cargo run --release -p vsync-bench --bin optimize_perf
//! ```
//!
//! Knobs: `VSYNC_WORKERS` (default: available parallelism) sizes the
//! oracle and the screening pool; `VSYNC_QUICK=1` restricts the matrix to
//! the 2-thread rows (CI smoke mode). With `VSYNC_WORKERS=1` exploration
//! order — and therefore which violating graph seeds the witness cache —
//! is deterministic, so the counts (and the ratio assert) are exactly
//! reproducible; multi-worker runs may capture different witnesses and
//! shift a few candidates between cache hits and explorations.

use std::fmt::Write as _;
use std::time::Duration;

use vsync_core::{optimize, AmcConfig, OptimizationReport, OptimizeStrategy, OptimizerConfig};
use vsync_graph::Mode;
use vsync_model::ModelKind;

struct StratCost {
    verifications: u64,
    explorations: u64,
    graphs: u64,
    cache_hits: u64,
    elapsed: Duration,
}

impl StratCost {
    fn of(r: &OptimizationReport) -> StratCost {
        StratCost {
            verifications: r.verifications,
            explorations: r.explorations,
            graphs: r.explored_graphs,
            cache_hits: r.cache_hits,
            elapsed: r.elapsed,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"verifications\": {}, \"explorations\": {}, \"graphs\": {}, \"cache_hits\": {}, \"elapsed_ms\": {:.3}}}",
            self.verifications,
            self.explorations,
            self.graphs,
            self.cache_hits,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

struct Row {
    name: String,
    sites: usize,
    sequential: StratCost,
    parallel: StratCost,
    adaptive: StratCost,
}

fn main() {
    let workers = std::env::var("VSYNC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .max(1);
    let quick = vsync_bench::env_quick();

    let matrix: Vec<_> = vsync_locks::registry::perf_matrix()
        .iter()
        .filter(|e| !quick || e.threads <= 2)
        .collect();
    eprintln!(
        "optimize_perf: {} locks x 3 strategies ({workers} workers{})",
        matrix.len(),
        if quick { ", quick mode" } else { "" }
    );

    let config = |strategy: OptimizeStrategy| {
        OptimizerConfig::with_amc(
            AmcConfig::with_model(ModelKind::Vmm).with_workers(workers),
        )
        .with_strategy(strategy)
    };

    let mut rows = Vec::new();
    for entry in &matrix {
        let base = entry.client().with_all_sc();
        let seq = optimize(&base, &config(OptimizeStrategy::Sequential));
        let par = optimize(&base, &config(OptimizeStrategy::Parallel));
        let ad = optimize(&base, &config(OptimizeStrategy::Adaptive));
        for (r, s) in [(&seq, "sequential"), (&par, "parallel"), (&ad, "adaptive")] {
            assert!(r.verified, "{}: {s} optimization failed to verify", entry.label);
        }
        let modes = |r: &OptimizationReport| -> Vec<Mode> { r.program.site_modes() };
        assert_eq!(
            modes(&seq),
            modes(&par),
            "{}: parallel diverged from the sequential reference",
            entry.label
        );
        assert_eq!(
            modes(&seq),
            modes(&ad),
            "{}: adaptive diverged from the sequential reference",
            entry.label
        );
        eprintln!(
            "  {:<14} seq {:>4} explorations  par {:>4} (+{} hits)  adaptive {:>4} (+{} hits)",
            entry.label,
            seq.explorations,
            par.explorations,
            par.cache_hits,
            ad.explorations,
            ad.cache_hits
        );
        rows.push(Row {
            name: entry.label.to_owned(),
            sites: base.relaxable_sites().len(),
            sequential: StratCost::of(&seq),
            parallel: StratCost::of(&par),
            adaptive: StratCost::of(&ad),
        });
    }

    let total = |f: fn(&Row) -> u64| rows.iter().map(f).sum::<u64>();
    let seq_total = total(|r| r.sequential.explorations);
    let par_total = total(|r| r.parallel.explorations);
    let ad_total = total(|r| r.adaptive.explorations);
    let ad_hits = total(|r| r.adaptive.cache_hits);
    let seq_graphs = total(|r| r.sequential.graphs);
    let par_graphs = total(|r| r.parallel.graphs);
    let ad_graphs = total(|r| r.adaptive.graphs);
    let ratio_par = seq_total as f64 / par_total.max(1) as f64;
    let ratio_ad = seq_total as f64 / ad_total.max(1) as f64;
    let gratio_ad = seq_graphs as f64 / ad_graphs.max(1) as f64;

    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "lock", "sites", "sequential", "parallel", "adaptive", "hits(ad)", "ratio"
    );
    for r in &rows {
        println!(
            "{:<14} {:>6} {:>12} {:>12} {:>12} {:>10} {:>7.2}x",
            r.name,
            r.sites,
            r.sequential.explorations,
            r.parallel.explorations,
            r.adaptive.explorations,
            r.adaptive.cache_hits,
            r.sequential.explorations as f64 / r.adaptive.explorations.max(1) as f64
        );
    }
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>12} {:>10} {:>7.2}x",
        "TOTAL",
        rows.iter().map(|r| r.sites).sum::<usize>(),
        seq_total,
        par_total,
        ad_total,
        ad_hits,
        ratio_ad
    );
    println!(
        "oracle calls: sequential {seq_total}, parallel {par_total} ({ratio_par:.2}x vs \
         sequential), adaptive {ad_total} ({ratio_ad:.2}x fewer, {ad_hits} witness-cache hits)"
    );
    println!(
        "exploration work (popped graphs): sequential {seq_graphs}, parallel {par_graphs}, \
         adaptive {ad_graphs} ({gratio_ad:.2}x fewer)"
    );

    // The headline acceptance criterion: across the matrix, the adaptive
    // strategy must at least halve the sequential reference's count of
    // full explorations (oracle calls that actually explored).
    assert!(
        ratio_ad >= 2.0,
        "adaptive strategy must use >= 2x fewer full explorations than sequential \
         (got {seq_total} vs {ad_total}, {ratio_ad:.2}x)"
    );

    // Hand-rolled JSON (the build environment has no serde).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"optimize_perf\",");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"sites\": {}, \"sequential\": {}, \"parallel\": {}, \
             \"adaptive\": {}}}{comma}",
            r.name,
            r.sites,
            r.sequential.json(),
            r.parallel.json(),
            r.adaptive.json(),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"total\": {{\"sequential_explorations\": {seq_total}, \
         \"parallel_explorations\": {par_total}, \"adaptive_explorations\": {ad_total}, \
         \"sequential_graphs\": {seq_graphs}, \"parallel_graphs\": {par_graphs}, \
         \"adaptive_graphs\": {ad_graphs}, \
         \"adaptive_cache_hits\": {ad_hits}, \"exploration_ratio_parallel\": {ratio_par:.3}, \
         \"exploration_ratio_adaptive\": {ratio_ad:.3}, \
         \"graph_ratio_adaptive\": {gratio_ad:.3}}}"
    );
    let _ = writeln!(json, "}}");
    // Self-check: the artifact must stay machine-readable.
    let parsed = vsync_bench::json::parse(&json).expect("BENCH_optimize.json is valid JSON");
    assert_eq!(parsed.get("rows").map(|r| r.items().len()), Some(rows.len()));
    std::fs::write("BENCH_optimize.json", json).expect("write BENCH_optimize.json");
    eprintln!("wrote BENCH_optimize.json");
}
