//! `validate_trace` — Chrome-trace schema validation.
//!
//! Parses a trace file emitted by the telemetry [`TraceWriter`] (the CLI's
//! `--trace` flag) with the in-repo JSON parser and asserts the Chrome
//! trace-event schema Perfetto relies on: a top-level array whose entries
//! all carry `name`/`ph`/`pid` (and `ts` for non-metadata records), with
//! `ph` drawn from the emitted alphabet (`M`, `B`, `E`, `X`, `C`, `i`),
//! `dur` on every complete (`X`) span, and balanced `B`/`E` pairs.
//!
//! ```sh
//! # validate an existing trace
//! cargo run -p vsync-bench --bin validate_trace -- out.trace.json
//! # no argument: self-generate one from a catalog lock and validate it
//! cargo run -p vsync-bench --bin validate_trace
//! ```
//!
//! Exits non-zero (panics) on any schema violation, so CI can gate on it.

use std::sync::Arc;

use vsync_bench::json::Value;
use vsync_core::{Session, TraceWriter};
use vsync_model::ModelKind;

fn validate(src: &str) -> (usize, usize) {
    let v = vsync_bench::json::parse(src).expect("trace parses as JSON");
    let Value::Arr(events) = &v else { panic!("trace top level must be an array") };
    assert!(!events.is_empty(), "trace must contain events");
    let mut spans = 0usize;
    let mut depth = 0i64;
    for (i, ev) in events.iter().enumerate() {
        let name = ev.get("name").and_then(Value::as_str);
        assert!(name.is_some_and(|n| !n.is_empty()), "event {i} has no name");
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or_else(|| panic!("event {i} has no ph"));
        assert!(ev.get("pid").and_then(Value::as_num).is_some(), "event {i} has no pid");
        assert!(ev.get("tid").and_then(Value::as_num).is_some(), "event {i} has no tid");
        match ph {
            "M" => {} // metadata carries no timestamp
            "B" => {
                assert!(ev.get("ts").and_then(Value::as_num).is_some(), "event {i} has no ts");
                depth += 1;
            }
            "E" => {
                assert!(ev.get("ts").and_then(Value::as_num).is_some(), "event {i} has no ts");
                depth -= 1;
                assert!(depth >= 0, "event {i}: unmatched E record");
            }
            "X" => {
                assert!(ev.get("ts").and_then(Value::as_num).is_some(), "event {i} has no ts");
                assert!(
                    ev.get("dur").and_then(Value::as_num).is_some_and(|d| d >= 0.0),
                    "event {i}: X span without a duration"
                );
                spans += 1;
            }
            "C" | "i" => {
                assert!(ev.get("ts").and_then(Value::as_num).is_some(), "event {i} has no ts");
            }
            other => panic!("event {i}: unexpected ph {other:?}"),
        }
    }
    assert_eq!(depth, 0, "unbalanced B/E pairs");
    (events.len(), spans)
}

fn main() {
    let arg = std::env::args().nth(1);
    let (label, src) = match arg {
        Some(path) => {
            let src = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            (path, src)
        }
        None => {
            // Self-generate: explore a catalog lock with the trace writer
            // subscribed, exactly as the CLI's `--trace` does.
            let path = std::env::temp_dir().join("vsync_validate_trace.json");
            let entry =
                vsync_locks::registry::entry("ticketlock").expect("ticketlock is in the catalog");
            let writer =
                Arc::new(TraceWriter::create(&path).expect("create temp trace file"));
            let sink = writer.sink();
            let r = Session::new(entry.client(2, 1))
                .models(ModelKind::all())
                .on_event(move |ev| sink(ev))
                .run();
            assert!(r.is_verified(), "ticketlock must verify");
            writer.finish().expect("finish trace file");
            let src = std::fs::read_to_string(&path).expect("read generated trace");
            (path.display().to_string(), src)
        }
    };
    let (events, spans) = validate(&src);
    assert!(spans > 0, "trace must contain at least one phase span");
    println!("{label}: {events} event record(s), {spans} phase span(s) — schema ok");
}
