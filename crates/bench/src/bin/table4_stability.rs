//! Regenerate the paper's **Table 4**: experiments categorized by
//! stability (max/min throughput ratio). The paper reports ~85 % of groups
//! below 1.1 and filters >1.2 before computing speedups.

fn main() {
    let records = vsync_bench::full_sweep(vsync_bench::env_duration(), vsync_bench::env_reps());
    let groups = vsync_sim::group_records(&records);
    let bands = vsync_sim::stability_bands(&groups);
    println!("Table 4: Number of experiments categorized by stability");
    println!("{}", vsync_sim::render_stability_bands(&bands));
}
