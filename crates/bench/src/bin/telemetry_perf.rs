//! `telemetry_perf` — the telemetry overhead gate.
//!
//! Times the qspinlock-3t exploration (the repo's standing perf row)
//! twice through the [`Session`] front door: once with telemetry fully
//! disabled (the default) and once with profiling *and* an event
//! subscriber enabled — the most expensive supported configuration.
//! Asserts both runs produce identical verdicts and execution counts,
//! prints the two best times and the relative overhead, and fails if the
//! overhead exceeds the gate (default 3%, `VSYNC_TELEMETRY_MAX_OVERHEAD_PCT`
//! to override for noisy machines). Writes `BENCH_telemetry.json`
//! (validated by the in-repo JSON parser) so the overhead trajectory is
//! tracked across PRs.
//!
//! ```sh
//! cargo run --release -p vsync-bench --bin telemetry_perf
//! ```
//!
//! Knobs: `VSYNC_BENCH_SAMPLES` (default 5, clamped to 1..=5),
//! `VSYNC_WORKERS` (default 1 — single-worker keeps the comparison
//! scheduling-deterministic).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vsync_core::{Report, Session};
use vsync_model::ModelKind;

fn timed(mut f: impl FnMut() -> Report) -> (Duration, Report) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

fn main() {
    let samples = vsync_bench::timing::env_samples().clamp(1, 5);
    let workers: usize =
        std::env::var("VSYNC_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
    let max_overhead_pct: f64 = std::env::var("VSYNC_TELEMETRY_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    let entry = vsync_locks::registry::entry("qspinlock").expect("qspinlock is in the catalog");
    let program = entry.client(3, 1);
    let session = || Session::new(program.clone()).model(ModelKind::Vmm).workers(workers);

    eprintln!(
        "telemetry_perf: qspinlock-3t x 2 configs x {samples} samples \
         ({workers} worker(s), gate {max_overhead_pct}%)"
    );

    // The enabled run subscribes a minimal sink (an event counter): the
    // gate measures the instrumentation and bus cost, not a particular
    // exporter's I/O.
    let events = Arc::new(AtomicU64::new(0));
    let run_off = || session().run();
    let run_on = || {
        let n = Arc::clone(&events);
        session()
            .profile(true)
            .on_event(move |_| {
                n.fetch_add(1, Ordering::Relaxed);
            })
            .run()
    };

    // One discarded warmup per configuration, then *interleaved*
    // disabled/enabled sample pairs with min-of-N per configuration:
    // interleaving means slow machine drift hits both configs equally,
    // and the min filters one-sided load spikes (noise only ever adds
    // time), so the comparison measures instrumentation cost rather
    // than whichever block happened to share the machine with a spike.
    let _ = std::hint::black_box(run_off());
    let _ = std::hint::black_box(run_on());
    let (mut disabled, mut r_off) = timed(run_off);
    let (mut enabled, mut r_on) = timed(run_on);
    for _ in 1..samples {
        let (t_off, report_off) = timed(run_off);
        let (t_on, report_on) = timed(run_on);
        if t_off < disabled {
            (disabled, r_off) = (t_off, report_off);
        }
        if t_on < enabled {
            (enabled, r_on) = (t_on, report_on);
        }
    }

    assert!(r_off.is_verified() && r_on.is_verified(), "qspinlock-3t must verify");
    let (s_off, s_on) = (&r_off.models[0].stats, &r_on.models[0].stats);
    assert_eq!(
        s_off.complete_executions, s_on.complete_executions,
        "telemetry must not change the exploration"
    );
    assert_eq!(s_off.constructed, s_on.constructed, "telemetry must not change the exploration");
    assert!(!s_on.phases.is_empty(), "the enabled run must attribute phase time");
    let event_count = events.load(Ordering::Relaxed);
    assert!(event_count > 0, "the enabled run must emit events");

    let overhead_pct =
        (enabled.as_secs_f64() / disabled.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "config", "best_ms", "events", "overhead"
    );
    println!("{:<10} {:>12.3} {:>12} {:>10}", "disabled", disabled.as_secs_f64() * 1e3, "-", "-");
    println!(
        "{:<10} {:>12.3} {:>12} {:>9.2}%",
        "enabled",
        enabled.as_secs_f64() * 1e3,
        event_count,
        overhead_pct
    );

    // Hand-rolled JSON (the build environment has no serde).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"telemetry_perf\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"row\": \"qspinlock-3t\",");
    let _ = writeln!(json, "  \"disabled_ms\": {:.3},", disabled.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"enabled_ms\": {:.3},", enabled.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"events\": {event_count},");
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(json, "  \"gate_pct\": {max_overhead_pct:.3}");
    let _ = writeln!(json, "}}");
    let parsed = vsync_bench::json::parse(&json).expect("BENCH_telemetry.json is valid JSON");
    assert!(parsed.get("overhead_pct").is_some());
    std::fs::write("BENCH_telemetry.json", json).expect("write BENCH_telemetry.json");
    eprintln!("wrote BENCH_telemetry.json");

    assert!(
        overhead_pct <= max_overhead_pct,
        "telemetry overhead {overhead_pct:.2}% exceeds the {max_overhead_pct}% gate \
         (disabled {disabled:.2?}, enabled {enabled:.2?})"
    );
}
