//! Regenerate the paper's **Figure 23**: density of record stability per
//! architecture (most results are very stable, < 1.16).

use vsync_sim::{Arch, Variant};

fn main() {
    let records = vsync_bench::full_sweep(vsync_bench::env_duration(), vsync_bench::env_reps());
    let groups = vsync_sim::group_records(&records);
    for arch in [Arch::ArmV8, Arch::X86_64] {
        let values: Vec<f64> = groups
            .iter()
            .filter(|(k, _)| k.arch == arch.label())
            .map(|(_, s)| s.stability)
            .collect();
        let _ = Variant::Seq; // variant-agnostic density, as in the paper
        println!(
            "{}",
            vsync_sim::histogram(
                &format!("Fig. 23: stability density on {}", arch.label()),
                &values,
                10,
                50
            )
        );
    }
}
