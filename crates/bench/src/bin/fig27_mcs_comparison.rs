//! Regenerate the paper's **Figure 27**: throughput comparison of MCS lock
//! implementations (CertiKOS, Concurrency Kit, DPDK, our VSYNC-optimized)
//! across thread counts on both platforms.

use vsync_locks::runtime::fig27_impls;
use vsync_sim::{run_repetitions, Arch, Variant, Workload};

fn main() {
    let (duration, reps) = (vsync_bench::env_duration(), vsync_bench::env_reps());
    let wl = Workload::default();
    for arch in [Arch::ArmV8, Arch::X86_64] {
        let impls = fig27_impls();
        let names: Vec<&str> = impls.iter().map(|l| l.name()).collect();
        let mut rows = Vec::new();
        for &threads in &arch.thread_counts() {
            let mut vals = Vec::new();
            for lock in &impls {
                let recs = run_repetitions(
                    lock.as_ref(),
                    Variant::Opt,
                    arch,
                    threads,
                    duration,
                    &wl,
                    reps,
                );
                let mut tps: Vec<f64> = recs.iter().map(|r| r.throughput).collect();
                tps.sort_by(f64::total_cmp);
                vals.push(tps[tps.len() / 2]);
            }
            rows.push((threads, vals));
        }
        println!(
            "{}",
            vsync_sim::comparison_table(
                &format!("Fig. 27: MCS lock implementations on {}", arch.label()),
                &names,
                &rows
            )
        );
    }
}
