//! Minimal dependency-free JSON tooling for the bench drivers.
//!
//! The repo's machine-readable artifacts (`BENCH_explore.json`,
//! `Report::to_json()`) are hand-rolled because the build environment has
//! no serde; this module is the consuming side — a small recursive-descent
//! parser that preserves object key order, so tests can assert the
//! emitted JSON is well-formed and round-trippable.

use std::fmt;

/// A parsed JSON value. Object keys keep their source order — exactly
/// what the golden tests need to assert stable key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The keys of an object, in source order.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Array elements (empty for non-arrays).
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            _ => &[],
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean content, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Re-serialize (member order preserved). `parse(v.to_string())`
    /// equals `v` up to float formatting — the round-trip the tests use.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {v}", Value::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and description.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not emitted by our
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let step = match s[0] {
                        b if b < 0x80 => 1,
                        b if b < 0xe0 => 2,
                        b if b < 0xf0 => 3,
                        _ => 4,
                    };
                    out.push_str(
                        std::str::from_utf8(&s[..step]).map_err(|e| e.to_string())?,
                    );
                    self.pos += step;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        let v = parse(r#"{"b": 1, "a": [2, "x", {}]}"#).unwrap();
        assert_eq!(v.keys(), vec!["b", "a"], "key order preserved");
        assert_eq!(v.get("a").unwrap().items().len(), 3);
        assert_eq!(v.get("b").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"name": "q\"lock", "n": 3, "ok": true, "xs": [1, 2], "none": null}"#;
        let v = parse(src).unwrap();
        let re = parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"§3.3 → ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("§3.3 → ✓"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
