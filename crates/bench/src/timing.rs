//! A tiny self-contained benchmark harness.
//!
//! The container this reproduction builds in has no network access, so the
//! benches cannot use Criterion; this module provides the minimal subset the
//! experiment drivers need — warmup, repeated samples, median/min selection
//! and aligned reporting — with zero dependencies.

use std::time::{Duration, Instant};

/// One measured benchmark: its name and per-iteration sample times.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Individual sample durations, in sampling order.
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// Median sample (samples are copied and sorted).
    pub fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s[s.len() / 2]
    }

    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or_default()
    }
}

/// Run `f` once as warmup, then `samples` measured times; prints a
/// Criterion-style one-liner and returns the measurement.
pub fn bench<R>(group: &str, name: &str, samples: usize, mut f: impl FnMut() -> R) -> Measurement {
    assert!(samples >= 1);
    std::hint::black_box(f()); // warmup
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    let m = Measurement { name: format!("{group}/{name}"), samples: times };
    println!("{:<44} median {:>12.3?}  min {:>12.3?}", m.name, m.median(), m.min());
    m
}

/// Number of samples per bench, overridable with `VSYNC_BENCH_SAMPLES`.
pub fn env_samples() -> usize {
    std::env::var("VSYNC_BENCH_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_samples_and_orders_stats() {
        let m = bench("t", "noop", 3, || 1 + 1);
        assert_eq!(m.samples.len(), 3);
        assert!(m.min() <= m.median());
        assert_eq!(m.name, "t/noop");
    }
}
