//! # vsync-bench
//!
//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation. One binary per artifact (see `src/bin/`); this
//! library holds the shared logic so the benches (see [`timing`]) and the
//! binaries agree on parameters. The `explore_perf` binary additionally
//! tracks the AMC explorer's own performance across PRs
//! (`BENCH_explore.json`).
//!
//! Environment knobs for the binaries:
//!
//! * `VSYNC_DURATION` — virtual cycles per microbenchmark run (default
//!   60000; the paper runs 30 s wall-clock, we run a scaled-down but
//!   statistically stable window).
//! * `VSYNC_REPS` — repetitions per configuration (default 3; the paper
//!   uses 5).
//! * `VSYNC_QUICK` — set to `1` to restrict the Table 1 oracle to the
//!   2-thread client (fast smoke mode).

#![warn(missing_docs)]

pub mod json;
pub mod timing;

use std::time::Instant;

use vsync_core::{optimize, OptimizationReport, OptimizerConfig, Session};
use vsync_lang::Program;
use vsync_locks::model::{qspinlock_handover_scenario, qspinlock_scenario};
use vsync_locks::registry;
use vsync_locks::runtime::table5_pairs;
use vsync_model::ModelKind;
use vsync_sim::{sweep, Arch, Record, Workload};

/// Virtual duration of one microbenchmark run (cycles).
///
/// The default keeps a full two-architecture sweep to a few minutes on a
/// small machine; raise it (the paper's 30 s at 1.5 GHz would be 45e9) for
/// tighter statistics.
pub fn env_duration() -> u64 {
    std::env::var("VSYNC_DURATION").ok().and_then(|v| v.parse().ok()).unwrap_or(60_000)
}

/// Repetitions per configuration.
pub fn env_reps() -> usize {
    std::env::var("VSYNC_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Quick mode for the Table 1 experiment.
pub fn env_quick() -> bool {
    std::env::var("VSYNC_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Run the full Table-2 sweep on both architectures.
pub fn full_sweep(duration: u64, reps: usize) -> Vec<Record> {
    let wl = Workload::default();
    let mut records = Vec::new();
    for arch in [Arch::ArmV8, Arch::X86_64] {
        records.extend(sweep(&table5_pairs(arch), arch, duration, &wl, reps));
    }
    records
}

/// A row of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Version label.
    pub version: String,
    /// Acquire barriers.
    pub acq: usize,
    /// Release barriers.
    pub rel: usize,
    /// SC barriers.
    pub sc: usize,
    /// Time / date column.
    pub time: String,
    /// Correctness column.
    pub correctness: String,
}

/// The Linux qspinlock history reported in the paper's Table 1.
pub fn table1_linux_rows() -> Vec<Table1Row> {
    let row = |version: &str, acq, rel, sc, time: &str, correctness: &str| Table1Row {
        version: version.into(),
        acq,
        rel,
        sc,
        time: time.into(),
        correctness: correctness.into(),
    };
    vec![
        row("Linux 4.4", 3, 6, 6, "2015/09/11", "Not verified"),
        row("Linux 4.5", 6, 2, 1, "2015/11/09", "Barrier bug, fixed in 4.16"),
        row("Linux 4.8", 6, 3, 0, "2016/06/03", "Barrier bug, fixed in 4.16"),
        row("Linux 4.16", 6, 4, 0, "2018/02/13", "Not verified"),
        row("Linux 5.6", 6, 2, 1, "2020/01/07", "Not verified"),
    ]
}

/// Result of the qspinlock optimization experiment.
pub struct Table1Result {
    /// The optimization report (contains the optimized program).
    pub report: OptimizationReport,
    /// Our measured row.
    pub row: Table1Row,
    /// Scenarios used by the oracle.
    pub scenarios: Vec<String>,
}

/// Run the Table 1 experiment: push-button optimize the qspinlock from the
/// all-SC baseline, verifying every candidate against the 2-thread client
/// (and, unless `quick`, the 3-thread queue-path scenario). Drives the
/// registry-backed [`Session`] pipeline end to end.
pub fn table1_experiment(quick: bool) -> Table1Result {
    let base: Program =
        registry::entry("qspinlock").expect("qspinlock is registered").client(2, 1).with_all_sc();
    let mut scenarios = Vec::new();
    let mut names = vec!["2-thread client".to_owned()];
    if !quick {
        let mut s3 = qspinlock_scenario(3);
        s3.copy_modes_by_name(&base); // start the scenario all-SC too
        scenarios.push(s3);
        names.push("3-thread queue scenario".to_owned());
        // Exercises the queue hand-off (store_next/await_node/handover);
        // without it the optimizer over-relaxes the MCS link and the lock
        // loses increments at 4 threads.
        let mut sh = qspinlock_handover_scenario();
        sh.copy_modes_by_name(&base);
        scenarios.push(sh);
        names.push("queue-handover scenario".to_owned());
    }
    let start = Instant::now();
    let session_report = Session::new(base.clone())
        .model(ModelKind::Vmm)
        .optimize(OptimizerConfig::default())
        .optimize_scenarios(scenarios)
        .run();
    let run = &session_report.models[0];
    let report = match run.optimization.clone() {
        Some(o) => o,
        // The baseline failed to verify: let the optimizer produce its
        // own canonical not-verified report (one extra failed
        // verification, only on this anomalous path).
        None => optimize(&base, &OptimizerConfig::default()),
    };
    let summary = report.program.barrier_summary();
    let correctness = match (report.verified, summary.acq_rel) {
        (true, 0) => "VSYNC-verified".to_owned(),
        (true, n) => format!("VSYNC-verified (+{n} acq_rel)"),
        (false, _) => "NOT verified".to_owned(),
    };
    let row = Table1Row {
        version: "VSYNC (this reproduction)".into(),
        acq: summary.acq,
        rel: summary.rel,
        sc: summary.sc,
        time: format!("{:.1?}", start.elapsed()),
        correctness,
    };
    Table1Result { report, row, scenarios: names }
}

/// Render Table 1 (Linux history + our measured row).
pub fn render_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>4} {:>4} {:>4}  {:<12} Correctness",
        "Version", "acq", "rel", "sc", "Time"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>4} {:>4} {:>4}  {:<12} {}",
            r.version, r.acq, r.rel, r.sc, r.time, r.correctness
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_rows_match_paper() {
        let rows = table1_linux_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!((rows[0].acq, rows[0].rel, rows[0].sc), (3, 6, 6));
        assert_eq!((rows[4].acq, rows[4].rel, rows[4].sc), (6, 2, 1));
    }

    #[test]
    fn quick_table1_runs_and_verifies() {
        let r = table1_experiment(true);
        assert!(r.report.verified);
        // Strictly fewer sc sites than the all-SC baseline.
        assert!(r.report.after.sc < r.report.before.sc);
        let rendered = render_table1(&[r.row]);
        assert!(rendered.contains("VSYNC"));
    }

    #[test]
    fn env_defaults() {
        assert!(env_duration() >= 10_000);
        assert!(env_reps() >= 1);
    }
}
