//! Criterion benchmarks of the barrier optimizer (the paper's 11-minute
//! qspinlock optimization, scaled to our substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vsync_core::{optimize, AmcConfig, OptimizerConfig};
use vsync_locks::model::{mutex_client, CasLock, TicketLock, TtasLock};
use vsync_model::ModelKind;

fn cfg() -> OptimizerConfig {
    OptimizerConfig { amc: AmcConfig::with_model(ModelKind::Vmm), max_passes: 0 }
}

fn bench_optimize(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimize");
    g.sample_size(10);
    g.bench_function("caslock-2t", |b| {
        let p = mutex_client(&CasLock::default(), 2, 1).with_all_sc();
        b.iter(|| black_box(optimize(&p, &cfg())))
    });
    g.bench_function("ttas-2t", |b| {
        let p = mutex_client(&TtasLock::default(), 2, 1).with_all_sc();
        b.iter(|| black_box(optimize(&p, &cfg())))
    });
    g.bench_function("ticket-2t", |b| {
        let p = mutex_client(&TicketLock::default(), 2, 1).with_all_sc();
        b.iter(|| black_box(optimize(&p, &cfg())))
    });
    g.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
