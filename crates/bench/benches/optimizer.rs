//! Benchmarks of the barrier optimizer (the paper's 11-minute qspinlock
//! optimization, scaled to our substrate). Uses the dependency-free
//! harness in `vsync_bench::timing`.

use std::hint::black_box;
use vsync_bench::timing::{bench, env_samples};
use vsync_core::{optimize, AmcConfig, OptimizerConfig};
use vsync_locks::model::{mutex_client, CasLock, TicketLock, TtasLock};
use vsync_model::ModelKind;

fn cfg() -> OptimizerConfig {
    OptimizerConfig::with_amc(AmcConfig::with_model(ModelKind::Vmm))
}

fn main() {
    let samples = env_samples();
    let p = mutex_client(&CasLock::default(), 2, 1).with_all_sc();
    bench("optimize", "caslock-2t", samples, || black_box(optimize(&p, &cfg())));
    let p = mutex_client(&TtasLock::default(), 2, 1).with_all_sc();
    bench("optimize", "ttas-2t", samples, || black_box(optimize(&p, &cfg())));
    let p = mutex_client(&TicketLock::default(), 2, 1).with_all_sc();
    bench("optimize", "ticket-2t", samples, || black_box(optimize(&p, &cfg())));
}
