//! Criterion benchmarks of the simulator-based microbenchmark (the
//! substrate behind Tables 2-5 / Figures 23-27), at a reduced sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vsync_locks::runtime::{McsProfile, McsSim, QspinSim, TicketSim};
use vsync_sim::{run_microbench, Arch, SimConfig, SimLock, Workload};

fn one(lock: &dyn SimLock, arch: Arch, threads: usize) -> u64 {
    let cfg = SimConfig { arch, threads, duration: 100_000, seed: 3, jitter_percent: 8 };
    run_microbench(lock, &cfg, &Workload::default()).0
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated-microbench");
    g.sample_size(10);
    for threads in [1usize, 8] {
        g.bench_function(format!("mcs-opt-arm-{threads}t"), |b| {
            let lock = McsSim::new(McsProfile::own());
            b.iter(|| black_box(one(&lock, Arch::ArmV8, threads)))
        });
        g.bench_function(format!("mcs-seq-arm-{threads}t"), |b| {
            let lock = McsSim::new(McsProfile::own().all_sc("mcs"));
            b.iter(|| black_box(one(&lock, Arch::ArmV8, threads)))
        });
        g.bench_function(format!("qspin-opt-x86-{threads}t"), |b| {
            let lock = QspinSim { sc: false };
            b.iter(|| black_box(one(&lock, Arch::X86_64, threads)))
        });
        g.bench_function(format!("ticket-seq-x86-{threads}t"), |b| {
            let lock = TicketSim { sc: true };
            b.iter(|| black_box(one(&lock, Arch::X86_64, threads)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
