//! Benchmarks of the simulator-based microbenchmark (the substrate behind
//! Tables 2-5 / Figures 23-27), at a reduced sweep. Uses the
//! dependency-free harness in `vsync_bench::timing`.

use std::hint::black_box;
use vsync_bench::timing::{bench, env_samples};
use vsync_locks::runtime::{McsProfile, McsSim, QspinSim, TicketSim};
use vsync_sim::{run_microbench, Arch, SimConfig, SimLock, Workload};

fn one(lock: &dyn SimLock, arch: Arch, threads: usize) -> u64 {
    let cfg = SimConfig { arch, threads, duration: 100_000, seed: 3, jitter_percent: 8 };
    run_microbench(lock, &cfg, &Workload::default()).0
}

fn main() {
    let samples = env_samples();
    for threads in [1usize, 8] {
        let lock = McsSim::new(McsProfile::own());
        bench("simulated-microbench", &format!("mcs-opt-arm-{threads}t"), samples, || {
            black_box(one(&lock, Arch::ArmV8, threads))
        });
        let lock = McsSim::new(McsProfile::own().all_sc("mcs"));
        bench("simulated-microbench", &format!("mcs-seq-arm-{threads}t"), samples, || {
            black_box(one(&lock, Arch::ArmV8, threads))
        });
        let lock = QspinSim { sc: false };
        bench("simulated-microbench", &format!("qspin-opt-x86-{threads}t"), samples, || {
            black_box(one(&lock, Arch::X86_64, threads))
        });
        let lock = TicketSim { sc: true };
        bench("simulated-microbench", &format!("ticket-seq-x86-{threads}t"), samples, || {
            black_box(one(&lock, Arch::X86_64, threads))
        });
    }
}
