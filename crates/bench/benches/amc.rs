//! Benchmarks of the AMC explorer itself: how fast the model checker
//! verifies the paper's lock catalog (the cost that bounds the optimizer's
//! push-button loop). Uses the dependency-free harness in
//! `vsync_bench::timing` (run with `cargo bench -p vsync-bench`).

use std::hint::black_box;
use vsync_bench::timing::{bench, env_samples};
use vsync_core::{explore, AmcConfig};
use vsync_locks::model::{
    dpdk_scenario, huawei_scenario, mutex_client, CasLock, McsLock, Qspinlock, TicketLock,
    TtasLock,
};
use vsync_model::ModelKind;

fn bench_verification(samples: usize) {
    let cfg = AmcConfig::with_model(ModelKind::Vmm);
    let p = mutex_client(&CasLock::default(), 2, 1);
    bench("amc-verify", "caslock-2t", samples, || black_box(explore(&p, &cfg)));
    let p = mutex_client(&TtasLock::default(), 2, 1);
    bench("amc-verify", "ttas-2t", samples, || black_box(explore(&p, &cfg)));
    let p = mutex_client(&TicketLock::default(), 3, 1);
    bench("amc-verify", "ticket-3t", samples, || black_box(explore(&p, &cfg)));
    let p = mutex_client(&McsLock::default(), 2, 1);
    bench("amc-verify", "mcs-2t", samples, || black_box(explore(&p, &cfg)));
    let p = mutex_client(&Qspinlock, 2, 1);
    bench("amc-verify", "qspinlock-2t", samples, || black_box(explore(&p, &cfg)));
}

fn bench_bug_finding(samples: usize) {
    let cfg = AmcConfig::with_model(ModelKind::Vmm);
    let p = dpdk_scenario(false);
    bench("amc-find-bug", "dpdk-hang", samples, || black_box(explore(&p, &cfg)));
    let p = huawei_scenario(false);
    bench("amc-find-bug", "huawei-lost-update", samples, || black_box(explore(&p, &cfg)));
}

fn bench_models(samples: usize) {
    for model in [ModelKind::Sc, ModelKind::Tso, ModelKind::Vmm] {
        let cfg = AmcConfig::with_model(model);
        let p = mutex_client(&McsLock::default(), 2, 1);
        bench("amc-by-model", &format!("mcs-2t-{model}"), samples, || {
            black_box(explore(&p, &cfg))
        });
    }
}

fn main() {
    let samples = env_samples();
    bench_verification(samples);
    bench_bug_finding(samples);
    bench_models(samples);
}
