//! Criterion benchmarks of the AMC explorer itself: how fast the model
//! checker verifies the paper's lock catalog (the cost that bounds the
//! optimizer's push-button loop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vsync_core::{explore, AmcConfig};
use vsync_locks::model::{
    dpdk_scenario, huawei_scenario, mutex_client, CasLock, McsLock, Qspinlock, TicketLock,
    TtasLock,
};
use vsync_model::ModelKind;

fn bench_verification(c: &mut Criterion) {
    let cfg = AmcConfig::with_model(ModelKind::Vmm);
    let mut g = c.benchmark_group("amc-verify");
    g.sample_size(10);
    g.bench_function("caslock-2t", |b| {
        let p = mutex_client(&CasLock::default(), 2, 1);
        b.iter(|| black_box(explore(&p, &cfg)))
    });
    g.bench_function("ttas-2t", |b| {
        let p = mutex_client(&TtasLock::default(), 2, 1);
        b.iter(|| black_box(explore(&p, &cfg)))
    });
    g.bench_function("ticket-3t", |b| {
        let p = mutex_client(&TicketLock::default(), 3, 1);
        b.iter(|| black_box(explore(&p, &cfg)))
    });
    g.bench_function("mcs-2t", |b| {
        let p = mutex_client(&McsLock::default(), 2, 1);
        b.iter(|| black_box(explore(&p, &cfg)))
    });
    g.bench_function("qspinlock-2t", |b| {
        let p = mutex_client(&Qspinlock, 2, 1);
        b.iter(|| black_box(explore(&p, &cfg)))
    });
    g.finish();
}

fn bench_bug_finding(c: &mut Criterion) {
    let cfg = AmcConfig::with_model(ModelKind::Vmm);
    let mut g = c.benchmark_group("amc-find-bug");
    g.sample_size(10);
    g.bench_function("dpdk-hang", |b| {
        let p = dpdk_scenario(false);
        b.iter(|| black_box(explore(&p, &cfg)))
    });
    g.bench_function("huawei-lost-update", |b| {
        let p = huawei_scenario(false);
        b.iter(|| black_box(explore(&p, &cfg)))
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("amc-by-model");
    g.sample_size(10);
    for model in [ModelKind::Sc, ModelKind::Tso, ModelKind::Vmm] {
        let cfg = AmcConfig::with_model(model);
        g.bench_function(format!("mcs-2t-{model}"), |b| {
            let p = mutex_client(&McsLock::default(), 2, 1);
            b.iter(|| black_box(explore(&p, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_verification, bench_bug_finding, bench_models);
criterion_main!(benches);
