//! Checks of the paper's §2 meta-theory on concrete explorations:
//!
//! * Lemma 9 — the number of writes in any consistent execution is bounded
//!   by the total program text (failed await iterations generate no
//!   writes);
//! * `G^F_*` finiteness (Lemma 10) — explorations of await-heavy programs
//!   terminate without loop bounds;
//! * counterexample minimality for AT violations — the witness is finite
//!   and contains a `⊥` read (Lemma 13's stagnant graphs).

use vsync_core::{explore, AmcConfig, Verdict};
use vsync_graph::{EventKind, Mode};
use vsync_lang::{ProgramBuilder, Reg, RmwOp, Test};
use vsync_model::ModelKind;

const X: u64 = 0x10;
const Y: u64 = 0x20;

fn cfg() -> AmcConfig {
    AmcConfig::with_model(ModelKind::Vmm).collecting()
}

/// Lemma 9: every thread generates at most one write per *instruction*
/// (awaits never write in failed iterations), so writes are bounded by the
/// program text even though executions have unboundedly many read events
/// in principle.
#[test]
fn lemma9_writes_bounded_by_program_text() {
    let mut pb = ProgramBuilder::new("await-storm");
    // Thread 0: two signal writes with an await in between.
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rel);
        t.await_eq(Reg(0), Y, 1u64, Mode::Acq);
        t.store(X, 2u64, Mode::Rel);
    });
    // Thread 1: an await-rmw (failed iterations elide their writes).
    pb.thread(|t| {
        t.await_rmw(Reg(0), Y, Test::eq(0u64), RmwOp::Xchg, 1u64, Mode::AcqRel);
        t.await_eq(Reg(1), X, 2u64, Mode::Acq);
    });
    let p = pb.build().unwrap();
    let r = explore(&p, &cfg());
    assert!(r.is_verified(), "{}", r.verdict);
    let text_len: usize = (0..p.num_threads()).map(|t| p.thread_code(t as u32).len()).sum();
    for g in &r.executions {
        let writes = g.events().filter(|(_, e)| e.kind.is_write()).count();
        assert!(
            writes <= text_len,
            "execution has {writes} writes > {text_len} instructions"
        );
    }
}

/// Lemma 10 territory: an await that can observe `n` distinct writes fails
/// at most `n - 1` times in any explored graph — the wasteful filter,
/// not a user bound, caps the iterations.
#[test]
fn await_iterations_bounded_by_distinct_writes() {
    let mut pb = ProgramBuilder::new("n-writes");
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rel);
        t.store(X, 2u64, Mode::Rel);
        t.store(X, 3u64, Mode::Rel);
    });
    pb.thread(|t| {
        t.await_eq(Reg(0), X, 3u64, Mode::Acq);
    });
    let p = pb.build().unwrap();
    let r = explore(&p, &cfg());
    assert!(r.is_verified(), "{}", r.verdict);
    assert!(r.stats.complete_executions > 0);
    for g in &r.executions {
        // T1's await reads: at most 4 writes visible (init + 3), so at
        // most 3 failed iterations + the final one.
        let awaits = g
            .events()
            .filter(|(_, e)| matches!(&e.kind, EventKind::Read { awaiting: true, .. }))
            .count();
        assert!(awaits <= 4, "await polled {awaits} times");
    }
}

/// AT counterexamples are finite stagnant graphs with a pending read
/// (the shape Lemma 13 constructs).
#[test]
fn at_witnesses_are_finite_with_pending_read() {
    let mut pb = ProgramBuilder::new("hang");
    pb.thread(|t| {
        t.store(X, 1u64, Mode::Rel);
        t.store(X, 2u64, Mode::Rel);
    });
    pb.thread(|t| {
        // Waits for a value that may be overwritten before it looks: hangs
        // when it first reads 2.
        t.await_eq(Reg(0), X, 1u64, Mode::Acq);
    });
    let p = pb.build().unwrap();
    let r = explore(&p, &AmcConfig::with_model(ModelKind::Vmm));
    let Verdict::AwaitTermination(ce) = &r.verdict else {
        panic!("expected hang, got {}", r.verdict);
    };
    assert!(ce.graph.num_events() < 16, "witness should be small");
    assert_eq!(ce.graph.pending_reads().count(), 1);
    // The pending read's location has no write the await could still take:
    // the witness graph pins mo with value-2 after value-1.
    let mo = ce.graph.mo(X);
    assert_eq!(mo.len(), 2);
}

/// The compound await (`await_while(xchg(l,1) != 0)`, Fig. 3/4) explores
/// finitely and verifies: failed iterations are read-only, so the search
/// space stays bounded even though the loop is unbounded in principle.
#[test]
fn compound_await_rmw_terminates_and_verifies() {
    let mut pb = ProgramBuilder::new("tas");
    for _ in 0..3 {
        pb.thread(|t| {
            t.await_rmw(Reg(0), X, Test::eq(0u64), RmwOp::Xchg, 1u64, ("tas.lock", Mode::AcqRel));
            // CS
            t.load(Reg(1), Y, vsync_lang::Fixed(Mode::Rlx));
            t.add(Reg(2), Reg(1), 1u64);
            t.store(Y, Reg(2), vsync_lang::Fixed(Mode::Rlx));
            t.store(X, 0u64, ("tas.unlock", Mode::Rel));
        });
    }
    pb.final_check(Y, Test::eq(3u64), "no lost increment");
    let p = pb.build().unwrap();
    let r = explore(&p, &AmcConfig::with_model(ModelKind::Vmm));
    assert!(r.is_verified(), "{}", r.verdict);
    // Finite and respectable search space, no user-chosen bound anywhere.
    assert!(r.stats.popped > 100);
}

/// Graph-count sanity for Fig. 1's program *with* the handshake: the q
/// barriers keep every await terminating; the explored execution set is
/// exactly the interleavings of the two failed-iteration counts.
#[test]
fn fig1_execution_census() {
    let (locked, q) = (X, Y);
    let mut pb = ProgramBuilder::new("fig1");
    pb.thread(|t| {
        t.store(locked, 1u64, Mode::Rlx);
        t.store(q, 1u64, ("q.sig", Mode::Rel));
        t.await_eq(Reg(0), locked, 0u64, Mode::Rlx);
    });
    pb.thread(|t| {
        t.await_eq(Reg(0), q, 1u64, ("q.poll", Mode::Acq));
        t.store(locked, 0u64, Mode::Rlx);
    });
    let p = pb.build().unwrap();
    let r = explore(&p, &cfg());
    assert!(r.is_verified(), "{}", r.verdict);
    // T2's await: reads init(q)=0 at most once (wasteful filter), then 1;
    // T1's await: reads own locked=1 at most once, then T2's 0. Both mo
    // orders of locked are allowed only when consistent with the
    // handshake: census stays small and exact.
    assert_eq!(r.stats.complete_executions, 4, "{}", r.stats);
}
