//! The push-button `Session` pipeline — the front door of the crate.
//!
//! A [`Session`] takes a program to a [`Report`] in one fluent chain:
//! pick the model matrix, the worker count and the checker, attach
//! budgets ([`Session::deadline`], [`Session::max_graphs`]), subscribe to
//! periodic [`ProgressSnapshot`]s, share a [`CancelToken`] with whatever
//! supervises the run, optionally request barrier optimization — and call
//! [`Session::run`].
//!
//! ```
//! use vsync_core::Session;
//! use vsync_model::ModelKind;
//! use vsync_graph::Mode;
//! use vsync_lang::{ProgramBuilder, Reg};
//!
//! let mut pb = ProgramBuilder::new("handshake");
//! pb.thread(|t| { t.store(0x10, 1u64, Mode::Rel); });
//! pb.thread(|t| { t.await_eq(Reg(0), 0x10, 1u64, Mode::Acq); });
//! let program = pb.build().unwrap();
//!
//! let report = Session::new(program).models(ModelKind::all()).run();
//! assert!(report.is_verified());
//! assert_eq!(report.models.len(), 3);
//! ```
//!
//! ## Lifecycle
//!
//! [`Session::run`] explores the program once per model in the matrix
//! (in order, deduplicated), then — if requested — optimizes under each
//! verified model. Cancellation, deadlines and resource budgets are
//! *cooperative*: every exploration worker re-checks the token on each
//! popped work item and the deadline every few dozen items, so an
//! interrupt surfaces as a [`Verdict::Inconclusive`] (with a
//! [`crate::StopReason`] and partial counters) within microseconds,
//! never mid-graph. A worker panic is caught per work item and surfaces
//! as [`Verdict::Error`] with the failing phase. The legacy free
//! functions ([`crate::verify`], [`crate::explore`], [`crate::optimize`])
//! remain as thin wrappers over the same engine.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vsync_lang::Program;
use vsync_model::{CheckerKind, ModelKind};

use crate::explorer::explore_with;
use crate::optimize::{run_engine, OptimizationReport, OptimizeEvent, OptimizerConfig, StepFn};
use crate::telemetry::{EngineEvent, EventBus, EventFn, EventKind, PhaseProfile};
use crate::verdict::{AmcConfig, EnginePhase, ExploreStats, SearchMode, Verdict};

/// A shareable, thread-safe cancellation flag.
///
/// Clone it (cheap — an `Arc<AtomicBool>`) and hand it to whatever
/// supervises the run; every exploration worker checks it cooperatively
/// on each popped work item. Once fired it stays fired.
///
/// Tokens form a hierarchy: a [`CancelToken::child`] observes its parent's
/// cancellation but can be fired independently without affecting the
/// parent or its siblings. The optimizer uses children to cancel losing
/// candidate evaluations while the session-level token stays clean.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, unfired token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A child token: cancelled when either it or any ancestor is fired;
    /// firing the child leaves the parent (and its other children) alone.
    #[must_use]
    pub fn child(&self) -> CancelToken {
        CancelToken { flag: Arc::default(), parent: Some(Arc::new(self.clone())) }
    }

    /// Fire the token: every run sharing it (and every descendant token)
    /// winds down at its next cancellation point and reports
    /// [`Verdict::Inconclusive`] with [`crate::StopReason::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has this token (or any ancestor) been fired?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        self.parent.as_deref().is_some_and(CancelToken::is_cancelled)
    }

    /// Has this token *itself* been fired (ignoring ancestors)? Lets the
    /// optimizer distinguish a cancelled loser from a session interrupt.
    #[must_use]
    pub fn is_cancelled_locally(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A periodic view of a running exploration, delivered to the
/// [`Session::on_progress`] callback.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// The model currently being explored.
    pub model: ModelKind,
    /// Merged counters across all workers at snapshot time. Parallel
    /// workers flush their local counters in small batches, so the
    /// snapshot may trail the true totals by a few dozen items.
    pub stats: ExploreStats,
    /// Time since this model's exploration started.
    pub elapsed: Duration,
    /// Number of exploration workers.
    pub workers: usize,
}

/// Shared callback type for progress snapshots (what
/// [`Session::on_progress`] wraps; [`crate::CorpusOptions::progress`]
/// takes one directly so many sessions can share a sink).
pub type ProgressFn = Arc<dyn Fn(&ProgressSnapshot) + Send + Sync>;

/// Runtime controls threaded through the exploration hot loop: the
/// cancellation token, the absolute deadline and the progress sink.
///
/// [`crate::explore_with`] accepts one directly; [`Session`] builds it
/// from its builder state.
#[derive(Clone, Default)]
pub struct RunControl {
    /// Cooperative cancellation flag (checked on every popped item).
    pub(crate) cancel: CancelToken,
    /// Absolute wall-clock cutoff (checked every few dozen items).
    pub(crate) deadline: Option<Instant>,
    /// Progress callback, if any.
    pub(crate) progress: Option<ProgressFn>,
    /// Minimum time between two progress snapshots.
    pub(crate) progress_interval: Duration,
    /// Model label stamped onto snapshots.
    pub(crate) model: ModelKind,
    /// The session's telemetry bus, when an event sink is attached
    /// (optimizer oracles and corpus files inherit it via `..clone()`).
    pub(crate) events: Option<Arc<EventBus>>,
    /// Per-phase wall-clock profiling on/off (forced on while `events`
    /// is attached, so phase slices can flow onto the bus).
    pub(crate) profile: bool,
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("cancelled", &self.cancel.is_cancelled())
            .field("deadline", &self.deadline)
            .field("progress", &self.progress.is_some())
            .field("progress_interval", &self.progress_interval)
            .field("events", &self.events.is_some())
            .field("profile", &self.profile)
            .finish()
    }
}

impl RunControl {
    /// A control tied to `token`, with no deadline and no progress sink.
    #[must_use]
    pub fn with_cancel(token: CancelToken) -> Self {
        RunControl { cancel: token, ..RunControl::default() }
    }

    /// A control with an absolute deadline and no progress sink.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        RunControl { deadline: Some(deadline), ..RunControl::default() }
    }
}

/// The exploration of one model from a [`Session`]'s matrix.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// The memory model this run checked against.
    pub model: ModelKind,
    /// The verdict under this model.
    pub verdict: Verdict,
    /// Exploration counters (merged across workers).
    pub stats: ExploreStats,
    /// Wall-clock time of this model's exploration (excluding
    /// optimization).
    pub elapsed: Duration,
    /// Complete executions, when [`Session::collect_executions`] was set.
    pub executions: Vec<vsync_graph::ExecutionGraph>,
    /// Barrier-optimization report, when [`Session::optimize`] was
    /// requested and the verdict was `Verified`.
    pub optimization: Option<OptimizationReport>,
}

/// Structured result of [`Session::run`]: one [`ModelRun`] per model in
/// the matrix, in matrix order.
#[derive(Debug, Clone)]
#[must_use = "a Report carries the verdicts — inspect or serialize it"]
pub struct Report {
    /// Name of the verified program.
    pub program: String,
    /// Per-model results, in matrix order.
    pub models: Vec<ModelRun>,
    /// Total wall-clock time of the session.
    pub elapsed: Duration,
}

impl Report {
    /// Did every model in the matrix verify?
    #[must_use]
    pub fn is_verified(&self) -> bool {
        self.models.iter().all(|m| m.verdict.is_verified())
    }

    /// Was any run cut short by cancellation, a deadline or a resource
    /// budget (i.e. is any verdict [`Verdict::Inconclusive`])?
    #[must_use]
    pub fn is_interrupted(&self) -> bool {
        self.models.iter().any(|m| {
            matches!(m.verdict, Verdict::Inconclusive(_))
                || m.optimization.as_ref().is_some_and(|o| o.interrupted)
        })
    }

    /// Did any run die to a caught engine panic (i.e. is any verdict
    /// [`Verdict::Error`])?
    #[must_use]
    pub fn is_errored(&self) -> bool {
        self.models.iter().any(|m| {
            matches!(m.verdict, Verdict::Error(_))
                || m.optimization.as_ref().is_some_and(|o| o.error.is_some())
        })
    }

    /// The run for a specific model, if it was in the matrix.
    #[must_use]
    pub fn for_model(&self, model: ModelKind) -> Option<&ModelRun> {
        self.models.iter().find(|m| m.model == model)
    }

    /// Field-wise sum of all per-model exploration counters.
    #[must_use]
    pub fn merged_stats(&self) -> ExploreStats {
        let mut total = ExploreStats::default();
        for m in &self.models {
            total.merge(&m.stats);
        }
        total
    }

    /// Human-readable multi-line report: one line per model, plus the
    /// rendered counterexample of the first failing model.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}: {} ({:.1?})", self.program, self.summary_word(), self.elapsed);
        for m in &self.models {
            let _ =
                writeln!(out, "  {:<4} {} [{}] ({:.1?})", m.model, m.verdict, m.stats, m.elapsed);
            if let Some(o) = &m.optimization {
                let _ = write!(out, "{}", indent(&o.render(), "  "));
            }
        }
        if let Some(ce) = self.models.iter().find_map(|m| m.verdict.counterexample()) {
            let _ = writeln!(out, "counterexample:\n{}", ce.graph.render());
        }
        out
    }

    fn summary_word(&self) -> &'static str {
        if self.is_verified() {
            "verified"
        } else if self.is_errored() {
            "engine error"
        } else if self.is_interrupted() {
            "inconclusive"
        } else {
            "NOT verified"
        }
    }

    /// Serialize the report as JSON (dependency-free, stable key order).
    ///
    /// The schema is fixed and keys always appear in the same order, so
    /// tooling may diff two reports textually:
    ///
    /// ```text
    /// {"program", "verified", "interrupted", "elapsed_ms", "models": [
    ///    {"model", "verdict", "stop_reason", "message", "counterexample",
    ///     "elapsed_ms",
    ///     "stats": {popped, pushed, constructed, duplicates,
    ///               symmetry_pruned, inconsistent, wasteful, revisits,
    ///               complete_executions, blocked_graphs, events,
    ///               frontier_dropped, probes,
    ///               "phases": {"<phase>": {count, total_ms, max_ms}}},
    ///     "optimization": null | {"verified", "interrupted", "error",
    ///        "strategy", "verifications", "explorations",
    ///        "explored_graphs", "cache_hits", "elapsed_ms", "before",
    ///        "after", "steps": [{"site", "from", "to", "accepted"}]}}]}
    /// ```
    ///
    /// `verdict` is one of `"verified"`, `"safety"`, `"await_termination"`,
    /// `"fault"`, `"inconclusive"`, `"error"`; `stop_reason` is `null`
    /// unless the verdict is inconclusive, in which case it is one of
    /// `"cancelled"`, `"deadline"`, `"max_graphs"`, `"memory_budget"`,
    /// `"dedup_budget"`; `message` carries the failure, interrupt or
    /// engine-error description (`null` when verified) and
    /// `counterexample` the rendered witness graph (`null` unless a
    /// violation was found).
    #[must_use]
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"program\": {}, \"verified\": {}, \"interrupted\": {}, \"elapsed_ms\": {:.3}, \"models\": [",
            json_str(&self.program),
            self.is_verified(),
            self.is_interrupted(),
            self.elapsed.as_secs_f64() * 1e3,
        );
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"model\": {}, \"verdict\": {}, \"stop_reason\": {}, \"message\": {}, \"counterexample\": {}, \"elapsed_ms\": {:.3}, \"stats\": {}, \"optimization\": {}}}",
                json_str(&m.model.to_string()),
                json_str(verdict_kind(&m.verdict)),
                m.verdict
                    .stop_reason()
                    .map_or("null".to_owned(), |r| json_str(r.key())),
                verdict_message(&m.verdict),
                m.verdict
                    .counterexample()
                    .map_or("null".to_owned(), |ce| json_str(&ce.graph.render())),
                m.elapsed.as_secs_f64() * 1e3,
                stats_json(&m.stats),
                m.optimization.as_ref().map_or("null".to_owned(), optimization_json),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Stable JSON-kind tag for a verdict.
pub(crate) fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Safety(_) => "safety",
        Verdict::AwaitTermination(_) => "await_termination",
        Verdict::Fault(_) => "fault",
        Verdict::Inconclusive(_) => "inconclusive",
        Verdict::Error(_) => "error",
    }
}

fn verdict_message(v: &Verdict) -> String {
    match v {
        Verdict::Verified => "null".to_owned(),
        Verdict::Safety(ce) | Verdict::AwaitTermination(ce) => json_str(&ce.message),
        Verdict::Fault(m) => json_str(m),
        Verdict::Inconclusive(i) => json_str(&i.to_string()),
        Verdict::Error(e) => json_str(&e.to_string()),
    }
}

fn stats_json(s: &ExploreStats) -> String {
    format!(
        "{{\"popped\": {}, \"pushed\": {}, \"constructed\": {}, \"duplicates\": {}, \
         \"symmetry_pruned\": {}, \
         \"inconsistent\": {}, \"wasteful\": {}, \"revisits\": {}, \
         \"complete_executions\": {}, \"blocked_graphs\": {}, \"events\": {}, \
         \"frontier_dropped\": {}, \"probes\": {}, \"phases\": {}}}",
        s.popped,
        s.pushed,
        s.constructed,
        s.duplicates,
        s.symmetry_pruned,
        s.inconsistent,
        s.wasteful,
        s.revisits,
        s.complete_executions,
        s.blocked_graphs,
        s.events,
        s.frontier_dropped,
        s.probes,
        phases_json(&s.phases)
    )
}

/// Serialize a [`PhaseProfile`]: one member per phase with recorded
/// spans, in [`EnginePhase::ALL`](crate::EnginePhase::ALL) order.
/// Profiling-off runs (the default) serialize as `{}`, keeping the
/// schema deterministic.
pub(crate) fn phases_json(p: &PhaseProfile) -> String {
    use fmt::Write as _;
    let mut out = String::from("{");
    for (phase, s) in p.iter().filter(|(_, s)| s.count > 0) {
        if out.len() > 1 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{}\": {{\"count\": {}, \"total_ms\": {:.3}, \"max_ms\": {:.3}}}",
            phase.key(),
            s.count,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e6
        );
    }
    out.push('}');
    out
}

fn summary_json(s: &vsync_lang::BarrierSummary) -> String {
    format!(
        "{{\"rlx\": {}, \"acq\": {}, \"rel\": {}, \"acq_rel\": {}, \"sc\": {}}}",
        s.rlx, s.acq, s.rel, s.acq_rel, s.sc
    )
}

fn optimization_json(o: &OptimizationReport) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"verified\": {}, \"interrupted\": {}, \"error\": {}, \"strategy\": {}, \
         \"verifications\": {}, \"explorations\": {}, \"explored_graphs\": {}, \
         \"cache_hits\": {}, \"elapsed_ms\": {:.3}, \"before\": {}, \"after\": {}, \"steps\": [",
        o.verified,
        o.interrupted,
        o.error.as_ref().map_or("null".to_owned(), |e| json_str(&e.to_string())),
        json_str(&o.strategy.to_string()),
        o.verifications,
        o.explorations,
        o.explored_graphs,
        o.cache_hits,
        o.elapsed.as_secs_f64() * 1e3,
        summary_json(&o.before),
        summary_json(&o.after),
    );
    for (i, s) in o.steps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        // Step sites are stored as indices; resolve to names here only.
        let _ = write!(
            out,
            "{{\"site\": {}, \"from\": {}, \"to\": {}, \"accepted\": {}}}",
            json_str(o.site_name(s)),
            json_str(&s.from.to_string()),
            json_str(&s.to.to_string()),
            s.accepted
        );
    }
    out.push_str("]}");
    out
}

/// Escape a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn indent(s: &str, pad: &str) -> String {
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}

/// Builder for one push-button verification run: model matrix, workers,
/// budgets, progress, cancellation, optimization — then [`Session::run`].
#[must_use = "a Session does nothing until .run() is called"]
pub struct Session {
    program: Program,
    models: Vec<ModelKind>,
    config: AmcConfig,
    deadline: Option<Duration>,
    cancel: CancelToken,
    progress: Option<ProgressFn>,
    progress_interval: Duration,
    optimizer: Option<OptimizerConfig>,
    optimize_scenarios: Vec<Program>,
    optimize_steps: Option<StepFn>,
    events: Option<EventFn>,
    /// A pre-built bus injected by the corpus runner so many sessions
    /// share one sequence counter and clock (wins over `events`).
    shared_bus: Option<Arc<EventBus>>,
    profile: bool,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("program", &self.program.name())
            .field("models", &self.models)
            .field("config", &self.config)
            .field("deadline", &self.deadline)
            .field("optimize", &self.optimizer.is_some())
            .field("events", &(self.events.is_some() || self.shared_bus.is_some()))
            .field("profile", &self.profile)
            .finish()
    }
}

impl Session {
    /// Start a session over `program`, with the default single-model
    /// matrix (`[ModelKind::Vmm]`) and default [`AmcConfig`].
    pub fn new(program: Program) -> Session {
        let config = AmcConfig::default();
        Session {
            program,
            models: vec![config.model],
            config,
            deadline: None,
            cancel: CancelToken::new(),
            progress: None,
            progress_interval: Duration::from_millis(250),
            optimizer: None,
            optimize_scenarios: Vec::new(),
            optimize_steps: None,
            events: None,
            shared_bus: None,
            profile: false,
        }
    }

    /// Start a session from litmus DSL source text (see the `vsync-dsl`
    /// crate for the format). The session's model matrix is taken from
    /// the file's `expect` annotations, in annotation order; a file
    /// without annotations keeps the default matrix. The annotations'
    /// *verdicts* are not judged here — use [`crate::check_source`] (or
    /// the `vsync check` CLI) for expectation checking.
    ///
    /// ```
    /// use vsync_core::Session;
    ///
    /// let report = Session::from_source(r#"
    ///     litmus "handshake"
    ///     thread { store.rel flag, 1 }
    ///     thread { r0 = await_eq.acq flag, 1 }
    ///     expect vmm: verified
    /// "#).expect("well-formed").run();
    /// assert!(report.is_verified());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the first parse or lowering [`vsync_dsl::Diagnostic`].
    pub fn from_source(source: &str) -> Result<Session, vsync_dsl::Diagnostic> {
        let test = vsync_dsl::compile(source)?;
        let mut session = Session::new(test.program);
        if !test.expectations.is_empty() {
            session = session.models(test.expectations.iter().map(|e| e.model));
        }
        Ok(session)
    }

    /// [`Session::from_source`] for a `.litmus` file on disk; the path is
    /// stamped onto any diagnostic.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SourceError`] for unreadable or unparsable files.
    pub fn from_path(path: impl AsRef<std::path::Path>) -> Result<Session, crate::SourceError> {
        let path = path.as_ref();
        let label = path.display().to_string();
        let source =
            std::fs::read_to_string(path).map_err(|e| crate::SourceError::Io(label.clone(), e))?;
        Session::from_source(&source).map_err(|d| crate::SourceError::Parse(d.with_file(label)))
    }

    /// Check against a single memory model.
    pub fn model(self, model: ModelKind) -> Session {
        self.models([model])
    }

    /// Check against a matrix of memory models, in order. Duplicates are
    /// dropped (first occurrence wins). An *empty* matrix is refused —
    /// the previous matrix is kept — so a dynamically-filtered list that
    /// matches nothing can never produce a vacuously "verified" report.
    pub fn models(mut self, models: impl IntoIterator<Item = ModelKind>) -> Session {
        let mut matrix = Vec::new();
        for m in models {
            if !matrix.contains(&m) {
                matrix.push(m);
            }
        }
        if !matrix.is_empty() {
            self.models = matrix;
        }
        self
    }

    /// Explore with `workers` threads per model (`1` = the exact
    /// sequential algorithm; verdicts are worker-count independent).
    pub fn workers(mut self, workers: usize) -> Session {
        self.config.workers = workers.max(1);
        self
    }

    /// Select the consistency-checker implementation.
    pub fn checker(mut self, checker: CheckerKind) -> Session {
        self.config.checker = checker;
        self
    }

    /// Select the exploration search strategy (default
    /// [`SearchMode::Revisit`]): the revisit-driven search constructs each
    /// porf-consistent graph at most once; [`SearchMode::Enumerate`] is
    /// the frontier-enumeration reference algorithm (the CLI's
    /// `--search enumerate`). Verdicts and complete-execution counts are
    /// strategy-independent.
    pub fn search(mut self, search: SearchMode) -> Session {
        self.config.search = search;
        self
    }

    /// Enable or disable thread-symmetry reduction (default on): with it,
    /// each orbit of executions under permutations of template-identical
    /// threads is explored once through its canonical representative, and
    /// pruned twins are reported as `symmetry_pruned`. Verdicts are
    /// unchanged; exploration counts become per-orbit counts. Disable to
    /// recover the naive twin-exploring counts as a reference oracle
    /// (the CLI's `--no-symmetry`).
    pub fn symmetry(mut self, enabled: bool) -> Session {
        self.config.symmetry = enabled;
        self
    }

    /// Wall-clock budget for the whole session (all models and the
    /// optimization phase together). When it expires, the current
    /// exploration returns [`Verdict::Inconclusive`] with
    /// [`crate::StopReason::DeadlineExceeded`] and the remaining matrix
    /// entries are reported as inconclusive without running.
    pub fn deadline(mut self, budget: Duration) -> Session {
        self.deadline = Some(budget);
        self
    }

    /// Hard cap on popped work items per exploration (0 = unlimited);
    /// exceeding it yields [`Verdict::Inconclusive`] with
    /// [`crate::StopReason::MaxGraphs`] and partial counters.
    pub fn max_graphs(mut self, max_graphs: u64) -> Session {
        self.config.max_graphs = max_graphs;
        self
    }

    /// Approximate heap budget for one exploration, in bytes (0 =
    /// unlimited). Covers the live work frontier and the dedup table;
    /// exhaustion degrades the run to [`Verdict::Inconclusive`] with
    /// [`crate::StopReason::MemoryBudget`] instead of aborting the
    /// process.
    pub fn max_memory_bytes(mut self, bytes: u64) -> Session {
        self.config.budget.max_memory_bytes = bytes;
        self
    }

    /// Hard cap on dedup-table entries per exploration (0 = unlimited);
    /// exhaustion degrades the run to [`Verdict::Inconclusive`] with
    /// [`crate::StopReason::DedupBudget`].
    pub fn max_dedup_entries(mut self, entries: u64) -> Session {
        self.config.budget.max_dedup_entries = entries;
        self
    }

    /// Keep every complete execution in the [`ModelRun`] (off by default;
    /// memory-hungry on large programs).
    pub fn collect_executions(mut self) -> Session {
        self.config.collect_executions = true;
        self
    }

    /// Replace the whole [`AmcConfig`] (model is still overridden per
    /// matrix entry). For knobs without a dedicated builder method.
    pub fn amc_config(mut self, config: AmcConfig) -> Session {
        self.config = config;
        self
    }

    /// Subscribe to periodic [`ProgressSnapshot`]s from the exploration
    /// hot loop. The callback runs on exploration worker threads.
    pub fn on_progress(
        mut self,
        callback: impl Fn(&ProgressSnapshot) + Send + Sync + 'static,
    ) -> Session {
        self.progress = Some(Arc::new(callback));
        self
    }

    /// Minimum interval between progress snapshots (default 250 ms;
    /// `Duration::ZERO` snapshots at every cadence point — test use).
    pub fn progress_interval(mut self, interval: Duration) -> Session {
        self.progress_interval = interval;
        self
    }

    /// A [`CancelToken`] shared with this session: fire it from any
    /// thread to wind the run down at the next cancellation point.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Adopt an external [`CancelToken`] instead of the session's own —
    /// how a supervisor (e.g. the corpus runner) shares one token across
    /// many sessions. Tokens previously handed out by
    /// [`Session::cancel_token`] stop affecting this session.
    pub fn with_cancel(mut self, token: CancelToken) -> Session {
        self.cancel = token;
        self
    }

    /// After each model that verifies, run push-button barrier
    /// optimization under that model. The `config`'s AMC settings are
    /// overridden by the session's (model, workers, checker, budgets);
    /// `max_passes` is honored, and a `cancel` token on the config is
    /// respected in addition to the session's own.
    pub fn optimize(mut self, config: OptimizerConfig) -> Session {
        self.optimizer = Some(config);
        self
    }

    /// Extra scenarios the optimization oracle must also verify (with the
    /// candidate barrier assignment transferred by site name) — the
    /// multi-scenario oracle of the qspinlock experiment.
    pub fn optimize_scenarios(mut self, scenarios: Vec<Program>) -> Session {
        self.optimize_scenarios = scenarios;
        self
    }

    /// Subscribe to per-step [`OptimizeEvent`]s from the optimization
    /// phase (each relaxation attempt as it is decided). The callback may
    /// run on optimizer worker threads. A callback set directly on the
    /// [`OptimizerConfig`] takes precedence.
    pub fn on_optimize_step(
        mut self,
        callback: impl Fn(&OptimizeEvent<'_>) + Send + Sync + 'static,
    ) -> Session {
        self.optimize_steps = Some(Arc::new(callback));
        self
    }

    /// Subscribe to the session's typed telemetry stream: every
    /// [`EngineEvent`] — lifecycle, per-worker stats deltas and phase
    /// slices, optimizer steps, budget warnings, faults — in one
    /// sequence-numbered channel. Attaching a sink also enables
    /// per-phase profiling (as [`Session::profile`]). The callback runs
    /// on whichever engine thread emits; with one exploration worker the
    /// stream is fully deterministic (see DESIGN.md §13).
    pub fn on_event(
        mut self,
        callback: impl Fn(&EngineEvent) + Send + Sync + 'static,
    ) -> Session {
        self.events = Some(Arc::new(callback));
        self
    }

    /// Enable per-phase wall-clock profiling: both exploration drivers
    /// time their engine phases into the run's
    /// [`ExploreStats::phases`] [`PhaseProfile`] (surfaced in
    /// [`Report::to_json`] and [`render_metrics`](crate::render_metrics)).
    /// Off by default — the disabled path is a single branch per phase
    /// transition, gated ≤ 3% overhead in CI.
    pub fn profile(mut self, on: bool) -> Session {
        self.profile = on;
        self
    }

    /// Share a pre-built [`EventBus`] (corpus runner): many sessions, one
    /// sequence counter and clock.
    pub(crate) fn with_event_bus(mut self, bus: Arc<EventBus>) -> Session {
        self.shared_bus = Some(bus);
        self
    }

    /// Run the pipeline: explore each model in the matrix, optimize the
    /// verified ones if requested, and assemble the [`Report`].
    pub fn run(self) -> Report {
        let started = Instant::now();
        let bus = self
            .shared_bus
            .clone()
            .or_else(|| self.events.clone().map(|sink| Arc::new(EventBus::new(sink))));
        let control = RunControl {
            cancel: self.cancel.clone(),
            deadline: self.deadline.map(|d| started + d),
            progress: self.progress.clone(),
            progress_interval: self.progress_interval,
            model: self.config.model,
            events: bus.clone(),
            // Phase slices only flow when the tracker records, so an
            // attached sink forces profiling on.
            profile: self.profile || bus.is_some(),
        };
        if let Some(bus) = &bus {
            bus.emit(EventKind::SessionStart {
                program: self.program.name().to_owned(),
                models: self.models.len(),
            });
        }
        let mut runs = Vec::new();
        for &model in &self.models {
            let mut config = self.config.clone();
            config.model = model;
            let control = RunControl { model, ..control.clone() };
            if let Some(bus) = &bus {
                bus.emit(EventKind::ExploreStart { model, workers: config.workers.max(1) });
            }
            let t0 = Instant::now();
            let result = explore_with(&self.program, &config, &control);
            if let Some(bus) = &bus {
                bus.emit(EventKind::ExploreFinish { model, verdict: verdict_kind(&result.verdict) });
                match &result.verdict {
                    Verdict::Inconclusive(i) => {
                        bus.emit(EventKind::BudgetWarning { model, reason: i.reason.key() });
                    }
                    Verdict::Error(e) => {
                        bus.emit(EventKind::EngineFault {
                            model,
                            phase: e.phase,
                            payload: e.payload.clone(),
                        });
                    }
                    _ => {}
                }
            }
            let mut stats = result.stats;
            let optimization = match (&self.optimizer, &result.verdict) {
                (Some(ocfg), Verdict::Verified) => {
                    let opt = self.run_optimizer(model, &config, ocfg, &control);
                    // Attribute the optimizer's wall clock as one
                    // `Optimize` span so the per-phase profile covers the
                    // whole model run, not just the exploration.
                    if control.profile {
                        stats.phases.record(EnginePhase::Optimize, opt.elapsed);
                    }
                    Some(opt)
                }
                _ => None,
            };
            runs.push(ModelRun {
                model,
                verdict: result.verdict,
                stats,
                elapsed: t0.elapsed(),
                executions: result.executions,
                optimization,
            });
        }
        let report = Report {
            program: self.program.name().to_owned(),
            models: runs,
            elapsed: started.elapsed(),
        };
        if let Some(bus) = &bus {
            bus.emit(EventKind::SessionFinish { verified: report.is_verified() });
        }
        report
    }

    /// One optimization run under `model`, sharing the session's
    /// cancellation token and deadline (every candidate verification is a
    /// cancellation point and in-flight explorations observe the token
    /// directly; progress snapshots are not emitted — the per-candidate
    /// explorations are too short to be meaningful). The strategy, pass
    /// cap and caller-attached cancel token come from the
    /// [`OptimizerConfig`]; the AMC settings (model, workers, checker,
    /// budgets) are the session's.
    ///
    /// The session just verified `self.program` under this exact config,
    /// so the engine's initial verification skips the (expensive) primary
    /// re-exploration and only checks scenarios.
    fn run_optimizer(
        &self,
        model: ModelKind,
        amc: &AmcConfig,
        ocfg: &OptimizerConfig,
        control: &RunControl,
    ) -> OptimizationReport {
        let mut config = ocfg.clone();
        config.amc = amc.clone();
        if config.on_step.is_none() {
            config.on_step = self.optimize_steps.clone();
        }
        if let Some(bus) = control.events.clone() {
            // Forward every optimizer step onto the event bus, still
            // honoring any user callback.
            let prev = config.on_step.take();
            config.on_step = Some(Arc::new(move |e: &OptimizeEvent<'_>| {
                bus.emit(EventKind::OptimizeStep {
                    pass: e.pass,
                    site: e.site.to_owned(),
                    from: e.step.from,
                    to: e.step.to,
                    accepted: e.step.accepted,
                });
                if let Some(prev) = &prev {
                    prev(e);
                }
            }));
        }
        let oracle_control = RunControl { progress: None, model, ..control.clone() };
        run_engine(&self.program, &self.optimize_scenarios, &config, oracle_control, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::{Inconclusive, StopReason};
    use vsync_graph::Mode;
    use vsync_lang::{ProgramBuilder, Reg};

    fn handshake() -> Program {
        let mut pb = ProgramBuilder::new("handshake");
        pb.thread(|t| {
            t.store(0x10, 1u64, Mode::Rel);
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), 0x10, 1u64, Mode::Acq);
        });
        pb.build().unwrap()
    }

    #[test]
    fn from_path_on_missing_file_names_the_path() {
        let err = Session::from_path("/nonexistent/dir/mp.litmus")
            .expect_err("a missing file must be a structured error");
        let crate::SourceError::Io(path, _) = &err else {
            panic!("expected SourceError::Io, got {err}");
        };
        assert_eq!(path, "/nonexistent/dir/mp.litmus");
        assert!(err.to_string().contains("cannot read /nonexistent/dir/mp.litmus"), "{err}");
    }

    #[test]
    fn session_matrix_dedups_and_orders() {
        let report =
            Session::new(handshake()).models([ModelKind::Tso, ModelKind::Sc, ModelKind::Tso]).run();
        let kinds: Vec<ModelKind> = report.models.iter().map(|m| m.model).collect();
        assert_eq!(kinds, vec![ModelKind::Tso, ModelKind::Sc]);
        assert!(report.is_verified());
        assert!(!report.is_interrupted());
        assert!(report.for_model(ModelKind::Sc).is_some());
        assert!(report.for_model(ModelKind::Vmm).is_none());
        let merged = report.merged_stats();
        assert_eq!(merged.popped, report.models.iter().map(|m| m.stats.popped).sum::<u64>());
    }

    #[test]
    fn cancelled_token_interrupts_before_work() {
        let s = Session::new(handshake());
        s.cancel_token().cancel();
        let report = s.run();
        assert!(report.is_interrupted());
        assert!(matches!(
            report.models[0].verdict,
            Verdict::Inconclusive(Inconclusive { reason: StopReason::Cancelled, .. })
        ));
        // No work item was processed.
        assert_eq!(report.models[0].stats.popped, 0);
    }

    #[test]
    fn empty_model_matrix_is_refused() {
        let report = Session::new(handshake()).models(std::iter::empty::<ModelKind>()).run();
        assert_eq!(report.models.len(), 1, "default matrix kept");
        assert_eq!(report.models[0].model, ModelKind::Vmm);
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_render_mentions_every_model() {
        let report = Session::new(handshake()).models(ModelKind::all()).run();
        let text = report.render();
        for m in ModelKind::all() {
            assert!(text.contains(&m.to_string()), "missing {m} in:\n{text}");
        }
        assert!(text.contains("verified"));
    }
}
