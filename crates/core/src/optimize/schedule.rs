//! One optimization pass of the parallel/adaptive strategies: concurrent
//! candidate screening, a single merged re-verification, and the
//! monotonic fallback that keeps the result identical to the sequential
//! reference.
//!
//! ## Why screening against the *pass-start* baseline is sound
//!
//! Within a pass the sequential loop's accumulated program only ever gets
//! *weaker*. By monotonicity (a strengthening of a verified assignment
//! verifies), a candidate that fails against the pass-start baseline `B`
//! also fails against every weaker accumulated baseline — so rejections
//! established concurrently against `B` transfer verbatim to the
//! sequential accept order and can be skipped forever. Acceptances do
//! *not* transfer downward, which is why the pass re-verifies the merged
//! assignment `M` (all per-site first-verifying candidates applied to `B`)
//! exactly once: if `M` verifies, an induction over the site order shows
//! the sequential loop would have accepted precisely the same candidates
//! (DESIGN.md §7.3). If `M` fails — or any screening rejection was a
//! non-monotone fault — the pass falls back to replaying the sequential
//! accept order, reusing the monotone rejections and the witness cache,
//! which reproduces the reference result by construction.
//!
//! ## Cancel of losers
//!
//! Candidates of one site are ordered weakest-first and the first
//! verifying one wins, so the moment rank `k` verifies, every still-queued
//! or in-flight candidate of the same site with rank `> k` is moot. Each
//! task owns a [`CancelToken::child`] of the session token; winners fire
//! the losers' tokens and the explorer winds the cancelled evaluations
//! down at their next cancellation point.
//!
//! [`CancelToken::child`]: crate::session::CancelToken::child

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use vsync_graph::Mode;
use vsync_lang::Program;

use crate::session::CancelToken;

use super::{CheckOutcome, Ctx, OptimizationStep, OptimizePhase};

/// Lock with poison recovery: probe panics are already isolated inside
/// `check_single`, so a poisoned status table is still consistent.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Screening status of one (site, candidate-rank) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskStatus {
    /// Not yet decided (only observable after an aborted pass).
    Pending,
    /// Verifies against the pass-start baseline.
    Verified,
    /// Fails against the pass-start baseline with a genuine model
    /// violation — monotone, so it fails against every weaker baseline
    /// and is pruned from the fallback walk.
    Refuted,
    /// Rejected without a violation witness (a fault): not monotone, must
    /// be re-decided by the fallback.
    Rejected,
    /// Cancelled as a loser (a weaker candidate of the same site already
    /// verified) — never consulted.
    Skipped,
}

/// Outcome of one pass.
pub(crate) struct PassResult {
    /// Did the pass accept at least one relaxation?
    pub changed: bool,
    /// Was the pass cut short by a session interrupt? (`acc` then holds
    /// only fully verified accepts.)
    pub interrupted: bool,
}

/// One site's work for this pass.
struct SiteWork {
    site: u32,
    from: Mode,
    /// Candidate modes, weakest first.
    cands: Vec<Mode>,
}

/// Run one pass over `acc`: screen, merge, commit (or fall back). On
/// return `acc` is the pass's resulting assignment.
pub(crate) fn run_pass(ctx: &Ctx<'_>, acc: &mut Program, pass: usize) -> PassResult {
    let base = acc.clone();
    let sites: Vec<SiteWork> = base
        .relaxable_sites()
        .into_iter()
        .filter_map(|i| {
            let s = &base.sites()[i as usize];
            let cands = s.kind.weaker_modes(s.mode);
            if cands.is_empty() {
                None
            } else {
                Some(SiteWork { site: i, from: s.mode, cands })
            }
        })
        .collect();
    if sites.is_empty() {
        return PassResult { changed: false, interrupted: false };
    }

    let statuses: Vec<Vec<TaskStatus>> =
        sites.iter().map(|s| vec![TaskStatus::Pending; s.cands.len()]).collect();
    let mut tasks: Vec<(usize, usize)> = Vec::new();
    let max_ranks = sites.iter().map(|s| s.cands.len()).max().unwrap_or(0);
    // Rank-major order: every site's weakest candidate is screened before
    // any site's second-weakest, so loser cancellation bites early.
    for rank in 0..max_ranks {
        for (slot, s) in sites.iter().enumerate() {
            if rank < s.cands.len() {
                tasks.push((slot, rank));
            }
        }
    }

    let statuses = match screen(ctx, &base, &sites, statuses, &tasks, pass) {
        Some(s) => s,
        None => return PassResult { changed: false, interrupted: true },
    };

    // Per-site accept candidates (`a_i`): the weakest-ranked candidate
    // that verified against the base, valid for the merge shortcut only
    // when everything below it was refuted monotonely.
    let mut accepts: Vec<(usize, usize)> = Vec::new();
    let mut clean = true;
    for (slot, sts) in statuses.iter().enumerate() {
        match sts.iter().position(|&s| s == TaskStatus::Verified) {
            Some(rank) => {
                if sts[..rank].iter().any(|&s| s != TaskStatus::Refuted) {
                    clean = false;
                }
                accepts.push((slot, rank));
            }
            None => {
                if sts.iter().any(|&s| s != TaskStatus::Refuted) {
                    clean = false;
                }
            }
        }
    }

    if clean {
        if accepts.is_empty() {
            return PassResult { changed: false, interrupted: false };
        }
        let merged_ok = if accepts.len() == 1 {
            // A single accept was already verified against base == acc.
            true
        } else {
            let patch: Vec<(u32, Mode)> =
                accepts.iter().map(|&(s, r)| (sites[s].site, sites[s].cands[r])).collect();
            match ctx.check_candidate(&base.with_patch(&patch), ctx.pool_size(), None) {
                CheckOutcome::Verified => true,
                CheckOutcome::Refuted { .. } => false,
                CheckOutcome::Interrupted | CheckOutcome::Errored => {
                    return PassResult { changed: false, interrupted: true }
                }
            }
        };
        if merged_ok {
            for &(slot, rank) in &accepts {
                let s = &sites[slot];
                let step = OptimizationStep {
                    site: s.site,
                    from: s.from,
                    to: s.cands[rank],
                    accepted: true,
                };
                ctx.record(pass, OptimizePhase::Merge, step);
                acc.apply_patch(&[(s.site, s.cands[rank])]);
            }
            return PassResult { changed: true, interrupted: false };
        }
    }

    fallback(ctx, acc, &sites, &statuses, pass)
}

/// Replay the sequential accept order against the accumulating program,
/// skipping candidates the screening refuted monotonely. Bit-for-bit the
/// reference pass semantics; the witness cache absorbs the re-checks the
/// screening already disproved in weaker form.
fn fallback(
    ctx: &Ctx<'_>,
    acc: &mut Program,
    sites: &[SiteWork],
    statuses: &[Vec<TaskStatus>],
    pass: usize,
) -> PassResult {
    let mut changed = false;
    for (slot, s) in sites.iter().enumerate() {
        for (rank, &mode) in s.cands.iter().enumerate() {
            if statuses[slot][rank] == TaskStatus::Refuted {
                continue; // fails on base ⇒ fails on the weaker acc
            }
            if ctx.interrupt_requested() {
                return PassResult { changed, interrupted: true };
            }
            match ctx.check_single(acc, s.site, mode, ctx.pool_size(), None) {
                CheckOutcome::Verified => {
                    ctx.record(
                        pass,
                        OptimizePhase::Fallback,
                        OptimizationStep { site: s.site, from: s.from, to: mode, accepted: true },
                    );
                    acc.apply_patch(&[(s.site, mode)]);
                    changed = true;
                    break;
                }
                CheckOutcome::Refuted { .. } => {
                    ctx.record(
                        pass,
                        OptimizePhase::Fallback,
                        OptimizationStep { site: s.site, from: s.from, to: mode, accepted: false },
                    );
                }
                CheckOutcome::Interrupted | CheckOutcome::Errored => {
                    return PassResult { changed, interrupted: true };
                }
            }
        }
    }
    PassResult { changed, interrupted: false }
}

/// Evaluate `tasks` on the worker pool. Returns the filled status table,
/// or `None` on a session interrupt.
fn screen(
    ctx: &Ctx<'_>,
    base: &Program,
    sites: &[SiteWork],
    statuses: Vec<Vec<TaskStatus>>,
    tasks: &[(usize, usize)],
    pass: usize,
) -> Option<Vec<Vec<TaskStatus>>> {
    let tokens: Vec<Vec<CancelToken>> =
        sites.iter().map(|s| (0..s.cands.len()).map(|_| ctx.task_token()).collect()).collect();
    let state = Mutex::new(statuses);
    let next = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let pool = ctx.pool_size().min(tasks.len()).max(1);
    // Split the configured worker budget across the pool slots (leading
    // slots take the remainder): wide pools run single-worker
    // explorations, while a pass with only a couple of leftover
    // candidates still uses the full width.
    let slot_width =
        |slot: usize| (ctx.pool_size() / pool + usize::from(slot < ctx.pool_size() % pool)).max(1);

    let cancel_all = || {
        for site_tokens in &tokens {
            for t in site_tokens {
                t.cancel();
            }
        }
    };

    let worker = |explore_workers: usize| {
        loop {
            if aborted.load(Ordering::Relaxed) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&(slot, rank)) = tasks.get(i) else {
                break;
            };
            let token = &tokens[slot][rank];
            {
                let mut st = relock(&state);
                if token.is_cancelled_locally() || st[slot][..rank].contains(&TaskStatus::Verified)
                {
                    st[slot][rank] = TaskStatus::Skipped;
                    continue;
                }
            }
            if ctx.interrupt_requested() {
                aborted.store(true, Ordering::Relaxed);
                cancel_all();
                break;
            }
            let s = &sites[slot];
            match ctx.check_single(base, s.site, s.cands[rank], explore_workers, Some(token)) {
                CheckOutcome::Verified => {
                    relock(&state)[slot][rank] = TaskStatus::Verified;
                    for loser in &tokens[slot][rank + 1..] {
                        loser.cancel();
                    }
                }
                CheckOutcome::Refuted { monotone } => {
                    relock(&state)[slot][rank] =
                        if monotone { TaskStatus::Refuted } else { TaskStatus::Rejected };
                    if monotone {
                        ctx.record(
                            pass,
                            OptimizePhase::Screen,
                            OptimizationStep {
                                site: s.site,
                                from: s.from,
                                to: s.cands[rank],
                                accepted: false,
                            },
                        );
                    }
                }
                CheckOutcome::Interrupted => {
                    if token.is_cancelled_locally() && !ctx.interrupt_requested() {
                        // A cancelled loser, not a session interrupt.
                        relock(&state)[slot][rank] = TaskStatus::Skipped;
                    } else {
                        aborted.store(true, Ordering::Relaxed);
                        cancel_all();
                        break;
                    }
                }
                CheckOutcome::Errored => {
                    // A caught probe panic: the candidate is undecided and
                    // the error is recorded in the shared state — wind the
                    // whole pass down like a session interrupt.
                    aborted.store(true, Ordering::Relaxed);
                    cancel_all();
                    break;
                }
            }
        }
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool)
            .map(|slot| {
                let worker = &worker;
                scope.spawn(move || worker(slot_width(slot)))
            })
            .collect();
        for h in handles {
            // Probe panics are caught inside `check_single`; anything
            // that still unwinds a worker aborts the pass instead of
            // tearing down the engine.
            if h.join().is_err() {
                aborted.store(true, Ordering::Relaxed);
                cancel_all();
            }
        }
    });

    if aborted.load(Ordering::Relaxed) {
        return None;
    }
    Some(state.into_inner().unwrap_or_else(|e| e.into_inner()))
}
