//! Push-button barrier optimization (the "VSYNC-optimized" column of the
//! paper's Table 1), rearchitected as a staged, witness-guided search
//! engine.
//!
//! Starting from a verified barrier assignment, the optimizer repeatedly
//! tries to *relax* barrier sites to weaker modes (weakest first) and
//! keeps a relaxation iff the program still verifies — safety *and* await
//! termination — under the memory model. Passes repeat until a fixpoint:
//! the result is a locally maximally-relaxed assignment, the notion of
//! optimality the paper targets ("there exist multiple maximally-relaxed
//! combinations that are correct", §3.3).
//!
//! Three [`OptimizeStrategy`]s share that contract and — by the
//! monotonicity of barrier strengthening (any strengthening of a verified
//! assignment verifies) — produce the **identical final assignment**:
//!
//! * [`Sequential`](OptimizeStrategy::Sequential) — the classic loop, one
//!   full exploration per candidate, retained as the reference for
//!   differential testing;
//! * [`Parallel`](OptimizeStrategy::Parallel) — per pass, candidates at
//!   distinct sites are screened concurrently against the pass-start
//!   baseline on a worker pool (losers cooperatively cancelled), then the
//!   merged assignment is re-verified once; on conflict the pass falls
//!   back to the sequential accept order ([`schedule`]);
//! * [`Adaptive`](OptimizeStrategy::Adaptive) — additionally opens with
//!   batch relaxation: all relaxable sites are dropped to their weakest
//!   modes in one candidate and failures are bisected ([`bisect`]), so a
//!   mostly-relaxable primitive costs `O(log n)` explorations instead of
//!   `O(n)`.
//!
//! Every rejection yields a violating execution graph that is kept in a
//! [`witness`] cache; future candidates are first replayed against the
//! cached witnesses (mode-adopting replay + the fast-path consistency
//! check) and only pay for a full exploration when no witness refutes
//! them. See `DESIGN.md` §7 for the soundness and determinism arguments.

mod bisect;
mod schedule;
mod witness;

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vsync_graph::Mode;
use vsync_lang::{BarrierSummary, ModeRef, Program};
use vsync_model::MemoryModel;

use crate::explorer::{explore, explore_oracle};
use crate::failpoint;
use crate::session::{CancelToken, RunControl};
use crate::verdict::{AmcConfig, EngineError, EnginePhase, Verdict};

use witness::WitnessCache;

/// How the optimizer searches the relaxation space. All strategies reach
/// the same locally maximal assignment (see the module docs); they differ
/// in how many full explorations they pay and how much of the work runs
/// concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizeStrategy {
    /// The reference loop: sites in order, weakest candidate first, one
    /// full exploration per attempt, passes to fixpoint.
    Sequential,
    /// Concurrent per-site candidate screening + single merged re-verify
    /// per pass, with the witness cache.
    Parallel,
    /// [`Parallel`](OptimizeStrategy::Parallel) plus the batch-relax /
    /// bisect opening. The default.
    #[default]
    Adaptive,
}

impl fmt::Display for OptimizeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptimizeStrategy::Sequential => "sequential",
            OptimizeStrategy::Parallel => "parallel",
            OptimizeStrategy::Adaptive => "adaptive",
        })
    }
}

impl std::str::FromStr for OptimizeStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sequential" | "seq" => Ok(OptimizeStrategy::Sequential),
            "parallel" | "par" => Ok(OptimizeStrategy::Parallel),
            "adaptive" => Ok(OptimizeStrategy::Adaptive),
            other => Err(format!("unknown strategy '{other}' (sequential, parallel, adaptive)")),
        }
    }
}

/// Which stage of the search produced an [`OptimizeEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizePhase {
    /// The reference sequential loop.
    Sequential,
    /// Adaptive batch relaxation / bisection of a failing batch.
    Bisect,
    /// Concurrent per-site candidate screening against the pass baseline.
    Screen,
    /// Commit of the merged per-site accepts (single re-verification).
    Merge,
    /// Monotonic fallback to the sequential accept order after a merge
    /// conflict (or a non-monotone screening rejection).
    Fallback,
}

impl fmt::Display for OptimizePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptimizePhase::Sequential => "sequential",
            OptimizePhase::Bisect => "bisect",
            OptimizePhase::Screen => "screen",
            OptimizePhase::Merge => "merge",
            OptimizePhase::Fallback => "fallback",
        })
    }
}

/// A per-step progress notification from a running optimization,
/// delivered to [`OptimizerConfig::with_on_step`] /
/// `Session::on_optimize_step` callbacks as each relaxation attempt is
/// decided. In parallel phases events arrive from worker threads in
/// completion order.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeEvent<'a> {
    /// 1-based pass number (the adaptive batch/bisect opening is pass 1).
    pub pass: usize,
    /// The stage that decided this step.
    pub phase: OptimizePhase,
    /// Resolved name of the site (see [`OptimizationStep::site`]).
    pub site: &'a str,
    /// The decided step.
    pub step: OptimizationStep,
}

/// Shared callback type for per-step optimization events.
pub(crate) type StepFn = Arc<dyn Fn(&OptimizeEvent<'_>) + Send + Sync>;

/// Configuration of an optimization run.
#[derive(Clone)]
pub struct OptimizerConfig {
    /// AMC configuration used for each verification call. `workers` also
    /// sizes the parallel strategies' candidate-screening pool.
    pub amc: AmcConfig,
    /// Maximum number of full passes over the site table (0 = until
    /// fixpoint).
    pub max_passes: usize,
    /// Cooperative cancellation flag, re-checked before every oracle
    /// verification. An interrupted run keeps every relaxation accepted
    /// so far (each one was individually verified, or is a strengthening
    /// of a verified batch) and reports
    /// [`OptimizationReport::interrupted`].
    pub cancel: Option<CancelToken>,
    /// Search strategy (default [`OptimizeStrategy::Adaptive`]).
    pub strategy: OptimizeStrategy,
    /// Cap on cached failure witnesses (oldest evicted first).
    pub max_witnesses: usize,
    /// Per-step progress callback, if any.
    pub(crate) on_step: Option<StepFn>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            amc: AmcConfig::default(),
            max_passes: 0,
            cancel: None,
            strategy: OptimizeStrategy::default(),
            max_witnesses: 32,
            on_step: None,
        }
    }
}

impl fmt::Debug for OptimizerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OptimizerConfig")
            .field("amc", &self.amc)
            .field("max_passes", &self.max_passes)
            .field("cancel", &self.cancel.is_some())
            .field("strategy", &self.strategy)
            .field("max_witnesses", &self.max_witnesses)
            .field("on_step", &self.on_step.is_some())
            .finish()
    }
}

impl OptimizerConfig {
    /// Config verifying each candidate with `amc`.
    #[must_use]
    pub fn with_amc(amc: AmcConfig) -> Self {
        OptimizerConfig { amc, ..OptimizerConfig::default() }
    }

    /// Builder-style: cap the number of full passes over the site table.
    #[must_use = "builder methods return the modified config"]
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        self.max_passes = max_passes;
        self
    }

    /// Builder-style: attach a cancellation token.
    #[must_use = "builder methods return the modified config"]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Builder-style: select the search strategy.
    #[must_use = "builder methods return the modified config"]
    pub fn with_strategy(mut self, strategy: OptimizeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style: subscribe to per-step [`OptimizeEvent`]s. The
    /// callback may run on optimizer worker threads.
    #[must_use = "builder methods return the modified config"]
    pub fn with_on_step(
        mut self,
        callback: impl Fn(&OptimizeEvent<'_>) + Send + Sync + 'static,
    ) -> Self {
        self.on_step = Some(Arc::new(callback));
        self
    }

    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// One attempted relaxation. Sites are recorded by index into the
/// program's site table ([`Program::sites`]); names are resolved only
/// when rendering ([`OptimizationReport::render`] /
/// [`OptimizationReport::site_name`]), so the hot loop never clones
/// strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizationStep {
    /// Site index into the program's site table.
    pub site: u32,
    /// Mode before.
    pub from: Mode,
    /// Mode tried.
    pub to: Mode,
    /// Whether the program still verified and the change was kept.
    pub accepted: bool,
}

/// Result of [`optimize`].
#[derive(Debug, Clone)]
#[must_use = "a dropped OptimizationReport silently discards the optimized program"]
pub struct OptimizationReport {
    /// The optimized program (unchanged if the input did not verify).
    pub program: Program,
    /// Whether the final program verifies. `false` with
    /// [`interrupted`](Self::interrupted) set means *unknown*: the run was
    /// cancelled during the initial verification.
    pub verified: bool,
    /// The run was cut short by its [`OptimizerConfig::cancel`] token,
    /// the session deadline, a resource budget or a caught engine panic;
    /// the assignment is verified but possibly not yet locally maximal.
    pub interrupted: bool,
    /// The first caught engine panic, when one cut the run short. Every
    /// relaxation accepted *before* the panic was individually verified
    /// and is kept; the failing candidate is treated as undecided, never
    /// as refuted.
    pub error: Option<EngineError>,
    /// The strategy that produced this report.
    pub strategy: OptimizeStrategy,
    /// Every relaxation attempt that was decided. For the parallel
    /// strategies, screening steps are appended in completion order; the
    /// accepted steps, applied to the baseline in report order, always
    /// reproduce [`program`](Self::program)'s assignment.
    pub steps: Vec<OptimizationStep>,
    /// Candidate verifications that ran at least one full exploration
    /// (the classic oracle-call count).
    pub verifications: u64,
    /// Individual AMC explorations performed (≥ `verifications` when
    /// extra scenarios multiply the oracle; the oracle-call metric the
    /// `optimize_perf` bench tracks).
    pub explorations: u64,
    /// Work items popped across all oracle explorations — the true
    /// exploration bill. Rejections stop at the first violation (the
    /// early-stop oracle), so this weighs a cheap refutation and a full
    /// verifying exploration honestly. Zero for [`optimize_with`]'s
    /// custom closure oracles (the engine cannot see inside them).
    pub explored_graphs: u64,
    /// Candidates refuted without paying an exploration: by replaying a
    /// cached failure witness, or by the monotone rejection memo (a
    /// single-site candidate once refuted by a model violation stays
    /// refuted forever, since baselines only weaken).
    pub cache_hits: u64,
    /// Barrier counts before optimization.
    pub before: BarrierSummary,
    /// Barrier counts after optimization.
    pub after: BarrierSummary,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl OptimizationReport {
    /// Resolve a step's site name against the optimized program.
    #[must_use]
    pub fn site_name(&self, step: &OptimizationStep) -> &str {
        &self.program.sites()[step.site as usize].name
    }

    /// Render a Fig. 20-style per-site report: `site: from -> to`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} -> {} ({} verifications, {} explorations, {} cache hits, {:.1?})",
            self.program.name(),
            self.before,
            self.after,
            self.verifications,
            self.explorations,
            self.cache_hits,
            self.elapsed
        );
        if let Some(e) = &self.error {
            let _ = writeln!(out, "  engine error: {e}");
        }
        for s in &self.steps {
            if s.accepted {
                let _ = writeln!(out, "  {:<44} {} -> {}", self.site_name(s), s.from, s.to);
            }
        }
        out
    }
}

/// Verify, then relax barrier sites to a locally maximal relaxation.
///
/// If the input program does not verify, the report carries
/// `verified = false` and the unchanged program — optimization only ever
/// starts from a correct baseline, exactly like VSync.
pub fn optimize(prog: &Program, config: &OptimizerConfig) -> OptimizationReport {
    optimize_multi(prog, &[], config)
}

/// [`optimize`] with additional verification scenarios: a candidate
/// assignment is accepted only if the primary program *and* every extra
/// scenario (with the assignment transferred by site name) verify.
///
/// This is how the qspinlock experiment (Table 1) verifies both the
/// 2-thread client and the 3-thread queue-path scenario for every step.
pub fn optimize_multi(
    prog: &Program,
    extra_scenarios: &[Program],
    config: &OptimizerConfig,
) -> OptimizationReport {
    let control = RunControl {
        cancel: config.cancel.clone().unwrap_or_default(),
        model: config.amc.model,
        ..RunControl::default()
    };
    run_engine(prog, extra_scenarios, config, control, false)
}

/// Core *sequential* optimization loop with a caller-provided boolean
/// verification oracle — the reference semantics every strategy must
/// reproduce, and the extension point for custom oracles (which cannot be
/// parallelized or witness-cached, so this always runs the classic loop;
/// `explorations` is reported equal to `verifications`).
pub fn optimize_with(
    prog: &Program,
    config: &OptimizerConfig,
    mut oracle: impl FnMut(&Program) -> bool,
) -> OptimizationReport {
    let start = Instant::now();
    let mut program = prog.clone();
    let before = program.barrier_summary();
    let mut verifications = 0u64;
    let mut steps: Vec<OptimizationStep> = Vec::new();

    let emit = |pass: usize, step: OptimizationStep, program: &Program| {
        if let Some(cb) = &config.on_step {
            cb(&OptimizeEvent {
                pass,
                phase: OptimizePhase::Sequential,
                site: &program.sites()[step.site as usize].name,
                step,
            });
        }
    };

    let mut check = |p: &Program, n: &mut u64| -> bool {
        *n += 1;
        oracle(p)
    };

    if !check(&program, &mut verifications) {
        return OptimizationReport {
            after: before,
            program,
            verified: false,
            interrupted: config.is_cancelled(),
            error: None,
            strategy: OptimizeStrategy::Sequential,
            steps,
            verifications,
            explorations: verifications,
            explored_graphs: 0,
            cache_hits: 0,
            before,
            elapsed: start.elapsed(),
        };
    }

    let mut pass = 0;
    let mut interrupted = false;
    'passes: loop {
        pass += 1;
        let mut changed = false;
        for i in 0..program.sites().len() {
            let site = &program.sites()[i];
            if !site.relaxable {
                continue;
            }
            let (kind, current) = (site.kind, site.mode);
            for cand in kind.weaker_modes(current) {
                if config.is_cancelled() {
                    interrupted = true;
                    break 'passes;
                }
                program.set_mode(ModeRef(i as u32), cand);
                let ok = check(&program, &mut verifications);
                if !ok && config.is_cancelled() {
                    // The rejection came from an interrupted verification,
                    // not from the memory model: drop the step unrecorded.
                    program.set_mode(ModeRef(i as u32), current);
                    interrupted = true;
                    break 'passes;
                }
                let step =
                    OptimizationStep { site: i as u32, from: current, to: cand, accepted: ok };
                steps.push(step);
                emit(pass, step, &program);
                if ok {
                    changed = true;
                    break;
                }
                program.set_mode(ModeRef(i as u32), current);
            }
        }
        if !changed || (config.max_passes != 0 && pass >= config.max_passes) {
            break;
        }
    }

    let after = program.barrier_summary();
    OptimizationReport {
        program,
        verified: true,
        interrupted,
        error: None,
        strategy: OptimizeStrategy::Sequential,
        steps,
        verifications,
        explorations: verifications,
        explored_graphs: 0,
        cache_hits: 0,
        before,
        after,
        elapsed: start.elapsed(),
    }
}

/// Outcome of one candidate verification inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CheckOutcome {
    /// The candidate assignment verifies (primary and every scenario).
    Verified,
    /// The candidate was rejected. `monotone` is true when the rejection
    /// was a genuine memory-model violation (safety or await
    /// termination) — such rejections transfer to every weaker-or-equal
    /// candidate and license pruning; faults do not.
    Refuted {
        /// Was the rejection a model violation (pruning-safe)?
        monotone: bool,
    },
    /// The run was interrupted before the verdict was decided.
    Interrupted,
    /// The verification panicked; the panic was caught and recorded in
    /// [`Shared::error`]. Like [`Interrupted`](CheckOutcome::Interrupted),
    /// the candidate's status is *unknown* — strategies must treat it as
    /// undecided (keep prior accepts, stop searching), never as refuted.
    Errored,
}

/// Counters and step log shared across the engine's worker threads.
pub(crate) struct Shared {
    pub steps: Vec<OptimizationStep>,
    pub verifications: u64,
    pub explorations: u64,
    pub cache: WitnessCache,
    /// Work items popped across all oracle explorations (the engine's
    /// true exploration bill).
    pub graphs: u64,
    /// Did any oracle call reject with a *fault* (budget/modeling error)
    /// rather than a model violation? Faults are outside the
    /// monotonicity argument, so the adaptive strategy's deferred
    /// baseline verification must not be skipped once one was seen.
    pub fault_seen: bool,
    /// Single-site candidates refuted by a model violation. Assignments
    /// only ever weaken during a run, and a violation-rejection transfers
    /// to every weaker baseline (monotonicity), so a memoized rejection
    /// is final — this is what makes the fixpoint passes free.
    pub memo: std::collections::HashSet<(u32, Mode)>,
    /// Candidates short-circuited by the memo (no exploration, no
    /// witness replay needed).
    pub memo_hits: u64,
    /// The first caught engine panic (kept first-wins so the report is
    /// deterministic for a deterministically-injected fault).
    pub error: Option<EngineError>,
}

/// Engine context: the candidate oracle plus shared bookkeeping, usable
/// concurrently from the screening pool.
pub(crate) struct Ctx<'a> {
    /// The primary program at its *baseline* assignment (site names and
    /// table layout are assignment-independent).
    pub primary: &'a Program,
    scenarios: &'a [Program],
    pub config: &'a OptimizerConfig,
    control: RunControl,
    model: &'static dyn MemoryModel,
    cache_enabled: bool,
    pub shared: Mutex<Shared>,
}

impl<'a> Ctx<'a> {
    fn new(
        primary: &'a Program,
        scenarios: &'a [Program],
        config: &'a OptimizerConfig,
        control: RunControl,
    ) -> Self {
        Ctx {
            primary,
            scenarios,
            config,
            model: config.amc.model.checker(config.amc.checker),
            cache_enabled: config.strategy != OptimizeStrategy::Sequential,
            control,
            shared: Mutex::new(Shared {
                steps: Vec::new(),
                verifications: 0,
                explorations: 0,
                cache: WitnessCache::new(config.max_witnesses),
                graphs: 0,
                fault_seen: false,
                memo: std::collections::HashSet::new(),
                memo_hits: 0,
                error: None,
            }),
        }
    }

    /// Lock the shared state, recovering from poisoning: a panic inside
    /// a screening worker is already isolated per probe, so the counters
    /// a poisoned guard protects are still meaningful.
    pub(crate) fn shared(&self) -> std::sync::MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a caught engine panic (first one wins) and return
    /// [`CheckOutcome::Errored`].
    fn record_error(&self, error: EngineError) -> CheckOutcome {
        let mut shared = self.shared();
        shared.error.get_or_insert(error);
        CheckOutcome::Errored
    }

    /// Number of concurrent candidate evaluations the screening pool runs.
    pub(crate) fn pool_size(&self) -> usize {
        self.config.amc.workers.max(1)
    }

    /// A per-task cancellation token: observes the engine token (so
    /// session interrupts propagate into running evaluations) but can be
    /// fired on its own to cancel one losing candidate.
    pub(crate) fn task_token(&self) -> CancelToken {
        self.control.cancel.child()
    }

    /// Has the caller (session token, config token or deadline) requested
    /// an interrupt? Loser-cancellation of individual tasks does *not*
    /// count.
    pub(crate) fn interrupt_requested(&self) -> bool {
        self.control.cancel.is_cancelled()
            || self.config.is_cancelled()
            || self.control.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The full candidate set: the primary candidate plus every scenario
    /// with the candidate's modes transferred by site name.
    fn candidate_set(&self, candidate: &Program) -> Vec<Program> {
        let mut progs = Vec::with_capacity(1 + self.scenarios.len());
        progs.push(candidate.clone());
        for s in self.scenarios {
            let mut s = s.clone();
            s.copy_modes_by_name(candidate);
            progs.push(s);
        }
        progs
    }

    /// Verify one candidate assignment: witness-cache probe first, then
    /// full explorations of the primary and every scenario.
    ///
    /// `workers` sizes each exploration; `token`, when given, must be a
    /// [`CancelToken::child`] of the engine's token (so session interrupts
    /// propagate) and lets the scheduler cancel this one evaluation.
    pub(crate) fn check_candidate(
        &self,
        candidate: &Program,
        workers: usize,
        token: Option<&CancelToken>,
    ) -> CheckOutcome {
        self.check_candidate_inner(candidate, workers, token, false)
    }

    fn check_candidate_inner(
        &self,
        candidate: &Program,
        workers: usize,
        token: Option<&CancelToken>,
        skip_primary: bool,
    ) -> CheckOutcome {
        // One probe = one isolation unit: a panic anywhere in the
        // witness replay or the oracle explorations quarantines this
        // candidate (undecided), not the whole optimization run.
        let probe = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.check_candidate_probe(candidate, workers, token, skip_primary)
        }));
        probe.unwrap_or_else(|payload| {
            let payload = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            self.record_error(EngineError { phase: EnginePhase::Optimize, thread: None, payload })
        })
    }

    fn check_candidate_probe(
        &self,
        candidate: &Program,
        workers: usize,
        token: Option<&CancelToken>,
        skip_primary: bool,
    ) -> CheckOutcome {
        let _ = failpoint::hit("optimize.verify");
        let progs = self.candidate_set(candidate);
        if self.cache_enabled {
            // Snapshot under the lock (graph clones are copy-on-write
            // cheap), replay lock-free so concurrent screening workers
            // never serialize on the cache, then re-lock to account the
            // hit.
            let witnesses = self.shared().cache.snapshot();
            for (id, program, graph) in witnesses {
                let Some(p) = progs.get(program) else {
                    continue;
                };
                if witness::witness_refutes(&graph, p, self.model) {
                    self.shared().cache.note_hit(id);
                    return CheckOutcome::Refuted { monotone: true };
                }
            }
        }
        // Count as an oracle call only when at least one exploration will
        // actually run (the session-verified primary with no scenarios
        // explores nothing).
        if progs.len() > usize::from(skip_primary) {
            self.shared().verifications += 1;
        }
        let mut amc = self.config.amc.clone();
        amc.workers = workers.max(1);
        let control = RunControl {
            cancel: token.cloned().unwrap_or_else(|| self.control.cancel.clone()),
            progress: None,
            ..self.control.clone()
        };
        for (idx, p) in progs.iter().enumerate() {
            if skip_primary && idx == 0 {
                continue;
            }
            self.shared().explorations += 1;
            let out = explore_oracle(p, &amc, &control);
            self.shared().graphs += out.graphs;
            if let Some(e) = out.error {
                return self.record_error(e);
            }
            if out.interrupted {
                return CheckOutcome::Interrupted;
            }
            if !out.ok {
                let monotone = out.witness.is_some();
                {
                    let mut shared = self.shared();
                    shared.fault_seen |= !monotone;
                    if self.cache_enabled {
                        if let Some(g) = out.witness {
                            shared.cache.add(idx, g);
                        }
                    }
                }
                return CheckOutcome::Refuted { monotone };
            }
        }
        CheckOutcome::Verified
    }

    /// Verify one *single-site* candidate `acc[site := mode]`, with the
    /// rejection memo consulted first: a candidate once refuted by a
    /// model violation stays refuted against every later (weaker)
    /// baseline, so it never pays a replay or an exploration again.
    pub(crate) fn check_single(
        &self,
        acc: &Program,
        site: u32,
        mode: Mode,
        workers: usize,
        token: Option<&CancelToken>,
    ) -> CheckOutcome {
        if self.cache_enabled {
            let mut shared = self.shared();
            if shared.memo.contains(&(site, mode)) {
                shared.memo_hits += 1;
                return CheckOutcome::Refuted { monotone: true };
            }
        }
        let outcome = self.check_candidate(&acc.with_patch(&[(site, mode)]), workers, token);
        if self.cache_enabled && outcome == (CheckOutcome::Refuted { monotone: true }) {
            self.shared().memo.insert((site, mode));
        }
        outcome
    }

    /// Memoize a single-site rejection decided by group-level reasoning
    /// (the bisection narrowing a failing group down to one site) so no
    /// later pass re-pays it.
    pub(crate) fn memoize(&self, site: u32, mode: Mode) {
        if self.cache_enabled {
            self.shared().memo.insert((site, mode));
        }
    }

    /// Record a decided step and notify the per-step subscriber.
    pub(crate) fn record(&self, pass: usize, phase: OptimizePhase, step: OptimizationStep) {
        self.shared().steps.push(step);
        if let Some(cb) = &self.config.on_step {
            cb(&OptimizeEvent {
                pass,
                phase,
                site: &self.primary.sites()[step.site as usize].name,
                step,
            });
        }
    }
}

/// Run the staged engine (any strategy) over `prog` + `scenarios`.
///
/// `control` carries the session-level cancellation token and deadline;
/// `assume_primary_verified` lets the [`crate::Session`] pipeline skip
/// re-exploring the primary program it just verified.
pub(crate) fn run_engine(
    prog: &Program,
    scenarios: &[Program],
    config: &OptimizerConfig,
    control: RunControl,
    assume_primary_verified: bool,
) -> OptimizationReport {
    let start = Instant::now();
    let ctx = Ctx::new(prog, scenarios, config, control);
    let mut program = prog.clone();
    let before = program.barrier_summary();

    let report = |program: Program, verified: bool, interrupted: bool, ctx: &Ctx<'_>| {
        let shared = ctx.shared();
        let after = program.barrier_summary();
        OptimizationReport {
            program,
            verified,
            // A caught engine panic leaves the final candidate undecided,
            // exactly like a cancellation.
            interrupted: interrupted || shared.error.is_some(),
            error: shared.error.clone(),
            strategy: config.strategy,
            steps: shared.steps.clone(),
            verifications: shared.verifications,
            explorations: shared.explorations,
            explored_graphs: shared.graphs,
            cache_hits: shared.cache.hits + shared.memo_hits,
            before,
            after,
            elapsed: start.elapsed(),
        }
    };

    // Initial verification: optimization only starts from a correct
    // baseline. When the session just verified the primary under this
    // exact config, skip its (expensive) re-exploration and only check
    // the scenarios.
    //
    // The adaptive strategy *defers* this check instead: any accepted
    // candidate is weaker than the baseline, so by monotonicity its
    // verification already proves the baseline verifies — the upfront
    // exploration is only ever needed when the whole search accepts
    // nothing (including the degenerate case of an unverifiable input,
    // whose candidates all fail for the same monotonicity reason).
    let deferred = config.strategy == OptimizeStrategy::Adaptive;
    if !deferred {
        match ctx.check_candidate_inner(&program, ctx.pool_size(), None, assume_primary_verified) {
            CheckOutcome::Verified => {}
            CheckOutcome::Refuted { .. } => return report(program, false, false, &ctx),
            CheckOutcome::Interrupted | CheckOutcome::Errored => {
                // `verified: false` + `interrupted` means *unknown* —
                // unless the session already verified the primary and
                // there was nothing else to check.
                return report(
                    program,
                    assume_primary_verified && scenarios.is_empty(),
                    true,
                    &ctx,
                );
            }
        }
    }

    let interrupted = match config.strategy {
        OptimizeStrategy::Sequential => run_sequential(&ctx, &mut program),
        OptimizeStrategy::Parallel => run_passes(&ctx, &mut program, false),
        OptimizeStrategy::Adaptive => run_passes(&ctx, &mut program, true),
    };

    // An accepted candidate vouches for the baseline only through
    // monotonicity over *violations*; once a fault-class rejection was
    // observed, the budget-limited reference oracle might also have
    // faulted on the baseline itself, so the deferred check must run to
    // keep the strategies' verdicts identical.
    let unvouched = program.site_modes() == prog.site_modes() || ctx.shared().fault_seen;
    if deferred && unvouched {
        if interrupted || ctx.shared().error.is_some() {
            return report(program, assume_primary_verified && scenarios.is_empty(), true, &ctx);
        }
        match ctx.check_candidate_inner(prog, ctx.pool_size(), None, assume_primary_verified) {
            CheckOutcome::Verified => {}
            CheckOutcome::Refuted { .. } => {
                // The baseline does not pass the oracle: the reference
                // strategy would have stopped before any relaxation —
                // report the canonical unverified shape (unchanged
                // program, no steps), discarding any accepts.
                ctx.shared().steps.clear();
                return report(prog.clone(), false, false, &ctx);
            }
            CheckOutcome::Interrupted | CheckOutcome::Errored => {
                return report(
                    program,
                    assume_primary_verified && scenarios.is_empty(),
                    true,
                    &ctx,
                );
            }
        }
    }
    report(program, true, interrupted, &ctx)
}

/// The reference strategy on the engine oracle: identical candidate order
/// and accept decisions to [`optimize_with`], with per-exploration
/// counting (and no witness cache — every rejection pays the full
/// exploration, which is exactly what the benches compare against).
/// Returns whether the run was interrupted.
fn run_sequential(ctx: &Ctx<'_>, program: &mut Program) -> bool {
    let mut pass = 0;
    loop {
        pass += 1;
        let mut changed = false;
        for i in 0..program.sites().len() {
            let site = &program.sites()[i];
            if !site.relaxable {
                continue;
            }
            let (kind, current) = (site.kind, site.mode);
            for cand in kind.weaker_modes(current) {
                if ctx.interrupt_requested() {
                    return true;
                }
                program.set_mode(ModeRef(i as u32), cand);
                let outcome = ctx.check_candidate(program, ctx.pool_size(), None);
                let ok = match outcome {
                    CheckOutcome::Verified => true,
                    CheckOutcome::Refuted { .. } => false,
                    CheckOutcome::Interrupted | CheckOutcome::Errored => {
                        program.set_mode(ModeRef(i as u32), current);
                        return true;
                    }
                };
                ctx.record(
                    pass,
                    OptimizePhase::Sequential,
                    OptimizationStep { site: i as u32, from: current, to: cand, accepted: ok },
                );
                if ok {
                    changed = true;
                    break;
                }
                program.set_mode(ModeRef(i as u32), current);
            }
        }
        if !changed || (ctx.config.max_passes != 0 && pass >= ctx.config.max_passes) {
            return false;
        }
    }
}

/// The staged pass loop shared by the parallel and adaptive strategies.
/// Returns whether the run was interrupted.
fn run_passes(ctx: &Ctx<'_>, program: &mut Program, adaptive: bool) -> bool {
    let mut pass = 0;
    loop {
        pass += 1;
        let result = if adaptive && pass == 1 {
            // Batch relaxation: all relaxable sites to their weakest
            // modes at once, bisecting (and group-committing) on failure.
            match bisect::commit_pass(ctx, program, pass) {
                Ok(changed) => schedule::PassResult { changed, interrupted: false },
                Err(bisect::Interrupted) => return true,
            }
        } else {
            schedule::run_pass(ctx, program, pass)
        };
        if result.interrupted {
            return true;
        }
        if !result.changed || (ctx.config.max_passes != 0 && pass >= ctx.config.max_passes) {
            return false;
        }
    }
}

/// Enumerate *all* maximally-relaxed barrier assignments of a program
/// (paper §3.3: "there exists multiple maximally-relaxed combinations
/// that are correct" — e.g. ours vs. the Linux 5.6 experts' qspinlock).
///
/// Exhaustively searches the product of per-site mode lattices, pruned by
/// monotonicity (any strengthening of a verified assignment verifies, so
/// only lattice-minimal verified points are reported). Exponential in the
/// number of relaxable sites — intended for small primitives (≤ ~8 sites).
///
/// Cancellation is cooperative: when [`OptimizerConfig::cancel`] fires the
/// enumeration stops at the next assignment and reports the minimal
/// elements among the assignments verified *so far* (a pre-fired token
/// yields an empty list).
///
/// Returns the distinct maximal assignments as mode vectors over the
/// relaxable sites (in site-table order), together with the site names.
pub fn enumerate_maximal(
    prog: &Program,
    config: &OptimizerConfig,
) -> (Vec<String>, Vec<Vec<Mode>>) {
    let relaxable: Vec<usize> =
        (0..prog.sites().len()).filter(|&i| prog.sites()[i].relaxable).collect();
    let names: Vec<String> = relaxable.iter().map(|&i| prog.sites()[i].name.clone()).collect();
    // Candidate modes per site, weakest first.
    let candidates: Vec<Vec<Mode>> = relaxable
        .iter()
        .map(|&i| {
            let site = &prog.sites()[i];
            let mut mods = site.kind.weaker_modes(site.mode);
            mods.push(site.mode);
            mods
        })
        .collect();
    let minimal_of = |verified: &[Vec<Mode>]| -> Vec<Vec<Mode>> {
        verified
            .iter()
            .filter(|a| !verified.iter().any(|b| *b != **a && pointwise_leq(b, a)))
            .cloned()
            .collect()
    };
    let mut verified: Vec<Vec<Mode>> = Vec::new();
    let mut assignment = vec![0usize; relaxable.len()];
    let mut program = prog.clone();
    loop {
        if config.is_cancelled() {
            return (names, minimal_of(&verified));
        }
        let modes: Vec<Mode> = assignment.iter().zip(&candidates).map(|(&c, cs)| cs[c]).collect();
        for (&site, &mode) in relaxable.iter().zip(&modes) {
            program.set_mode(ModeRef(site as u32), mode);
        }
        if matches!(explore(&program, &config.amc).verdict, Verdict::Verified) {
            verified.push(modes);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                // Filter to lattice-minimal verified assignments.
                return (names, minimal_of(&verified));
            }
            assignment[i] += 1;
            if assignment[i] < candidates[i].len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Is assignment `a` pointwise weaker-or-equal than `b` on the mode
/// lattice (`rlx < acq, rel < acq_rel < sc`)?
fn pointwise_leq(a: &[Mode], b: &[Mode]) -> bool {
    fn leq(x: Mode, y: Mode) -> bool {
        x == y
            || matches!(
                (x, y),
                (Mode::Rlx, _)
                    | (_, Mode::Sc)
                    | (Mode::Acq, Mode::AcqRel)
                    | (Mode::Rel, Mode::AcqRel)
            )
    }
    a.iter().zip(b).all(|(&x, &y)| leq(x, y))
}

/// Check that an assignment is locally maximal: relaxing any single
/// relaxable site to any weaker mode breaks verification. Used by tests.
pub fn is_locally_maximal(prog: &Program, config: &OptimizerConfig) -> bool {
    let mut program = prog.clone();
    for i in 0..program.sites().len() {
        let site = &program.sites()[i];
        if !site.relaxable {
            continue;
        }
        let (kind, current) = (site.kind, site.mode);
        for cand in kind.weaker_modes(current) {
            program.set_mode(ModeRef(i as u32), cand);
            let ok = matches!(explore(&program, &config.amc).verdict, Verdict::Verified);
            program.set_mode(ModeRef(i as u32), current);
            if ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_graph::Mode;
    use vsync_lang::{ProgramBuilder, Reg};
    use vsync_model::ModelKind;

    const X: u64 = 0x10;
    const Y: u64 = 0x20;

    fn cfg() -> OptimizerConfig {
        OptimizerConfig::with_amc(AmcConfig::with_model(ModelKind::Vmm))
    }

    fn cfg_with(strategy: OptimizeStrategy) -> OptimizerConfig {
        cfg().with_strategy(strategy)
    }

    /// Message passing, all-SC: the optimizer must keep exactly a
    /// release write and an acquire poll.
    fn mp_all_sc() -> Program {
        let mut pb = ProgramBuilder::new("mp");
        pb.thread(|t| {
            t.store(X, 1u64, ("data.store", Mode::Sc));
            t.store(Y, 1u64, ("flag.store", Mode::Sc));
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), Y, 1u64, ("flag.poll", Mode::Sc));
            t.load(Reg(1), X, ("data.load", Mode::Sc));
            t.assert_eq(Reg(1), 1u64, "data visible");
        });
        pb.build().unwrap()
    }

    #[test]
    fn optimizes_mp_to_release_acquire() {
        for strategy in
            [OptimizeStrategy::Sequential, OptimizeStrategy::Parallel, OptimizeStrategy::Adaptive]
        {
            let report = optimize(&mp_all_sc(), &cfg_with(strategy));
            assert!(report.verified, "{strategy}");
            assert_eq!(report.strategy, strategy);
            let p = &report.program;
            let mode_of = |n: &str| p.sites().iter().find(|s| s.name == n).unwrap().mode;
            assert_eq!(mode_of("data.store"), Mode::Rlx, "{strategy}");
            assert_eq!(mode_of("data.load"), Mode::Rlx, "{strategy}");
            assert_eq!(mode_of("flag.store"), Mode::Rel, "{strategy}");
            assert_eq!(mode_of("flag.poll"), Mode::Acq, "{strategy}");
            assert!(is_locally_maximal(p, &cfg()), "{strategy}");
            // Summary shape: 1 acq, 1 rel, 0 sc.
            let s = report.after;
            assert_eq!((s.acq, s.rel, s.sc, s.rlx), (1, 1, 0, 2), "{strategy}");
            // Still verifies, and the report says so.
            assert!(report.render().contains("flag.store"), "{strategy}");
        }
    }

    #[test]
    fn accepted_steps_replay_to_the_final_assignment() {
        for strategy in
            [OptimizeStrategy::Sequential, OptimizeStrategy::Parallel, OptimizeStrategy::Adaptive]
        {
            let base = mp_all_sc();
            let report = optimize(&base, &cfg_with(strategy));
            let mut replayed = base.clone();
            for step in report.steps.iter().filter(|s| s.accepted) {
                replayed.set_mode(ModeRef(step.site), step.to);
            }
            assert_eq!(replayed.site_modes(), report.program.site_modes(), "{strategy}");
        }
    }

    #[test]
    fn unverified_input_is_returned_untouched() {
        // MP with an assert that is simply wrong.
        let mut pb = ProgramBuilder::new("broken");
        pb.thread(|t| {
            t.store(X, 1u64, ("s", Mode::Sc));
        });
        pb.final_check(X, vsync_lang::Test::eq(2u64), "impossible");
        let p = pb.build().unwrap();
        for strategy in [OptimizeStrategy::Sequential, OptimizeStrategy::Adaptive] {
            let report = optimize(&p, &cfg_with(strategy));
            assert!(!report.verified, "{strategy}");
            assert_eq!(report.program.sites()[0].mode, Mode::Sc, "{strategy}");
            assert!(report.steps.is_empty(), "{strategy}");
        }
    }

    #[test]
    fn fence_gets_removed_when_useless() {
        // A fence between two writes to the same location is useless.
        let mut pb = ProgramBuilder::new("useless-fence");
        pb.thread(|t| {
            t.store(X, 1u64, ("w1", Mode::Rlx));
            t.fence(("f", Mode::Sc));
            t.store(X, 2u64, ("w2", Mode::Rlx));
        });
        pb.final_check(X, vsync_lang::Test::eq(2u64), "last write wins");
        let p = pb.build().unwrap();
        for strategy in [OptimizeStrategy::Sequential, OptimizeStrategy::Adaptive] {
            let report = optimize(&p, &cfg_with(strategy));
            assert!(report.verified, "{strategy}");
            let f = report.program.sites().iter().find(|s| s.name == "f").unwrap();
            assert_eq!(f.mode, Mode::Rlx, "{strategy}: sc fence not relaxed away");
        }
    }

    #[test]
    fn enumerate_maximal_finds_the_ra_point() {
        let (names, maximal) = enumerate_maximal(&mp_all_sc(), &cfg());
        assert_eq!(names.len(), 4);
        // The unique maximal relaxation of message passing is
        // rel-store/acq-poll with relaxed data accesses.
        assert_eq!(maximal.len(), 1, "{maximal:?}");
        let expected: Vec<Mode> = names
            .iter()
            .map(|n| match n.as_str() {
                "flag.store" => Mode::Rel,
                "flag.poll" => Mode::Acq,
                _ => Mode::Rlx,
            })
            .collect();
        assert_eq!(maximal[0], expected);
    }

    #[test]
    fn enumerate_maximal_reports_multiple_optima_when_they_exist() {
        // x is published by BOTH an sc-fence pair and the flag; either the
        // fences or the rel/acq pair suffices: two incomparable optima.
        let mut pb = ProgramBuilder::new("two-optima");
        pb.thread(|t| {
            t.store(X, 1u64, ("data", Mode::Rlx));
            t.fence(("fence.w", Mode::Sc));
            t.store(Y, 1u64, ("flag.store", Mode::Rel));
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), Y, 1u64, ("flag.poll", Mode::Acq));
            t.fence(("fence.r", Mode::Sc));
            t.load(Reg(1), X, ("data.load", Mode::Rlx));
            t.assert_eq(Reg(1), 1u64, "data visible");
        });
        let p = pb.build().unwrap();
        let (_, maximal) = enumerate_maximal(&p, &cfg());
        assert!(
            maximal.len() >= 2,
            "fence-based and mode-based synchronization are incomparable optima: {maximal:?}"
        );
    }

    #[test]
    fn enumerate_maximal_respects_a_prefired_cancel_token() {
        let token = CancelToken::new();
        token.cancel();
        let (names, maximal) = enumerate_maximal(&mp_all_sc(), &cfg().with_cancel(token));
        assert_eq!(names.len(), 4, "names are reported even when cancelled");
        assert!(maximal.is_empty(), "no assignment was verified: {maximal:?}");
    }

    #[test]
    fn greedy_result_is_among_the_maximal_points() {
        let p = mp_all_sc();
        let report = optimize(&p, &cfg());
        let (names, maximal) = enumerate_maximal(&p, &cfg());
        let greedy: Vec<Mode> = names
            .iter()
            .map(|n| report.program.sites().iter().find(|s| &s.name == n).unwrap().mode)
            .collect();
        assert!(maximal.contains(&greedy), "greedy {greedy:?} not in {maximal:?}");
    }

    #[test]
    fn counters_are_reported_and_consistent() {
        let seq = optimize(&mp_all_sc(), &cfg_with(OptimizeStrategy::Sequential));
        assert!(seq.verifications as usize > seq.steps.len() / 2);
        assert_eq!(seq.explorations, seq.verifications, "no scenarios: 1 exploration each");
        assert_eq!(seq.cache_hits, 0, "reference strategy never caches");
        assert!(seq.steps.iter().any(|s| s.accepted));
        assert!(seq.elapsed > Duration::ZERO);

        let ad = optimize(&mp_all_sc(), &cfg_with(OptimizeStrategy::Adaptive));
        assert!(ad.verified);
        assert!(
            ad.explorations <= seq.explorations,
            "adaptive ({}) must not explore more than sequential ({})",
            ad.explorations,
            seq.explorations
        );
    }

    #[test]
    fn per_step_events_stream_with_resolved_names() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let s = seen.clone();
        let config = cfg_with(OptimizeStrategy::Adaptive).with_on_step(move |e| {
            assert!(!e.site.is_empty());
            assert!(e.pass >= 1);
            s.fetch_add(1, Ordering::Relaxed);
        });
        let report = optimize(&mp_all_sc(), &config);
        assert!(report.verified);
        assert_eq!(
            seen.load(Ordering::Relaxed),
            report.steps.len(),
            "every recorded step produced exactly one event"
        );
    }

    #[test]
    fn strategy_parses_and_displays() {
        for (s, v) in [
            ("sequential", OptimizeStrategy::Sequential),
            ("parallel", OptimizeStrategy::Parallel),
            ("adaptive", OptimizeStrategy::Adaptive),
        ] {
            assert_eq!(s.parse::<OptimizeStrategy>().unwrap(), v);
            assert_eq!(v.to_string(), s);
        }
        assert!("nope".parse::<OptimizeStrategy>().is_err());
    }
}
