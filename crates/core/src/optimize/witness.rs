//! The failure-witness cache: refute candidates by replaying cached
//! violating executions instead of exploring from scratch.
//!
//! When a candidate assignment fails verification, the explorer hands back
//! the violating execution graph. That graph's *structure* (events,
//! values, `rf`, `mo`) is mode-independent — only the barrier annotations
//! on its events come from the assignment — so it can be re-interpreted
//! under any other assignment of the same program by rewriting the event
//! modes ([`vsync_lang::replay_adopt_modes`]) and re-running the cheap
//! per-graph checks:
//!
//! 1. the replay must reproduce the graph (structural mismatch — e.g. a
//!    fence elided by relaxation — makes the witness *inapplicable*, never
//!    wrong);
//! 2. the re-moded graph must still be consistent with the memory model
//!    (one fast-path [`AxiomContext`](vsync_model::AxiomContext) build);
//! 3. the violation must still hold: an error event, a failed final-state
//!    check, or a stagnant blocked graph re-established by the stagnancy
//!    analysis.
//!
//! When all three hold the witness is a genuine consistent violating
//! execution *of the candidate*, so the candidate is refuted without any
//! exploration — soundly, with no appeal to monotonicity. In practice the
//! hits come exactly where monotonicity predicts: weakening modes only
//! removes ordering edges, so a violation cached from one assignment
//! almost always survives re-moding to a weaker-or-equal one (DESIGN.md
//! §7.2) — which is what makes repeated rejections across passes (the
//! sequential loop's fixpoint tax) nearly free.

use vsync_graph::ExecutionGraph;
use vsync_lang::{replay_adopt_modes, BlockedAwait, Program};
use vsync_model::MemoryModel;

use crate::explorer::failed_final_check;
use crate::stagnancy::is_stagnant;

/// One cached violating execution.
struct Witness {
    /// Stable identity, for lock-free probing ([`WitnessCache::snapshot`]
    /// / [`WitnessCache::note_hit`]).
    id: u64,
    /// Index into the candidate set: 0 = primary, `1 + i` = scenario `i`.
    /// A witness only ever replays against the program it came from.
    program: usize,
    graph: ExecutionGraph,
}

/// Bounded store of failure witnesses with LRU-ish eviction: hits move to
/// the back, inserts evict the front.
pub(crate) struct WitnessCache {
    items: Vec<Witness>,
    cap: usize,
    next_id: u64,
    /// Candidates refuted by replay (no exploration paid).
    pub hits: u64,
}

impl WitnessCache {
    pub(crate) fn new(cap: usize) -> Self {
        WitnessCache { items: Vec::new(), cap, next_id: 0, hits: 0 }
    }

    /// Cache a violating execution of candidate-set member `program`.
    pub(crate) fn add(&mut self, program: usize, graph: ExecutionGraph) {
        if self.cap == 0 {
            return;
        }
        if self.items.len() >= self.cap {
            self.items.remove(0);
        }
        self.items.push(Witness { id: self.next_id, program, graph });
        self.next_id += 1;
    }

    /// Snapshot the cache for lock-free probing, newest witnesses first
    /// (they came from the closest assignments). Graph clones are cheap —
    /// event storage is copy-on-write — so the caller can replay them
    /// without holding the cache lock.
    pub(crate) fn snapshot(&self) -> Vec<(u64, usize, ExecutionGraph)> {
        self.items.iter().rev().map(|w| (w.id, w.program, w.graph.clone())).collect()
    }

    /// Account a refutation established from a [`snapshot`](Self::snapshot)
    /// entry: bump the hit counter and move the witness (if it has not
    /// been evicted meanwhile) to most-recently-used.
    pub(crate) fn note_hit(&mut self, id: u64) {
        self.hits += 1;
        if let Some(i) = self.items.iter().position(|w| w.id == id) {
            let w = self.items.remove(i);
            self.items.push(w);
        }
    }

    /// Does any cached witness refute the candidate set `progs` (primary
    /// followed by the mode-transferred scenarios)? A hit bumps the
    /// witness to most-recently-used. (Single-threaded probe — the
    /// engine's concurrent path snapshots instead.)
    #[cfg(test)]
    pub(crate) fn refutes(&mut self, progs: &[Program], model: &dyn MemoryModel) -> bool {
        for (id, program, graph) in self.snapshot() {
            let Some(p) = progs.get(program) else { continue };
            if witness_refutes(&graph, p, model) {
                self.note_hit(id);
                return true;
            }
        }
        false
    }
}

/// Re-validate one cached witness against a candidate program: replay with
/// mode adoption, re-check consistency, re-check the violation.
pub(crate) fn witness_refutes(
    graph: &ExecutionGraph,
    prog: &Program,
    model: &dyn MemoryModel,
) -> bool {
    let mut g = graph.clone();
    let out = replay_adopt_modes(prog, &mut g);
    if out.fault().is_some() || out.wasteful {
        // Structural mismatch (fence elision, budget) or a wasteful
        // repeat: the witness does not apply to this candidate.
        return false;
    }
    if !model.is_consistent(&g) {
        return false;
    }
    if out.errored() {
        // A consistent execution with a failed assertion refutes the
        // candidate outright (partial graphs included — the explorer's
        // own counterexample criterion).
        return true;
    }
    if out.ready_threads().next().is_some() {
        // Partial non-errored graph: nothing to re-confirm.
        return false;
    }
    let blocked: Vec<&BlockedAwait> = out.blocked().collect();
    if blocked.is_empty() {
        failed_final_check(prog, &g).is_some()
    } else {
        is_stagnant(&g, &blocked, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::explore_oracle;
    use crate::session::RunControl;
    use crate::verdict::AmcConfig;
    use vsync_graph::Mode;
    use vsync_lang::{ProgramBuilder, Reg};
    use vsync_model::{CheckerKind, ModelKind};

    const X: u64 = 0x10;
    const Y: u64 = 0x20;

    /// Message passing with parameterized flag modes.
    fn mp(wm: Mode, rm: Mode) -> Program {
        let mut pb = ProgramBuilder::new("mp");
        pb.thread(move |t| {
            t.store(X, 1u64, ("data.store", Mode::Rlx));
            t.store(Y, 1u64, ("flag.store", wm));
        });
        pb.thread(move |t| {
            t.await_eq(Reg(0), Y, 1u64, ("flag.poll", rm));
            t.load(Reg(1), X, ("data.load", Mode::Rlx));
            t.assert_eq(Reg(1), 1u64, "data visible");
        });
        pb.build().unwrap()
    }

    fn model() -> &'static dyn MemoryModel {
        ModelKind::Vmm.checker(CheckerKind::Fast)
    }

    fn witness_of(p: &Program) -> ExecutionGraph {
        let out = explore_oracle(p, &AmcConfig::with_model(ModelKind::Vmm), &RunControl::default());
        assert!(!out.ok);
        out.witness.expect("violation must carry a witness")
    }

    #[test]
    fn witness_refutes_equal_and_weaker_assignments() {
        // rlx/rlx MP violates; its witness refutes rlx/rlx trivially...
        let broken = mp(Mode::Rlx, Mode::Rlx);
        let w = witness_of(&broken);
        assert!(witness_refutes(&w, &broken, model()));
        // ...and a witness from rel/rlx (already violating) still refutes
        // the weaker rlx/rlx candidate after mode adoption.
        let half = mp(Mode::Rel, Mode::Rlx);
        let w_half = witness_of(&half);
        assert!(witness_refutes(&w_half, &broken, model()));
    }

    #[test]
    fn witness_does_not_refute_the_verified_assignment() {
        // A violating execution re-moded to rel/acq becomes inconsistent
        // (the hb edge forbids the stale read): no refutation.
        let broken = mp(Mode::Rlx, Mode::Rlx);
        let w = witness_of(&broken);
        assert!(!witness_refutes(&w, &mp(Mode::Rel, Mode::Acq), model()));
    }

    #[test]
    fn at_violation_witness_replays() {
        // Await on a value nobody writes: stagnant blocked graph.
        let mut pb = ProgramBuilder::new("lonely");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, ("poll", Mode::Rlx));
        });
        let p = pb.build().unwrap();
        let w = witness_of(&p);
        assert!(witness_refutes(&w, &p, model()));
        // The same program polling with acquire: the witness re-modes and
        // still proves stagnancy (mode does not create the missing write).
        let mut pb = ProgramBuilder::new("lonely");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, ("poll", Mode::Acq));
        });
        let p_acq = pb.build().unwrap();
        assert!(witness_refutes(&w, &p_acq, model()));
    }

    #[test]
    fn fence_elision_makes_a_witness_inapplicable_not_wrong() {
        // A program whose only sync is an SC fence pair; witness graphs
        // recorded with the fences present cannot replay against the
        // fence-relaxed candidate (structural mismatch).
        let fenced = |fm: Mode| {
            let mut pb = ProgramBuilder::new("fences");
            pb.thread(move |t| {
                t.store(X, 1u64, ("data", Mode::Rlx));
                t.fence(("fence.w", fm));
                t.store(Y, 1u64, ("flag", Mode::Rlx));
            });
            pb.thread(move |t| {
                t.await_eq(Reg(0), Y, 1u64, ("poll", Mode::Rlx));
                t.fence(("fence.r", fm));
                t.load(Reg(1), X, ("data.load", Mode::Rlx));
                t.assert_eq(Reg(1), 2u64, "always fails");
            });
            pb.build().unwrap()
        };
        let w = witness_of(&fenced(Mode::Sc));
        // Same structure, fences intact: applies.
        assert!(witness_refutes(&w, &fenced(Mode::AcqRel), model()));
        // Fences relaxed away: the graph has fence events the candidate
        // never generates — inapplicable.
        assert!(!witness_refutes(&w, &fenced(Mode::Rlx), model()));
    }

    #[test]
    fn cache_is_bounded_and_counts_hits() {
        let broken = mp(Mode::Rlx, Mode::Rlx);
        let w = witness_of(&broken);
        let mut cache = WitnessCache::new(2);
        cache.add(0, w.clone());
        cache.add(0, w.clone());
        cache.add(0, w);
        assert_eq!(cache.items.len(), 2, "capacity enforced");
        assert!(cache.refutes(std::slice::from_ref(&broken), model()));
        assert_eq!(cache.hits, 1);
        assert!(!cache.refutes(std::slice::from_ref(&mp(Mode::Rel, Mode::Acq)), model()));
        assert_eq!(cache.hits, 1);
    }
}
