//! Adaptive batch relaxation: the first pass of the adaptive strategy
//! relaxes *every* relaxable site to its weakest mode in one candidate
//! and bisects the site set on failure, committing verified groups
//! wholesale and refining only the sites that resist.
//!
//! ## Why this is exactly the sequential pass
//!
//! The walk proceeds strictly left-to-right over the site table, carrying
//! the accumulated program `acc` (all decisions for sites to the left).
//! Every decision it takes is justified by one of two facts:
//!
//! * **a verified group commits wholesale** — if `acc` with a whole group
//!   at its weakest modes verifies, the prefix-monotonicity theorem
//!   (DESIGN.md §7.3) shows the sequential loop would accept exactly the
//!   weakest mode at every member: each member's candidate is a
//!   strengthening of the verified group assignment, and a weakest-first
//!   ladder has nothing below rank 0 to rule out. One exploration, `m`
//!   sequential-identical accepts.
//! * **a refuted singleton is the sequential decision** — when the walk
//!   narrows a failing group down to the next site alone, that site's
//!   weakest candidate against `acc` is precisely what the sequential
//!   loop would try; the engine records the rejection (memoizing it —
//!   rejections are final, because baselines only weaken) and ladders
//!   through the site's remaining candidates weakest-first, accepting the
//!   first that verifies.
//!
//! The shape of the search only affects the *cost*, never the result:
//! each step is the sequential decision at that point, so any
//! interleaving of group commits and singleton refinements reproduces the
//! reference assignment verbatim.
//!
//! Two bookkeeping tricks keep the exploration bill low:
//!
//! * **refuted-tail transfer** — whenever the sites committed out of a
//!   failing group all landed on their weakest modes, the remaining tail
//!   over the new `acc` denotes *the same assignment* that just failed,
//!   so its group check is skipped as already-refuted;
//! * **fused refinement** — a resisting site's surviving candidate is
//!   first tried *together with* the remaining tail at its weakest modes:
//!   if the fused candidate verifies, one exploration commits the
//!   refinement and the entire tail (both sequential-identical, by the
//!   same two facts above); if it fails but the candidate verifies alone,
//!   the fused failure transfers to the tail as already-refuted — the
//!   extra exploration is never wasted.
//!
//! A primitive with `n` sites of which `k` resist full relaxation costs
//! `O(k · log n)` explorations for the opening instead of the sequential
//! loop's `n` (CNA follow-up paper: adaptive relaxation search) — and the
//! witness cache absorbs much of the descent, because a failing group's
//! violating execution frequently replays against its failing subgroups
//! and singletons.

use vsync_graph::Mode;
use vsync_lang::Program;

use super::{CheckOutcome, Ctx, OptimizationStep, OptimizePhase};

/// The pass was cut short by a session interrupt. `acc` holds only fully
/// verified accepts.
pub(crate) struct Interrupted;

/// Commit one accepted relaxation and notify subscribers.
fn commit(ctx: &Ctx<'_>, acc: &mut Program, site: u32, to: Mode, pass: usize) {
    let from = acc.sites()[site as usize].mode;
    ctx.record(pass, OptimizePhase::Bisect, OptimizationStep { site, from, to, accepted: true });
    acc.apply_patch(&[(site, to)]);
}

/// Record one rejected relaxation.
fn reject(ctx: &Ctx<'_>, acc: &Program, site: u32, to: Mode, pass: usize) {
    let from = acc.sites()[site as usize].mode;
    ctx.record(pass, OptimizePhase::Bisect, OptimizationStep { site, from, to, accepted: false });
}

/// Run the adaptive batch/bisect pass over `acc`: relax-all, bisect on
/// failure, refine resisting sites. Returns whether anything was
/// accepted.
pub(crate) fn commit_pass(
    ctx: &Ctx<'_>,
    acc: &mut Program,
    pass: usize,
) -> Result<bool, Interrupted> {
    let all: Vec<(u32, Mode)> = acc
        .relaxable_sites()
        .into_iter()
        .filter_map(|i| {
            let site = &acc.sites()[i as usize];
            site.kind.weaker_modes(site.mode).first().map(|&m| (i, m))
        })
        .collect();

    let mut changed = false;
    let mut pos = 0;
    // `Some(monotone)` when `acc` + all[pos..] at weakest is already
    // known to fail; the flag records whether that refutation was a
    // genuine model violation (only those may be memoized — a fault
    // might not recur against a weaker baseline).
    let mut tail_refuted: Option<bool> = None;
    while pos < all.len() {
        if ctx.interrupt_requested() {
            return Err(Interrupted);
        }
        let rest = &all[pos..];

        // Whole-tail attempt (the batch candidate on the first round).
        if tail_refuted.is_none() {
            match ctx.check_candidate(&acc.with_patch(rest), ctx.pool_size(), None) {
                CheckOutcome::Verified => {
                    for &(site, mode) in rest {
                        commit(ctx, acc, site, mode, pass);
                    }
                    return Ok(true);
                }
                CheckOutcome::Refuted { monotone } => tail_refuted = Some(monotone),
                CheckOutcome::Interrupted | CheckOutcome::Errored => return Err(Interrupted),
            }
        }

        if let [(site, mode)] = *rest {
            // The failing tail *is* this singleton: rejection decided.
            reject(ctx, acc, site, mode, pass);
            if tail_refuted == Some(true) {
                ctx.memoize(site, mode);
            }
            changed |= refine_site(ctx, acc, site, &[], pass)? != Refine::Unchanged;
            break;
        }

        // The tail fails: find a committable prefix by halving its
        // length, down to the leading singleton.
        let mut len = rest.len().div_ceil(2);
        loop {
            if ctx.interrupt_requested() {
                return Err(Interrupted);
            }
            if len == 1 {
                let (site, mode) = rest[0];
                match ctx.check_single(acc, site, mode, ctx.pool_size(), None) {
                    CheckOutcome::Verified => {
                        commit(ctx, acc, site, mode, pass);
                        changed = true;
                        pos += 1;
                        // all[pos..] now denotes the assignment that
                        // failed as the tail: still refuted, same flag.
                    }
                    CheckOutcome::Refuted { .. } => {
                        reject(ctx, acc, site, mode, pass);
                        match refine_site(ctx, acc, site, &all[pos + 1..], pass)? {
                            Refine::AllCommitted => return Ok(true),
                            Refine::Accepted { tail_refuted: t } => {
                                changed = true;
                                pos += 1;
                                tail_refuted = t;
                            }
                            Refine::Unchanged => {
                                pos += 1;
                                // The site stays at its (non-weakest)
                                // baseline mode, so the remaining tail is
                                // a different assignment: unknown again.
                                tail_refuted = None;
                            }
                        }
                    }
                    CheckOutcome::Interrupted | CheckOutcome::Errored => return Err(Interrupted),
                }
                break;
            }
            match ctx.check_candidate(&acc.with_patch(&rest[..len]), ctx.pool_size(), None) {
                CheckOutcome::Verified => {
                    for &(site, mode) in &rest[..len] {
                        commit(ctx, acc, site, mode, pass);
                    }
                    changed = true;
                    pos += len;
                    // The remaining tail denotes the same assignment as
                    // the failed one: still refuted, same flag.
                    break;
                }
                CheckOutcome::Refuted { .. } => len = len.div_ceil(2),
                CheckOutcome::Interrupted | CheckOutcome::Errored => return Err(Interrupted),
            }
        }
    }
    Ok(changed)
}

/// Outcome of refining one resisting site.
#[derive(PartialEq, Eq)]
enum Refine {
    /// A fused candidate verified: the site *and* the whole tail are
    /// committed.
    AllCommitted,
    /// A weaker mode was accepted for the site alone.
    Accepted {
        /// `Some(monotone)` when `acc` + tail-at-weakest denotes an
        /// assignment already known to fail (established by a fused
        /// check).
        tail_refuted: Option<bool>,
    },
    /// Every weaker candidate was rejected; the site keeps its mode.
    Unchanged,
}

/// The sequential decision ladder for one site against `acc`, starting
/// *after* the already-rejected weakest candidate. When the pending
/// `tail` has at least two members, each surviving candidate is first
/// fused with the tail at its weakest modes — see the module docs.
fn refine_site(
    ctx: &Ctx<'_>,
    acc: &mut Program,
    site: u32,
    tail: &[(u32, Mode)],
    pass: usize,
) -> Result<Refine, Interrupted> {
    let current = acc.sites()[site as usize].mode;
    let ladder = acc.sites()[site as usize].kind.weaker_modes(current);
    for cand in ladder.into_iter().skip(1) {
        if ctx.interrupt_requested() {
            return Err(Interrupted);
        }
        if tail.len() >= 2 {
            let mut patch = Vec::with_capacity(1 + tail.len());
            patch.push((site, cand));
            patch.extend_from_slice(tail);
            match ctx.check_candidate(&acc.with_patch(&patch), ctx.pool_size(), None) {
                CheckOutcome::Verified => {
                    commit(ctx, acc, site, cand, pass);
                    for &(s, m) in tail {
                        commit(ctx, acc, s, m, pass);
                    }
                    return Ok(Refine::AllCommitted);
                }
                CheckOutcome::Refuted { monotone } => {
                    match ctx.check_single(acc, site, cand, ctx.pool_size(), None) {
                        CheckOutcome::Verified => {
                            commit(ctx, acc, site, cand, pass);
                            // The fused candidate — which is exactly the
                            // new acc + tail at weakest — just failed.
                            return Ok(Refine::Accepted { tail_refuted: Some(monotone) });
                        }
                        CheckOutcome::Refuted { .. } => reject(ctx, acc, site, cand, pass),
                        CheckOutcome::Interrupted | CheckOutcome::Errored => {
                            return Err(Interrupted)
                        }
                    }
                }
                CheckOutcome::Interrupted | CheckOutcome::Errored => return Err(Interrupted),
            }
        } else {
            match ctx.check_single(acc, site, cand, ctx.pool_size(), None) {
                CheckOutcome::Verified => {
                    commit(ctx, acc, site, cand, pass);
                    return Ok(Refine::Accepted { tail_refuted: None });
                }
                CheckOutcome::Refuted { .. } => reject(ctx, acc, site, cand, pass),
                CheckOutcome::Interrupted | CheckOutcome::Errored => return Err(Interrupted),
            }
        }
    }
    Ok(Refine::Unchanged)
}
