//! The AMC exploration algorithm (paper Fig. 6).
//!
//! A work stack holds partial execution graphs. Each iteration pops a
//! graph, replays the program against it to reconstruct thread states,
//! discards it if it is wasteful (`W(G)`) or inconsistent with the memory
//! model, and otherwise extends it by one event of the first runnable
//! thread:
//!
//! * **reads** branch over every same-location write already in the graph
//!   (plus the missing-edge `⊥` option for await reads);
//! * **writes** branch over their modification-order placement and
//!   *revisit* existing reads of the same location (restricting the graph
//!   to the `porf`-prefixes of the write and the revisited read);
//! * when no thread is runnable, the graph is either a complete execution
//!   (check assertions and final-state predicates) or blocked; blocked
//!   graphs are passed to the stagnancy analysis, which decides whether
//!   they witness an await-termination violation.
//!
//! Work items are deduplicated by canonical content hash: the scheduler is
//! deterministic and revisit restrictions are content-determined, so two
//! items with equal content have identical futures.

use std::collections::HashSet;

use vsync_graph::{content_hash, EventId, EventKind, ExecutionGraph, Loc, RfSource, ThreadId};
use vsync_lang::{Operand, PendingOp, Program, ReadDesc, ThreadStatus};

use crate::stagnancy::is_stagnant;
use crate::verdict::{AmcConfig, AmcResult, Counterexample, ExploreStats, Verdict};

/// Run AMC on a program.
///
/// Returns [`Verdict::Verified`] iff every consistent execution passes all
/// assertions and final-state checks *and* every await terminates
/// (Theorem 1 of the paper: for programs obeying the Bounded-Length and
/// Bounded-Effect principles, the search is exhaustive and terminates).
pub fn explore(prog: &Program, config: &AmcConfig) -> AmcResult {
    Explorer::new(prog, config).run()
}

/// Convenience wrapper returning only the verdict.
pub fn verify(prog: &Program, config: &AmcConfig) -> Verdict {
    explore(prog, config).verdict
}

/// Count the complete consistent executions of a program — the size of the
/// paper's `G^F_*` set (used by the Fig. 1/Fig. 5 experiments).
pub fn count_executions(prog: &Program, config: &AmcConfig) -> u64 {
    explore(prog, config).stats.complete_executions
}

struct Explorer<'p> {
    prog: &'p Program,
    config: &'p AmcConfig,
    stack: Vec<ExecutionGraph>,
    seen: HashSet<u128>,
    stats: ExploreStats,
    executions: Vec<ExecutionGraph>,
}

impl<'p> Explorer<'p> {
    fn new(prog: &'p Program, config: &'p AmcConfig) -> Self {
        Explorer {
            prog,
            config,
            stack: Vec::new(),
            seen: HashSet::new(),
            stats: ExploreStats::default(),
            executions: Vec::new(),
        }
    }

    fn result(self, verdict: Verdict) -> AmcResult {
        AmcResult { verdict, stats: self.stats, executions: self.executions }
    }

    fn run(mut self) -> AmcResult {
        if let Err(e) = self.prog.validate() {
            return self.result(Verdict::Fault(format!("malformed program: {e}")));
        }
        let model = self.config.model.model();
        self.stack.push(ExecutionGraph::new(self.prog.num_threads(), self.prog.init().clone()));
        while let Some(mut g) = self.stack.pop() {
            self.stats.popped += 1;
            if self.config.max_graphs != 0 && self.stats.popped > self.config.max_graphs {
                let msg = format!("exploration exceeded {} work items", self.config.max_graphs);
                return self.result(Verdict::Fault(msg));
            }
            // Replay first: it repairs derived read flags, which both the
            // content hash and the consistency check depend on.
            let out = vsync_lang::replay_with_budget(self.prog, &mut g, self.config.step_budget);
            if let Some(f) = out.fault() {
                return self.result(Verdict::Fault(f.to_owned()));
            }
            if self.config.dedup && !self.seen.insert(content_hash(&g)) {
                self.stats.duplicates += 1;
                continue;
            }
            if out.wasteful {
                self.stats.wasteful += 1;
                continue;
            }
            if !model.is_consistent(&g) {
                self.stats.inconsistent += 1;
                continue;
            }
            if out.errored() {
                let (_, msg) = g.error().expect("errored replay has an error event");
                let message = format!("assertion failed: {msg}");
                return self.result(Verdict::Safety(Counterexample { graph: g, message }));
            }
            let next_ready = out.ready_threads().next();
            match next_ready {
                Some(t) => {
                    let ThreadStatus::Ready(op) = &out.threads[t as usize] else {
                        unreachable!()
                    };
                    if let Err(v) = self.extend(&g, t, op) {
                        return self.result(v);
                    }
                }
                None => {
                    let blocked: Vec<_> = out.blocked().collect();
                    if blocked.is_empty() {
                        self.stats.complete_executions += 1;
                        if let Some(msg) = self.failed_final_check(&g) {
                            return self
                                .result(Verdict::Safety(Counterexample { graph: g, message: msg }));
                        }
                        if self.config.collect_executions {
                            self.executions.push(g);
                        }
                    } else {
                        self.stats.blocked_graphs += 1;
                        if is_stagnant(&g, &blocked, model) {
                            let polls: Vec<String> =
                                blocked.iter().map(|b| format!("{}@{:#x}", b.read, b.loc)).collect();
                            let message = format!(
                                "await never terminates: blocked read(s) {} cannot \
                                 observe any new write",
                                polls.join(", ")
                            );
                            return self.result(Verdict::AwaitTermination(Counterexample {
                                graph: g,
                                message,
                            }));
                        }
                        // Non-stagnant blocked graphs are exploration
                        // artifacts; their real continuations are siblings.
                    }
                }
            }
        }
        let verdict = Verdict::Verified;
        self.result(verdict)
    }

    /// Evaluate the program's final-state checks on a complete execution.
    fn failed_final_check(&self, g: &ExecutionGraph) -> Option<String> {
        let state = g.final_state();
        for c in self.prog.final_checks() {
            let v = state.get(&c.loc).copied().unwrap_or(g.init_value(c.loc));
            let resolved = vsync_lang::ResolvedTest {
                mask: c.test.mask.map(const_operand).unwrap_or(u64::MAX),
                cmp: c.test.cmp,
                rhs: const_operand(c.test.rhs),
            };
            if !resolved.eval(v) {
                return Some(format!(
                    "final-state check failed: {} (final value of {:#x} is {v})",
                    c.msg, c.loc
                ));
            }
        }
        None
    }

    /// Generate and push all successor graphs for thread `t`'s pending op.
    fn extend(&mut self, g: &ExecutionGraph, t: ThreadId, op: &PendingOp) -> Result<(), Verdict> {
        if g.thread_len(t) >= self.config.max_events_per_thread {
            return Err(Verdict::Fault(format!(
                "thread {t} exceeded {} events — unbounded non-await loop? \
                 (Bounded-Length principle)",
                self.config.max_events_per_thread
            )));
        }
        match op {
            PendingOp::Fence { mode } => {
                let mut g2 = g.clone();
                g2.push_event(t, EventKind::Fence { mode: *mode });
                self.push(g2);
            }
            PendingOp::Error { msg } => {
                let mut g2 = g.clone();
                g2.push_event(t, EventKind::Error { msg: msg.clone() });
                self.push(g2);
            }
            PendingOp::Read { loc, mode, desc, prev_rf } => {
                self.extend_read(g, t, *loc, *mode, *desc, *prev_rf);
            }
            PendingOp::Write { loc, val, mode, rmw } => {
                self.extend_write(g, t, *loc, *val, *mode, *rmw);
            }
        }
        Ok(())
    }

    /// R-step of Fig. 6: branch over every rf candidate, plus `⊥` for
    /// await reads.
    fn extend_read(
        &mut self,
        g: &ExecutionGraph,
        t: ThreadId,
        loc: Loc,
        mode: vsync_graph::Mode,
        desc: ReadDesc,
        prev_rf: Option<RfSource>,
    ) {
        let min_pos = min_source_pos(g, t, loc);
        let mut candidates: Vec<EventId> = vec![EventId::Init(loc)];
        candidates.extend(g.mo(loc).iter().copied());
        for (pos, w) in candidates.into_iter().enumerate() {
            if pos < min_pos {
                continue; // per-location coherence rules this source out
            }
            if desc.is_await() && prev_rf == Some(RfSource::Write(w)) {
                continue; // wasteful repeat (Def. 2) — never generated
            }
            let v = g.write_value(w);
            let writes = desc.write_on(v).is_some();
            // NOTE: two RMW reads may transiently share a source; the
            // conflict is resolved when one commits its write part and
            // revisits the other (or the graph dies at the atomicity
            // check). Pruning shared sources here would lose executions.
            let mut g2 = g.clone();
            g2.push_event(
                t,
                EventKind::Read {
                    loc,
                    mode,
                    rf: RfSource::Write(w),
                    rmw: writes,
                    awaiting: desc.is_await(),
                },
            );
            self.push(g2);
        }
        if desc.is_await() {
            // The potential AT violation: no incoming rf-edge (yet).
            let mut g2 = g.clone();
            g2.push_event(
                t,
                EventKind::Read { loc, mode, rf: RfSource::Bottom, rmw: false, awaiting: true },
            );
            self.push(g2);
        }
    }

    /// W-step of Fig. 6: place the write in mo (all positions for plain
    /// writes; the atomicity-forced slot for RMW write parts), then compute
    /// revisits.
    fn extend_write(
        &mut self,
        g: &ExecutionGraph,
        t: ThreadId,
        loc: Loc,
        val: u64,
        mode: vsync_graph::Mode,
        rmw: bool,
    ) {
        let positions: Vec<usize> = if rmw {
            // The write part must land immediately after its read's source.
            let read_id = EventId::new(t, g.thread_len(t) as u32 - 1);
            let src = match g.rf(read_id) {
                RfSource::Write(w) => w,
                RfSource::Bottom => unreachable!("rmw write part with unresolved read"),
            };
            let pos = match src {
                EventId::Init(_) => 0,
                _ => g.mo(loc).iter().position(|x| *x == src).expect("source in mo") + 1,
            };
            vec![pos]
        } else {
            (0..=g.mo(loc).len()).collect()
        };
        for pos in positions {
            let mut g2 = g.clone();
            let wid = g2.push_event(t, EventKind::Write { loc, val, mode, rmw });
            g2.insert_mo(loc, wid, pos);
            // Revisits from this placed variant.
            let prefix_w = g2.porf_prefix([wid]);
            for (r, rloc, rf) in g2.reads().collect::<Vec<_>>() {
                if rloc != loc || r == wid || prefix_w.contains(&r) {
                    continue;
                }
                match rf {
                    RfSource::Bottom => {
                        // Resolution of a pending await read: no deletion
                        // needed, the blocked thread has no successors.
                        let mut g3 = g2.clone();
                        g3.set_rf(r, RfSource::Write(wid));
                        self.stats.revisits += 1;
                        self.push(g3);
                    }
                    RfSource::Write(old) if old != wid => {
                        // Standard revisit: keep only the porf-prefixes of
                        // the new write and of the read, re-point the read.
                        let mut keep = prefix_w.clone();
                        keep.extend(g2.porf_prefix([r]));
                        let mut g3 = g2.restrict(&keep);
                        g3.set_rf(r, RfSource::Write(wid));
                        self.stats.revisits += 1;
                        self.push(g3);
                    }
                    RfSource::Write(_) => {}
                }
            }
            self.push(g2);
        }
    }

    fn push(&mut self, g: ExecutionGraph) {
        self.stats.pushed += 1;
        self.stack.push(g);
    }
}

/// The smallest extended-mo position this thread's next read of `loc` may
/// observe, from per-location coherence with the thread's own earlier
/// accesses (CoRR/CoWR). Purely an optimization: the model check would
/// reject anything below this anyway.
fn min_source_pos(g: &ExecutionGraph, t: ThreadId, loc: Loc) -> usize {
    let evs = g.thread_events(t);
    for (i, ev) in evs.iter().enumerate().rev() {
        match &ev.kind {
            EventKind::Write { loc: l, .. } if *l == loc => {
                let id = EventId::new(t, i as u32);
                return g.mo_position(id).unwrap_or(0);
            }
            EventKind::Read { loc: l, rf: RfSource::Write(w), .. } if *l == loc => {
                return g.mo_position(*w).unwrap_or(0);
            }
            _ => {}
        }
    }
    0
}

fn const_operand(o: Operand) -> u64 {
    match o {
        Operand::Imm(v) => v,
        Operand::Reg(r) => panic!("final-state checks must use immediate operands, found {r}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_graph::Mode;
    use vsync_lang::{ProgramBuilder, Reg, Test};
    use vsync_model::ModelKind;

    fn cfg(model: ModelKind) -> AmcConfig {
        AmcConfig::with_model(model)
    }

    const X: Loc = 0x10;
    const Y: Loc = 0x20;

    /// Store buffering with relaxed accesses: 4 final states under VMM/TSO,
    /// 3 under SC (r0 = r1 = 0 excluded).
    fn sb_program() -> Program {
        let mut pb = ProgramBuilder::new("sb");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
            t.load(Reg(0), Y, Mode::Rlx);
        });
        pb.thread(|t| {
            t.store(Y, 1u64, Mode::Rlx);
            t.load(Reg(0), X, Mode::Rlx);
        });
        pb.build().unwrap()
    }

    #[test]
    fn sb_execution_counts_differ_by_model() {
        let vmm = count_executions(&sb_program(), &cfg(ModelKind::Vmm));
        let sc = count_executions(&sb_program(), &cfg(ModelKind::Sc));
        let tso = count_executions(&sb_program(), &cfg(ModelKind::Tso));
        assert_eq!(vmm, 4, "rf combinations: (0,0) (0,1) (1,0) (1,1)");
        assert_eq!(tso, 4);
        assert_eq!(sc, 3, "SC forbids both-read-zero");
    }

    #[test]
    fn sb_with_sc_fences_is_sequentially_consistent() {
        let mut pb = ProgramBuilder::new("sb+fences");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
            t.fence(Mode::Sc);
            t.load(Reg(0), Y, Mode::Rlx);
        });
        pb.thread(|t| {
            t.store(Y, 1u64, Mode::Rlx);
            t.fence(Mode::Sc);
            t.load(Reg(0), X, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        assert_eq!(count_executions(&p, &cfg(ModelKind::Vmm)), 3);
    }

    /// Message passing: relaxed flag allows the stale read; rel/acq forbids.
    #[test]
    fn mp_assertion_depends_on_barriers() {
        let mp = |wm: Mode, rm: Mode| {
            let mut pb = ProgramBuilder::new("mp");
            pb.thread(move |t| {
                t.store(X, 1u64, Mode::Rlx);
                t.store(Y, 1u64, wm);
            });
            pb.thread(move |t| {
                t.await_eq(Reg(0), Y, 1u64, rm);
                t.load(Reg(1), X, Mode::Rlx);
                t.assert_eq(Reg(1), 1u64, "data visible after flag");
            });
            pb.build().unwrap()
        };
        assert!(verify(&mp(Mode::Rel, Mode::Acq), &cfg(ModelKind::Vmm)).is_verified());
        let v = verify(&mp(Mode::Rlx, Mode::Rlx), &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::Safety(_)), "got: {v}");
        // Under SC even relaxed MP is safe.
        assert!(verify(&mp(Mode::Rlx, Mode::Rlx), &cfg(ModelKind::Sc)).is_verified());
    }

    #[test]
    fn coherence_test_corr() {
        // One writer, one reader reading twice: never observe 1 then 0.
        let mut pb = ProgramBuilder::new("corr");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
        });
        pb.thread(|t| {
            let done = t.label();
            t.load(Reg(0), X, Mode::Rlx);
            t.jmp_if(Reg(0), Test::eq(0u64), done);
            t.load(Reg(1), X, Mode::Rlx);
            t.assert_eq(Reg(1), 1u64, "no backwards read");
            t.bind(done);
        });
        let p = pb.build().unwrap();
        assert!(verify(&p, &cfg(ModelKind::Vmm)).is_verified());
    }

    #[test]
    fn atomicity_two_rmws_never_read_same_write() {
        // Two fetch_adds must not both read 0: final value is 2.
        let mut pb = ProgramBuilder::new("fai");
        for _ in 0..2 {
            pb.thread(|t| {
                t.fetch_add(Reg(0), X, 1u64, Mode::Rlx);
            });
        }
        pb.final_check(X, Test::eq(2u64), "no lost increment");
        let p = pb.build().unwrap();
        assert!(verify(&p, &cfg(ModelKind::Vmm)).is_verified());
        assert_eq!(count_executions(&p, &cfg(ModelKind::Vmm)), 2, "two interleavings");
    }

    #[test]
    fn plain_writes_do_lose_updates() {
        // The same counter with plain load/store increments loses updates.
        let mut pb = ProgramBuilder::new("lost-update");
        for _ in 0..2 {
            pb.thread(|t| {
                t.load(Reg(0), X, Mode::Rlx);
                t.add(Reg(1), Reg(0), 1u64);
                t.store(X, Reg(1), Mode::Rlx);
            });
        }
        pb.final_check(X, Test::eq(2u64), "no lost increment");
        let p = pb.build().unwrap();
        let v = verify(&p, &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::Safety(_)), "got {v}");
        // Even SC interleavings lose updates here.
        let v = verify(&p, &cfg(ModelKind::Sc));
        assert!(matches!(v, Verdict::Safety(_)), "got {v}");
    }

    /// Paper Fig. 1 with the q handshake removed (Fig. 5): graph β — where
    /// T2's unlock write is mo-before T1's lock write — leaves T1's await
    /// with no write to observe. AMC reports the AT violation with the
    /// finite graph β as evidence (paper §1.2, "Consider execution graph β").
    #[test]
    fn fig5_detects_graph_beta_at_violation() {
        let locked = X;
        let mut pb = ProgramBuilder::new("fig5");
        pb.thread(|t| {
            t.store(locked, 1u64, Mode::Rlx); // lock
            t.await_eq(Reg(0), locked, 0u64, Mode::Rlx);
        });
        pb.thread(|t| {
            t.store(locked, 0u64, Mode::Rlx); // unlock
        });
        let p = pb.build().unwrap();
        let r = explore(&p, &cfg(ModelKind::Vmm));
        let Verdict::AwaitTermination(ce) = &r.verdict else {
            panic!("expected AT violation (graph β), got {}", r.verdict);
        };
        // β's witness: a ⊥ read, and the unlock write mo-before the lock
        // write so no newer 0 can ever be observed.
        assert_eq!(ce.graph.pending_reads().count(), 1);
        let mo = ce.graph.mo(locked);
        assert_eq!(mo.len(), 2);
        assert_eq!(ce.graph.write_value(mo[0]), 0, "unlock first in mo");
        assert_eq!(ce.graph.write_value(mo[1]), 1, "lock write is mo-maximal");
    }

    /// The same two threads with the mo-order pinned by a handshake: T2
    /// unlocks only after observing T1's lock write, so the await always
    /// terminates and the two graphs ①/② of Fig. 5 remain.
    #[test]
    fn fig5_with_ordered_unlock_verifies() {
        let locked = X;
        let mut pb = ProgramBuilder::new("fig5-ordered");
        pb.thread(|t| {
            t.store(locked, 1u64, ("lock.store", Mode::Rel));
            t.await_eq(Reg(0), locked, 0u64, Mode::Rlx);
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), locked, 1u64, ("see.lock", Mode::Acq));
            t.store(locked, 0u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let r = explore(&p, &cfg(ModelKind::Vmm));
        assert!(r.is_verified(), "verdict: {}", r.verdict);
    }

    /// Paper Fig. 1 exactly: with the rel/acq handshake on q, awaiting
    /// terminates; dropping the handshake keeps it terminating too (the
    /// await just spins on locked) — AT holds in both.
    #[test]
    fn fig1_awaits_terminate() {
        let (locked, q) = (X, Y);
        let mut pb = ProgramBuilder::new("fig1");
        pb.thread(|t| {
            t.store(locked, 1u64, Mode::Rlx);
            t.store(q, 1u64, ("q.sig", Mode::Rel));
            t.await_eq(Reg(0), locked, 0u64, Mode::Rlx);
            t.assert_eq(Reg(0), 0u64, "lock handed over");
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), q, 1u64, ("q.poll", Mode::Acq));
            t.store(locked, 0u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let r = explore(&p, &cfg(ModelKind::Vmm));
        assert!(r.is_verified(), "verdict: {}", r.verdict);
    }

    /// A single thread awaiting a value nobody writes: the minimal AT
    /// violation (paper Fig. 7 territory).
    #[test]
    fn lonely_await_is_at_violation() {
        let mut pb = ProgramBuilder::new("lonely");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let v = verify(&p, &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::AwaitTermination(_)), "got {v}");
    }

    /// Await on a value that IS written: terminates.
    #[test]
    fn signalled_await_verifies() {
        let mut pb = ProgramBuilder::new("signalled");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, Mode::Acq);
        });
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rel);
        });
        let p = pb.build().unwrap();
        assert!(verify(&p, &cfg(ModelKind::Vmm)).is_verified());
    }

    /// Await whose condition can only be satisfied transiently: the writer
    /// sets x=1 then x=2; a waiter for x==1 may miss it under coherence?
    /// No: it may always read the mo-intermediate write — but if the waiter
    /// first reads 2, coherence traps it: AT violation.
    #[test]
    fn transient_signal_hangs() {
        let mut pb = ProgramBuilder::new("transient");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
            t.store(X, 2u64, Mode::Rlx);
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let v = verify(&p, &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::AwaitTermination(_)), "got {v}");
    }

    #[test]
    fn dedup_off_gives_same_verdicts() {
        let p = sb_program();
        let mut c = cfg(ModelKind::Vmm);
        c.dedup = false;
        // Without dedup the explorer visits duplicates but verdicts agree.
        assert!(verify(&p, &c).is_verified());
        let mp_bug = {
            let mut pb = ProgramBuilder::new("mp-bug");
            pb.thread(|t| {
                t.store(X, 1u64, Mode::Rlx);
                t.store(Y, 1u64, Mode::Rlx);
            });
            pb.thread(|t| {
                t.await_eq(Reg(0), Y, 1u64, Mode::Rlx);
                t.load(Reg(1), X, Mode::Rlx);
                t.assert_eq(Reg(1), 1u64, "visible");
            });
            pb.build().unwrap()
        };
        assert!(matches!(verify(&mp_bug, &c), Verdict::Safety(_)));
    }

    #[test]
    fn graph_budget_reports_fault() {
        let mut c = cfg(ModelKind::Vmm);
        c.max_graphs = 2;
        let v = verify(&sb_program(), &c);
        assert!(matches!(v, Verdict::Fault(_)));
    }

    #[test]
    fn ttas_lock_mutual_exclusion() {
        // The paper's Fig. 3 TTAS lock with 2 threads, one acquisition each.
        let lock = X;
        let counter = Y;
        let mut pb = ProgramBuilder::new("ttas");
        for _ in 0..2 {
            pb.thread(|t| {
                let retry = t.here_label();
                let acquired = t.label();
                // do { await lock != 1 } while (xchg(lock,1) != 0)
                t.await_neq(Reg(0), lock, 1u64, ("acquire.await", Mode::Rlx));
                t.xchg(Reg(1), lock, 1u64, ("acquire.xchg", Mode::AcqRel));
                t.jmp_if(Reg(1), Test::eq(0u64), acquired);
                t.jmp(retry);
                t.bind(acquired);
                // critical section: counter++
                t.load(Reg(2), counter, vsync_lang::Fixed(Mode::Rlx));
                t.add(Reg(3), Reg(2), 1u64);
                t.store(counter, Reg(3), vsync_lang::Fixed(Mode::Rlx));
                // release
                t.store(lock, 0u64, ("release.store", Mode::Rel));
            });
        }
        pb.final_check(counter, Test::eq(2u64), "both increments applied");
        let p = pb.build().unwrap();
        let r = explore(&p, &cfg(ModelKind::Vmm));
        assert!(r.is_verified(), "verdict: {} ({})", r.verdict, r.stats);
    }

    #[test]
    fn ttas_lock_with_relaxed_release_breaks() {
        // Relaxing the release store lets the CS writes escape: the second
        // thread can read a stale counter.
        let lock = X;
        let counter = Y;
        let mut pb = ProgramBuilder::new("ttas-broken");
        for _ in 0..2 {
            pb.thread(|t| {
                let retry = t.here_label();
                let acquired = t.label();
                t.await_neq(Reg(0), lock, 1u64, ("acquire.await", Mode::Rlx));
                t.xchg(Reg(1), lock, 1u64, ("acquire.xchg", Mode::Rlx));
                t.jmp_if(Reg(1), Test::eq(0u64), acquired);
                t.jmp(retry);
                t.bind(acquired);
                t.load(Reg(2), counter, vsync_lang::Fixed(Mode::Rlx));
                t.add(Reg(3), Reg(2), 1u64);
                t.store(counter, Reg(3), vsync_lang::Fixed(Mode::Rlx));
                t.store(lock, 0u64, ("release.store", Mode::Rlx));
            });
        }
        pb.final_check(counter, Test::eq(2u64), "both increments applied");
        let p = pb.build().unwrap();
        let v = verify(&p, &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::Safety(_)), "got {v}");
    }
}
