//! The AMC exploration algorithm (paper Fig. 6).
//!
//! A work queue holds partial execution graphs. Each step takes a graph,
//! replays the program against it to reconstruct thread states, discards it
//! if it is wasteful (`W(G)`) or inconsistent with the memory model, and
//! otherwise extends it by one event of the first runnable thread:
//!
//! * **reads** branch over every same-location write already in the graph
//!   (plus the missing-edge `⊥` option for await reads);
//! * **writes** branch over their modification-order placement and
//!   *revisit* existing reads of the same location (restricting the graph
//!   to the `porf`-prefixes of the write and the revisited read);
//! * when no thread is runnable, the graph is either a complete execution
//!   (check assertions and final-state predicates) or blocked; blocked
//!   graphs are passed to the stagnancy analysis, which decides whether
//!   they witness an await-termination violation.
//!
//! Work items are deduplicated by canonical content hash: the scheduler is
//! deterministic and revisit restrictions are content-determined, so two
//! items with equal content have identical futures.
//!
//! ## Thread-symmetry reduction
//!
//! With [`AmcConfig::symmetry`] (default on) the dedup key is the
//! canonical hash *modulo permutations of template-identical threads*
//! ([`vsync_lang::Program::symmetry_partition`]): up to `k!` relabeled
//! twins per `k`-thread symmetry class collapse onto one orbit, pruned at
//! insertion instead of explored (counted as `symmetry_pruned`). The item
//! admitted for an orbit is normalized to the orbit's *canonical
//! representative* ([`ExecutionGraph::permute_threads`] by the minimizing
//! relabeling), so successor generation — which extends the first ready
//! thread, a choice that is not relabeling-invariant — stays a function
//! of the orbit and the explored set remains deterministic across worker
//! counts. Soundness: relabeling template-identical threads maps
//! executions of the program onto executions of the same program and
//! preserves assertion failures, final-state checks and stagnancy
//! (DESIGN.md §8).
//!
//! ## Parallel exploration
//!
//! Work items are *independent*: a popped graph's processing depends only
//! on its own content. With [`AmcConfig::workers`] `> 1` the explorer runs
//! N worker threads over a shared injector queue with a sharded
//! content-hash dedup set; per-worker [`ExploreStats`] are merged at the
//! end. Because the dedup set admits each graph content exactly once and
//! successors are functions of content, the set of explored graphs — and
//! hence the verdict and `complete_executions` — is identical for every
//! worker count. `workers == 1` runs the exact sequential LIFO algorithm.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use vsync_graph::{
    content_hash, Canonicalizer, EventId, EventKind, ExecutionGraph, Loc, RfSource, ThreadId,
};
use vsync_lang::{Operand, PendingOp, Program, ReadDesc, ThreadStatus};
use vsync_model::MemoryModel;

use crate::failpoint;
use crate::session::{ProgressSnapshot, RunControl};
use crate::stagnancy::is_stagnant;
use crate::telemetry::{PhaseProfile, PhaseTracker};
use crate::verdict::{
    AmcConfig, AmcResult, Counterexample, EngineError, EnginePhase, ExploreStats, Inconclusive,
    ResourceBudget, SearchMode, StopReason, Verdict,
};

/// Lock acquisition with explicit poison recovery: every mutex in the
/// explorer guards state that is valid at each lock release (counters,
/// the work queue, dedup shards), so a peer's panic mid-*hold* is
/// impossible to observe — the panic either happens outside any guard or
/// inside `catch_unwind`-wrapped processing that never holds one. A
/// poisoned flag therefore carries no information and must not cascade.
pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Render a caught panic payload for an [`EngineError`].
pub(crate) fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run AMC on a program.
///
/// Returns [`Verdict::Verified`] iff every consistent execution passes all
/// assertions and final-state checks *and* every await terminates
/// (Theorem 1 of the paper: for programs obeying the Bounded-Length and
/// Bounded-Effect principles, the search is exhaustive and terminates).
pub fn explore(prog: &Program, config: &AmcConfig) -> AmcResult {
    explore_with(prog, config, &RunControl::default())
}

/// [`explore`] with runtime controls: a cancellation token, a deadline and
/// a progress sink (see [`RunControl`]). This is the engine entry point
/// the [`crate::Session`] pipeline drives; prefer the `Session` builder
/// unless you are wiring the explorer into your own scheduler.
///
/// Interruption is cooperative: the cancel flag is re-checked on every
/// popped work item and the deadline every few dozen items, in every
/// worker. An interrupted run reports [`Verdict::Inconclusive`] without
/// finishing the item in flight; resource-budget exhaustion
/// ([`ResourceBudget`]) degrades to the same shape. A panic caught inside
/// a worker terminates the run with [`Verdict::Error`] instead of
/// aborting the process.
pub fn explore_with(prog: &Program, config: &AmcConfig, control: &RunControl) -> AmcResult {
    if let Err(e) = prog.validate() {
        return AmcResult {
            verdict: Verdict::Fault(format!("malformed program: {e}")),
            stats: ExploreStats::default(),
            executions: Vec::new(),
        };
    }
    // The symmetry partition is recomputed from the *current* resolved
    // code on every run (cheap), so optimizer-patched candidates whose
    // thread modes diverged never reuse a stale merge.
    let partition = (config.symmetry && config.dedup)
        .then(|| prog.symmetry_partition())
        .filter(|p| !p.is_trivial());
    let engine =
        Engine { prog, config, model: config.model.checker(config.checker), control, partition };
    match (config.search, config.workers > 1) {
        (SearchMode::Revisit, false) => engine.run_revisit_sequential(),
        (SearchMode::Revisit, true) => engine.run_revisit_parallel(config.workers),
        (SearchMode::Enumerate, false) => engine.run_sequential(),
        (SearchMode::Enumerate, true) => engine.run_parallel(config.workers),
    }
}

/// Convenience wrapper returning only the verdict.
pub fn verify(prog: &Program, config: &AmcConfig) -> Verdict {
    explore(prog, config).verdict
}

/// Compact outcome of an oracle-mode exploration ([`explore_oracle`]).
#[derive(Debug)]
#[must_use = "a dropped OracleOutcome discards the candidate's verdict"]
pub struct OracleOutcome {
    /// Did the program verify? Meaningless when [`interrupted`] is set.
    ///
    /// [`interrupted`]: OracleOutcome::interrupted
    pub ok: bool,
    /// The run was cut short — cancellation, deadline, resource budget or
    /// an engine error — before the verdict was decided.
    pub interrupted: bool,
    /// A panic caught inside the engine while checking this candidate
    /// (also sets [`interrupted`]: the candidate's status is unknown and
    /// must not be treated as a rejection).
    ///
    /// [`interrupted`]: OracleOutcome::interrupted
    pub error: Option<EngineError>,
    /// The violating execution graph, when the exploration found a safety
    /// or await-termination violation. Faults (budget/modeling errors)
    /// reject the candidate without a witness.
    pub witness: Option<ExecutionGraph>,
    /// Work items popped before the verdict was decided — the cost of
    /// this oracle call. Rejections stop at the first violation, so they
    /// are typically far cheaper than the full exploration a verified
    /// candidate pays.
    pub graphs: u64,
}

/// Early-stop oracle mode: the optimizer's view of the explorer.
///
/// A barrier-optimization oracle only needs *rejected-or-not* plus, on
/// rejection, the violating graph to seed the witness cache — so this
/// entry point never collects executions, strips the result down to an
/// [`OracleOutcome`], and leans on the drivers' first-violation stop: the
/// sequential driver returns the moment a violation is found, and in the
/// parallel driver the verdict-bearing worker stops the shared queue so
/// every peer drains at its next pop instead of exploring useless
/// branches. Candidate evaluations run under their own [`CancelToken`]
/// children, so a scheduler can cooperatively cancel losers mid-flight.
///
/// [`CancelToken`]: crate::session::CancelToken
pub fn explore_oracle(prog: &Program, config: &AmcConfig, control: &RunControl) -> OracleOutcome {
    let mut config = config.clone();
    config.collect_executions = false;
    let result = explore_with(prog, &config, control);
    let graphs = result.stats.popped;
    match result.verdict {
        Verdict::Verified => {
            OracleOutcome { ok: true, interrupted: false, error: None, witness: None, graphs }
        }
        Verdict::Safety(ce) | Verdict::AwaitTermination(ce) => OracleOutcome {
            ok: false,
            interrupted: false,
            error: None,
            witness: Some(ce.graph),
            graphs,
        },
        Verdict::Fault(_) => {
            OracleOutcome { ok: false, interrupted: false, error: None, witness: None, graphs }
        }
        Verdict::Inconclusive(_) => {
            OracleOutcome { ok: false, interrupted: true, error: None, witness: None, graphs }
        }
        Verdict::Error(e) => {
            OracleOutcome { ok: false, interrupted: true, error: Some(e), witness: None, graphs }
        }
    }
}

/// Count the complete consistent executions of a program — the size of the
/// paper's `G^F_*` set (used by the Fig. 1/Fig. 5 experiments). With
/// [`AmcConfig::symmetry`] on, the count is the number of *orbits* of
/// executions under permutations of symmetric threads; disable symmetry
/// for the naive per-twin count.
pub fn count_executions(prog: &Program, config: &AmcConfig) -> u64 {
    match count_executions_with(prog, config, &RunControl::default()) {
        Ok(n) => n,
        Err(r) => panic!(
            "count_executions stopped early ({r}); raise the exploration \
             budget or use count_executions_with"
        ),
    }
}

/// [`count_executions`] honoring runtime controls: a pre-fired
/// [`CancelToken`] or an already-expired deadline returns promptly with
/// the [`StopReason`] instead of enumerating the full execution space
/// (every exploration worker re-checks the budget cooperatively, exactly
/// as [`explore_with`] does).
///
/// # Errors
///
/// The stop reason, when the run was cut short before the space was
/// exhausted — a partial count would be meaningless.
///
/// [`CancelToken`]: crate::session::CancelToken
pub fn count_executions_with(
    prog: &Program,
    config: &AmcConfig,
    control: &RunControl,
) -> Result<u64, StopReason> {
    let result = explore_with(prog, config, control);
    match result.verdict {
        Verdict::Inconclusive(i) => Err(i.reason),
        _ => Ok(result.stats.complete_executions),
    }
}

/// Pass-through hasher for the dedup set: the keys are already 128-bit
/// content hashes, so running them through SipHash again is pure waste.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("dedup keys hash via write_u128");
    }

    fn write_u128(&mut self, v: u128) {
        // Shard selection uses the LOW bits (`h % SHARDS`); the in-table
        // hash must use disjoint bits or every key in a shard clusters
        // into 1/SHARDS of its buckets.
        self.0 = (v >> 64) as u64;
    }
}

pub(crate) type SeenSet = HashSet<u128, BuildHasherDefault<IdentityHasher>>;

/// The scheduler-independent part of the explorer: how one work item is
/// processed. Shared by the sequential and parallel drivers of both search
/// modes (the revisit-driven drivers live in [`crate::revisit`]).
pub(crate) struct Engine<'p> {
    pub(crate) prog: &'p Program,
    pub(crate) config: &'p AmcConfig,
    pub(crate) model: &'static dyn MemoryModel,
    pub(crate) control: &'p RunControl,
    /// Non-trivial thread-symmetry partition, when symmetry-aware dedup
    /// is enabled for this run. Each worker derives its own
    /// [`Canonicalizer`] (scratch buffers) from it.
    pub(crate) partition: Option<vsync_graph::ThreadPartition>,
}

/// Items between deadline/progress checks. The cancel flag is read on
/// every item (one relaxed-ish atomic load); `Instant::now()` and the
/// progress machinery only every `CHECK_PERIOD` items so they stay out of
/// the hot path.
pub(crate) const CHECK_PERIOD: u64 = 64;

/// Per-worker cadence state for the cooperative control checks.
///
/// In parallel runs `gate` points at a shared last-emission timestamp so
/// only one worker emits a snapshot per interval; sequential runs keep a
/// local timestamp.
pub(crate) struct Pacer<'c> {
    control: &'c RunControl,
    started: Instant,
    last_emit: Instant,
    gate: Option<&'c Mutex<Instant>>,
    count: u64,
    workers: usize,
    /// This worker's index (0 for sequential drivers), stamped onto
    /// telemetry events so multi-worker streams can be demultiplexed.
    worker: usize,
    /// Local stats as of the last telemetry drain.
    last_local: ExploreStats,
    /// Phase profile as of the last telemetry drain.
    last_profile: PhaseProfile,
}

impl<'c> Pacer<'c> {
    pub(crate) fn new(
        control: &'c RunControl,
        workers: usize,
        gate: Option<&'c Mutex<Instant>>,
        worker: usize,
    ) -> Self {
        let now = Instant::now();
        Pacer {
            control,
            started: now,
            last_emit: now,
            gate,
            count: 0,
            workers,
            worker,
            last_local: ExploreStats::default(),
            last_profile: PhaseProfile::default(),
        }
    }

    /// One cancellation point. Returns the stop reason that should end
    /// the run, if any; otherwise drains this worker's telemetry onto the
    /// event bus (when one is attached) and possibly emits a progress
    /// snapshot built from `stats` (already merged across workers by the
    /// caller). `local` is *this worker's* cumulative counters, so stats
    /// deltas are per-worker and deterministic at `workers == 1`.
    pub(crate) fn poll(
        &mut self,
        tracker: &PhaseTracker,
        local: &ExploreStats,
        stats: impl FnOnce() -> ExploreStats,
    ) -> Option<StopReason> {
        if self.control.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        self.count += 1;
        if self.count % CHECK_PERIOD != 1 {
            return None;
        }
        let now = Instant::now();
        if let Some(d) = self.control.deadline {
            if now >= d {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        if let Some(bus) = &self.control.events {
            // `snapshot` (not `take_profile`): the tracker's cumulative
            // profile must survive for the driver's final merge into the
            // run's stats; the bus only sees the since-last-drain slice.
            let delta = stats_delta(local, &self.last_local);
            if delta != ExploreStats::default() {
                bus.emit(crate::telemetry::EventKind::StatsDelta {
                    worker: self.worker,
                    stats: delta,
                });
            }
            self.last_local = *local;
            let profile = tracker.snapshot();
            let slice = profile.minus(&self.last_profile);
            if !slice.is_empty() {
                bus.emit(crate::telemetry::EventKind::PhaseSlice {
                    worker: self.worker,
                    phases: slice,
                });
            }
            self.last_profile = profile;
        }
        if let Some(cb) = &self.control.progress {
            let due = match self.gate {
                None => {
                    let due = now.duration_since(self.last_emit) >= self.control.progress_interval;
                    if due {
                        self.last_emit = now;
                    }
                    due
                }
                // try_lock: a peer already emitting means we simply skip.
                // A poisoned gate only ever holds a timestamp — recover it.
                Some(gate) => {
                    let guard = match gate.try_lock() {
                        Ok(g) => Some(g),
                        Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                        Err(std::sync::TryLockError::WouldBlock) => None,
                    };
                    match guard {
                        Some(mut last) => {
                            let due = now.duration_since(*last) >= self.control.progress_interval;
                            if due {
                                *last = now;
                            }
                            due
                        }
                        None => false,
                    }
                }
            };
            if due {
                cb(&ProgressSnapshot {
                    model: self.control.model,
                    stats: stats(),
                    elapsed: now.duration_since(self.started),
                    workers: self.workers,
                });
            }
        }
        None
    }
}

/// Atomic accumulation of per-worker [`ExploreStats`], so parallel
/// progress snapshots can merge counters without stopping anyone.
#[derive(Default)]
pub(crate) struct SharedStats {
    popped: AtomicU64,
    pushed: AtomicU64,
    constructed: AtomicU64,
    duplicates: AtomicU64,
    symmetry_pruned: AtomicU64,
    inconsistent: AtomicU64,
    wasteful: AtomicU64,
    revisits: AtomicU64,
    complete_executions: AtomicU64,
    blocked_graphs: AtomicU64,
    events: AtomicU64,
    probes: AtomicU64,
}

impl SharedStats {
    pub(crate) fn add(&self, s: &ExploreStats) {
        self.popped.fetch_add(s.popped, Ordering::Relaxed);
        self.pushed.fetch_add(s.pushed, Ordering::Relaxed);
        self.constructed.fetch_add(s.constructed, Ordering::Relaxed);
        self.duplicates.fetch_add(s.duplicates, Ordering::Relaxed);
        self.symmetry_pruned.fetch_add(s.symmetry_pruned, Ordering::Relaxed);
        self.inconsistent.fetch_add(s.inconsistent, Ordering::Relaxed);
        self.wasteful.fetch_add(s.wasteful, Ordering::Relaxed);
        self.revisits.fetch_add(s.revisits, Ordering::Relaxed);
        self.complete_executions.fetch_add(s.complete_executions, Ordering::Relaxed);
        self.blocked_graphs.fetch_add(s.blocked_graphs, Ordering::Relaxed);
        self.events.fetch_add(s.events, Ordering::Relaxed);
        self.probes.fetch_add(s.probes, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ExploreStats {
        ExploreStats {
            popped: self.popped.load(Ordering::Relaxed),
            pushed: self.pushed.load(Ordering::Relaxed),
            constructed: self.constructed.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            symmetry_pruned: self.symmetry_pruned.load(Ordering::Relaxed),
            inconsistent: self.inconsistent.load(Ordering::Relaxed),
            wasteful: self.wasteful.load(Ordering::Relaxed),
            revisits: self.revisits.load(Ordering::Relaxed),
            complete_executions: self.complete_executions.load(Ordering::Relaxed),
            blocked_graphs: self.blocked_graphs.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            frontier_dropped: 0,
            probes: self.probes.load(Ordering::Relaxed),
            // Phase profiles stay worker-local (merged once at the end);
            // progress snapshots carry counters only.
            phases: PhaseProfile::default(),
        }
    }
}

/// Field-wise `a - b`; `b` is always an earlier copy of `a`.
pub(crate) fn stats_delta(a: &ExploreStats, b: &ExploreStats) -> ExploreStats {
    ExploreStats {
        popped: a.popped - b.popped,
        pushed: a.pushed - b.pushed,
        constructed: a.constructed - b.constructed,
        duplicates: a.duplicates - b.duplicates,
        symmetry_pruned: a.symmetry_pruned - b.symmetry_pruned,
        inconsistent: a.inconsistent - b.inconsistent,
        wasteful: a.wasteful - b.wasteful,
        revisits: a.revisits - b.revisits,
        complete_executions: a.complete_executions - b.complete_executions,
        blocked_graphs: a.blocked_graphs - b.blocked_graphs,
        events: a.events - b.events,
        frontier_dropped: a.frontier_dropped - b.frontier_dropped,
        probes: a.probes - b.probes,
        phases: a.phases.minus(&b.phases),
    }
}

/// Fixed estimated cost of one dedup-set entry (the 16-byte key plus
/// table overhead), for [`ResourceBudget::max_memory_bytes`] accounting.
const DEDUP_ENTRY_BYTES: u64 = 48;

/// Shared accounting for a run's [`ResourceBudget`]: live frontier bytes
/// (charged on push, released on pop) plus monotone dedup-set bytes and
/// entry counts. Byte accounting is skipped entirely when no memory
/// ceiling is set, so unlimited runs never call
/// [`ExecutionGraph::approx_heap_bytes`].
pub(crate) struct BudgetTracker {
    max_bytes: u64,
    max_entries: u64,
    bytes: AtomicU64,
    entries: AtomicU64,
    /// Synthetic exhaustion injected by a failpoint (`0` none, `1`
    /// memory, `2` dedup) — lets the fault harness exercise the
    /// degradation path deterministically without tuning real budgets.
    forced: AtomicUsize,
}

impl BudgetTracker {
    pub(crate) fn new(b: &ResourceBudget) -> Self {
        BudgetTracker {
            max_bytes: b.max_memory_bytes,
            max_entries: b.max_dedup_entries,
            bytes: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            forced: AtomicUsize::new(0),
        }
    }

    pub(crate) fn charge(&self, g: &ExecutionGraph) {
        if self.max_bytes != 0 {
            self.bytes.fetch_add(g.approx_heap_bytes() as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn release(&self, g: &ExecutionGraph) {
        if self.max_bytes != 0 {
            self.bytes.fetch_sub(g.approx_heap_bytes() as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_dedup_entry(&self) {
        if self.max_bytes != 0 {
            self.bytes.fetch_add(DEDUP_ENTRY_BYTES, Ordering::Relaxed);
        }
        if self.max_entries != 0 {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a synthetic allocation failure (failpoint `oom` action).
    pub(crate) fn force(&self, reason: StopReason) {
        let code = match reason {
            StopReason::DedupBudget => 2,
            _ => 1,
        };
        self.forced.store(code, Ordering::Relaxed);
    }

    pub(crate) fn exceeded(&self) -> Option<StopReason> {
        match self.forced.load(Ordering::Relaxed) {
            1 => return Some(StopReason::MemoryBudget),
            2 => return Some(StopReason::DedupBudget),
            _ => {}
        }
        if self.max_entries != 0 && self.entries.load(Ordering::Relaxed) > self.max_entries {
            return Some(StopReason::DedupBudget);
        }
        if self.max_bytes != 0 && self.bytes.load(Ordering::Relaxed) > self.max_bytes {
            return Some(StopReason::MemoryBudget);
        }
        None
    }
}

/// Assemble the degraded result for a budget- or interrupt-stopped run.
pub(crate) fn degraded(
    reason: StopReason,
    mut stats: ExploreStats,
    explored: u64,
    dropped: u64,
    executions: Vec<ExecutionGraph>,
) -> AmcResult {
    stats.frontier_dropped = dropped;
    AmcResult {
        verdict: Verdict::Inconclusive(Inconclusive {
            reason,
            explored,
            frontier_dropped: dropped,
        }),
        stats,
        executions,
    }
}

/// Scratch state for processing one work item; children end up in `out`.
struct Step<'s> {
    stats: &'s mut ExploreStats,
    out: &'s mut Vec<ExecutionGraph>,
    executions: &'s mut Vec<ExecutionGraph>,
    /// The run's budget tracker, so failpoint-injected allocation
    /// failures can force exhaustion from any stage.
    budget: &'s BudgetTracker,
    /// Engine phase the worker is currently executing, kept up to date by
    /// [`Engine::process`] so the driver's `catch_unwind` can attribute a
    /// caught panic ([`EngineError::phase`]) and, when profiling is on,
    /// each phase's wall clock accrues to the run's [`PhaseProfile`].
    phase: &'s PhaseTracker,
}

impl Step<'_> {
    /// Record a failpoint hit; a synthetic allocation failure is reported
    /// as memory-budget exhaustion. Compiles to nothing without the
    /// `failpoints` feature.
    #[inline]
    fn failpoint(&self, site: &'static str) {
        if failpoint::hit(site).is_oom() {
            self.budget.force(StopReason::MemoryBudget);
        }
    }
}

impl<'p> Engine<'p> {
    pub(crate) fn initial_graph(&self) -> ExecutionGraph {
        ExecutionGraph::new(self.prog.num_threads(), self.prog.init().clone())
    }

    /// Process one popped work item. Children are appended to `step.out`
    /// (in the same order the sequential explorer would push them); a
    /// `Some` return is a terminal verdict that ends the exploration.
    ///
    /// `seen` is the dedup probe: returns `true` iff the hash is new.
    /// `canon` is the worker's symmetry canonicalizer, `None` when the run
    /// has no usable symmetry.
    fn process(
        &self,
        mut g: ExecutionGraph,
        seen: &mut dyn FnMut(u128) -> bool,
        canon: &mut Option<Canonicalizer>,
        step: &mut Step<'_>,
    ) -> Option<Verdict> {
        // Replay first: it repairs derived read flags, which both the
        // content hash and the consistency check depend on.
        step.phase.set(EnginePhase::Replay);
        step.failpoint("explore.replay");
        let mut out = vsync_lang::replay_with_budget(self.prog, &mut g, self.config.step_budget);
        if let Some(f) = out.fault() {
            return Some(Verdict::Fault(f.to_owned()));
        }
        step.stats.events += g.num_events() as u64;
        if self.config.dedup {
            step.phase.set(EnginePhase::Dedup);
            step.failpoint("explore.dedup");
            let (hash, permuted) = match canon {
                Some(c) => c.canonical_hash(&g),
                None => (content_hash(&g), false),
            };
            // Drain the canonicalizer's permutation-probe count right at
            // the hash site; a plain content hash is one probe.
            step.stats.probes += match canon {
                Some(c) => c.take_probes(),
                None => 1,
            };
            if !seen(hash) {
                // An orbit twin (or the very content) was already admitted
                // and covers this item's futures up to relabeling.
                if permuted {
                    step.stats.symmetry_pruned += 1;
                } else {
                    step.stats.duplicates += 1;
                }
                return None;
            }
            if permuted {
                // First arrival of its orbit, but not in canonical form:
                // normalize to the representative so successor generation
                // (which picks the first ready thread — not a
                // relabeling-invariant choice) is a function of the orbit.
                let perm = canon
                    .as_ref()
                    .and_then(Canonicalizer::chosen_perm)
                    .expect("permuted hash implies a chosen relabeling");
                g = g.permute_threads(perm);
                out = vsync_lang::replay_with_budget(self.prog, &mut g, self.config.step_budget);
                if let Some(f) = out.fault() {
                    return Some(Verdict::Fault(f.to_owned()));
                }
            }
        }
        if out.wasteful {
            step.stats.wasteful += 1;
            return None;
        }
        step.phase.set(EnginePhase::Consistency);
        step.failpoint("explore.consistency");
        if !self.model.is_consistent(&g) {
            step.stats.inconsistent += 1;
            return None;
        }
        if out.errored() {
            let (_, msg) = g.error().expect("errored replay has an error event");
            let message = format!("assertion failed: {msg}");
            return Some(Verdict::Safety(Counterexample { graph: g, message }));
        }
        let next_ready = out.ready_threads().next();
        match next_ready {
            Some(t) => {
                step.phase.set(EnginePhase::Extend);
                step.failpoint("explore.extend");
                let ThreadStatus::Ready(op) = &out.threads[t as usize] else { unreachable!() };
                if let Err(v) = self.extend(&g, t, op, step) {
                    return Some(v);
                }
            }
            None => {
                let blocked: Vec<_> = out.blocked().collect();
                if blocked.is_empty() {
                    step.phase.set(EnginePhase::FinalCheck);
                    step.failpoint("explore.final");
                    step.stats.complete_executions += 1;
                    if let Some(msg) = self.failed_final_check(&g) {
                        return Some(Verdict::Safety(Counterexample { graph: g, message: msg }));
                    }
                    if self.config.collect_executions {
                        step.executions.push(g);
                    }
                } else {
                    step.phase.set(EnginePhase::Stagnancy);
                    step.failpoint("explore.stagnancy");
                    step.stats.blocked_graphs += 1;
                    if is_stagnant(&g, &blocked, self.model) {
                        let polls: Vec<String> =
                            blocked.iter().map(|b| format!("{}@{:#x}", b.read, b.loc)).collect();
                        let message = format!(
                            "await never terminates: blocked read(s) {} cannot \
                             observe any new write",
                            polls.join(", ")
                        );
                        return Some(Verdict::AwaitTermination(Counterexample {
                            graph: g,
                            message,
                        }));
                    }
                    // Non-stagnant blocked graphs are exploration
                    // artifacts; their real continuations are siblings.
                }
            }
        }
        None
    }

    /// Evaluate the program's final-state checks on a complete execution.
    fn failed_final_check(&self, g: &ExecutionGraph) -> Option<String> {
        failed_final_check(self.prog, g)
    }

    /// Generate all successor graphs for thread `t`'s pending op.
    fn extend(
        &self,
        g: &ExecutionGraph,
        t: ThreadId,
        op: &PendingOp,
        step: &mut Step<'_>,
    ) -> Result<(), Verdict> {
        if g.thread_len(t) >= self.config.max_events_per_thread {
            return Err(Verdict::Fault(format!(
                "thread {t} exceeded {} events — unbounded non-await loop? \
                 (Bounded-Length principle)",
                self.config.max_events_per_thread
            )));
        }
        match op {
            PendingOp::Fence { mode } => {
                let mut g2 = g.clone();
                g2.push_event(t, EventKind::Fence { mode: *mode });
                push(step, g2);
            }
            PendingOp::Error { msg } => {
                let mut g2 = g.clone();
                g2.push_event(t, EventKind::Error { msg: msg.clone() });
                push(step, g2);
            }
            PendingOp::Read { loc, mode, desc, prev_rf } => {
                self.extend_read(g, t, *loc, *mode, *desc, *prev_rf, step);
            }
            PendingOp::Write { loc, val, mode, rmw } => {
                self.extend_write(g, t, *loc, *val, *mode, *rmw, step);
            }
        }
        Ok(())
    }

    /// R-step of Fig. 6: branch over every rf candidate, plus `⊥` for
    /// await reads.
    #[allow(clippy::too_many_arguments)]
    fn extend_read(
        &self,
        g: &ExecutionGraph,
        t: ThreadId,
        loc: Loc,
        mode: vsync_graph::Mode,
        desc: ReadDesc,
        prev_rf: Option<RfSource>,
        step: &mut Step<'_>,
    ) {
        let min_pos = min_source_pos(g, t, loc);
        let mut candidates: Vec<EventId> = vec![EventId::Init(loc)];
        candidates.extend(g.mo(loc).iter().copied());
        for (pos, w) in candidates.into_iter().enumerate() {
            if pos < min_pos {
                continue; // per-location coherence rules this source out
            }
            if desc.is_await() && prev_rf == Some(RfSource::Write(w)) {
                continue; // wasteful repeat (Def. 2) — never generated
            }
            let v = g.write_value(w);
            let writes = desc.write_on(v).is_some();
            // NOTE: two RMW reads may transiently share a source; the
            // conflict is resolved when one commits its write part and
            // revisits the other (or the graph dies at the atomicity
            // check). Pruning shared sources here would lose executions.
            let mut g2 = g.clone();
            g2.push_event(
                t,
                EventKind::Read {
                    loc,
                    mode,
                    rf: RfSource::Write(w),
                    rmw: writes,
                    awaiting: desc.is_await(),
                },
            );
            push(step, g2);
        }
        if desc.is_await() {
            // The potential AT violation: no incoming rf-edge (yet).
            let mut g2 = g.clone();
            g2.push_event(
                t,
                EventKind::Read { loc, mode, rf: RfSource::Bottom, rmw: false, awaiting: true },
            );
            push(step, g2);
        }
    }

    /// W-step of Fig. 6: place the write in mo (all positions for plain
    /// writes; the atomicity-forced slot for RMW write parts), then compute
    /// revisits.
    #[allow(clippy::too_many_arguments)]
    fn extend_write(
        &self,
        g: &ExecutionGraph,
        t: ThreadId,
        loc: Loc,
        val: u64,
        mode: vsync_graph::Mode,
        rmw: bool,
        step: &mut Step<'_>,
    ) {
        let positions: Vec<usize> = if rmw {
            // The write part must land immediately after its read's source.
            let read_id = EventId::new(t, g.thread_len(t) as u32 - 1);
            let src = match g.rf(read_id) {
                RfSource::Write(w) => w,
                RfSource::Bottom => unreachable!("rmw write part with unresolved read"),
            };
            let pos = match src {
                EventId::Init(_) => 0,
                _ => g.mo(loc).iter().position(|x| *x == src).expect("source in mo") + 1,
            };
            vec![pos]
        } else {
            (0..=g.mo(loc).len()).collect()
        };
        for pos in positions {
            let mut g2 = g.clone();
            let wid = g2.push_event(t, EventKind::Write { loc, val, mode, rmw });
            g2.insert_mo(loc, wid, pos);
            // Revisits from this placed variant.
            let prefix_w = g2.porf_prefix_set([wid]);
            for (r, rloc, rf) in g2.reads().collect::<Vec<_>>() {
                if rloc != loc || r == wid || prefix_w.contains(r) {
                    continue;
                }
                match rf {
                    RfSource::Bottom => {
                        // Resolution of a pending await read: no deletion
                        // needed, the blocked thread has no successors.
                        let mut g3 = g2.clone();
                        g3.set_rf(r, RfSource::Write(wid));
                        step.stats.revisits += 1;
                        push(step, g3);
                    }
                    RfSource::Write(old) if old != wid => {
                        // Standard revisit: keep only the porf-prefixes of
                        // the new write and of the read, re-point the read.
                        let mut keep = prefix_w.clone();
                        keep.union_with(&g2.porf_prefix_set([r]));
                        let mut g3 = g2.restrict_set(&keep);
                        g3.set_rf(r, RfSource::Write(wid));
                        step.stats.revisits += 1;
                        push(step, g3);
                    }
                    RfSource::Write(_) => {}
                }
            }
            push(step, g2);
        }
    }

    /// The sequential driver: a LIFO stack, one `HashSet` dedup set —
    /// bit-for-bit the original exploration order. Each item is processed
    /// under `catch_unwind`, so a panic anywhere in the engine degrades
    /// to [`Verdict::Error`] instead of unwinding out of the library.
    fn run_sequential(&self) -> AmcResult {
        let phase = PhaseTracker::new(self.control.profile);
        let mut r = self.run_sequential_inner(&phase);
        r.stats.phases.merge(&phase.take_profile());
        r
    }

    /// [`Engine::run_sequential`]'s body; the wrapper owns the
    /// [`PhaseTracker`] so the accumulated profile lands in the result's
    /// stats no matter which of the return paths is taken.
    fn run_sequential_inner(&self, phase: &PhaseTracker) -> AmcResult {
        let mut stats = ExploreStats::default();
        let mut executions = Vec::new();
        let mut seen: SeenSet = SeenSet::default();
        let budget = BudgetTracker::new(&self.config.budget);
        let initial = self.initial_graph();
        budget.charge(&initial);
        stats.constructed = 1; // the initial graph
        let mut stack = vec![initial];
        let mut children: Vec<ExecutionGraph> = Vec::new();
        let mut pacer = Pacer::new(self.control, 1, None, 0);
        let mut canon = self.partition.as_ref().map(Canonicalizer::new);
        while let Some(g) = stack.pop() {
            if let Some(r) = pacer.poll(phase, &stats, || stats) {
                return degraded(r, stats, stats.popped, stack.len() as u64, executions);
            }
            stats.popped += 1;
            if self.config.max_graphs != 0 && stats.popped > self.config.max_graphs {
                let dropped = stack.len() as u64;
                return degraded(StopReason::MaxGraphs, stats, stats.popped, dropped, executions);
            }
            budget.release(&g);
            phase.set(EnginePhase::Driver);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if failpoint::hit("explore.pop").is_oom() {
                    budget.force(StopReason::MemoryBudget);
                }
                let mut step = Step {
                    stats: &mut stats,
                    out: &mut children,
                    executions: &mut executions,
                    budget: &budget,
                    phase,
                };
                let mut probe = |h: u128| {
                    let fresh = seen.insert(h);
                    if fresh {
                        budget.note_dedup_entry();
                    }
                    fresh
                };
                self.process(g, &mut probe, &mut canon, &mut step)
            }));
            match outcome {
                Ok(Some(v)) => return AmcResult { verdict: v, stats, executions },
                Ok(None) => {}
                Err(payload) => {
                    // Counters touched mid-item stay as they are: partial
                    // stats are better than none. Half-generated children
                    // must not leak into the frontier, though.
                    children.clear();
                    let e = EngineError {
                        phase: phase.get(),
                        thread: None,
                        payload: panic_payload(payload),
                    };
                    return AmcResult { verdict: Verdict::Error(e), stats, executions };
                }
            }
            for c in &children {
                budget.charge(c);
            }
            if let Some(reason) = budget.exceeded() {
                let dropped = stack.len() as u64 + children.len() as u64;
                return degraded(reason, stats, stats.popped, dropped, executions);
            }
            stack.append(&mut children);
        }
        AmcResult { verdict: Verdict::Verified, stats, executions }
    }

    /// The parallel driver: `workers` threads over a shared injector queue,
    /// a sharded dedup set, per-worker stats merged at the end. Per-item
    /// processing runs under `catch_unwind`: a panicking worker records a
    /// structured [`EngineError`] and finishes the queue, so its queue
    /// share drains to the peers and the run terminates cleanly with
    /// [`Verdict::Error`] instead of aborting.
    fn run_parallel(&self, workers: usize) -> AmcResult {
        const SHARDS: usize = 64;
        let budget = BudgetTracker::new(&self.config.budget);
        let initial = self.initial_graph();
        budget.charge(&initial);
        let queue = WorkQueue::new(initial);
        let seen: Vec<Mutex<SeenSet>> =
            (0..SHARDS).map(|_| Mutex::new(SeenSet::default())).collect();
        let shared = SharedStats::default();
        let gate = Mutex::new(Instant::now());

        let worker = |index: usize| {
            // If this worker panics outside the catch_unwind below (queue
            // bookkeeping, progress callbacks), `pending` never reaches
            // zero; without this guard the peers would sleep on the
            // condvar forever and the scope join would deadlock instead
            // of surfacing the failure.
            struct PanicGuard<'a>(&'a WorkQueue);
            impl Drop for PanicGuard<'_> {
                fn drop(&mut self) {
                    if std::thread::panicking() {
                        self.0.abort();
                    }
                }
            }
            let _guard = PanicGuard(&queue);
            let mut stats = ExploreStats::default();
            let mut executions = Vec::new();
            let mut children: Vec<ExecutionGraph> = Vec::new();
            let mut pacer = Pacer::new(self.control, workers, Some(&gate), index);
            let mut canon = self.partition.as_ref().map(Canonicalizer::new);
            let mut flushed = ExploreStats::default();
            let mut since_flush = 0u64;
            let phase = PhaseTracker::new(self.control.profile);
            loop {
                // Batch-flush local counters so progress snapshots (built
                // from `shared` by whichever worker emits) trail the true
                // totals by at most CHECK_PERIOD items per worker.
                since_flush += 1;
                if since_flush >= CHECK_PERIOD {
                    since_flush = 0;
                    shared.add(&stats_delta(&stats, &flushed));
                    flushed = stats;
                }
                // Cancellation point *before* popping: a token fired ahead
                // of the run interrupts every worker deterministically,
                // with zero items processed.
                if let Some(r) = pacer.poll(&phase, &stats, || shared.snapshot()) {
                    let (explored, dropped) = queue.snapshot();
                    queue.finish(Verdict::Inconclusive(Inconclusive {
                        reason: r,
                        explored,
                        frontier_dropped: dropped,
                    }));
                    break;
                }
                let Some((g, popped_total)) = queue.pop() else {
                    break;
                };
                stats.popped += 1;
                if self.config.max_graphs != 0 && popped_total > self.config.max_graphs {
                    let (explored, dropped) = queue.snapshot();
                    queue.finish(Verdict::Inconclusive(Inconclusive {
                        reason: StopReason::MaxGraphs,
                        explored,
                        frontier_dropped: dropped,
                    }));
                    break;
                }
                budget.release(&g);
                phase.set(EnginePhase::Driver);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if failpoint::hit("explore.pop").is_oom() {
                        budget.force(StopReason::MemoryBudget);
                    }
                    let mut step = Step {
                        stats: &mut stats,
                        out: &mut children,
                        executions: &mut executions,
                        budget: &budget,
                        phase: &phase,
                    };
                    let mut probe = |h: u128| {
                        let shard = (h as usize) % SHARDS;
                        let fresh = relock(&seen[shard]).insert(h);
                        if fresh {
                            budget.note_dedup_entry();
                        }
                        fresh
                    };
                    self.process(g, &mut probe, &mut canon, &mut step)
                }));
                match outcome {
                    Ok(Some(v)) => {
                        queue.finish(v);
                        break;
                    }
                    Ok(None) => {
                        for c in &children {
                            budget.charge(c);
                        }
                        if let Some(reason) = budget.exceeded() {
                            let (explored, dropped) = queue.snapshot();
                            queue.finish(Verdict::Inconclusive(Inconclusive {
                                reason,
                                explored,
                                frontier_dropped: dropped + children.len() as u64,
                            }));
                            children.clear();
                            break;
                        }
                        queue.complete_item(&mut children);
                    }
                    Err(payload) => {
                        // The item's half-generated children die with it;
                        // finishing the queue stops the peers, which drain
                        // the remaining share and exit cleanly.
                        children.clear();
                        queue.finish(Verdict::Error(EngineError {
                            phase: phase.get(),
                            thread: Some(index),
                            payload: panic_payload(payload),
                        }));
                        break;
                    }
                }
            }
            stats.phases.merge(&phase.take_profile());
            (stats, executions)
        };

        let results: Vec<(ExploreStats, Vec<ExecutionGraph>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|i| scope.spawn(move || worker(i))).collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        // A panic that escaped the per-item catch_unwind
                        // (driver bookkeeping). The guard already drained
                        // the queue; record the failure instead of
                        // re-panicking the whole process.
                        queue.finish(Verdict::Error(EngineError {
                            phase: EnginePhase::Driver,
                            thread: None,
                            payload: panic_payload(payload),
                        }));
                        (ExploreStats::default(), Vec::new())
                    })
                })
                .collect()
        });

        let mut stats = ExploreStats::default();
        let mut executions = Vec::new();
        for (s, mut e) in results {
            stats.merge(&s);
            executions.append(&mut e);
        }
        stats.constructed += 1; // the initial graph, built by the driver
        let verdict = queue.into_verdict();
        if let Verdict::Inconclusive(i) = &verdict {
            stats.frontier_dropped = i.frontier_dropped;
        }
        AmcResult { verdict, stats, executions }
    }
}

fn push(step: &mut Step<'_>, g: ExecutionGraph) {
    step.stats.pushed += 1;
    // The enumerate engine materializes every candidate it pushes; the
    // dedup set discards duplicates only after construction.
    step.stats.constructed += 1;
    step.out.push(g);
}

/// The shared injector queue of the parallel explorer.
///
/// `pending` counts items that are queued *or* currently being processed:
/// exploration is complete exactly when it reaches zero. Verdict-bearing
/// items set `stop`, draining all workers promptly.
pub(crate) struct WorkQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
}

struct QueueState {
    items: Vec<ExecutionGraph>,
    pending: usize,
    popped: u64,
    stop: bool,
    verdict: Option<Verdict>,
}

impl WorkQueue {
    pub(crate) fn new(initial: ExecutionGraph) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: vec![initial],
                pending: 1,
                popped: 0,
                stop: false,
                verdict: None,
            }),
            cond: Condvar::new(),
        }
    }

    /// Pop a work item, sleeping while the queue is empty but siblings are
    /// still in flight. `None` means the exploration is over.
    pub(crate) fn pop(&self) -> Option<(ExecutionGraph, u64)> {
        let mut q = relock(&self.state);
        loop {
            if q.stop {
                return None;
            }
            if let Some(g) = q.items.pop() {
                q.popped += 1;
                return Some((g, q.popped));
            }
            if q.pending == 0 {
                return None;
            }
            q = self.cond.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Total popped items and current frontier length — the `explored` /
    /// `frontier_dropped` pair of a degraded stop.
    pub(crate) fn snapshot(&self) -> (u64, u64) {
        let q = relock(&self.state);
        (q.popped, q.items.len() as u64)
    }

    /// Account the end of one item's processing, injecting its children.
    fn complete_item(&self, children: &mut Vec<ExecutionGraph>) {
        let n = children.len();
        let mut q = relock(&self.state);
        q.items.append(children);
        q.pending += n;
        q.pending -= 1;
        if q.pending == 0 || q.stop {
            self.cond.notify_all();
        } else {
            for _ in 0..n {
                self.cond.notify_one();
            }
        }
    }

    /// Inject children *mid-item*, without ending the popped item's
    /// accounting — the revisit driver hands alternates and revisit
    /// children to peers at every chain step while it keeps extending the
    /// chain in place.
    pub(crate) fn push_children(&self, children: &mut Vec<ExecutionGraph>) {
        if children.is_empty() {
            return;
        }
        let n = children.len();
        let mut q = relock(&self.state);
        q.items.append(children);
        q.pending += n;
        if q.stop {
            self.cond.notify_all();
        } else {
            for _ in 0..n {
                self.cond.notify_one();
            }
        }
    }

    /// Account the end of one popped item whose children were already
    /// injected via [`WorkQueue::push_children`].
    pub(crate) fn finish_item(&self) {
        let mut q = relock(&self.state);
        q.pending -= 1;
        if q.pending == 0 || q.stop {
            self.cond.notify_all();
        }
    }

    /// Record a terminal verdict and stop all workers. First verdict
    /// wins within a severity class, but a more definitive verdict found
    /// by a still-running worker upgrades a weaker one already recorded:
    /// violations and faults beat engine errors, which beat inconclusive
    /// stops — a cancellation must not discard a counterexample a peer
    /// already holds in hand, and a budget stop must not mask a caught
    /// panic.
    pub(crate) fn finish(&self, v: Verdict) {
        fn rank(v: &Verdict) -> u8 {
            match v {
                Verdict::Inconclusive(_) => 0,
                Verdict::Error(_) => 1,
                _ => 2,
            }
        }
        let mut q = relock(&self.state);
        let replace = match &q.verdict {
            None => true,
            Some(old) => rank(&v) > rank(old),
        };
        if replace {
            q.verdict = Some(v);
        }
        q.stop = true;
        self.cond.notify_all();
    }

    /// Stop all workers without recording a verdict (panic unwind path).
    pub(crate) fn abort(&self) {
        let mut q = relock(&self.state);
        q.stop = true;
        self.cond.notify_all();
    }

    pub(crate) fn into_verdict(self) -> Verdict {
        self.state
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .verdict
            .unwrap_or(Verdict::Verified)
    }
}

/// The smallest extended-mo position this thread's next read of `loc` may
/// observe, from per-location coherence with the thread's own earlier
/// accesses (CoRR/CoWR). Purely an optimization: the model check would
/// reject anything below this anyway.
pub(crate) fn min_source_pos(g: &ExecutionGraph, t: ThreadId, loc: Loc) -> usize {
    let evs = g.thread_events(t);
    for (i, ev) in evs.iter().enumerate().rev() {
        match &ev.kind {
            EventKind::Write { loc: l, .. } if *l == loc => {
                let id = EventId::new(t, i as u32);
                return g.mo_position(id).unwrap_or(0);
            }
            EventKind::Read { loc: l, rf: RfSource::Write(w), .. } if *l == loc => {
                return g.mo_position(*w).unwrap_or(0);
            }
            _ => {}
        }
    }
    0
}

fn const_operand(o: Operand) -> Result<u64, String> {
    match o {
        Operand::Imm(v) => Ok(v),
        Operand::Reg(r) => Err(format!("register operand {r}")),
    }
}

/// Evaluate `prog`'s final-state checks on a complete execution graph.
/// Shared by the explorer and the optimizer's witness-cache replay.
///
/// Final checks run without any thread state, so their operands must be
/// immediates — [`Program::validate`] rejects register operands before
/// exploration starts (and the DSL frontend reports them as spanned
/// diagnostics). If an unvalidated program slips through anyway, the
/// malformed check is reported as a failure message rather than a panic.
pub(crate) fn failed_final_check(prog: &Program, g: &ExecutionGraph) -> Option<String> {
    let state = g.final_state();
    for c in prog.final_checks() {
        let v = state.get(&c.loc).copied().unwrap_or(g.init_value(c.loc));
        let resolve = || -> Result<vsync_lang::ResolvedTest, String> {
            Ok(vsync_lang::ResolvedTest {
                mask: c.test.mask.map(const_operand).transpose()?.unwrap_or(u64::MAX),
                cmp: c.test.cmp,
                rhs: const_operand(c.test.rhs)?,
            })
        };
        let resolved = match resolve() {
            Ok(t) => t,
            Err(e) => {
                return Some(format!(
                    "final-state check '{}' is malformed: {e} (final checks must \
                     use immediate operands)",
                    c.msg
                ))
            }
        };
        if !resolved.eval(v) {
            return Some(format!(
                "final-state check failed: {} (final value of {:#x} is {v})",
                c.msg, c.loc
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_graph::Mode;
    use vsync_lang::{ProgramBuilder, Reg, Test};
    use vsync_model::ModelKind;

    fn cfg(model: ModelKind) -> AmcConfig {
        AmcConfig::with_model(model)
    }

    const X: Loc = 0x10;
    const Y: Loc = 0x20;

    /// Store buffering with relaxed accesses: 4 final states under VMM/TSO,
    /// 3 under SC (r0 = r1 = 0 excluded).
    fn sb_program() -> Program {
        let mut pb = ProgramBuilder::new("sb");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
            t.load(Reg(0), Y, Mode::Rlx);
        });
        pb.thread(|t| {
            t.store(Y, 1u64, Mode::Rlx);
            t.load(Reg(0), X, Mode::Rlx);
        });
        pb.build().unwrap()
    }

    #[test]
    fn sb_execution_counts_differ_by_model() {
        let vmm = count_executions(&sb_program(), &cfg(ModelKind::Vmm));
        let sc = count_executions(&sb_program(), &cfg(ModelKind::Sc));
        let tso = count_executions(&sb_program(), &cfg(ModelKind::Tso));
        assert_eq!(vmm, 4, "rf combinations: (0,0) (0,1) (1,0) (1,1)");
        assert_eq!(tso, 4);
        assert_eq!(sc, 3, "SC forbids both-read-zero");
    }

    #[test]
    fn sb_with_sc_fences_is_sequentially_consistent() {
        let mut pb = ProgramBuilder::new("sb+fences");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
            t.fence(Mode::Sc);
            t.load(Reg(0), Y, Mode::Rlx);
        });
        pb.thread(|t| {
            t.store(Y, 1u64, Mode::Rlx);
            t.fence(Mode::Sc);
            t.load(Reg(0), X, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        assert_eq!(count_executions(&p, &cfg(ModelKind::Vmm)), 3);
    }

    /// Message passing: relaxed flag allows the stale read; rel/acq forbids.
    #[test]
    fn mp_assertion_depends_on_barriers() {
        let mp = |wm: Mode, rm: Mode| {
            let mut pb = ProgramBuilder::new("mp");
            pb.thread(move |t| {
                t.store(X, 1u64, Mode::Rlx);
                t.store(Y, 1u64, wm);
            });
            pb.thread(move |t| {
                t.await_eq(Reg(0), Y, 1u64, rm);
                t.load(Reg(1), X, Mode::Rlx);
                t.assert_eq(Reg(1), 1u64, "data visible after flag");
            });
            pb.build().unwrap()
        };
        assert!(verify(&mp(Mode::Rel, Mode::Acq), &cfg(ModelKind::Vmm)).is_verified());
        let v = verify(&mp(Mode::Rlx, Mode::Rlx), &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::Safety(_)), "got: {v}");
        // Under SC even relaxed MP is safe.
        assert!(verify(&mp(Mode::Rlx, Mode::Rlx), &cfg(ModelKind::Sc)).is_verified());
    }

    #[test]
    fn coherence_test_corr() {
        // One writer, one reader reading twice: never observe 1 then 0.
        let mut pb = ProgramBuilder::new("corr");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
        });
        pb.thread(|t| {
            let done = t.label();
            t.load(Reg(0), X, Mode::Rlx);
            t.jmp_if(Reg(0), Test::eq(0u64), done);
            t.load(Reg(1), X, Mode::Rlx);
            t.assert_eq(Reg(1), 1u64, "no backwards read");
            t.bind(done);
        });
        let p = pb.build().unwrap();
        assert!(verify(&p, &cfg(ModelKind::Vmm)).is_verified());
    }

    #[test]
    fn atomicity_two_rmws_never_read_same_write() {
        // Two fetch_adds must not both read 0: final value is 2.
        let mut pb = ProgramBuilder::new("fai");
        for _ in 0..2 {
            pb.thread(|t| {
                t.fetch_add(Reg(0), X, 1u64, Mode::Rlx);
            });
        }
        pb.final_check(X, Test::eq(2u64), "no lost increment");
        let p = pb.build().unwrap();
        assert!(verify(&p, &cfg(ModelKind::Vmm)).is_verified());
        // The two interleavings are thread-relabelings of each other: one
        // orbit under symmetry, two with the naive reference oracle.
        assert_eq!(count_executions(&p, &cfg(ModelKind::Vmm)), 1, "one orbit");
        assert_eq!(
            count_executions(&p, &cfg(ModelKind::Vmm).without_symmetry()),
            2,
            "two interleavings"
        );
    }

    /// Thread-symmetry reduction prunes relabeled twins (counted in
    /// `symmetry_pruned`) without changing verdicts, and asymmetric
    /// programs are completely unaffected.
    #[test]
    fn symmetry_prunes_twins_and_leaves_asymmetric_programs_alone() {
        // Symmetric: the TTAS client from `ttas_lock_mutual_exclusion`
        // shape, 2 identical threads.
        let lock = X;
        let mut pb = ProgramBuilder::new("sym");
        for _ in 0..2 {
            pb.thread(|t| {
                t.await_neq(Reg(0), lock, 1u64, ("acquire.await", Mode::Rlx));
                t.xchg(Reg(1), lock, 1u64, ("acquire.xchg", Mode::AcqRel));
                t.store(lock, 0u64, ("release.store", Mode::Rel));
            });
        }
        let p = pb.build().unwrap();
        let on = explore(&p, &cfg(ModelKind::Vmm));
        let off = explore(&p, &cfg(ModelKind::Vmm).without_symmetry());
        assert!(on.is_verified() && off.is_verified());
        assert!(on.stats.symmetry_pruned > 0, "twins were pruned: {}", on.stats);
        assert_eq!(off.stats.symmetry_pruned, 0, "no pruning with symmetry off");
        assert!(
            on.stats.popped < off.stats.popped,
            "symmetry must shrink the explored set: {} vs {}",
            on.stats.popped,
            off.stats.popped
        );
        assert!(on.stats.complete_executions < off.stats.complete_executions);
        // Asymmetric: SB explores identically with symmetry on and off.
        let p = sb_program();
        let on = explore(&p, &cfg(ModelKind::Vmm));
        let off = explore(&p, &cfg(ModelKind::Vmm).without_symmetry());
        assert_eq!(on.stats.popped, off.stats.popped);
        assert_eq!(on.stats.symmetry_pruned, 0);
    }

    /// `count_executions_with` honors pre-fired tokens and zero deadlines
    /// instead of enumerating the space (the legacy `count_executions`
    /// silently ignored budgets).
    #[test]
    fn count_executions_with_returns_promptly_on_spent_budgets() {
        use crate::session::CancelToken;
        let p = sb_program();
        for workers in [1usize, 2, 8] {
            let c = cfg(ModelKind::Vmm).with_workers(workers);
            let token = CancelToken::new();
            token.cancel();
            let control = RunControl::with_cancel(token);
            assert_eq!(
                count_executions_with(&p, &c, &control),
                Err(StopReason::Cancelled),
                "workers={workers}"
            );
            let control = RunControl::with_deadline(Instant::now());
            assert_eq!(
                count_executions_with(&p, &c, &control),
                Err(StopReason::DeadlineExceeded),
                "workers={workers}"
            );
            // And with budgets left, the count comes through unchanged.
            assert_eq!(
                count_executions_with(&p, &c, &RunControl::default()),
                Ok(count_executions(&p, &c)),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn plain_writes_do_lose_updates() {
        // The same counter with plain load/store increments loses updates.
        let mut pb = ProgramBuilder::new("lost-update");
        for _ in 0..2 {
            pb.thread(|t| {
                t.load(Reg(0), X, Mode::Rlx);
                t.add(Reg(1), Reg(0), 1u64);
                t.store(X, Reg(1), Mode::Rlx);
            });
        }
        pb.final_check(X, Test::eq(2u64), "no lost increment");
        let p = pb.build().unwrap();
        let v = verify(&p, &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::Safety(_)), "got {v}");
        // Even SC interleavings lose updates here.
        let v = verify(&p, &cfg(ModelKind::Sc));
        assert!(matches!(v, Verdict::Safety(_)), "got {v}");
    }

    /// Paper Fig. 1 with the q handshake removed (Fig. 5): graph β — where
    /// T2's unlock write is mo-before T1's lock write — leaves T1's await
    /// with no write to observe. AMC reports the AT violation with the
    /// finite graph β as evidence (paper §1.2, "Consider execution graph β").
    #[test]
    fn fig5_detects_graph_beta_at_violation() {
        let locked = X;
        let mut pb = ProgramBuilder::new("fig5");
        pb.thread(|t| {
            t.store(locked, 1u64, Mode::Rlx); // lock
            t.await_eq(Reg(0), locked, 0u64, Mode::Rlx);
        });
        pb.thread(|t| {
            t.store(locked, 0u64, Mode::Rlx); // unlock
        });
        let p = pb.build().unwrap();
        let r = explore(&p, &cfg(ModelKind::Vmm));
        let Verdict::AwaitTermination(ce) = &r.verdict else {
            panic!("expected AT violation (graph β), got {}", r.verdict);
        };
        // β's witness: a ⊥ read, and the unlock write mo-before the lock
        // write so no newer 0 can ever be observed.
        assert_eq!(ce.graph.pending_reads().count(), 1);
        let mo = ce.graph.mo(locked);
        assert_eq!(mo.len(), 2);
        assert_eq!(ce.graph.write_value(mo[0]), 0, "unlock first in mo");
        assert_eq!(ce.graph.write_value(mo[1]), 1, "lock write is mo-maximal");
    }

    /// The same two threads with the mo-order pinned by a handshake: T2
    /// unlocks only after observing T1's lock write, so the await always
    /// terminates and the two graphs ①/② of Fig. 5 remain.
    #[test]
    fn fig5_with_ordered_unlock_verifies() {
        let locked = X;
        let mut pb = ProgramBuilder::new("fig5-ordered");
        pb.thread(|t| {
            t.store(locked, 1u64, ("lock.store", Mode::Rel));
            t.await_eq(Reg(0), locked, 0u64, Mode::Rlx);
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), locked, 1u64, ("see.lock", Mode::Acq));
            t.store(locked, 0u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let r = explore(&p, &cfg(ModelKind::Vmm));
        assert!(r.is_verified(), "verdict: {}", r.verdict);
    }

    /// Paper Fig. 1 exactly: with the rel/acq handshake on q, awaiting
    /// terminates; dropping the handshake keeps it terminating too (the
    /// await just spins on locked) — AT holds in both.
    #[test]
    fn fig1_awaits_terminate() {
        let (locked, q) = (X, Y);
        let mut pb = ProgramBuilder::new("fig1");
        pb.thread(|t| {
            t.store(locked, 1u64, Mode::Rlx);
            t.store(q, 1u64, ("q.sig", Mode::Rel));
            t.await_eq(Reg(0), locked, 0u64, Mode::Rlx);
            t.assert_eq(Reg(0), 0u64, "lock handed over");
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), q, 1u64, ("q.poll", Mode::Acq));
            t.store(locked, 0u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let r = explore(&p, &cfg(ModelKind::Vmm));
        assert!(r.is_verified(), "verdict: {}", r.verdict);
    }

    /// A single thread awaiting a value nobody writes: the minimal AT
    /// violation (paper Fig. 7 territory).
    #[test]
    fn lonely_await_is_at_violation() {
        let mut pb = ProgramBuilder::new("lonely");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let v = verify(&p, &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::AwaitTermination(_)), "got {v}");
    }

    /// Await on a value that IS written: terminates.
    #[test]
    fn signalled_await_verifies() {
        let mut pb = ProgramBuilder::new("signalled");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, Mode::Acq);
        });
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rel);
        });
        let p = pb.build().unwrap();
        assert!(verify(&p, &cfg(ModelKind::Vmm)).is_verified());
    }

    /// Await whose condition can only be satisfied transiently: the writer
    /// sets x=1 then x=2; a waiter for x==1 may miss it under coherence?
    /// No: it may always read the mo-intermediate write — but if the waiter
    /// first reads 2, coherence traps it: AT violation.
    #[test]
    fn transient_signal_hangs() {
        let mut pb = ProgramBuilder::new("transient");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
            t.store(X, 2u64, Mode::Rlx);
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let v = verify(&p, &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::AwaitTermination(_)), "got {v}");
    }

    #[test]
    fn dedup_off_gives_same_verdicts() {
        let p = sb_program();
        let mut c = cfg(ModelKind::Vmm);
        c.dedup = false;
        // Without dedup the explorer visits duplicates but verdicts agree.
        assert!(verify(&p, &c).is_verified());
        let mp_bug = {
            let mut pb = ProgramBuilder::new("mp-bug");
            pb.thread(|t| {
                t.store(X, 1u64, Mode::Rlx);
                t.store(Y, 1u64, Mode::Rlx);
            });
            pb.thread(|t| {
                t.await_eq(Reg(0), Y, 1u64, Mode::Rlx);
                t.load(Reg(1), X, Mode::Rlx);
                t.assert_eq(Reg(1), 1u64, "visible");
            });
            pb.build().unwrap()
        };
        assert!(matches!(verify(&mp_bug, &c), Verdict::Safety(_)));
    }

    #[test]
    fn graph_budget_degrades_to_inconclusive() {
        let mut c = cfg(ModelKind::Vmm);
        c.max_graphs = 2;
        let r = explore(&sb_program(), &c);
        let Verdict::Inconclusive(i) = r.verdict else {
            panic!("expected inconclusive, got {}", r.verdict)
        };
        assert_eq!(i.reason, StopReason::MaxGraphs);
        assert!(i.explored >= 2, "partial coverage reported: {i:?}");
        assert_eq!(r.stats.frontier_dropped, i.frontier_dropped);
    }

    /// A tiny memory budget degrades the run to `Inconclusive` with
    /// partial stats for every worker count, and the explored coverage
    /// grows monotonically with the budget.
    #[test]
    fn memory_budget_degrades_to_inconclusive() {
        for workers in [1usize, 2, 8] {
            let c = cfg(ModelKind::Vmm).with_workers(workers).with_max_memory_bytes(600);
            let r = explore(&sb_program(), &c);
            let Verdict::Inconclusive(i) = r.verdict else {
                panic!("workers={workers}: expected inconclusive, got {}", r.verdict)
            };
            assert_eq!(i.reason, StopReason::MemoryBudget, "workers={workers}");
            assert!(i.explored >= 1, "workers={workers}");
            assert_eq!(r.stats.frontier_dropped, i.frontier_dropped, "workers={workers}");
        }
        // Monotonicity: more budget, at least as much coverage.
        let explored_at = |bytes: u64| {
            let c = cfg(ModelKind::Vmm).with_max_memory_bytes(bytes);
            match explore(&sb_program(), &c).verdict {
                Verdict::Inconclusive(i) => i.explored,
                Verdict::Verified => u64::MAX,
                v => panic!("unexpected verdict {v}"),
            }
        };
        let mut last = 0;
        for bytes in [600, 2_000, 8_000, 1 << 20] {
            let e = explored_at(bytes);
            assert!(e >= last, "coverage shrank: {e} < {last} at {bytes} bytes");
            last = e;
        }
        // A generous budget changes nothing.
        let c = cfg(ModelKind::Vmm).with_max_memory_bytes(64 << 20);
        assert!(explore(&sb_program(), &c).is_verified());
    }

    #[test]
    fn dedup_budget_degrades_to_inconclusive() {
        for workers in [1usize, 2, 8] {
            let c = cfg(ModelKind::Vmm).with_workers(workers).with_max_dedup_entries(2);
            let r = explore(&sb_program(), &c);
            let Verdict::Inconclusive(i) = r.verdict else {
                panic!("workers={workers}: expected inconclusive, got {}", r.verdict)
            };
            assert_eq!(i.reason, StopReason::DedupBudget, "workers={workers}");
        }
        let c = cfg(ModelKind::Vmm).with_max_dedup_entries(1_000_000);
        assert!(explore(&sb_program(), &c).is_verified());
    }

    #[test]
    fn ttas_lock_mutual_exclusion() {
        // The paper's Fig. 3 TTAS lock with 2 threads, one acquisition each.
        let lock = X;
        let counter = Y;
        let mut pb = ProgramBuilder::new("ttas");
        for _ in 0..2 {
            pb.thread(|t| {
                let retry = t.here_label();
                let acquired = t.label();
                // do { await lock != 1 } while (xchg(lock,1) != 0)
                t.await_neq(Reg(0), lock, 1u64, ("acquire.await", Mode::Rlx));
                t.xchg(Reg(1), lock, 1u64, ("acquire.xchg", Mode::AcqRel));
                t.jmp_if(Reg(1), Test::eq(0u64), acquired);
                t.jmp(retry);
                t.bind(acquired);
                // critical section: counter++
                t.load(Reg(2), counter, vsync_lang::Fixed(Mode::Rlx));
                t.add(Reg(3), Reg(2), 1u64);
                t.store(counter, Reg(3), vsync_lang::Fixed(Mode::Rlx));
                // release
                t.store(lock, 0u64, ("release.store", Mode::Rel));
            });
        }
        pb.final_check(counter, Test::eq(2u64), "both increments applied");
        let p = pb.build().unwrap();
        let r = explore(&p, &cfg(ModelKind::Vmm));
        assert!(r.is_verified(), "verdict: {} ({})", r.verdict, r.stats);
    }

    #[test]
    fn ttas_lock_with_relaxed_release_breaks() {
        // Relaxing the release store lets the CS writes escape: the second
        // thread can read a stale counter.
        let lock = X;
        let counter = Y;
        let mut pb = ProgramBuilder::new("ttas-broken");
        for _ in 0..2 {
            pb.thread(|t| {
                let retry = t.here_label();
                let acquired = t.label();
                t.await_neq(Reg(0), lock, 1u64, ("acquire.await", Mode::Rlx));
                t.xchg(Reg(1), lock, 1u64, ("acquire.xchg", Mode::Rlx));
                t.jmp_if(Reg(1), Test::eq(0u64), acquired);
                t.jmp(retry);
                t.bind(acquired);
                t.load(Reg(2), counter, vsync_lang::Fixed(Mode::Rlx));
                t.add(Reg(3), Reg(2), 1u64);
                t.store(counter, Reg(3), vsync_lang::Fixed(Mode::Rlx));
                t.store(lock, 0u64, ("release.store", Mode::Rlx));
            });
        }
        pb.final_check(counter, Test::eq(2u64), "both increments applied");
        let p = pb.build().unwrap();
        let v = verify(&p, &cfg(ModelKind::Vmm));
        assert!(matches!(v, Verdict::Safety(_)), "got {v}");
    }

    /// Parallel exploration: identical counts and verdicts for any worker
    /// count on verified programs.
    #[test]
    fn workers_preserve_counts_and_verdicts() {
        let p = sb_program();
        let base = explore(&p, &cfg(ModelKind::Vmm));
        for workers in [2, 4, 8] {
            let c = cfg(ModelKind::Vmm).with_workers(workers);
            let r = explore(&p, &c);
            assert!(r.is_verified(), "workers={workers}: {}", r.verdict);
            assert_eq!(
                r.stats.complete_executions, base.stats.complete_executions,
                "workers={workers}"
            );
            assert_eq!(r.stats.popped, base.stats.popped, "workers={workers}");
            assert_eq!(r.stats.duplicates, base.stats.duplicates, "workers={workers}");
        }
    }

    /// Parallel exploration still finds violations (any counterexample
    /// wins; the verdict *kind* is deterministic for these programs).
    #[test]
    fn workers_find_violations() {
        let mut pb = ProgramBuilder::new("mp-bug");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
            t.store(Y, 1u64, Mode::Rlx);
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), Y, 1u64, Mode::Rlx);
            t.load(Reg(1), X, Mode::Rlx);
            t.assert_eq(Reg(1), 1u64, "visible");
        });
        let p = pb.build().unwrap();
        for workers in [1, 2, 8] {
            let c = cfg(ModelKind::Vmm).with_workers(workers);
            let v = verify(&p, &c);
            assert!(matches!(v, Verdict::Safety(_)), "workers={workers}: {v}");
        }
        // An AT violation, in parallel.
        let mut pb = ProgramBuilder::new("lonely");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        for workers in [2, 4] {
            let v = verify(&p, &cfg(ModelKind::Vmm).with_workers(workers));
            assert!(matches!(v, Verdict::AwaitTermination(_)), "workers={workers}: {v}");
        }
    }

    /// The graph budget also degrades gracefully in parallel mode.
    #[test]
    fn workers_respect_graph_budget() {
        let mut c = cfg(ModelKind::Vmm).with_workers(4);
        c.max_graphs = 2;
        let v = verify(&sb_program(), &c);
        assert_eq!(v.stop_reason(), Some(StopReason::MaxGraphs), "got {v}");
    }

    /// Verdict severity in the queue: violations/faults > engine errors >
    /// inconclusive stops; a weaker verdict never downgrades a stronger
    /// one already recorded.
    #[test]
    fn queue_upgrades_verdicts_by_severity() {
        let inconclusive = |reason| {
            Verdict::Inconclusive(Inconclusive { reason, explored: 0, frontier_dropped: 0 })
        };
        let error = || {
            Verdict::Error(EngineError {
                phase: EnginePhase::Replay,
                thread: None,
                payload: "boom".into(),
            })
        };
        // Inconclusive → Error → Fault; later weaker verdicts are ignored.
        let q = WorkQueue::new(ExecutionGraph::new(0, std::collections::BTreeMap::new()));
        q.finish(inconclusive(StopReason::Cancelled));
        q.finish(error());
        q.finish(Verdict::Fault("real finding".into()));
        q.finish(error());
        q.finish(inconclusive(StopReason::DeadlineExceeded));
        assert!(matches!(q.into_verdict(), Verdict::Fault(_)));
        // An engine error outranks a budget stop but not a violation.
        let q = WorkQueue::new(ExecutionGraph::new(0, std::collections::BTreeMap::new()));
        q.finish(inconclusive(StopReason::MemoryBudget));
        q.finish(error());
        assert!(matches!(q.into_verdict(), Verdict::Error(_)));
    }

    /// A final check with a register operand is rejected as a structured
    /// `Verdict::Fault` before exploration starts — never a panic — for
    /// any worker count. The builder refuses to produce such a program,
    /// so assemble it with `Program::from_parts` to model an unvalidated
    /// caller.
    #[test]
    fn malformed_final_check_reports_fault_not_panic() {
        let mut pb = ProgramBuilder::new("bad-final");
        pb.thread(|t| {
            t.store(X, 1u64, Mode::Rlx);
        });
        let valid = pb.build().unwrap();
        let bad = vsync_lang::FinalCheck {
            loc: X,
            test: Test { cmp: vsync_lang::Cmp::Eq, rhs: Operand::Reg(Reg(0)), mask: None },
            msg: "bad".to_owned(),
        };
        let p = Program::from_parts(
            valid.name().to_owned(),
            vec![valid.thread_code(0).to_vec()],
            valid.sites().to_vec(),
            valid.init().clone(),
            vec![bad],
        );
        for workers in [1usize, 2] {
            let v = verify(&p, &cfg(ModelKind::Vmm).with_workers(workers));
            let Verdict::Fault(msg) = &v else {
                panic!("workers={workers}: expected fault, got {v}")
            };
            assert!(msg.contains("final"), "workers={workers}: {msg}");
        }
    }

    /// The reference checker produces the same verdicts and counts.
    #[test]
    fn reference_checker_agrees_on_counts() {
        let p = sb_program();
        for model in [ModelKind::Sc, ModelKind::Tso, ModelKind::Vmm] {
            let fast = explore(&p, &cfg(model));
            let slow = explore(&p, &cfg(model).with_reference_checker());
            assert_eq!(fast.stats.complete_executions, slow.stats.complete_executions, "{model}");
            assert_eq!(fast.stats.popped, slow.stats.popped, "{model}");
        }
    }
}
