//! Unified engine telemetry: per-phase wall-clock profiling, the typed
//! event bus, and the exporters (Chrome-trace writer, metrics table).
//!
//! Three previously disjoint channels — `ExploreStats` progress
//! snapshots, optimizer `OptimizationStep`s, and ad-hoc bench timing —
//! flow through one typed stream of [`EngineEvent`]s with monotonic
//! sequence numbers, stamped against a single session clock. The layer
//! is near-zero-cost when disabled: drivers consult one `bool`
//! (`RunControl::profile`) per phase transition and one `Option` per
//! pacer drain; with both off no telemetry code allocates or takes a
//! lock (see DESIGN.md §13 for the overhead model and the CI gate).
//!
//! * [`PhaseProfile`] / [`PhaseStat`] — per-[`EnginePhase`] total/count/
//!   max aggregates, surfaced in `ExploreStats`, `Report::to_json` and
//!   corpus JSON;
//! * `PhaseTracker` — the per-worker scoped timer both exploration
//!   drivers thread through their hot loops (a drop-in for the old
//!   `Cell<EnginePhase>` panic-attribution cell);
//! * `EventBus` (crate-private) / [`EngineEvent`] / [`EventKind`] — the typed bus
//!   behind `Session::on_event`, drained at the existing pacer cadence
//!   so per-worker buffers never add hot-loop synchronization;
//! * [`TraceWriter`] — a Perfetto-loadable Chrome-trace JSON writer
//!   (one event object per line);
//! * [`render_metrics`] — the human `--metrics` summary table.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use vsync_graph::Mode;
use vsync_model::ModelKind;

use crate::verdict::{EnginePhase, ExploreStats};

// ---------------------------------------------------------------------
// Phase profiling
// ---------------------------------------------------------------------

/// Wall-clock aggregate for one [`EnginePhase`]: total time spent,
/// number of spans, and the longest single span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Total nanoseconds attributed to the phase.
    pub total_ns: u64,
    /// Number of spans (phase entries) recorded.
    pub count: u64,
    /// Longest single span, in nanoseconds.
    pub max_ns: u64,
}

impl PhaseStat {
    /// Total time as a [`Duration`].
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    /// Longest single span as a [`Duration`].
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }
}

/// Per-phase wall-clock attribution for one run (or one pacer slice):
/// a [`PhaseStat`] per [`EnginePhase`], indexed by
/// [`EnginePhase::index`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    spans: [PhaseStat; EnginePhase::COUNT],
}

impl PhaseProfile {
    /// The aggregate for one phase.
    #[must_use]
    pub fn get(&self, phase: EnginePhase) -> PhaseStat {
        self.spans[phase.index()]
    }

    /// Attribute one span of `elapsed` to `phase`.
    pub fn record(&mut self, phase: EnginePhase, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let s = &mut self.spans[phase.index()];
        s.total_ns = s.total_ns.saturating_add(ns);
        s.count += 1;
        s.max_ns = s.max_ns.max(ns);
    }

    /// Count one entry into `phase`. Entries and elapsed time are
    /// tracked separately by [`PhaseTracker`]: the entry is counted when
    /// the span opens, the time when it closes (or is rolled into a
    /// snapshot) — so neither mid-span snapshots nor a span still open
    /// at drain time can skew `count`. The count invariants (e.g. one
    /// `FinalCheck` entry per complete execution) depend on this.
    fn enter(&mut self, phase: EnginePhase) {
        self.spans[phase.index()].count += 1;
    }

    /// Attribute `elapsed` to `phase` without counting an entry — the
    /// closing half of [`PhaseProfile::enter`], also used to roll the
    /// still-open span into a snapshot. `max_ns` tracks the largest
    /// closed chunk (a span split across snapshots reports its largest
    /// fragment).
    fn extend(&mut self, phase: EnginePhase, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let s = &mut self.spans[phase.index()];
        s.total_ns = s.total_ns.saturating_add(ns);
        s.max_ns = s.max_ns.max(ns);
    }

    /// Accumulate another profile (totals and counts add, maxima take
    /// the max) — used to merge per-worker profiles.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (s, o) in self.spans.iter_mut().zip(&other.spans) {
            s.total_ns = s.total_ns.saturating_add(o.total_ns);
            s.count += o.count;
            s.max_ns = s.max_ns.max(o.max_ns);
        }
    }

    /// Per-phase `self - earlier` (totals and counts subtract,
    /// saturating; `max_ns` keeps `self`'s running maximum, so a slice's
    /// max is "max so far", not "max within the slice").
    #[must_use]
    pub fn minus(&self, earlier: &PhaseProfile) -> PhaseProfile {
        let mut out = *self;
        for (s, e) in out.spans.iter_mut().zip(&earlier.spans) {
            s.total_ns = s.total_ns.saturating_sub(e.total_ns);
            s.count = s.count.saturating_sub(e.count);
        }
        out
    }

    /// True when no span has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.iter().all(|s| s.count == 0)
    }

    /// Sum of all per-phase totals.
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.spans.iter().map(|s| s.total_ns).sum())
    }

    /// Iterate `(phase, stat)` pairs in [`EnginePhase::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (EnginePhase, PhaseStat)> + '_ {
        EnginePhase::ALL.iter().map(|&p| (p, self.spans[p.index()]))
    }
}

/// The per-worker scoped phase timer. A drop-in replacement for the
/// `Cell<EnginePhase>` the drivers previously used for panic
/// attribution: [`PhaseTracker::set`]/[`PhaseTracker::get`] keep the
/// same call-site shape, and additionally attribute the elapsed
/// wall-clock of the span being left — but only when profiling is
/// enabled; disabled, `set` is one branch and a plain `Cell` store, and
/// no `Instant::now()` is ever taken.
pub(crate) struct PhaseTracker {
    current: Cell<EnginePhase>,
    since: Cell<Instant>,
    enabled: bool,
    profile: RefCell<PhaseProfile>,
}

impl PhaseTracker {
    pub(crate) fn new(enabled: bool) -> PhaseTracker {
        let mut profile = PhaseProfile::default();
        if enabled {
            // The tracker opens in `Driver`; count that first entry here
            // since no `set` transition will.
            profile.enter(EnginePhase::Driver);
        }
        PhaseTracker {
            current: Cell::new(EnginePhase::Driver),
            since: Cell::new(Instant::now()),
            enabled,
            profile: RefCell::new(profile),
        }
    }

    /// Enter `phase`, closing (and, when enabled, timing) the current
    /// span. Re-entering the running phase is a no-op — the span simply
    /// continues — which keeps redundant sets (e.g. `admit` called from
    /// a context already attributing to `Probe`) off the clock.
    pub(crate) fn set(&self, phase: EnginePhase) {
        if self.enabled {
            let prev = self.current.get();
            if prev == phase {
                return;
            }
            let now = Instant::now();
            let mut p = self.profile.borrow_mut();
            p.extend(prev, now.duration_since(self.since.get()));
            p.enter(phase);
            self.since.set(now);
        }
        self.current.set(phase);
    }

    /// The phase currently executing (panic attribution).
    pub(crate) fn get(&self) -> EnginePhase {
        self.current.get()
    }

    /// The profile so far, with the open span's elapsed time rolled in
    /// (and the span restarted — its entry is counted when it closes).
    pub(crate) fn snapshot(&self) -> PhaseProfile {
        if self.enabled {
            let now = Instant::now();
            self.profile
                .borrow_mut()
                .extend(self.current.get(), now.duration_since(self.since.get()));
            self.since.set(now);
        }
        *self.profile.borrow()
    }

    /// Drain: the profile so far (open span rolled in), resetting the
    /// accumulator.
    pub(crate) fn take_profile(&self) -> PhaseProfile {
        let p = self.snapshot();
        *self.profile.borrow_mut() = PhaseProfile::default();
        p
    }
}

// ---------------------------------------------------------------------
// The typed event bus
// ---------------------------------------------------------------------

/// An event sink: called synchronously from whichever thread emits.
pub type EventFn = Arc<dyn Fn(&EngineEvent) + Send + Sync>;

/// One telemetry event: a monotonic sequence number, a timestamp
/// relative to the owning bus's epoch, and the typed payload.
///
/// Sequence numbers are allocated atomically at emission, so a
/// single-worker run's stream is fully deterministic (same program,
/// same config ⇒ same sequence of [`EventKind`]s); with multiple
/// workers the interleaving of `StatsDelta`/`PhaseSlice` events is
/// racy by nature, but `seq` still totally orders the stream.
#[derive(Debug, Clone)]
pub struct EngineEvent {
    /// Monotonic sequence number (0-based, gap-free per bus).
    pub seq: u64,
    /// Time since the bus was created (the session clock).
    pub ts: Duration,
    /// The typed payload.
    pub kind: EventKind,
}

/// The event taxonomy (DESIGN.md §13 documents nesting rules).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum EventKind {
    /// A session run started.
    SessionStart {
        /// Program name.
        program: String,
        /// Number of models in the matrix.
        models: usize,
    },
    /// The session run finished.
    SessionFinish {
        /// Did every model verify?
        verified: bool,
    },
    /// One model's exploration started.
    ExploreStart {
        /// The model being explored.
        model: ModelKind,
        /// Worker threads for this exploration.
        workers: usize,
    },
    /// One model's exploration finished.
    ExploreFinish {
        /// The model explored.
        model: ModelKind,
        /// Stable verdict kind key (`"verified"`, `"safety"`, ...).
        verdict: &'static str,
    },
    /// Per-worker counter delta since that worker's previous delta
    /// (drained at pacer cadence; `stats.phases` is always empty here —
    /// phase time arrives as [`EventKind::PhaseSlice`]).
    StatsDelta {
        /// Emitting worker index.
        worker: usize,
        /// Counters accumulated since the last delta from this worker.
        stats: ExploreStats,
    },
    /// Per-worker phase-time slice since that worker's previous slice.
    PhaseSlice {
        /// Emitting worker index.
        worker: usize,
        /// Phase time accumulated since the last slice from this worker.
        phases: PhaseProfile,
    },
    /// One optimizer relaxation step (accepted or rejected).
    OptimizeStep {
        /// Optimizer pass number.
        pass: usize,
        /// Barrier-site name.
        site: String,
        /// Mode before the step.
        from: Mode,
        /// Mode the step tried.
        to: Mode,
        /// Did the relaxation verify?
        accepted: bool,
    },
    /// A run degraded to `Inconclusive` (budget / deadline / cancel).
    BudgetWarning {
        /// The model whose run degraded.
        model: ModelKind,
        /// Stable [`StopReason`](crate::StopReason) key.
        reason: &'static str,
    },
    /// A caught engine panic surfaced as `Verdict::Error`.
    EngineFault {
        /// The model whose run errored.
        model: ModelKind,
        /// Phase the panicking code was executing.
        phase: EnginePhase,
        /// The panic payload.
        payload: String,
    },
    /// The corpus runner quarantined a file after a caught panic.
    Quarantine {
        /// Path of the quarantined file.
        path: String,
    },
    /// The corpus runner finished judging one file.
    CorpusFile {
        /// Path of the file.
        path: String,
        /// Did every expectation hold?
        passed: bool,
    },
}

impl EventKind {
    /// Stable machine-readable identifier for the event kind.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            EventKind::SessionStart { .. } => "session_start",
            EventKind::SessionFinish { .. } => "session_finish",
            EventKind::ExploreStart { .. } => "explore_start",
            EventKind::ExploreFinish { .. } => "explore_finish",
            EventKind::StatsDelta { .. } => "stats_delta",
            EventKind::PhaseSlice { .. } => "phase_slice",
            EventKind::OptimizeStep { .. } => "optimize_step",
            EventKind::BudgetWarning { .. } => "budget_warning",
            EventKind::EngineFault { .. } => "engine_fault",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::CorpusFile { .. } => "corpus_file",
        }
    }
}

/// The session-wide event bus: one sink, one clock, one atomic
/// sequence counter. Cloned (via `Arc`) into every `RunControl`, so
/// the optimizer's oracle explorations and every corpus file share the
/// same stream.
pub(crate) struct EventBus {
    sink: EventFn,
    seq: AtomicU64,
    started: Instant,
}

impl EventBus {
    pub(crate) fn new(sink: EventFn) -> EventBus {
        EventBus { sink, seq: AtomicU64::new(0), started: Instant::now() }
    }

    /// Stamp and deliver one event.
    pub(crate) fn emit(&self, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = EngineEvent { seq, ts: self.started.elapsed(), kind };
        (self.sink)(&ev);
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus").field("seq", &self.seq.load(Ordering::Relaxed)).finish()
    }
}

// ---------------------------------------------------------------------
// Chrome-trace exporter
// ---------------------------------------------------------------------

/// Writes an [`EngineEvent`] stream as a Chrome-trace JSON array —
/// loadable by Perfetto / `chrome://tracing` — with one event object
/// per line. [`TraceWriter::finish`] closes the array; a truncated
/// (unfinished) file is still loadable by Perfetto, which tolerates a
/// missing `]`.
///
/// Mapping: explorations and the session become `B`/`E` duration pairs
/// on tid 0; [`EventKind::PhaseSlice`]s are laid out as back-to-back
/// `X` complete spans on the worker's tid (a per-tid cursor keeps
/// slices non-overlapping — within a slice the per-phase ordering is
/// synthetic, the durations are real); [`EventKind::StatsDelta`]s
/// accumulate into `C` counter samples; everything else is an instant.
pub struct TraceWriter {
    inner: Mutex<TraceInner>,
}

struct TraceInner {
    out: BufWriter<File>,
    /// Has any event line been written yet (for comma placement)?
    first: bool,
    /// Per-tid layout cursor (ns since epoch) for phase-slice spans.
    cursors: Vec<u64>,
    /// Per-worker accumulated counter totals (counter samples are
    /// cumulative in the Chrome-trace model).
    totals: Vec<ExploreStats>,
    /// tids already given a `thread_name` metadata record.
    named: Vec<bool>,
    finished: bool,
}

impl TraceWriter {
    /// Create (truncating) the trace file and write the array opener
    /// plus process metadata.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn create(path: &Path) -> io::Result<TraceWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(b"[\n")?;
        let w = TraceWriter {
            inner: Mutex::new(TraceInner {
                out,
                first: true,
                cursors: Vec::new(),
                totals: Vec::new(),
                named: Vec::new(),
                finished: false,
            }),
        };
        w.with_inner(|inner| {
            Self::line(
                inner,
                "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
                 \"args\": {\"name\": \"vsync\"}}",
            );
        });
        Ok(w)
    }

    /// An [`EventFn`] feeding this writer (pass to `Session::on_event`).
    #[must_use]
    pub fn sink(self: &Arc<Self>) -> EventFn {
        let w = Arc::clone(self);
        Arc::new(move |ev| w.handle(ev))
    }

    fn with_inner(&self, f: impl FnOnce(&mut TraceInner)) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if !inner.finished {
            f(&mut inner);
        }
    }

    fn line(inner: &mut TraceInner, s: &str) {
        // Trace output is best-effort: an exporter I/O error must never
        // fail the verification run it is observing.
        let sep: &[u8] = if inner.first { b"" } else { b",\n" };
        inner.first = false;
        let _ = inner.out.write_all(sep);
        let _ = inner.out.write_all(s.as_bytes());
    }

    /// Name a worker tid lazily (Perfetto track labels).
    fn ensure_tid(inner: &mut TraceInner, tid: usize, label: &str) {
        if inner.named.len() <= tid {
            inner.named.resize(tid + 1, false);
        }
        if !inner.named[tid] {
            inner.named[tid] = true;
            let s = format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{label}\"}}}}"
            );
            Self::line(inner, &s);
        }
    }

    fn instant(inner: &mut TraceInner, name: &str, ts_us: u128, args: &str) {
        let s = format!(
            "{{\"name\": \"{name}\", \"ph\": \"i\", \"ts\": {ts_us}, \"pid\": 1, \"tid\": 0, \
             \"s\": \"g\", \"cat\": \"engine\", \"args\": {args}}}"
        );
        Self::line(inner, &s);
    }

    fn handle(&self, ev: &EngineEvent) {
        let ts_us = ev.ts.as_micros();
        self.with_inner(|inner| match &ev.kind {
            EventKind::SessionStart { program, models } => {
                Self::ensure_tid(inner, 0, "session");
                let s = format!(
                    "{{\"name\": \"session\", \"ph\": \"B\", \"ts\": {ts_us}, \"pid\": 1, \
                     \"tid\": 0, \"cat\": \"session\", \"args\": {{\"program\": {}, \
                     \"models\": {models}}}}}",
                    json_str(program)
                );
                Self::line(inner, &s);
            }
            EventKind::SessionFinish { verified } => {
                let s = format!(
                    "{{\"name\": \"session\", \"ph\": \"E\", \"ts\": {ts_us}, \"pid\": 1, \
                     \"tid\": 0, \"cat\": \"session\", \"args\": {{\"verified\": {verified}}}}}"
                );
                Self::line(inner, &s);
            }
            EventKind::ExploreStart { model, workers } => {
                let s = format!(
                    "{{\"name\": \"explore {model}\", \"ph\": \"B\", \"ts\": {ts_us}, \
                     \"pid\": 1, \"tid\": 0, \"cat\": \"explore\", \
                     \"args\": {{\"workers\": {workers}}}}}"
                );
                Self::line(inner, &s);
            }
            EventKind::ExploreFinish { model, verdict } => {
                let s = format!(
                    "{{\"name\": \"explore {model}\", \"ph\": \"E\", \"ts\": {ts_us}, \
                     \"pid\": 1, \"tid\": 0, \"cat\": \"explore\", \
                     \"args\": {{\"verdict\": \"{verdict}\"}}}}"
                );
                Self::line(inner, &s);
            }
            EventKind::StatsDelta { worker, stats } => {
                let tid = worker + 1;
                Self::ensure_tid(inner, tid, &format!("worker {worker}"));
                if inner.totals.len() <= *worker {
                    inner.totals.resize(worker + 1, ExploreStats::default());
                }
                inner.totals[*worker].merge(stats);
                let t = &inner.totals[*worker];
                let s = format!(
                    "{{\"name\": \"stats\", \"ph\": \"C\", \"ts\": {ts_us}, \"pid\": 1, \
                     \"tid\": {tid}, \"args\": {{\"constructed\": {}, \
                     \"complete_executions\": {}, \"duplicates\": {}, \"probes\": {}}}}}",
                    t.constructed, t.complete_executions, t.duplicates, t.probes
                );
                Self::line(inner, &s);
            }
            EventKind::PhaseSlice { worker, phases } => {
                let tid = worker + 1;
                Self::ensure_tid(inner, tid, &format!("worker {worker}"));
                if inner.cursors.len() <= *worker {
                    inner.cursors.resize(worker + 1, 0);
                }
                // Lay the slice's per-phase spans back-to-back, ending at
                // the drain timestamp (so slices read as contiguous work
                // leading up to each drain).
                let total_ns: u64 = phases.iter().map(|(_, s)| s.total_ns).sum();
                let end_ns = u64::try_from(ev.ts.as_nanos()).unwrap_or(u64::MAX);
                let mut cur = inner.cursors[*worker].max(end_ns.saturating_sub(total_ns));
                for (phase, stat) in phases.iter().filter(|(_, s)| s.count > 0) {
                    let s = format!(
                        "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                         \"pid\": 1, \"tid\": {tid}, \"cat\": \"phase\", \
                         \"args\": {{\"count\": {}}}}}",
                        phase.key(),
                        cur / 1_000,
                        (stat.total_ns / 1_000).max(1),
                        stat.count
                    );
                    Self::line(inner, &s);
                    cur += stat.total_ns;
                }
                inner.cursors[*worker] = cur;
            }
            EventKind::OptimizeStep { pass, site, from, to, accepted } => {
                let args = format!(
                    "{{\"pass\": {pass}, \"site\": {}, \"from\": \"{from}\", \
                     \"to\": \"{to}\", \"accepted\": {accepted}}}",
                    json_str(site)
                );
                Self::instant(inner, "optimize_step", ts_us, &args);
            }
            EventKind::BudgetWarning { model, reason } => {
                let args = format!("{{\"model\": \"{model}\", \"reason\": \"{reason}\"}}");
                Self::instant(inner, "budget_warning", ts_us, &args);
            }
            EventKind::EngineFault { model, phase, payload } => {
                let args = format!(
                    "{{\"model\": \"{model}\", \"phase\": \"{phase}\", \"payload\": {}}}",
                    json_str(payload)
                );
                Self::instant(inner, "engine_fault", ts_us, &args);
            }
            EventKind::Quarantine { path } => {
                let args = format!("{{\"path\": {}}}", json_str(path));
                Self::instant(inner, "quarantine", ts_us, &args);
            }
            EventKind::CorpusFile { path, passed } => {
                let args = format!("{{\"path\": {}, \"passed\": {passed}}}", json_str(path));
                Self::instant(inner, "corpus_file", ts_us, &args);
            }
        });
    }

    /// Close the JSON array and flush.
    ///
    /// # Errors
    ///
    /// Any I/O error flushing the file.
    pub fn finish(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.finished {
            return Ok(());
        }
        inner.finished = true;
        inner.out.write_all(b"\n]\n")?;
        inner.out.flush()
    }
}

/// Minimal JSON string escaping (the repo has no serde).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Metrics table
// ---------------------------------------------------------------------

fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Render the human `--metrics` summary: one row per phase with any
/// recorded spans (count, total, mean, max, share of `wall`), plus the
/// unattributed remainder. Printed to stderr by the CLI so `--json`
/// stdout stays machine-parseable.
#[must_use]
pub fn render_metrics(profile: &PhaseProfile, wall: Duration) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>10} {:>10} {:>7}",
        "phase", "count", "total_ms", "mean_us", "max_us", "share"
    );
    let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX).max(1);
    for (phase, s) in profile.iter().filter(|(_, s)| s.count > 0) {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12} {:>10.1} {:>10.1} {:>6.1}%",
            phase.key(),
            s.count,
            fmt_ms(s.total()),
            s.total_ns as f64 / s.count as f64 / 1e3,
            s.max_ns as f64 / 1e3,
            s.total_ns as f64 * 100.0 / wall_ns as f64
        );
    }
    let attributed = profile.total();
    let other = wall.saturating_sub(attributed);
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>10} {:>10} {:>6.1}%",
        "(other)",
        "-",
        fmt_ms(other),
        "-",
        "-",
        other.as_nanos() as f64 * 100.0 / wall_ns as f64
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>10} {:>10} {:>7}",
        "wall",
        "-",
        fmt_ms(wall),
        "-",
        "-",
        "-"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_record_merge_minus() {
        let mut a = PhaseProfile::default();
        assert!(a.is_empty());
        a.record(EnginePhase::Replay, Duration::from_micros(5));
        a.record(EnginePhase::Replay, Duration::from_micros(3));
        a.record(EnginePhase::Extend, Duration::from_micros(10));
        assert!(!a.is_empty());
        let r = a.get(EnginePhase::Replay);
        assert_eq!(r.count, 2);
        assert_eq!(r.total_ns, 8_000);
        assert_eq!(r.max_ns, 5_000);
        assert_eq!(a.total(), Duration::from_micros(18));

        let mut b = PhaseProfile::default();
        b.record(EnginePhase::Replay, Duration::from_micros(7));
        b.merge(&a);
        let r = b.get(EnginePhase::Replay);
        assert_eq!(r.count, 3);
        assert_eq!(r.total_ns, 15_000);
        assert_eq!(r.max_ns, 7_000);

        let d = b.minus(&a);
        assert_eq!(d.get(EnginePhase::Replay).count, 1);
        assert_eq!(d.get(EnginePhase::Replay).total_ns, 7_000);
        assert_eq!(d.get(EnginePhase::Extend).count, 0);
    }

    #[test]
    fn tracker_attributes_only_when_enabled() {
        let off = PhaseTracker::new(false);
        off.set(EnginePhase::Replay);
        off.set(EnginePhase::Extend);
        assert_eq!(off.get(), EnginePhase::Extend);
        assert!(off.take_profile().is_empty());

        let on = PhaseTracker::new(true);
        on.set(EnginePhase::Replay);
        std::thread::sleep(Duration::from_millis(1));
        on.set(EnginePhase::Extend);
        let p = on.take_profile();
        assert!(p.get(EnginePhase::Replay).total_ns >= 1_000_000);
        // The initial Driver span and the open Extend span both closed.
        assert!(p.get(EnginePhase::Driver).count >= 1);
        assert!(p.get(EnginePhase::Extend).count >= 1);
        // Draining resets.
        assert!(on.take_profile().get(EnginePhase::Replay).count <= 1);
    }

    #[test]
    fn bus_sequences_are_monotonic_and_gap_free() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink: EventFn = {
            let seen = Arc::clone(&seen);
            Arc::new(move |ev: &EngineEvent| {
                seen.lock().unwrap().push(ev.seq);
            })
        };
        let bus = EventBus::new(sink);
        for _ in 0..5 {
            bus.emit(EventKind::SessionFinish { verified: true });
        }
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn metrics_table_mentions_recorded_phases() {
        let mut p = PhaseProfile::default();
        p.record(EnginePhase::Consistency, Duration::from_millis(2));
        let table = render_metrics(&p, Duration::from_millis(10));
        assert!(table.contains("consistency"));
        assert!(table.contains("(other)"));
        assert!(table.contains("wall"));
        assert!(!table.contains("replay"), "phases without spans are omitted");
    }
}
