//! Revisit-driven reads-from exploration ([`SearchMode::Revisit`], the
//! default) — the stateless-optimal counterpart of the enumerate-and-dedup
//! drivers in [`crate::explorer`].
//!
//! The enumerate engine materializes every extension candidate as a fresh
//! graph, pushes it, and lets the global dedup set discard the duplicates
//! after the fact: on contended programs the overwhelming majority of
//! constructed graphs are clones that are hashed once and thrown away.
//! This module keeps the *same* search tree but walks it as chains of
//! in-place extensions:
//!
//! * A work item is a materialized **chain root** (initially the empty
//!   graph; later, admitted alternates and revisit children). Processing
//!   an item runs a depth-first **chain**: at every step the engine
//!   replays the program, checks the graph, and — instead of cloning one
//!   child per candidate — speculatively applies each candidate to the
//!   current graph ([`ExecutionGraph::push_event`] /
//!   [`ExecutionGraph::insert_mo`]), checks consistency, and undoes it
//!   ([`ExecutionGraph::pop_event`] / [`ExecutionGraph::remove_mo`]).
//!   The chain then continues *in place* with the last viable candidate
//!   (exactly the child the LIFO enumerate driver would pop next) and
//!   admits the remaining viable candidates as new work items.
//! * Admission is **hash-before-materialize**: every candidate — forward
//!   alternate or revisit child — is hashed through a [`GraphView`] of
//!   the speculative graph (a restriction plus an rf override, encoded
//!   without building anything) and cloned only if its orbit has never
//!   been admitted before. Duplicate orbits cost one encoding, zero
//!   constructions.
//! * Backward revisits (the W-step of the paper's Fig. 6) are computed
//!   once per mo placement during the speculative scan — including
//!   placements that are themselves inconsistent, since the revisit
//!   restriction can remove the inconsistency — and never regenerated
//!   when the continuation placement is re-applied.
//!
//! Two global sets partition the dedup duties: `visited` gates
//! *materializations* (admitted roots), `leaves` counts *terminal*
//! contents (complete and blocked graphs) exactly once each. They must be
//! distinct: a revisit child that happens to be a leaf would otherwise
//! collide with its own admission hash and be dropped uncounted. Under
//! thread symmetry both sets hash modulo the program's symmetry partition
//! ([`ExploreEncoder`]), and first arrivals are normalized to their orbit
//! representative exactly as the enumerate engine does — so verdicts,
//! `complete_executions` (orbit counts) and counterexample messages are
//! identical across search modes and worker counts.
//!
//! The savings show up in [`ExploreStats::constructed`]: the enumerate
//! engine constructs one graph per push (plus the initial graph), this
//! engine one per *admitted* item — on qspinlock-3t an order of magnitude
//! fewer (see BENCH_explore.json and DESIGN.md §12).
//!
//! [`SearchMode::Revisit`]: crate::verdict::SearchMode::Revisit
//! [`ExploreStats::constructed`]: crate::verdict::ExploreStats::constructed
//! [`ExploreEncoder`]: vsync_graph::ExploreEncoder

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vsync_graph::{
    EventId, EventKind, ExecutionGraph, ExploreEncoder, GraphView, Loc, Mode, RfSource, ThreadId,
};
use vsync_lang::{PendingOp, ReadDesc, ReplayOutcome, ThreadStatus};

use crate::explorer::{
    degraded, failed_final_check, min_source_pos, panic_payload, relock, stats_delta,
    BudgetTracker, Engine, Pacer, SeenSet, SharedStats, WorkQueue, CHECK_PERIOD,
};
use crate::failpoint;
use crate::stagnancy::is_stagnant;
use crate::telemetry::PhaseTracker;
use crate::verdict::{
    AmcResult, Counterexample, EngineError, EnginePhase, ExploreStats, Inconclusive, StopReason,
    Verdict,
};

/// Dedup probe: returns `true` iff the hash was never seen before.
type Probe<'a> = dyn FnMut(u128) -> bool + 'a;

/// Driver callback run once per chain step, *before* the step's work:
/// transfers the previous step's admitted children to the frontier and
/// performs the cooperative control checks (budget, cancellation,
/// deadline, step ceiling). A `Some` return stops the run.
type Tick<'a> =
    dyn FnMut(&mut ExploreStats, &mut Vec<ExecutionGraph>) -> Option<StopReason> + 'a;

/// How a chain ended.
enum ChainEnd {
    /// The chain ran to a leaf (or died at a check); exploration continues
    /// with the next work item.
    Done,
    /// A terminal verdict that ends the whole exploration.
    Verdict(Verdict),
    /// A control check stopped the run mid-chain (budget / cancellation /
    /// deadline / step ceiling).
    Stopped(StopReason),
}

/// Scratch state for one chain; admitted children end up in `out`.
struct ChainCtx<'s> {
    stats: &'s mut ExploreStats,
    out: &'s mut Vec<ExecutionGraph>,
    executions: &'s mut Vec<ExecutionGraph>,
    /// The run's budget tracker, so failpoint-injected allocation
    /// failures can force exhaustion from any stage.
    budget: &'s BudgetTracker,
    /// Engine phase for panic attribution and (when profiling is on)
    /// wall-clock accrual, exactly as in the enumerate drivers.
    phase: &'s PhaseTracker,
    /// Per-worker symmetry-aware view hasher.
    enc: &'s mut ExploreEncoder,
    dedup: bool,
}

impl ChainCtx<'_> {
    /// Record a failpoint hit; a synthetic allocation failure is reported
    /// as memory-budget exhaustion. Compiles to nothing without the
    /// `failpoints` feature.
    #[inline]
    fn failpoint(&self, site: &'static str) {
        if failpoint::hit(site).is_oom() {
            self.budget.force(StopReason::MemoryBudget);
        }
    }
}

impl<'p> Engine<'p> {
    /// Run one chain to exhaustion: replay, check, extend in place,
    /// admitting non-continuation candidates through the `visited` probe
    /// and counting terminal graphs through the `leaves` probe.
    fn run_chain(
        &self,
        mut g: ExecutionGraph,
        ctx: &mut ChainCtx<'_>,
        visited: &mut Probe<'_>,
        leaves: &mut Probe<'_>,
        tick: &mut Tick<'_>,
    ) -> ChainEnd {
        let mut root = true;
        loop {
            ctx.phase.set(EnginePhase::Driver);
            if let Some(r) = tick(ctx.stats, ctx.out) {
                return ChainEnd::Stopped(r);
            }
            // Replay first: it repairs derived read flags, which the
            // consistency check depends on.
            ctx.phase.set(EnginePhase::Replay);
            ctx.failpoint("explore.replay");
            let rep = vsync_lang::replay_with_budget(self.prog, &mut g, self.config.step_budget);
            if let Some(f) = rep.fault() {
                return ChainEnd::Verdict(Verdict::Fault(f.to_owned()));
            }
            ctx.stats.events += g.num_events() as u64;
            if rep.wasteful {
                ctx.stats.wasteful += 1;
                return ChainEnd::Done;
            }
            if root {
                root = false;
                // Chain roots are materialized without a consistency
                // check — revisit children in particular can be
                // inconsistent even when built from consistent parents —
                // so check once here, after replay repaired the flags.
                // In-place continuations were already checked by the
                // speculative scan that chose them.
                ctx.phase.set(EnginePhase::Consistency);
                ctx.failpoint("explore.consistency");
                if !self.model.is_consistent(&g) {
                    ctx.stats.inconsistent += 1;
                    return ChainEnd::Done;
                }
            }
            if rep.errored() {
                let (_, msg) = g.error().expect("errored replay has an error event");
                let message = format!("assertion failed: {msg}");
                return ChainEnd::Verdict(Verdict::Safety(Counterexample { graph: g, message }));
            }
            let next_ready = rep.ready_threads().next();
            match next_ready {
                Some(t) => {
                    ctx.phase.set(EnginePhase::Extend);
                    ctx.failpoint("explore.extend");
                    if g.thread_len(t) >= self.config.max_events_per_thread {
                        return ChainEnd::Verdict(Verdict::Fault(format!(
                            "thread {t} exceeded {} events — unbounded non-await loop? \
                             (Bounded-Length principle)",
                            self.config.max_events_per_thread
                        )));
                    }
                    let ThreadStatus::Ready(op) = &rep.threads[t as usize] else { unreachable!() };
                    let extended = match op {
                        PendingOp::Fence { mode } => {
                            self.chain_simple(&mut g, t, EventKind::Fence { mode: *mode }, ctx)
                        }
                        PendingOp::Error { msg } => {
                            self.chain_simple(&mut g, t, EventKind::Error { msg: msg.clone() }, ctx)
                        }
                        PendingOp::Read { loc, mode, desc, prev_rf } => {
                            self.chain_read(&mut g, t, *loc, *mode, *desc, *prev_rf, ctx, visited)
                        }
                        PendingOp::Write { loc, val, mode, rmw } => {
                            self.chain_write(&mut g, t, *loc, *val, *mode, *rmw, ctx, visited)
                        }
                    };
                    if !extended {
                        return ChainEnd::Done;
                    }
                }
                None => return self.chain_leaf(g, rep, ctx, leaves),
            }
        }
    }

    /// Terminal graph: count its orbit once through `leaves`, then run the
    /// complete-execution checks or the stagnancy analysis.
    fn chain_leaf(
        &self,
        mut g: ExecutionGraph,
        mut rep: ReplayOutcome,
        ctx: &mut ChainCtx<'_>,
        leaves: &mut Probe<'_>,
    ) -> ChainEnd {
        if ctx.dedup {
            // Leaf counting is a view probe, like admission — `Probe`, not
            // `Dedup`, so revisit-engine hash work is attributed to the
            // hash-before-materialize scheme that motivates it.
            ctx.phase.set(EnginePhase::Probe);
            ctx.failpoint("explore.dedup");
            let (h, permuted) = ctx.enc.hash_view(&GraphView::full(&g));
            ctx.stats.probes += ctx.enc.take_probes();
            if !leaves(h) {
                // Distinct chains can converge on the same terminal
                // content; only the first arrival is counted/checked.
                if permuted {
                    ctx.stats.symmetry_pruned += 1;
                } else {
                    ctx.stats.duplicates += 1;
                }
                return ChainEnd::Done;
            }
            if permuted {
                // First arrival of its orbit in non-canonical form:
                // normalize so counterexamples and collected executions
                // are the orbit representatives the enumerate engine
                // reports.
                let perm =
                    ctx.enc.chosen_perm().expect("permuted hash implies a chosen relabeling");
                g = g.permute_threads(perm);
                rep = vsync_lang::replay_with_budget(self.prog, &mut g, self.config.step_budget);
                if let Some(f) = rep.fault() {
                    return ChainEnd::Verdict(Verdict::Fault(f.to_owned()));
                }
            }
        }
        let blocked: Vec<_> = rep.blocked().collect();
        if blocked.is_empty() {
            ctx.phase.set(EnginePhase::FinalCheck);
            ctx.failpoint("explore.final");
            ctx.stats.complete_executions += 1;
            if let Some(msg) = failed_final_check(self.prog, &g) {
                return ChainEnd::Verdict(Verdict::Safety(Counterexample {
                    graph: g,
                    message: msg,
                }));
            }
            if self.config.collect_executions {
                ctx.executions.push(g);
            }
        } else {
            ctx.phase.set(EnginePhase::Stagnancy);
            ctx.failpoint("explore.stagnancy");
            ctx.stats.blocked_graphs += 1;
            if is_stagnant(&g, &blocked, self.model) {
                let polls: Vec<String> =
                    blocked.iter().map(|b| format!("{}@{:#x}", b.read, b.loc)).collect();
                let message = format!(
                    "await never terminates: blocked read(s) {} cannot \
                     observe any new write",
                    polls.join(", ")
                );
                return ChainEnd::Verdict(Verdict::AwaitTermination(Counterexample {
                    graph: g,
                    message,
                }));
            }
            // Non-stagnant blocked graphs are exploration artifacts;
            // their real continuations are siblings.
        }
        ChainEnd::Done
    }

    /// Single-candidate step (fence / error event): extend in place, no
    /// admission. SC fences can still create consistency violations, so
    /// the step is checked like any other.
    fn chain_simple(
        &self,
        g: &mut ExecutionGraph,
        t: ThreadId,
        kind: EventKind,
        ctx: &mut ChainCtx<'_>,
    ) -> bool {
        g.push_event(t, kind);
        ctx.phase.set(EnginePhase::Consistency);
        ctx.failpoint("explore.consistency");
        if !self.model.is_consistent(g) {
            ctx.stats.inconsistent += 1;
            return false;
        }
        true
    }

    /// R-step: branch over every rf candidate (plus `⊥` for await reads),
    /// continuing in place with the last viable one.
    #[allow(clippy::too_many_arguments)]
    fn chain_read(
        &self,
        g: &mut ExecutionGraph,
        t: ThreadId,
        loc: Loc,
        mode: Mode,
        desc: ReadDesc,
        prev_rf: Option<RfSource>,
        ctx: &mut ChainCtx<'_>,
        visited: &mut Probe<'_>,
    ) -> bool {
        // Candidates in the enumerate engine's push order (`⊥` last), so
        // the in-place continuation — the last viable candidate — is the
        // child the LIFO driver would pop first.
        let min_pos = min_source_pos(g, t, loc);
        let mut sources: Vec<EventId> = vec![EventId::Init(loc)];
        sources.extend(g.mo(loc).iter().copied());
        let mut cands: Vec<EventKind> = Vec::with_capacity(sources.len() + 1);
        for (pos, w) in sources.into_iter().enumerate() {
            if pos < min_pos {
                continue; // per-location coherence rules this source out
            }
            if desc.is_await() && prev_rf == Some(RfSource::Write(w)) {
                continue; // wasteful repeat (Def. 2) — never generated
            }
            // The event carries its exact derived flags (from the
            // candidate source's value), so the speculative check below
            // equals the one the enumerate engine runs after replaying
            // the materialized child.
            let writes = desc.write_on(g.write_value(w)).is_some();
            cands.push(EventKind::Read {
                loc,
                mode,
                rf: RfSource::Write(w),
                rmw: writes,
                awaiting: desc.is_await(),
            });
        }
        if desc.is_await() {
            // The potential AT violation: no incoming rf-edge (yet).
            cands.push(EventKind::Read {
                loc,
                mode,
                rf: RfSource::Bottom,
                rmw: false,
                awaiting: true,
            });
        }
        // Viability scan: speculative push → model check → undo.
        let mut viable: Vec<usize> = Vec::with_capacity(cands.len());
        ctx.phase.set(EnginePhase::Consistency);
        for (i, kind) in cands.iter().enumerate() {
            g.push_event(t, kind.clone());
            ctx.failpoint("explore.consistency");
            let ok = self.model.is_consistent(g);
            g.pop_event(t);
            if ok {
                viable.push(i);
            } else {
                ctx.stats.inconsistent += 1;
            }
        }
        ctx.phase.set(EnginePhase::Extend);
        let Some((&cont, alternates)) = viable.split_last() else {
            return false;
        };
        for &i in alternates {
            g.push_event(t, cands[i].clone());
            self.admit(&GraphView::full(g), &mut || g.clone(), false, ctx, visited);
            g.pop_event(t);
        }
        g.push_event(t, cands[cont].clone());
        true
    }

    /// W-step: place the write in mo (all positions for plain writes; the
    /// atomicity-forced slot for RMW write parts), generate backward
    /// revisits once per placement, and continue in place with the last
    /// viable placement.
    #[allow(clippy::too_many_arguments)]
    fn chain_write(
        &self,
        g: &mut ExecutionGraph,
        t: ThreadId,
        loc: Loc,
        val: u64,
        mode: Mode,
        rmw: bool,
        ctx: &mut ChainCtx<'_>,
        visited: &mut Probe<'_>,
    ) -> bool {
        let positions: Vec<usize> = if rmw {
            // The write part must land immediately after its read's source.
            let read_id = EventId::new(t, g.thread_len(t) as u32 - 1);
            let src = match g.rf(read_id) {
                RfSource::Write(w) => w,
                RfSource::Bottom => unreachable!("rmw write part with unresolved read"),
            };
            let pos = match src {
                EventId::Init(_) => 0,
                _ => g.mo(loc).iter().position(|x| *x == src).expect("source in mo") + 1,
            };
            vec![pos]
        } else {
            (0..=g.mo(loc).len()).collect()
        };
        // Pass 1 — per placement: generate its revisit children (even
        // when the placed graph itself is inconsistent: the revisit
        // restriction can remove the inconsistency), check the
        // placement's own viability, undo.
        let mut viable: Vec<usize> = Vec::with_capacity(positions.len());
        for &pos in &positions {
            let wid = g.push_event(t, EventKind::Write { loc, val, mode, rmw });
            g.insert_mo(loc, wid, pos);
            self.chain_revisits(g, wid, loc, ctx, visited);
            ctx.phase.set(EnginePhase::Consistency);
            ctx.failpoint("explore.consistency");
            if self.model.is_consistent(g) {
                viable.push(pos);
            } else {
                ctx.stats.inconsistent += 1;
            }
            ctx.phase.set(EnginePhase::Extend);
            g.remove_mo(loc, pos);
            g.pop_event(t);
        }
        // Pass 2 — admit every viable placement but the last as an
        // alternate; continue in place with the last. Revisits were all
        // generated in pass 1 and must not be regenerated here.
        let Some((&cont, alternates)) = viable.split_last() else {
            return false;
        };
        for &pos in alternates {
            let wid = g.push_event(t, EventKind::Write { loc, val, mode, rmw });
            g.insert_mo(loc, wid, pos);
            self.admit(&GraphView::full(g), &mut || g.clone(), false, ctx, visited);
            g.remove_mo(loc, pos);
            g.pop_event(t);
        }
        let wid = g.push_event(t, EventKind::Write { loc, val, mode, rmw });
        g.insert_mo(loc, wid, cont);
        true
    }

    /// Backward revisits of one speculative write placement (`wid` is the
    /// newest event of `g`): re-point every same-location read outside the
    /// write's porf-prefix, restricting the graph to the porf-prefixes of
    /// the write and the read. Each candidate is hashed as a [`GraphView`]
    /// — duplicate orbits are rejected before any graph is built.
    fn chain_revisits(
        &self,
        g: &ExecutionGraph,
        wid: EventId,
        loc: Loc,
        ctx: &mut ChainCtx<'_>,
        visited: &mut Probe<'_>,
    ) {
        ctx.phase.set(EnginePhase::Revisit);
        ctx.failpoint("explore.revisit");
        let prefix_w = g.porf_prefix_set([wid]);
        for (r, rloc, rf) in g.reads().collect::<Vec<_>>() {
            if rloc != loc || r == wid || prefix_w.contains(r) {
                continue;
            }
            match rf {
                RfSource::Bottom => {
                    // Resolution of a pending await read: no deletion
                    // needed, the blocked thread has no successors.
                    let view = GraphView::with_rf(g, r, wid);
                    self.admit(
                        &view,
                        &mut || {
                            let mut c = g.clone();
                            c.set_rf(r, RfSource::Write(wid));
                            c
                        },
                        true,
                        ctx,
                        visited,
                    );
                }
                RfSource::Write(old) if old != wid => {
                    // Standard revisit: keep only the porf-prefixes of
                    // the new write and of the read, re-point the read.
                    let mut keep = prefix_w.clone();
                    keep.union_with(&g.porf_prefix_set([r]));
                    let lens = keep.prefix_lens();
                    let view = GraphView::restricted(g, &lens, r, wid);
                    self.admit(
                        &view,
                        &mut || {
                            let mut c = g.restrict_set(&keep);
                            c.set_rf(r, RfSource::Write(wid));
                            c
                        },
                        true,
                        ctx,
                        visited,
                    );
                }
                RfSource::Write(_) => {}
            }
        }
    }

    /// Admit one candidate work item: hash its view, and only if its
    /// orbit was never admitted before, materialize it (normalized to the
    /// orbit representative) into `ctx.out`. This is where `constructed`
    /// diverges from the enumerate engine: duplicates cost an encoding,
    /// not a graph.
    fn admit(
        &self,
        view: &GraphView<'_>,
        materialize: &mut dyn FnMut() -> ExecutionGraph,
        revisit: bool,
        ctx: &mut ChainCtx<'_>,
        visited: &mut Probe<'_>,
    ) {
        if revisit {
            ctx.stats.revisits += 1;
        }
        if !ctx.dedup {
            ctx.stats.pushed += 1;
            ctx.stats.constructed += 1;
            ctx.out.push(materialize());
            return;
        }
        // Restore the caller's phase on the way out: admit is called from
        // both the Extend scans and the Revisit generator, and the hash
        // probe itself is what `Probe` attributes.
        let caller_phase = ctx.phase.get();
        ctx.phase.set(EnginePhase::Probe);
        ctx.failpoint("explore.dedup");
        let (h, permuted) = ctx.enc.hash_view(view);
        ctx.stats.probes += ctx.enc.take_probes();
        if !visited(h) {
            if permuted {
                ctx.stats.symmetry_pruned += 1;
            } else {
                ctx.stats.duplicates += 1;
            }
            ctx.phase.set(caller_phase);
            return;
        }
        let mut child = materialize();
        if permuted {
            // First arrival of its orbit, but not in canonical form:
            // normalize so successor generation (which extends the first
            // ready thread — not a relabeling-invariant choice) stays a
            // function of the orbit.
            let perm = ctx.enc.chosen_perm().expect("permuted hash implies a chosen relabeling");
            child = child.permute_threads(perm);
        }
        ctx.stats.pushed += 1;
        ctx.stats.constructed += 1;
        ctx.out.push(child);
        ctx.phase.set(caller_phase);
    }

    /// The sequential revisit driver: a LIFO stack of chain roots. Each
    /// chain runs under `catch_unwind`, so a panic anywhere in the engine
    /// degrades to [`Verdict::Error`] instead of unwinding out of the
    /// library.
    pub(crate) fn run_revisit_sequential(&self) -> AmcResult {
        let phase = PhaseTracker::new(self.control.profile);
        let mut r = self.run_revisit_sequential_inner(&phase);
        r.stats.phases.merge(&phase.take_profile());
        r
    }

    /// [`Engine::run_revisit_sequential`]'s body; the wrapper owns the
    /// [`PhaseTracker`] so the accumulated profile lands in the result's
    /// stats no matter which of the return paths is taken.
    fn run_revisit_sequential_inner(&self, phase: &PhaseTracker) -> AmcResult {
        let mut stats = ExploreStats::default();
        let mut executions: Vec<ExecutionGraph> = Vec::new();
        let mut visited: SeenSet = SeenSet::default();
        let mut leaves: SeenSet = SeenSet::default();
        let budget = BudgetTracker::new(&self.config.budget);
        let initial = self.initial_graph();
        stats.constructed = 1; // the initial graph
        budget.charge(&initial);
        let mut stack = vec![initial];
        let mut children: Vec<ExecutionGraph> = Vec::new();
        let mut pacer = Pacer::new(self.control, 1, None, 0);
        let mut enc = ExploreEncoder::new(self.partition.as_ref());
        let max_graphs = self.config.max_graphs;
        while let Some(g) = stack.pop() {
            budget.release(&g);
            phase.set(EnginePhase::Driver);
            let end = catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = ChainCtx {
                    stats: &mut stats,
                    out: &mut children,
                    executions: &mut executions,
                    budget: &budget,
                    phase,
                    enc: &mut enc,
                    dedup: self.config.dedup,
                };
                let mut visited_probe = |h: u128| {
                    let fresh = visited.insert(h);
                    if fresh {
                        budget.note_dedup_entry();
                    }
                    fresh
                };
                let mut leaf_probe = |h: u128| {
                    let fresh = leaves.insert(h);
                    if fresh {
                        budget.note_dedup_entry();
                    }
                    fresh
                };
                let mut tick = |stats: &mut ExploreStats, out: &mut Vec<ExecutionGraph>| {
                    // Transfer the previous step's children before the
                    // control checks, so a mid-chain stop accounts them
                    // as dropped frontier instead of losing them.
                    for c in out.iter() {
                        budget.charge(c);
                    }
                    stack.append(out);
                    if let Some(reason) = budget.exceeded() {
                        return Some(reason);
                    }
                    if let Some(r) = pacer.poll(phase, stats, || *stats) {
                        return Some(r);
                    }
                    stats.popped += 1;
                    if max_graphs != 0 && stats.popped > max_graphs {
                        return Some(StopReason::MaxGraphs);
                    }
                    if failpoint::hit("explore.pop").is_oom() {
                        budget.force(StopReason::MemoryBudget);
                    }
                    None
                };
                self.run_chain(g, &mut ctx, &mut visited_probe, &mut leaf_probe, &mut tick)
            }));
            match end {
                Ok(ChainEnd::Verdict(v)) => return AmcResult { verdict: v, stats, executions },
                Ok(ChainEnd::Stopped(r)) => {
                    let dropped = stack.len() as u64 + children.len() as u64;
                    children.clear();
                    return degraded(r, stats, stats.popped, dropped, executions);
                }
                Ok(ChainEnd::Done) => {
                    for c in &children {
                        budget.charge(c);
                    }
                    if let Some(reason) = budget.exceeded() {
                        let dropped = stack.len() as u64 + children.len() as u64;
                        return degraded(reason, stats, stats.popped, dropped, executions);
                    }
                    stack.append(&mut children);
                }
                Err(payload) => {
                    // Counters touched mid-chain stay as they are: partial
                    // stats are better than none. Half-generated children
                    // must not leak into the frontier, though.
                    children.clear();
                    let e = EngineError {
                        phase: phase.get(),
                        thread: None,
                        payload: panic_payload(payload),
                    };
                    return AmcResult { verdict: Verdict::Error(e), stats, executions };
                }
            }
        }
        AmcResult { verdict: Verdict::Verified, stats, executions }
    }

    /// The parallel revisit driver: `workers` threads over the shared
    /// injector queue. A worker's chain injects admitted children into
    /// the queue at every step ([`WorkQueue::push_children`]), so peers
    /// pick up alternates while the chain is still running; `max_graphs`
    /// counts chain *steps* through a shared atomic so the explored-work
    /// ceiling means the same thing at every worker count.
    pub(crate) fn run_revisit_parallel(&self, workers: usize) -> AmcResult {
        const SHARDS: usize = 64;
        let budget = BudgetTracker::new(&self.config.budget);
        let initial = self.initial_graph();
        budget.charge(&initial);
        let queue = WorkQueue::new(initial);
        let visited: Vec<Mutex<SeenSet>> =
            (0..SHARDS).map(|_| Mutex::new(SeenSet::default())).collect();
        let leaves: Vec<Mutex<SeenSet>> =
            (0..SHARDS).map(|_| Mutex::new(SeenSet::default())).collect();
        let shared = SharedStats::default();
        let gate = Mutex::new(Instant::now());
        let steps = AtomicU64::new(0);

        let worker = |index: usize| {
            // See run_parallel: a panic outside the catch_unwind below
            // must not leave peers asleep on the condvar.
            struct PanicGuard<'a>(&'a WorkQueue);
            impl Drop for PanicGuard<'_> {
                fn drop(&mut self) {
                    if std::thread::panicking() {
                        self.0.abort();
                    }
                }
            }
            let _guard = PanicGuard(&queue);
            let mut stats = ExploreStats::default();
            let mut executions = Vec::new();
            let mut children: Vec<ExecutionGraph> = Vec::new();
            let mut pacer = Pacer::new(self.control, workers, Some(&gate), index);
            let mut enc = ExploreEncoder::new(self.partition.as_ref());
            let mut flushed = ExploreStats::default();
            let mut since_flush = 0u64;
            let phase = PhaseTracker::new(self.control.profile);
            loop {
                // Cancellation point before popping: a token fired ahead
                // of the run interrupts every worker deterministically,
                // with zero steps processed.
                if let Some(r) = pacer.poll(&phase, &stats, || shared.snapshot()) {
                    let (_, dropped) = queue.snapshot();
                    queue.finish(Verdict::Inconclusive(Inconclusive {
                        reason: r,
                        explored: steps.load(Ordering::Relaxed),
                        frontier_dropped: dropped,
                    }));
                    break;
                }
                let Some((g, _)) = queue.pop() else {
                    break;
                };
                budget.release(&g);
                phase.set(EnginePhase::Driver);
                let end = catch_unwind(AssertUnwindSafe(|| {
                    let mut ctx = ChainCtx {
                        stats: &mut stats,
                        out: &mut children,
                        executions: &mut executions,
                        budget: &budget,
                        phase: &phase,
                        enc: &mut enc,
                        dedup: self.config.dedup,
                    };
                    let mut visited_probe = |h: u128| {
                        let fresh = relock(&visited[(h as usize) % SHARDS]).insert(h);
                        if fresh {
                            budget.note_dedup_entry();
                        }
                        fresh
                    };
                    let mut leaf_probe = |h: u128| {
                        let fresh = relock(&leaves[(h as usize) % SHARDS]).insert(h);
                        if fresh {
                            budget.note_dedup_entry();
                        }
                        fresh
                    };
                    let mut tick = |stats: &mut ExploreStats, out: &mut Vec<ExecutionGraph>| {
                        for c in out.iter() {
                            budget.charge(c);
                        }
                        queue.push_children(out);
                        if let Some(reason) = budget.exceeded() {
                            return Some(reason);
                        }
                        // Batch-flush local counters so progress
                        // snapshots trail the true totals by at most
                        // CHECK_PERIOD steps per worker.
                        since_flush += 1;
                        if since_flush >= CHECK_PERIOD {
                            since_flush = 0;
                            shared.add(&stats_delta(stats, &flushed));
                            flushed = *stats;
                        }
                        // Count the step before the cancellation point —
                        // the parallel driver's pre-pop poll already
                        // guarantees pre-fired tokens and zero deadlines
                        // stop with zero steps, and a mid-chain stop
                        // should account the step it interrupted (as the
                        // enumerate driver does for its popped item).
                        stats.popped += 1;
                        let total = steps.fetch_add(1, Ordering::Relaxed) + 1;
                        if self.config.max_graphs != 0 && total > self.config.max_graphs {
                            return Some(StopReason::MaxGraphs);
                        }
                        if let Some(r) = pacer.poll(&phase, stats, || shared.snapshot()) {
                            return Some(r);
                        }
                        if failpoint::hit("explore.pop").is_oom() {
                            budget.force(StopReason::MemoryBudget);
                        }
                        None
                    };
                    self.run_chain(g, &mut ctx, &mut visited_probe, &mut leaf_probe, &mut tick)
                }));
                match end {
                    Ok(ChainEnd::Verdict(v)) => {
                        queue.finish(v);
                        break;
                    }
                    Ok(ChainEnd::Stopped(r)) => {
                        let (_, dropped) = queue.snapshot();
                        queue.finish(Verdict::Inconclusive(Inconclusive {
                            reason: r,
                            explored: steps.load(Ordering::Relaxed),
                            frontier_dropped: dropped + children.len() as u64,
                        }));
                        children.clear();
                        break;
                    }
                    Ok(ChainEnd::Done) => {
                        for c in &children {
                            budget.charge(c);
                        }
                        if let Some(reason) = budget.exceeded() {
                            let (_, dropped) = queue.snapshot();
                            queue.finish(Verdict::Inconclusive(Inconclusive {
                                reason,
                                explored: steps.load(Ordering::Relaxed),
                                frontier_dropped: dropped + children.len() as u64,
                            }));
                            children.clear();
                            break;
                        }
                        queue.push_children(&mut children);
                        queue.finish_item();
                    }
                    Err(payload) => {
                        // The chain's half-generated children die with it;
                        // finishing the queue stops the peers.
                        children.clear();
                        queue.finish(Verdict::Error(EngineError {
                            phase: phase.get(),
                            thread: Some(index),
                            payload: panic_payload(payload),
                        }));
                        break;
                    }
                }
            }
            stats.phases.merge(&phase.take_profile());
            (stats, executions)
        };

        let results: Vec<(ExploreStats, Vec<ExecutionGraph>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|i| scope.spawn(move || worker(i))).collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        queue.finish(Verdict::Error(EngineError {
                            phase: EnginePhase::Driver,
                            thread: None,
                            payload: panic_payload(payload),
                        }));
                        (ExploreStats::default(), Vec::new())
                    })
                })
                .collect()
        });

        let mut stats = ExploreStats::default();
        let mut executions = Vec::new();
        for (s, mut e) in results {
            stats.merge(&s);
            executions.append(&mut e);
        }
        stats.constructed += 1; // the initial graph, built by the driver
        let verdict = queue.into_verdict();
        if let Verdict::Inconclusive(i) = &verdict {
            stats.frontier_dropped = i.frontier_dropped;
        }
        AmcResult { verdict, stats, executions }
    }
}
