//! Deterministic fault injection, in the spirit of libfailpoints.
//!
//! A *failpoint* is a named site in the engine (`explore.replay`,
//! `explore.dedup`, `optimize.verify`, `corpus.check`, ...) that can be
//! armed to fire a fault on its Nth hit: panic, delay, or report a
//! synthetic allocation failure that the drivers treat exactly like a
//! [`crate::StopReason::MemoryBudget`] exhaustion. Hit counters are
//! global, so "panic on the 3rd replay" means the 3rd replay *anywhere*
//! in the process — which keeps injected verdicts deterministic for any
//! worker count (the payload and phase are site-determined even when the
//! winning thread is not).
//!
//! Everything here is compiled out unless the `failpoints` cargo feature
//! is enabled: the default build's [`hit`] is an inlined constant and the
//! hot loops carry zero overhead. With the feature on, sites are armed
//! either programmatically (`configure`) or through the
//! `VSYNC_FAILPOINTS` environment variable, parsed once on first use:
//!
//! ```text
//! VSYNC_FAILPOINTS="explore.replay=panic@3;corpus.check=delay(10)@1;explore.dedup=oom"
//! ```
//!
//! Each clause is `site=action[@nth]` (default `@1`); actions are
//! `panic`, `oom`, and `delay(ms)`. Site names live in one flat
//! `stage.site` namespace documented in DESIGN.md §10.

/// Effect a failpoint asks its call site to carry out. `Panic` and
/// `Delay` never reach the caller (they unwind or sleep inside [`hit`]);
/// `Oom` must be handled by the site, which reports it as a synthetic
/// memory-budget exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fired {
    /// Nothing to do (the site is unarmed or this is not the Nth hit).
    None,
    /// Simulate an allocation failure at this site.
    Oom,
}

impl Fired {
    /// Shorthand for call sites that only care about synthetic OOM.
    pub fn is_oom(self) -> bool {
        self == Fired::Oom
    }
}

/// Record a hit on the named site. No-op (and fully inlined away)
/// without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit(_site: &str) -> Fired {
    Fired::None
}

#[cfg(feature = "failpoints")]
pub use imp::{clear, configure, exclusive, hit, Action};

#[cfg(feature = "failpoints")]
mod imp {
    use super::Fired;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};

    /// The fault a site is armed with.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Action {
        /// Panic with payload `failpoint '<site>' fired`.
        Panic,
        /// Sleep for the given number of milliseconds.
        Delay(u64),
        /// Report a synthetic allocation failure to the call site.
        Oom,
    }

    struct Site {
        action: Action,
        /// 1-based hit on which the site fires (exactly once).
        nth: u64,
        hits: AtomicU64,
    }

    /// Number of armed sites; lets unarmed runs skip the registry lock.
    static ACTIVE: AtomicUsize = AtomicUsize::new(0);
    static ENV_INIT: Once = Once::new();

    fn registry() -> &'static Mutex<HashMap<String, Arc<Site>>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<Site>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock_registry() -> MutexGuard<'static, HashMap<String, Arc<Site>>> {
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A process-wide guard serializing tests that arm failpoints (the
    /// registry and hit counters are global state).
    pub fn exclusive() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm `site` to fire `action` on its `nth` hit (1-based). Replaces
    /// any previous configuration of the site and resets its counter.
    pub fn configure(site: &str, action: Action, nth: u64) {
        ensure_env_loaded();
        let entry = Arc::new(Site { action, nth: nth.max(1), hits: AtomicU64::new(0) });
        if lock_registry().insert(site.to_string(), entry).is_none() {
            ACTIVE.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Disarm every site and reset all counters. The environment
    /// configuration is *not* re-applied.
    pub fn clear() {
        ensure_env_loaded();
        let removed = {
            let mut reg = lock_registry();
            let n = reg.len();
            reg.clear();
            n
        };
        ACTIVE.fetch_sub(removed, Ordering::SeqCst);
    }

    fn ensure_env_loaded() {
        ENV_INIT.call_once(|| {
            let Ok(spec) = std::env::var("VSYNC_FAILPOINTS") else {
                return;
            };
            let mut reg = lock_registry();
            let mut added = 0;
            for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
                let Some((site, rest)) = clause.split_once('=') else {
                    eprintln!("vsync: ignoring malformed failpoint clause '{clause}'");
                    continue;
                };
                let (action_str, nth) = match rest.rsplit_once('@') {
                    Some((a, n)) => match n.parse::<u64>() {
                        Ok(n) => (a, n.max(1)),
                        Err(_) => {
                            eprintln!("vsync: bad failpoint count in '{clause}'");
                            continue;
                        }
                    },
                    None => (rest, 1),
                };
                let action = if action_str == "panic" {
                    Action::Panic
                } else if action_str == "oom" {
                    Action::Oom
                } else if let Some(ms) = action_str
                    .strip_prefix("delay(")
                    .and_then(|s| s.strip_suffix(')'))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    Action::Delay(ms)
                } else {
                    eprintln!("vsync: unknown failpoint action in '{clause}'");
                    continue;
                };
                let entry = Arc::new(Site { action, nth, hits: AtomicU64::new(0) });
                if reg.insert(site.trim().to_string(), entry).is_none() {
                    added += 1;
                }
            }
            ACTIVE.fetch_add(added, Ordering::SeqCst);
        });
    }

    /// Record a hit on the named site; fires the armed action when this
    /// is exactly the Nth hit.
    pub fn hit(site: &str) -> Fired {
        if ACTIVE.load(Ordering::Relaxed) == 0 && ENV_INIT.is_completed() {
            return Fired::None;
        }
        ensure_env_loaded();
        let Some(entry) = lock_registry().get(site).cloned() else {
            return Fired::None;
        };
        let count = entry.hits.fetch_add(1, Ordering::SeqCst) + 1;
        if count != entry.nth {
            return Fired::None;
        }
        match entry.action {
            Action::Panic => std::panic::panic_any(format!("failpoint '{site}' fired")),
            Action::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Fired::None
            }
            Action::Oom => Fired::Oom,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fires_on_exactly_the_nth_hit() {
            let _gate = exclusive();
            clear();
            configure("test.site", Action::Oom, 3);
            assert_eq!(hit("test.site"), Fired::None);
            assert_eq!(hit("test.site"), Fired::None);
            assert_eq!(hit("test.site"), Fired::Oom);
            assert_eq!(hit("test.site"), Fired::None, "fires exactly once");
            assert_eq!(hit("other.site"), Fired::None, "unarmed sites are silent");
            clear();
            assert_eq!(hit("test.site"), Fired::None, "cleared sites are silent");
        }

        #[test]
        fn panic_action_unwinds_with_a_string_payload() {
            let _gate = exclusive();
            clear();
            configure("test.panic", Action::Panic, 1);
            let err = std::panic::catch_unwind(|| hit("test.panic")).unwrap_err();
            let msg = err.downcast_ref::<String>().expect("string payload");
            assert_eq!(msg, "failpoint 'test.panic' fired");
            clear();
        }
    }
}
