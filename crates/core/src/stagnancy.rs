//! Await-termination (stagnancy) analysis.
//!
//! When exploration reaches a graph with no runnable threads but with
//! blocked await reads (`⊥` reads-from edges), AMC must decide whether the
//! missing edges "could not be resolved except through a wasteful
//! execution" (paper §1.3). If so, the graph is *stagnant* and witnesses an
//! await-termination violation (paper Lemmas 12/13: stagnant graphs extend
//! to the infinite executions of `G∞`, and vice versa).

use vsync_graph::{EventId, EventKind, ExecutionGraph, RfSource};
use vsync_lang::BlockedAwait;
use vsync_model::MemoryModel;

/// Is this no-runnable-threads graph stagnant?
///
/// Every blocked read must be *stuck*: for every available write `w` to its
/// location, resolving the read with `w` is either inconsistent with the
/// memory model or a wasteful repeat of the previous iteration. If some
/// blocked read could still make progress, the graph is an exploration
/// artifact — the progressing continuation lives in a sibling branch — and
/// must not be reported.
pub fn is_stagnant(
    g: &ExecutionGraph,
    blocked: &[&BlockedAwait],
    model: &dyn MemoryModel,
) -> bool {
    !blocked.is_empty() && blocked.iter().all(|b| is_stuck(g, b, model))
}

/// Can no available write unblock this read with a non-wasteful,
/// model-consistent iteration?
pub fn is_stuck(g: &ExecutionGraph, b: &BlockedAwait, model: &dyn MemoryModel) -> bool {
    let mut candidates: Vec<EventId> = vec![EventId::Init(b.loc)];
    candidates.extend(g.mo(b.loc).iter().copied());
    for w in candidates {
        let v = g.write_value(w);
        if !resolution_consistent(g, b, w, model) {
            continue; // this write can never be observed here
        }
        if b.desc.exits(v) {
            return false; // the await could exit: thread can progress
        }
        if b.prev_rf != Some(RfSource::Write(w)) {
            // A fresh (non-wasteful) iteration is possible; its
            // continuation is explored in a sibling branch.
            return false;
        }
        // Reading w again would repeat the previous iteration: wasteful,
        // does not constitute progress (paper Def. 2).
    }
    true
}

/// Would `rf(b.read) = w` (plus the RMW write part, if the await would exit
/// and write) yield a model-consistent graph?
fn resolution_consistent(
    g: &ExecutionGraph,
    b: &BlockedAwait,
    w: EventId,
    model: &dyn MemoryModel,
) -> bool {
    let v = g.write_value(w);
    let mut g2 = g.clone();
    g2.set_rf(b.read, RfSource::Write(w));
    let writes = b.desc.write_on(v);
    g2.set_read_flags(b.read, writes.is_some(), true);
    if let Some(new_val) = writes {
        // Atomicity pre-check: at most one RMW may read from w.
        let rmw_reader = g2.rmw_reader_of(w);
        if rmw_reader != Some(b.read) {
            return false;
        }
        let thread = b.read.thread().expect("blocked read is a regular event");
        let wid = g2.push_event(
            thread,
            EventKind::Write { loc: b.loc, val: new_val, mode: b.mode, rmw: true },
        );
        // Place the write part immediately after w in mo (atomicity).
        let ins = match w {
            EventId::Init(_) => 0,
            _ => {
                g2.mo(b.loc).iter().position(|x| *x == w).expect("w is in mo") + 1
            }
        };
        g2.insert_mo(b.loc, wid, ins);
    }
    model.is_consistent(&g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vsync_graph::Mode;
    use vsync_lang::{Cmp, ReadDesc, ResolvedTest};
    use vsync_model::Vmm;

    const X: u64 = 0x10;

    fn await_eq(rhs: u64) -> ReadDesc {
        ReadDesc::AwaitLoad { exit: ResolvedTest { mask: u64::MAX, cmp: Cmp::Eq, rhs } }
    }

    fn pending_read(g: &mut ExecutionGraph, t: u32) -> EventId {
        g.push_event(
            t,
            EventKind::Read { loc: X, mode: Mode::Rlx, rf: RfSource::Bottom, rmw: false, awaiting: true },
        )
    }

    #[test]
    fn single_thread_awaiting_never_written_value_is_stuck() {
        // x stays 0; await x == 1. First iteration read init(0), second is ⊥.
        let mut g = ExecutionGraph::new(1, BTreeMap::new());
        g.push_event(
            0,
            EventKind::Read { loc: X, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(X)), rmw: false, awaiting: true },
        );
        let r = pending_read(&mut g, 0);
        let b = BlockedAwait {
            read: r,
            loc: X,
            mode: Mode::Rlx,
            desc: await_eq(1),
            prev_rf: Some(RfSource::Write(EventId::Init(X))),
        };
        assert!(is_stuck(&g, &b, &Vmm));
        assert!(is_stagnant(&g, &[&b], &Vmm));
    }

    #[test]
    fn resolvable_await_is_not_stuck() {
        // Another thread wrote 1: the await could exit.
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(1, EventKind::Write { loc: X, val: 1, mode: Mode::Rlx, rmw: false });
        g.insert_mo(X, w, 0);
        let r = pending_read(&mut g, 0);
        let b = BlockedAwait { read: r, loc: X, mode: Mode::Rlx, desc: await_eq(1), prev_rf: None };
        assert!(!is_stuck(&g, &b, &Vmm));
    }

    #[test]
    fn fresh_failed_iteration_counts_as_progress() {
        // Await x == 2; available: init(0) [read last time] and w(1) [fresh].
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w = g.push_event(1, EventKind::Write { loc: X, val: 1, mode: Mode::Rlx, rmw: false });
        g.insert_mo(X, w, 0);
        g.push_event(
            0,
            EventKind::Read { loc: X, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(X)), rmw: false, awaiting: true },
        );
        let r = pending_read(&mut g, 0);
        let b = BlockedAwait {
            read: r,
            loc: X,
            mode: Mode::Rlx,
            desc: await_eq(2),
            prev_rf: Some(RfSource::Write(EventId::Init(X))),
        };
        // Reading w(1) loops but is non-wasteful: not stuck.
        assert!(!is_stuck(&g, &b, &Vmm));
    }

    #[test]
    fn coherence_forbidden_sources_do_not_help() {
        // Thread read w2 (mo-later) previously; init and w1 are forbidden by
        // coherence; re-reading w2 is wasteful. Stuck.
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        let w1 = g.push_event(1, EventKind::Write { loc: X, val: 1, mode: Mode::Rlx, rmw: false });
        g.insert_mo(X, w1, 0);
        let w2 = g.push_event(1, EventKind::Write { loc: X, val: 3, mode: Mode::Rlx, rmw: false });
        g.insert_mo(X, w2, 1);
        g.push_event(
            0,
            EventKind::Read { loc: X, mode: Mode::Rlx, rf: RfSource::Write(w2), rmw: false, awaiting: true },
        );
        let r = pending_read(&mut g, 0);
        let b = BlockedAwait {
            read: r,
            loc: X,
            mode: Mode::Rlx,
            desc: await_eq(5),
            prev_rf: Some(RfSource::Write(w2)),
        };
        assert!(is_stuck(&g, &b, &Vmm));
    }

    #[test]
    fn await_rmw_blocked_on_taken_rmw_source() {
        // await_cas(x: 0 -> 1) but another RMW already consumed init(0):
        // resolving to init violates atomicity; no other write has value 0.
        let mut g = ExecutionGraph::new(2, BTreeMap::new());
        g.push_event(
            1,
            EventKind::Read { loc: X, mode: Mode::Rlx, rf: RfSource::Write(EventId::Init(X)), rmw: true, awaiting: false },
        );
        let w = g.push_event(1, EventKind::Write { loc: X, val: 7, mode: Mode::Rlx, rmw: true });
        g.insert_mo(X, w, 0);
        let r = pending_read(&mut g, 0);
        let b = BlockedAwait {
            read: r,
            loc: X,
            mode: Mode::Rlx,
            desc: ReadDesc::AwaitCas { expected: 0, new: 1 },
            prev_rf: Some(RfSource::Write(w)),
        };
        assert!(is_stuck(&g, &b, &Vmm));
    }

    #[test]
    fn stagnant_requires_all_blocked_stuck() {
        let mut g = ExecutionGraph::new(3, BTreeMap::new());
        let w = g.push_event(2, EventKind::Write { loc: X, val: 1, mode: Mode::Rlx, rmw: false });
        g.insert_mo(X, w, 0);
        // Thread 0: stuck await (waits for 9, only 0/1 available, read both).
        g.push_event(
            0,
            EventKind::Read { loc: X, mode: Mode::Rlx, rf: RfSource::Write(w), rmw: false, awaiting: true },
        );
        let r0 = pending_read(&mut g, 0);
        let b0 = BlockedAwait {
            read: r0,
            loc: X,
            mode: Mode::Rlx,
            desc: await_eq(9),
            prev_rf: Some(RfSource::Write(w)),
        };
        // Thread 1: resolvable await (waits for 1, w available).
        let r1 = pending_read(&mut g, 1);
        let b1 = BlockedAwait { read: r1, loc: X, mode: Mode::Rlx, desc: await_eq(1), prev_rf: None };
        assert!(is_stuck(&g, &b0, &Vmm));
        assert!(!is_stuck(&g, &b1, &Vmm));
        assert!(!is_stagnant(&g, &[&b0, &b1], &Vmm));
        assert!(is_stagnant(&g, &[&b0], &Vmm));
        assert!(!is_stagnant(&g, &[], &Vmm));
    }
}
