//! Push-button barrier optimization (the "VSYNC-optimized" column of the
//! paper's Table 1).
//!
//! Starting from a verified barrier assignment, the optimizer repeatedly
//! tries to *relax* each barrier site to a weaker mode (weakest first) and
//! keeps the relaxation iff the program still verifies — safety *and*
//! await termination — under the memory model. Passes repeat until a
//! fixpoint: the result is a locally maximally-relaxed assignment, the
//! notion of optimality the paper targets ("there exist multiple
//! maximally-relaxed combinations that are correct", §3.3).

use std::time::{Duration, Instant};

use vsync_graph::Mode;
use vsync_lang::{BarrierSummary, ModeRef, Program};

use crate::explorer::explore;
use crate::session::CancelToken;
use crate::verdict::{AmcConfig, Verdict};

/// Configuration of an optimization run.
#[derive(Debug, Clone, Default)]
pub struct OptimizerConfig {
    /// AMC configuration used for each verification call.
    pub amc: AmcConfig,
    /// Maximum number of full passes over the site table (0 = until
    /// fixpoint).
    pub max_passes: usize,
    /// Cooperative cancellation flag, re-checked before every oracle
    /// verification. An interrupted run keeps every relaxation accepted
    /// so far (each one was individually verified) and reports
    /// [`OptimizationReport::interrupted`].
    pub cancel: Option<CancelToken>,
}

impl OptimizerConfig {
    /// Config verifying each candidate with `amc`.
    #[must_use]
    pub fn with_amc(amc: AmcConfig) -> Self {
        OptimizerConfig { amc, ..OptimizerConfig::default() }
    }

    /// Builder-style: cap the number of full passes over the site table.
    #[must_use = "builder methods return the modified config"]
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        self.max_passes = max_passes;
        self
    }

    /// Builder-style: attach a cancellation token.
    #[must_use = "builder methods return the modified config"]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// One attempted relaxation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizationStep {
    /// Site name.
    pub site: String,
    /// Mode before.
    pub from: Mode,
    /// Mode tried.
    pub to: Mode,
    /// Whether the program still verified and the change was kept.
    pub accepted: bool,
}

/// Result of [`optimize`].
#[derive(Debug, Clone)]
#[must_use = "a dropped OptimizationReport silently discards the optimized program"]
pub struct OptimizationReport {
    /// The optimized program (unchanged if the input did not verify).
    pub program: Program,
    /// Whether the final program verifies. `false` with
    /// [`interrupted`](Self::interrupted) set means *unknown*: the run was
    /// cancelled during the initial verification.
    pub verified: bool,
    /// The run was cut short by its [`OptimizerConfig::cancel`] token;
    /// the assignment is verified but possibly not yet locally maximal.
    pub interrupted: bool,
    /// Every relaxation attempt, in order.
    pub steps: Vec<OptimizationStep>,
    /// Number of AMC verification runs performed.
    pub verifications: u64,
    /// Barrier counts before optimization.
    pub before: BarrierSummary,
    /// Barrier counts after optimization.
    pub after: BarrierSummary,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl OptimizationReport {
    /// Render a Fig. 20-style per-site report: `site: from -> to`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} -> {} ({} verifications, {:.1?})",
            self.program.name(),
            self.before,
            self.after,
            self.verifications,
            self.elapsed
        );
        let mut relaxed: Vec<&OptimizationStep> =
            self.steps.iter().filter(|s| s.accepted).collect();
        relaxed.dedup_by(|a, b| a.site == b.site);
        for s in &self.steps {
            if s.accepted {
                let _ = writeln!(out, "  {:<44} {} -> {}", s.site, s.from, s.to);
            }
        }
        out
    }
}

/// Verify, then relax barrier sites to a locally maximal relaxation.
///
/// If the input program does not verify, the report carries
/// `verified = false` and the unchanged program — optimization only ever
/// starts from a correct baseline, exactly like VSync.
pub fn optimize(prog: &Program, config: &OptimizerConfig) -> OptimizationReport {
    let amc = config.amc.clone();
    optimize_with(prog, config, move |p| {
        matches!(explore(p, &amc).verdict, Verdict::Verified)
    })
}

/// [`optimize`] with additional verification scenarios: a candidate
/// assignment is accepted only if the primary program *and* every extra
/// scenario (with the assignment transferred by site name) verify.
///
/// This is how the qspinlock experiment (Table 1) verifies both the
/// 2-thread client and the 3-thread queue-path scenario for every step.
pub fn optimize_multi(
    prog: &Program,
    extra_scenarios: &[Program],
    config: &OptimizerConfig,
) -> OptimizationReport {
    let amc = config.amc.clone();
    let scenarios = extra_scenarios.to_vec();
    optimize_with(prog, config, move |p| {
        if !matches!(explore(p, &amc).verdict, Verdict::Verified) {
            return false;
        }
        scenarios.iter().all(|s| {
            let mut s = s.clone();
            s.copy_modes_by_name(p);
            matches!(explore(&s, &amc).verdict, Verdict::Verified)
        })
    })
}

/// Core optimization loop with a caller-provided verification oracle.
pub fn optimize_with(
    prog: &Program,
    config: &OptimizerConfig,
    mut oracle: impl FnMut(&Program) -> bool,
) -> OptimizationReport {
    let start = Instant::now();
    let mut program = prog.clone();
    let before = program.barrier_summary();
    let mut verifications = 0u64;
    let mut steps = Vec::new();

    let mut check = |p: &Program, n: &mut u64| -> bool {
        *n += 1;
        oracle(p)
    };

    if !check(&program, &mut verifications) {
        return OptimizationReport {
            after: before,
            program,
            verified: false,
            interrupted: config.is_cancelled(),
            steps,
            verifications,
            before,
            elapsed: start.elapsed(),
        };
    }

    let mut pass = 0;
    let mut interrupted = false;
    'passes: loop {
        pass += 1;
        let mut changed = false;
        for i in 0..program.sites().len() {
            let site = &program.sites()[i];
            if !site.relaxable {
                continue;
            }
            let (name, kind, current) = (site.name.clone(), site.kind, site.mode);
            for cand in kind.weaker_modes(current) {
                if config.is_cancelled() {
                    interrupted = true;
                    break 'passes;
                }
                program.set_mode(ModeRef(i as u32), cand);
                let ok = check(&program, &mut verifications);
                if !ok && config.is_cancelled() {
                    // The rejection came from an interrupted verification,
                    // not from the memory model: drop the step unrecorded.
                    program.set_mode(ModeRef(i as u32), current);
                    interrupted = true;
                    break 'passes;
                }
                steps.push(OptimizationStep {
                    site: name.clone(),
                    from: current,
                    to: cand,
                    accepted: ok,
                });
                if ok {
                    changed = true;
                    break;
                }
                program.set_mode(ModeRef(i as u32), current);
            }
        }
        if !changed || (config.max_passes != 0 && pass >= config.max_passes) {
            break;
        }
    }

    let after = program.barrier_summary();
    OptimizationReport {
        program,
        verified: true,
        interrupted,
        steps,
        verifications,
        before,
        after,
        elapsed: start.elapsed(),
    }
}

/// Enumerate *all* maximally-relaxed barrier assignments of a program
/// (paper §3.3: "there exists multiple maximally-relaxed combinations
/// that are correct" — e.g. ours vs. the Linux 5.6 experts' qspinlock).
///
/// Exhaustively searches the product of per-site mode lattices, pruned by
/// monotonicity (any strengthening of a verified assignment verifies, so
/// only lattice-minimal verified points are reported). Exponential in the
/// number of relaxable sites — intended for small primitives (≤ ~8 sites).
///
/// Returns the distinct maximal assignments as mode vectors over the
/// relaxable sites (in site-table order), together with the site names.
pub fn enumerate_maximal(
    prog: &Program,
    config: &OptimizerConfig,
) -> (Vec<String>, Vec<Vec<Mode>>) {
    let relaxable: Vec<usize> = (0..prog.sites().len())
        .filter(|&i| prog.sites()[i].relaxable)
        .collect();
    let names: Vec<String> =
        relaxable.iter().map(|&i| prog.sites()[i].name.clone()).collect();
    // Candidate modes per site, weakest first.
    let candidates: Vec<Vec<Mode>> = relaxable
        .iter()
        .map(|&i| {
            let site = &prog.sites()[i];
            let mut mods = site.kind.weaker_modes(site.mode);
            mods.push(site.mode);
            mods
        })
        .collect();
    let mut verified: Vec<Vec<Mode>> = Vec::new();
    let mut assignment = vec![0usize; relaxable.len()];
    let mut program = prog.clone();
    loop {
        let modes: Vec<Mode> =
            assignment.iter().zip(&candidates).map(|(&c, cs)| cs[c]).collect();
        for ((&site, &mode), _) in relaxable.iter().zip(&modes).zip(prog.sites()) {
            program.set_mode(ModeRef(site as u32), mode);
        }
        if matches!(explore(&program, &config.amc).verdict, Verdict::Verified) {
            verified.push(modes);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                // Filter to lattice-minimal verified assignments.
                let minimal: Vec<Vec<Mode>> = verified
                    .iter()
                    .filter(|a| {
                        !verified.iter().any(|b| *b != **a && pointwise_leq(b, a))
                    })
                    .cloned()
                    .collect();
                return (names, minimal);
            }
            assignment[i] += 1;
            if assignment[i] < candidates[i].len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Is assignment `a` pointwise weaker-or-equal than `b` on the mode
/// lattice (`rlx < acq, rel < acq_rel < sc`)?
fn pointwise_leq(a: &[Mode], b: &[Mode]) -> bool {
    fn leq(x: Mode, y: Mode) -> bool {
        x == y
            || matches!(
                (x, y),
                (Mode::Rlx, _)
                    | (_, Mode::Sc)
                    | (Mode::Acq, Mode::AcqRel)
                    | (Mode::Rel, Mode::AcqRel)
            )
    }
    a.iter().zip(b).all(|(&x, &y)| leq(x, y))
}

/// Check that an assignment is locally maximal: relaxing any single
/// relaxable site to any weaker mode breaks verification. Used by tests.
pub fn is_locally_maximal(prog: &Program, config: &OptimizerConfig) -> bool {
    let mut program = prog.clone();
    for i in 0..program.sites().len() {
        let site = &program.sites()[i];
        if !site.relaxable {
            continue;
        }
        let (kind, current) = (site.kind, site.mode);
        for cand in kind.weaker_modes(current) {
            program.set_mode(ModeRef(i as u32), cand);
            let ok = matches!(explore(&program, &config.amc).verdict, Verdict::Verified);
            program.set_mode(ModeRef(i as u32), current);
            if ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_graph::Mode;
    use vsync_lang::{ProgramBuilder, Reg};
    use vsync_model::ModelKind;

    const X: u64 = 0x10;
    const Y: u64 = 0x20;

    fn cfg() -> OptimizerConfig {
        OptimizerConfig::with_amc(AmcConfig::with_model(ModelKind::Vmm))
    }

    /// Message passing, all-SC: the optimizer must keep exactly a
    /// release write and an acquire poll.
    fn mp_all_sc() -> Program {
        let mut pb = ProgramBuilder::new("mp");
        pb.thread(|t| {
            t.store(X, 1u64, ("data.store", Mode::Sc));
            t.store(Y, 1u64, ("flag.store", Mode::Sc));
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), Y, 1u64, ("flag.poll", Mode::Sc));
            t.load(Reg(1), X, ("data.load", Mode::Sc));
            t.assert_eq(Reg(1), 1u64, "data visible");
        });
        pb.build().unwrap()
    }

    #[test]
    fn optimizes_mp_to_release_acquire() {
        let report = optimize(&mp_all_sc(), &cfg());
        assert!(report.verified);
        let p = &report.program;
        let mode_of = |n: &str| p.sites().iter().find(|s| s.name == n).unwrap().mode;
        assert_eq!(mode_of("data.store"), Mode::Rlx);
        assert_eq!(mode_of("data.load"), Mode::Rlx);
        assert_eq!(mode_of("flag.store"), Mode::Rel);
        assert_eq!(mode_of("flag.poll"), Mode::Acq);
        assert!(is_locally_maximal(p, &cfg()));
        // Summary shape: 1 acq, 1 rel, 0 sc.
        let s = report.after;
        assert_eq!((s.acq, s.rel, s.sc, s.rlx), (1, 1, 0, 2));
        // Still verifies, and the report says so.
        assert!(report.render().contains("flag.store"));
    }

    #[test]
    fn unverified_input_is_returned_untouched() {
        // MP with an assert that is simply wrong.
        let mut pb = ProgramBuilder::new("broken");
        pb.thread(|t| {
            t.store(X, 1u64, ("s", Mode::Sc));
        });
        pb.final_check(X, vsync_lang::Test::eq(2u64), "impossible");
        let p = pb.build().unwrap();
        let report = optimize(&p, &cfg());
        assert!(!report.verified);
        assert_eq!(report.program.sites()[0].mode, Mode::Sc);
        assert!(report.steps.is_empty());
    }

    #[test]
    fn fence_gets_removed_when_useless() {
        // A fence between two writes to the same location is useless.
        let mut pb = ProgramBuilder::new("useless-fence");
        pb.thread(|t| {
            t.store(X, 1u64, ("w1", Mode::Rlx));
            t.fence(("f", Mode::Sc));
            t.store(X, 2u64, ("w2", Mode::Rlx));
        });
        pb.final_check(X, vsync_lang::Test::eq(2u64), "last write wins");
        let p = pb.build().unwrap();
        let report = optimize(&p, &cfg());
        assert!(report.verified);
        let f = report.program.sites().iter().find(|s| s.name == "f").unwrap();
        assert_eq!(f.mode, Mode::Rlx, "sc fence relaxed away");
    }

    #[test]
    fn enumerate_maximal_finds_the_ra_point() {
        let (names, maximal) = enumerate_maximal(&mp_all_sc(), &cfg());
        assert_eq!(names.len(), 4);
        // The unique maximal relaxation of message passing is
        // rel-store/acq-poll with relaxed data accesses.
        assert_eq!(maximal.len(), 1, "{maximal:?}");
        let expected: Vec<Mode> = names
            .iter()
            .map(|n| match n.as_str() {
                "flag.store" => Mode::Rel,
                "flag.poll" => Mode::Acq,
                _ => Mode::Rlx,
            })
            .collect();
        assert_eq!(maximal[0], expected);
    }

    #[test]
    fn enumerate_maximal_reports_multiple_optima_when_they_exist() {
        // x is published by BOTH an sc-fence pair and the flag; either the
        // fences or the rel/acq pair suffices: two incomparable optima.
        let mut pb = ProgramBuilder::new("two-optima");
        pb.thread(|t| {
            t.store(X, 1u64, ("data", Mode::Rlx));
            t.fence(("fence.w", Mode::Sc));
            t.store(Y, 1u64, ("flag.store", Mode::Rel));
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), Y, 1u64, ("flag.poll", Mode::Acq));
            t.fence(("fence.r", Mode::Sc));
            t.load(Reg(1), X, ("data.load", Mode::Rlx));
            t.assert_eq(Reg(1), 1u64, "data visible");
        });
        let p = pb.build().unwrap();
        let (_, maximal) = enumerate_maximal(&p, &cfg());
        assert!(
            maximal.len() >= 2,
            "fence-based and mode-based synchronization are incomparable optima: {maximal:?}"
        );
    }

    #[test]
    fn greedy_result_is_among_the_maximal_points() {
        let p = mp_all_sc();
        let report = optimize(&p, &cfg());
        let (names, maximal) = enumerate_maximal(&p, &cfg());
        let greedy: Vec<Mode> = names
            .iter()
            .map(|n| report.program.sites().iter().find(|s| &s.name == n).unwrap().mode)
            .collect();
        assert!(maximal.contains(&greedy), "greedy {greedy:?} not in {maximal:?}");
    }

    #[test]
    fn verification_count_is_reported() {
        let report = optimize(&mp_all_sc(), &cfg());
        // At least one verification per accepted/rejected step + initial.
        assert!(report.verifications as usize > report.steps.len() / 2);
        assert!(report.steps.iter().any(|s| s.accepted));
        assert!(report.elapsed > Duration::ZERO);
    }
}
