//! Litmus-file checking and the batch corpus runner.
//!
//! One `.litmus` file becomes one [`FileReport`]: the file is compiled
//! (parse errors become the report), then explored once per model in its
//! matrix — the `--models` override, else the models its `expect`
//! annotations mention, else all of [`ModelKind::all`] — and each
//! outcome is judged against the annotation ([`ModelOutcome::ok`]):
//! the verdict kind must match, and an `= N` execution count must match
//! exactly whenever symmetry reduction is on (counts are canonical-orbit
//! counts; with `--no-symmetry` they deliberately aren't checked).
//! Unannotated models must verify.
//!
//! [`run_corpus`] batches a directory of files over a worker pool,
//! sharing one [`CancelToken`] and one wall-clock budget: every
//! per-file session gets the *remaining* budget as its deadline, so a
//! stuck file cannot starve the rest of the corpus beyond the global
//! deadline. The runner is fault-isolated: a panic while checking one
//! file is caught and turns into [`FileOutcome::Quarantined`] without
//! touching any other file's verdict, and a file whose run came back
//! [`Verdict::Inconclusive`] is retried once (with a small
//! deterministic backoff) before its partial result is accepted.
//! Reports render as a per-file verdict table
//! ([`CorpusReport::render_table`]) or dependency-free JSON with stable
//! key order ([`CorpusReport::to_json`]).

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vsync_dsl::{Diagnostic, Expectation, ExpectedVerdict, LitmusTest, Span};
use vsync_model::ModelKind;

use crate::session::{json_str, phases_json, verdict_kind, ProgressFn, Session};
use crate::telemetry::{EventBus, EventFn, EventKind, PhaseProfile};
use crate::verdict::{EngineError, EnginePhase, SearchMode, Verdict};
use crate::{failpoint, CancelToken};

/// Failure to load a litmus file: I/O or parse.
#[derive(Debug)]
pub enum SourceError {
    /// The file could not be read.
    Io(String, io::Error),
    /// The file could not be parsed or lowered.
    Parse(Diagnostic),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Io(path, e) => write!(f, "cannot read {path}: {e}"),
            SourceError::Parse(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for SourceError {}

/// Options shared by [`check_source`] and [`run_corpus`].
#[derive(Clone, Default)]
pub struct CorpusOptions {
    /// Model matrix override. `None` = each file's annotated models
    /// (falling back to [`ModelKind::all`] for unannotated files).
    pub models: Option<Vec<ModelKind>>,
    /// Exploration workers per session (0 and 1 both mean sequential).
    pub workers: usize,
    /// Concurrently-checked files in [`run_corpus`] (0 and 1 both mean
    /// one at a time).
    pub jobs: usize,
    /// Disable thread-symmetry reduction (also disables `= N` execution
    /// count checks — annotated counts are canonical-orbit counts).
    pub no_symmetry: bool,
    /// Wall-clock budget for the whole run (all files together).
    pub deadline: Option<Duration>,
    /// Cooperative cancellation, shared by every per-file session.
    pub cancel: CancelToken,
    /// Progress sink forwarded to every session (CLI `--progress`).
    pub progress: Option<ProgressFn>,
    /// Approximate per-exploration heap budget in bytes (0 = unlimited).
    pub max_memory_bytes: u64,
    /// Per-exploration dedup-table entry cap (0 = unlimited).
    pub max_dedup_entries: u64,
    /// Exploration search strategy (CLI `--search`; verdicts and counts
    /// are strategy-independent).
    pub search: SearchMode,
    /// Telemetry sink forwarded to every session (CLI `--trace`). One
    /// [`run_corpus`] run shares a single event bus — one sequence
    /// counter and clock — across all files; corpus-level
    /// [`EventKind::CorpusFile`] / [`EventKind::Quarantine`] events flow
    /// through the same stream.
    pub on_event: Option<EventFn>,
    /// Per-phase wall-clock profiling for every session (forced on when
    /// `on_event` is set).
    pub profile: bool,
}

impl fmt::Debug for CorpusOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CorpusOptions")
            .field("models", &self.models)
            .field("workers", &self.workers)
            .field("jobs", &self.jobs)
            .field("no_symmetry", &self.no_symmetry)
            .field("search", &self.search)
            .field("deadline", &self.deadline)
            .field("on_event", &self.on_event.is_some())
            .field("profile", &self.profile)
            .finish()
    }
}

/// The checked outcome of one (file, model) pair.
#[derive(Debug, Clone)]
pub struct ModelOutcome {
    /// The memory model explored.
    pub model: ModelKind,
    /// The file's annotation for this model, if any.
    pub expected: Option<Expectation>,
    /// The verdict the explorer produced.
    pub verdict: Verdict,
    /// Complete executions (canonical-orbit counts under symmetry).
    pub executions: u64,
    /// Work items pruned by thread-symmetry reduction.
    pub symmetry_pruned: u64,
    /// Exploration wall-clock time.
    pub elapsed: Duration,
    /// Per-phase wall-clock attribution (all-zero unless
    /// [`CorpusOptions::profile`] or [`CorpusOptions::on_event`] was set).
    pub phases: PhaseProfile,
    /// Did the outcome meet the expectation (see the module docs)?
    pub ok: bool,
}

/// Per-file result: a parse/load error, a quarantined engine panic, or
/// one outcome per model.
#[derive(Debug, Clone)]
pub enum FileOutcome {
    /// The file failed to load or compile.
    Error(Diagnostic),
    /// Checking this file panicked inside the engine; the panic was
    /// caught and the file quarantined so the rest of the corpus could
    /// finish normally.
    Quarantined(EngineError),
    /// The file was checked against its model matrix.
    Checked(Vec<ModelOutcome>),
}

/// The report for one litmus file.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// Path (or label) the file was loaded from.
    pub path: String,
    /// Program name from the file header (empty on parse errors).
    pub program: String,
    /// What happened.
    pub outcome: FileOutcome,
}

impl FileReport {
    /// Did every model outcome meet its expectation?
    #[must_use]
    pub fn passed(&self) -> bool {
        match &self.outcome {
            FileOutcome::Error(_) | FileOutcome::Quarantined(_) => false,
            FileOutcome::Checked(models) => models.iter().all(|m| m.ok),
        }
    }

    /// Was any run in this file cut short by cancellation, a deadline or
    /// a resource budget?
    #[must_use]
    pub fn interrupted(&self) -> bool {
        match &self.outcome {
            FileOutcome::Error(_) | FileOutcome::Quarantined(_) => false,
            FileOutcome::Checked(models) => {
                models.iter().any(|m| matches!(m.verdict, Verdict::Inconclusive(_)))
            }
        }
    }

    /// Did checking this file die to a caught engine panic — either the
    /// whole file ([`FileOutcome::Quarantined`]) or a single model run
    /// ([`Verdict::Error`])?
    #[must_use]
    pub fn errored(&self) -> bool {
        match &self.outcome {
            FileOutcome::Error(_) => false,
            FileOutcome::Quarantined(_) => true,
            FileOutcome::Checked(models) => {
                models.iter().any(|m| matches!(m.verdict, Verdict::Error(_)))
            }
        }
    }
}

/// The batch report of a corpus run.
#[derive(Debug, Clone)]
#[must_use = "a CorpusReport carries the per-file verdicts — inspect or serialize it"]
pub struct CorpusReport {
    /// The directory (or file) that was run.
    pub root: String,
    /// One report per file, in path order.
    pub files: Vec<FileReport>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl CorpusReport {
    /// Did every file pass?
    #[must_use]
    pub fn passed(&self) -> bool {
        self.files.iter().all(FileReport::passed)
    }

    /// Paths of files whose check panicked and was quarantined.
    #[must_use]
    pub fn quarantined(&self) -> Vec<&str> {
        self.files
            .iter()
            .filter(|f| matches!(f.outcome, FileOutcome::Quarantined(_)))
            .map(|f| f.path.as_str())
            .collect()
    }

    /// Did any file quarantine or report an engine error?
    #[must_use]
    pub fn errored(&self) -> bool {
        self.files.iter().any(FileReport::errored)
    }

    /// Render the per-file verdict table (one line per model outcome).
    #[must_use]
    pub fn render_table(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let path_w = self.files.iter().map(|f| f.path.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            out,
            "{:<path_w$}  {:<5} {:<24} {:<24} status",
            "file", "model", "expected", "verdict"
        );
        for f in &self.files {
            match &f.outcome {
                FileOutcome::Error(d) => {
                    let _ = writeln!(
                        out,
                        "{:<path_w$}  {:<5} {:<24} {:<24} PARSE ERROR ({}:{}: {})",
                        f.path, "-", "-", "-", d.span.line, d.span.col, d.message
                    );
                }
                FileOutcome::Quarantined(e) => {
                    let _ = writeln!(
                        out,
                        "{:<path_w$}  {:<5} {:<24} {:<24} QUARANTINED ({e})",
                        f.path, "-", "-", "-"
                    );
                }
                FileOutcome::Checked(models) => {
                    for (i, m) in models.iter().enumerate() {
                        let path = if i == 0 { f.path.as_str() } else { "" };
                        let expected = match &m.expected {
                            None => "(verified)".to_owned(),
                            Some(e) => expectation_word(e),
                        };
                        let got = match (&m.verdict, m.expected.as_ref().and_then(|e| e.executions))
                        {
                            (Verdict::Verified, Some(_)) => {
                                format!("verified = {}", m.executions)
                            }
                            (v, _) => verdict_kind(v).replace('_', "-"),
                        };
                        let status = if m.ok { "ok" } else { "MISMATCH" };
                        let _ = writeln!(
                            out,
                            "{path:<path_w$}  {:<5} {expected:<24} {got:<24} {status}",
                            m.model.to_string()
                        );
                    }
                }
            }
        }
        let passed = self.files.iter().filter(|f| f.passed()).count();
        let _ =
            writeln!(out, "{passed}/{} file(s) passed ({:.1?})", self.files.len(), self.elapsed);
        out
    }

    /// Serialize as JSON (dependency-free, stable key order):
    ///
    /// ```text
    /// {"corpus", "passed", "quarantined": [paths], "elapsed_ms", "files": [
    ///    {"path", "program", "passed", "quarantined", "error",
    ///     "models": [{"model", "expected", "expected_executions",
    ///                 "verdict", "message", "executions",
    ///                 "symmetry_pruned", "ok", "elapsed_ms",
    ///                 "phases": {"<phase>": {count, total_ms, max_ms}}}]}]}
    /// ```
    ///
    /// The top-level `quarantined` array lists the paths whose check
    /// panicked and was isolated (per-file `quarantined` is the matching
    /// boolean). `error` is the rendered diagnostic for unparsable files
    /// or the caught panic description for quarantined ones (`null`
    /// otherwise, with `models` empty in both cases); `expected` /
    /// `expected_executions` are `null` for unannotated models. Both
    /// `expected` and `verdict` use the annotation spelling
    /// (`await-termination`, dashes), so the two fields compare
    /// directly.
    #[must_use]
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let quarantined: Vec<String> = self.quarantined().iter().map(|p| json_str(p)).collect();
        let _ = write!(
            out,
            "{{\"corpus\": {}, \"passed\": {}, \"quarantined\": [{}], \"elapsed_ms\": {:.3}, \"files\": [",
            json_str(&self.root),
            self.passed(),
            quarantined.join(", "),
            self.elapsed.as_secs_f64() * 1e3
        );
        for (i, f) in self.files.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"path\": {}, \"program\": {}, \"passed\": {}, \"quarantined\": {}, \"error\": {}, \"models\": [",
                json_str(&f.path),
                json_str(&f.program),
                f.passed(),
                matches!(f.outcome, FileOutcome::Quarantined(_)),
                match &f.outcome {
                    FileOutcome::Error(d) => json_str(&d.render()),
                    FileOutcome::Quarantined(e) => json_str(&e.to_string()),
                    FileOutcome::Checked(_) => "null".to_owned(),
                }
            );
            if let FileOutcome::Checked(models) = &f.outcome {
                for (j, m) in models.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"model\": {}, \"expected\": {}, \"expected_executions\": {}, \
                         \"verdict\": {}, \"message\": {}, \"executions\": {}, \
                         \"symmetry_pruned\": {}, \"ok\": {}, \"elapsed_ms\": {:.3}, \
                         \"phases\": {}}}",
                        json_str(&m.model.to_string()),
                        m.expected.map_or("null".to_owned(), |e| json_str(e.verdict.name())),
                        m.expected
                            .and_then(|e| e.executions)
                            .map_or("null".to_owned(), |n| n.to_string()),
                        json_str(&verdict_kind(&m.verdict).replace('_', "-")),
                        match &m.verdict {
                            Verdict::Verified => "null".to_owned(),
                            v => json_str(&v.to_string()),
                        },
                        m.executions,
                        m.symmetry_pruned,
                        m.ok,
                        m.elapsed.as_secs_f64() * 1e3,
                        phases_json(&m.phases)
                    );
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn expectation_word(e: &Expectation) -> String {
    match e.executions {
        Some(n) => format!("{} = {n}", e.verdict),
        None => e.verdict.to_string(),
    }
}

/// Judge one model outcome against its (optional) annotation.
fn outcome_ok(
    expected: Option<&Expectation>,
    verdict: &Verdict,
    executions: u64,
    symmetry: bool,
) -> bool {
    match expected {
        None => verdict.is_verified(),
        Some(e) => {
            let kind_ok = matches!(
                (e.verdict, verdict),
                (ExpectedVerdict::Verified, Verdict::Verified)
                    | (ExpectedVerdict::Safety, Verdict::Safety(_))
                    | (ExpectedVerdict::AwaitTermination, Verdict::AwaitTermination(_))
                    | (ExpectedVerdict::Fault, Verdict::Fault(_))
            );
            kind_ok
                && match e.executions {
                    Some(n) if symmetry => executions == n,
                    _ => true,
                }
        }
    }
}

/// The model matrix a file should be checked against.
fn matrix(test: &LitmusTest, opts: &CorpusOptions) -> Vec<ModelKind> {
    if let Some(models) = &opts.models {
        return models.clone();
    }
    if test.expectations.is_empty() {
        return ModelKind::all().to_vec();
    }
    test.expectations.iter().map(|e| e.model).collect()
}

/// Check one compiled test: one exploration per matrix model, judged
/// against the file's annotations. `deadline_at` is the *absolute*
/// cutoff shared by the whole corpus run.
#[must_use]
pub fn check_test(
    test: &LitmusTest,
    opts: &CorpusOptions,
    deadline_at: Option<Instant>,
) -> Vec<ModelOutcome> {
    let bus = opts.on_event.clone().map(|sink| Arc::new(EventBus::new(sink)));
    check_test_with_bus(test, opts, deadline_at, bus.as_ref())
}

/// [`check_test`] with a caller-owned event bus, so [`run_corpus`] can
/// share one sequence counter and clock across every file's session.
fn check_test_with_bus(
    test: &LitmusTest,
    opts: &CorpusOptions,
    deadline_at: Option<Instant>,
    bus: Option<&Arc<EventBus>>,
) -> Vec<ModelOutcome> {
    let models = matrix(test, opts);
    let mut session = Session::new(test.program.clone())
        .models(models.iter().copied())
        .workers(opts.workers.max(1))
        .symmetry(!opts.no_symmetry)
        .search(opts.search)
        .max_memory_bytes(opts.max_memory_bytes)
        .max_dedup_entries(opts.max_dedup_entries)
        .profile(opts.profile)
        .with_cancel(opts.cancel.clone());
    if let Some(bus) = bus {
        session = session.with_event_bus(Arc::clone(bus));
    }
    if let Some(at) = deadline_at {
        session = session.deadline(at.saturating_duration_since(Instant::now()));
    }
    if let Some(p) = &opts.progress {
        let p = Arc::clone(p);
        session = session.on_progress(move |snap| p(snap));
    }
    let report = session.run();
    report
        .models
        .into_iter()
        .map(|run| {
            let expected = test.expectations.iter().find(|e| e.model == run.model).copied();
            let ok = outcome_ok(
                expected.as_ref(),
                &run.verdict,
                run.stats.complete_executions,
                !opts.no_symmetry,
            );
            ModelOutcome {
                model: run.model,
                expected,
                verdict: run.verdict,
                executions: run.stats.complete_executions,
                symmetry_pruned: run.stats.symmetry_pruned,
                elapsed: run.elapsed,
                phases: run.stats.phases,
                ok,
            }
        })
        .collect()
}

/// Compile and check one litmus source, labeled `path` in diagnostics
/// and the report.
#[must_use]
pub fn check_source(
    path: &str,
    source: &str,
    opts: &CorpusOptions,
    deadline_at: Option<Instant>,
) -> FileReport {
    let bus = opts.on_event.clone().map(|sink| Arc::new(EventBus::new(sink)));
    check_source_with_bus(path, source, opts, deadline_at, bus.as_ref())
}

fn check_source_with_bus(
    path: &str,
    source: &str,
    opts: &CorpusOptions,
    deadline_at: Option<Instant>,
    bus: Option<&Arc<EventBus>>,
) -> FileReport {
    match vsync_dsl::compile(source) {
        Err(d) => FileReport {
            path: path.to_owned(),
            program: String::new(),
            outcome: FileOutcome::Error(d.with_file(path)),
        },
        Ok(test) => FileReport {
            path: path.to_owned(),
            program: test.name.clone(),
            outcome: FileOutcome::Checked(check_test_with_bus(&test, opts, deadline_at, bus)),
        },
    }
}

/// Collect the `.litmus` files under `root` (a directory, recursively,
/// in sorted path order — or a single file).
///
/// # Errors
///
/// Propagates directory-listing errors.
pub fn collect_litmus_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    if root.is_file() {
        return Ok(vec![root.to_path_buf()]);
    }
    let mut files = Vec::new();
    let mut dirs = vec![root.to_path_buf()];
    while let Some(dir) = dirs.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                dirs.push(path);
            } else if path.extension().is_some_and(|e| e == "litmus") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// One guarded attempt at checking a file: the `corpus.check` failpoint
/// plus the whole compile-and-check runs under `catch_unwind`, so an
/// engine panic quarantines this file instead of tearing down the pool.
fn check_source_guarded(
    label: &str,
    source: &str,
    opts: &CorpusOptions,
    deadline_at: Option<Instant>,
    bus: Option<&Arc<EventBus>>,
) -> FileReport {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = failpoint::hit("corpus.check");
        check_source_with_bus(label, source, opts, deadline_at, bus)
    }));
    attempt.unwrap_or_else(|payload| {
        let payload = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        FileReport {
            path: label.to_owned(),
            program: String::new(),
            outcome: FileOutcome::Quarantined(EngineError {
                phase: EnginePhase::Corpus,
                thread: None,
                payload,
            }),
        }
    })
}

/// Check one file with fault isolation and a bounded retry: a panic is
/// quarantined immediately; an inconclusive (budget-degraded) result is
/// retried once after a small deterministic, file-indexed backoff —
/// unless the run was cancelled or the corpus deadline is the thing
/// that expired, where a retry could only waste the remaining budget.
fn check_file(
    index: usize,
    label: &str,
    source: &str,
    opts: &CorpusOptions,
    deadline_at: Option<Instant>,
    bus: Option<&Arc<EventBus>>,
) -> FileReport {
    let first = check_source_guarded(label, source, opts, deadline_at, bus);
    let deadline_left = match deadline_at {
        Some(at) => Instant::now() < at,
        None => true,
    };
    if !first.interrupted() || opts.cancel.is_cancelled() || !deadline_left {
        return first;
    }
    // Deterministic per-file jitter: spreads retries of neighbouring
    // files without consulting a clock or an RNG.
    let backoff = Duration::from_millis(25 + (index as u64 % 8) * 5);
    std::thread::sleep(backoff);
    check_source_guarded(label, source, opts, deadline_at, bus)
}

/// Run every `.litmus` file under `root`: `opts.jobs` files checked
/// concurrently, all sharing `opts.cancel` and the `opts.deadline`
/// budget. File order in the report is path order regardless of the
/// completion order.
///
/// # Errors
///
/// A missing or unlistable `root` is a [`SourceError::Io`] carrying the
/// path — the caller gets a structured diagnostic, not a bare
/// [`io::Error`]. Unreadable or unparsable *individual* files become
/// failing [`FileReport`]s instead, and a file whose check panics is
/// quarantined ([`FileOutcome::Quarantined`]) without affecting any
/// other file.
pub fn run_corpus(root: &Path, opts: &CorpusOptions) -> Result<CorpusReport, SourceError> {
    let started = Instant::now();
    let deadline_at = opts.deadline.map(|d| started + d);
    let files = collect_litmus_files(root)
        .map_err(|e| SourceError::Io(root.display().to_string(), e))?;
    let jobs = opts.jobs.max(1).min(files.len().max(1));
    let reports: Vec<Mutex<Option<FileReport>>> = files.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // One bus for the whole corpus: every per-file session shares its
    // sequence counter and clock, so the stream is a single timeline.
    let bus = opts.on_event.clone().map(|sink| Arc::new(EventBus::new(sink)));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(path) = files.get(i) else { break };
                let label = path.display().to_string();
                let report = match std::fs::read_to_string(path) {
                    Ok(src) => check_file(i, &label, &src, opts, deadline_at, bus.as_ref()),
                    Err(e) => FileReport {
                        path: label.clone(),
                        program: String::new(),
                        outcome: FileOutcome::Error(
                            Diagnostic::new(
                                format!("cannot read file: {e}"),
                                Span::new(1, 1, 1),
                                "",
                            )
                            .with_file(label.clone()),
                        ),
                    },
                };
                if let Some(bus) = &bus {
                    if matches!(report.outcome, FileOutcome::Quarantined(_)) {
                        bus.emit(EventKind::Quarantine { path: label.clone() });
                    }
                    bus.emit(EventKind::CorpusFile { path: label.clone(), passed: report.passed() });
                }
                *reports[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(report);
            });
        }
    });
    let files = reports
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()).expect("every file checked"))
        .collect();
    Ok(CorpusReport { root: root.display().to_string(), files, elapsed: started.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = r#"
        litmus "mp"
        thread { store.rlx x, 1  store.rel y, 1 }
        thread { r0 = await_eq.acq y, 1  r1 = load.rlx x  assert r1 == 1, "data visible" }
        expect sc: verified
        expect tso: verified
        expect vmm: verified = 2
    "#;

    #[test]
    fn check_source_judges_expectations() {
        let r = check_source("mp.litmus", MP, &CorpusOptions::default(), None);
        assert!(r.passed(), "{:?}", r);
        let FileOutcome::Checked(models) = &r.outcome else { panic!() };
        assert_eq!(models.len(), 3);
        assert!(models.iter().all(|m| m.ok));
    }

    #[test]
    fn mismatched_expectation_fails() {
        let src = MP.replace("expect vmm: verified = 2", "expect vmm: safety");
        let r = check_source("mp.litmus", &src, &CorpusOptions::default(), None);
        assert!(!r.passed());
        let FileOutcome::Checked(models) = &r.outcome else { panic!() };
        let vmm = models.iter().find(|m| m.model == ModelKind::Vmm).unwrap();
        assert!(!vmm.ok);
        assert!(vmm.verdict.is_verified(), "program itself still verifies");
    }

    #[test]
    fn wrong_count_fails_only_with_symmetry() {
        let src = MP.replace("verified = 2", "verified = 99");
        let r = check_source("mp.litmus", &src, &CorpusOptions::default(), None);
        assert!(!r.passed(), "wrong count must fail");
        let opts = CorpusOptions { no_symmetry: true, ..Default::default() };
        let r = check_source("mp.litmus", &src, &opts, None);
        assert!(r.passed(), "counts are not judged without symmetry reduction");
    }

    #[test]
    fn missing_root_is_a_structured_io_error() {
        let err = run_corpus(
            std::path::Path::new("/nonexistent/dir/mp.litmus"),
            &CorpusOptions::default(),
        )
        .expect_err("a missing root must not produce a report");
        let crate::SourceError::Io(path, _) = &err else {
            panic!("expected SourceError::Io, got {err}");
        };
        assert_eq!(path, "/nonexistent/dir/mp.litmus");
        assert!(err.to_string().contains("cannot read /nonexistent/dir/mp.litmus"), "{err}");
    }

    #[test]
    fn json_verdict_spelling_matches_expected_field() {
        let src = r#"
            litmus "hang"
            thread { r0 = await_eq.acq flag, 1 }
            expect vmm: await-termination
        "#;
        let files = vec![check_source("hang.litmus", src, &CorpusOptions::default(), None)];
        let report = CorpusReport { root: "x".into(), files, elapsed: Duration::ZERO };
        assert!(report.passed());
        let json = report.to_json();
        assert!(
            json.contains("\"expected\": \"await-termination\"")
                && json.contains("\"verdict\": \"await-termination\""),
            "expected/verdict spellings must agree: {json}"
        );
    }

    #[test]
    fn parse_errors_become_failing_reports() {
        let r = check_source(
            "bad.litmus",
            "litmus x thread { jmp out }",
            &CorpusOptions::default(),
            None,
        );
        assert!(!r.passed());
        let FileOutcome::Error(d) = &r.outcome else { panic!() };
        assert!(d.render().contains("unbound label"));
        assert_eq!(d.file.as_deref(), Some("bad.litmus"));
    }

    #[test]
    fn corpus_report_json_and_table_render() {
        let files = vec![check_source("mp.litmus", MP, &CorpusOptions::default(), None)];
        let report =
            CorpusReport { root: "corpus".into(), files, elapsed: Duration::from_millis(5) };
        assert!(report.passed());
        let json = report.to_json();
        assert!(json.starts_with("{\"corpus\": \"corpus\", \"passed\": true"));
        assert!(json.contains("\"expected_executions\": 2"));
        let table = report.render_table();
        assert!(table.contains("mp.litmus"), "{table}");
        assert!(table.contains("1/1 file(s) passed"), "{table}");
    }

    #[test]
    fn fired_cancel_interrupts_files() {
        let opts = CorpusOptions::default();
        opts.cancel.cancel();
        let r = check_source("mp.litmus", MP, &opts, None);
        assert!(!r.passed());
        assert!(r.interrupted());
    }

    #[test]
    fn memory_budget_degrades_file_to_inconclusive() {
        let opts = CorpusOptions { max_memory_bytes: 64, ..Default::default() };
        let r = check_source("mp.litmus", MP, &opts, None);
        assert!(!r.passed());
        assert!(r.interrupted(), "a starved budget is an interrupt, not a crash");
        assert!(!r.errored());
    }

    #[test]
    fn quarantined_files_serialize_and_fail() {
        let quarantined = FileReport {
            path: "boom.litmus".into(),
            program: String::new(),
            outcome: FileOutcome::Quarantined(crate::verdict::EngineError {
                phase: crate::verdict::EnginePhase::Corpus,
                thread: None,
                payload: "injected".into(),
            }),
        };
        assert!(!quarantined.passed());
        assert!(quarantined.errored());
        let clean = check_source("mp.litmus", MP, &CorpusOptions::default(), None);
        let report = CorpusReport {
            root: "corpus".into(),
            files: vec![clean, quarantined],
            elapsed: Duration::ZERO,
        };
        assert!(!report.passed());
        assert!(report.errored());
        assert_eq!(report.quarantined(), vec!["boom.litmus"]);
        let json = report.to_json();
        assert!(
            json.contains("\"quarantined\": [\"boom.litmus\"]"),
            "top-level quarantine list: {json}"
        );
        assert!(json.contains("\"quarantined\": true"), "per-file flag: {json}");
        assert!(json.contains("panic in corpus phase"), "error message: {json}");
        let table = report.render_table();
        assert!(table.contains("QUARANTINED"), "{table}");
    }
}
