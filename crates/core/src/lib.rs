//! # vsync-core
//!
//! The paper's primary contribution, reproduced in Rust:
//!
//! * **AMC — Await Model Checking** ([`explore`], [`verify`]): a stateless
//!   model checker over execution graphs that terminates for programs with
//!   await loops, detects all safety violations, and decides await
//!   termination (paper §1, Theorem 1);
//! * **push-button barrier optimization** ([`optimize`]): maximally relax
//!   the barrier modes of a synchronization primitive while it still
//!   verifies (paper §3.3, Table 1).
//!
//! The front door is the [`Session`] pipeline — model matrix, workers,
//! budgets, progress streaming, cancellation and structured [`Report`]s in
//! one builder chain; [`verify`], [`explore`] and [`optimize`] remain as
//! thin single-shot wrappers over the same engine.
//!
//! ```
//! use vsync_core::Session;
//! use vsync_lang::{ProgramBuilder, Reg};
//! use vsync_graph::Mode;
//! use vsync_model::ModelKind;
//!
//! // A thread awaiting a signal that another thread sends: AT holds.
//! let mut pb = ProgramBuilder::new("handshake");
//! pb.thread(|t| { t.store(0x10, 1u64, Mode::Rel); });
//! pb.thread(|t| { t.await_eq(Reg(0), 0x10, 1u64, Mode::Acq); });
//! let program = pb.build().unwrap();
//! let report = Session::new(program).models(ModelKind::all()).run();
//! assert!(report.is_verified());
//! println!("{}", report.to_json());
//! ```

#![warn(missing_docs)]

mod corpus;
mod explorer;
pub mod failpoint;
mod optimize;
mod revisit;
mod session;
mod stagnancy;
pub mod telemetry;
mod verdict;

pub use corpus::{
    check_source, check_test, collect_litmus_files, run_corpus, CorpusOptions, CorpusReport,
    FileOutcome, FileReport, ModelOutcome, SourceError,
};
pub use explorer::{
    count_executions, count_executions_with, explore, explore_oracle, explore_with, verify,
    OracleOutcome,
};
pub use optimize::{
    enumerate_maximal, is_locally_maximal, optimize, optimize_multi, optimize_with,
    OptimizationReport, OptimizationStep, OptimizeEvent, OptimizePhase, OptimizeStrategy,
    OptimizerConfig,
};
pub use session::{
    CancelToken, ModelRun, ProgressFn, ProgressSnapshot, Report, RunControl, Session,
};
pub use stagnancy::{is_stagnant, is_stuck};
pub use telemetry::{
    render_metrics, EngineEvent, EventFn, EventKind, PhaseProfile, PhaseStat, TraceWriter,
};
pub use verdict::{
    AmcConfig, AmcResult, Counterexample, EngineError, EnginePhase, ExploreStats, Inconclusive,
    ResourceBudget, SearchMode, StopReason, Verdict,
};
