//! # vsync-core
//!
//! The paper's primary contribution, reproduced in Rust:
//!
//! * **AMC — Await Model Checking** ([`explore`], [`verify`]): a stateless
//!   model checker over execution graphs that terminates for programs with
//!   await loops, detects all safety violations, and decides await
//!   termination (paper §1, Theorem 1);
//! * **push-button barrier optimization** ([`optimize`]): maximally relax
//!   the barrier modes of a synchronization primitive while it still
//!   verifies (paper §3.3, Table 1).
//!
//! ```
//! use vsync_core::{verify, AmcConfig};
//! use vsync_lang::{ProgramBuilder, Reg};
//! use vsync_graph::Mode;
//!
//! // A thread awaiting a signal that another thread sends: AT holds.
//! let mut pb = ProgramBuilder::new("handshake");
//! pb.thread(|t| { t.store(0x10, 1u64, Mode::Rel); });
//! pb.thread(|t| { t.await_eq(Reg(0), 0x10, 1u64, Mode::Acq); });
//! let program = pb.build().unwrap();
//! assert!(verify(&program, &AmcConfig::default()).is_verified());
//! ```

#![warn(missing_docs)]

mod explorer;
mod optimizer;
mod stagnancy;
mod verdict;

pub use explorer::{count_executions, explore, verify};
pub use optimizer::{
    enumerate_maximal, is_locally_maximal, optimize, optimize_multi, optimize_with,
    OptimizationReport, OptimizationStep, OptimizerConfig,
};
pub use stagnancy::{is_stagnant, is_stuck};
pub use verdict::{AmcConfig, AmcResult, Counterexample, ExploreStats, Verdict};
